"""Legacy setup shim: this offline environment lacks the ``wheel``
package, so PEP 517 editable installs fail; ``pip install -e .
--no-use-pep517 --no-build-isolation`` goes through this file instead.
Configuration lives in pyproject.toml."""

from setuptools import setup

setup()
