"""The introduction's distributed scenario, end to end.

Section 1 of the paper argues Ref is the only workable technique when
data lives in independent RDF endpoints: sources can't be dumped,
responses are truncated, and implicit facts span sources.  This
example shards a LUBM-style graph over four endpoints and shows:

1. the two roads to a global saturation are blocked;
2. federated Ref answers completely through the restricted interfaces,
   including a derivation whose fact and constraint live apart;
3. what each query costs in requests and rows moved.

Run:  python examples/federation.py
"""

from __future__ import annotations

from repro.bench import format_table
from repro.datasets import generate_lubm, lubm_queries, lubm_schema
from repro.federation import Endpoint, ExportForbidden, FederatedAnswerer
from repro.query import ConjunctiveQuery, TriplePattern, Variable, evaluate_cq
from repro.rdf import Graph
from repro.saturation import saturate


def main() -> None:
    graph = generate_lubm(universities=2, seed=1, include_schema=False)
    schema = lubm_schema()

    shards = [Graph() for _ in range(4)]
    for index, triple in enumerate(sorted(graph.data_triples())):
        shards[index % 4].add(triple)
    endpoints = [
        Endpoint("endpoint-%d" % index, shard, result_limit=500)
        for index, shard in enumerate(shards)
    ]
    print("The federation:")
    for endpoint in endpoints:
        print("   ", endpoint)
    print("The client holds the %d schema constraints.\n" % len(schema))

    # -- 1. Saturation is blocked ---------------------------------------
    print("[1] Trying to build a global saturation:")
    try:
        endpoints[0].export()
    except ExportForbidden as exc:
        print("    dump refused:", exc)
    x, p, o = Variable("x"), Variable("p"), Variable("o")
    crawl = ConjunctiveQuery([x, p, o], [TriplePattern(x, p, o)])
    harvested = sum(len(e.evaluate(crawl)) for e in endpoints)
    print(
        "    crawling under the result limit harvested %d of %d triples "
        "-> any closure would be incomplete\n" % (harvested, len(graph))
    )

    # -- 2. Federated Ref -----------------------------------------------
    print("[2] Federated reformulation-based answering:")
    federation = FederatedAnswerer(endpoints, schema)
    full = graph.copy()
    full.add_all(schema.to_triples())
    saturated = saturate(full)

    rows = []
    for name in ("Q1", "Q5", "Q6", "Q13"):
        query = lubm_queries()[name]
        federation.reset_counters()
        answer = federation.answer(query)
        expected = evaluate_cq(saturated, query)
        status = "complete" if answer.rows == expected else "MISMATCH"
        rows.append(
            [name, answer.cardinality, status, answer.requests,
             answer.rows_transferred]
        )
    print(format_table(
        ["query", "answers", "vs centralized Sat", "requests", "rows moved"],
        rows,
    ))

    # -- 3. Cross-source entailment --------------------------------------
    print(
        "\n[3] Every Q13 answer needed the degreeFrom subproperty "
        "constraints (held by the client) applied to degree triples "
        "scattered over all four endpoints — 'implicit facts may be due "
        "to the presence of one fact in one endpoint, and a constraint "
        "in another' (paper, §1)."
    )


if __name__ == "__main__":
    main()
