"""Example 1 of the paper, reproduced step by step on LUBM-style data.

Walks exactly the narrative of Section 4:

1. the CQ-to-UCQ reformulation explodes (hundreds of alternatives per
   open type atom, their product overall) and cannot be parsed;
2. the SCQ reformulation runs, but its open-type-atom fragments return
   huge intermediate results;
3. the cover {{t1,t3},{t3,t5},{t2,t4},{t4,t6}} groups each type atom
   with a selective degree atom, shrinking intermediates;
4. GCov finds such a cover automatically from the cost model.

Run:  python examples/lubm_example1.py [universities]
"""

from __future__ import annotations

import sys

from repro import QueryAnswerer, Strategy
from repro.datasets import (
    example1_best_cover,
    example1_query,
    generate_lubm,
)
from repro.reformulation import atom_reformulation_size, ucq_size
from repro.storage import QueryTooLargeError


def main(universities: int = 5) -> None:
    query = example1_query()
    print("Example 1 query q(x, u, y, v, z):")
    for index, atom in enumerate(query.atoms, start=1):
        print("    t%d: %s" % (index, atom))

    graph = generate_lubm(universities=universities, seed=1)
    answerer = QueryAnswerer(graph)
    schema = answerer.schema
    print("\nLUBM-style data: %d triples, %d universities"
          % (len(graph), universities))

    # -- Step 1: the UCQ blow-up ---------------------------------------
    print("\n[1] CQ-to-UCQ reformulation sizes:")
    for index, atom in enumerate(query.atoms, start=1):
        print("    t%d reformulates into %4d atomic alternatives"
              % (index, atom_reformulation_size(atom, schema)))
    total = ucq_size(query, schema)
    print("    full UCQ: %d conjunctive queries (paper: 318,096)" % total)
    try:
        answerer.answer(query, Strategy.REF_UCQ)
        print("    unexpectedly parsed!")
    except QueryTooLargeError as exc:
        print("    -> %s (the paper: 'could not even be parsed')" % exc)

    # -- Step 2: the SCQ and its intermediate results -------------------
    print("\n[2] SCQ reformulation (one fragment per atom):")
    scq = answerer.answer(query, Strategy.REF_SCQ)
    print("    evaluated in %.0f ms, %d answers, largest intermediate "
          "result: %d rows"
          % (scq.elapsed_seconds * 1e3, scq.cardinality,
             scq.execution.max_intermediate_rows()))

    # -- Step 3: the paper's best cover ---------------------------------
    cover = example1_best_cover(query)
    print("\n[3] The grouped cover %r:" % cover)
    best = answerer.answer(query, Strategy.REF_JUCQ, cover=cover)
    print("    evaluated in %.0f ms, %d answers, largest intermediate "
          "result: %d rows"
          % (best.elapsed_seconds * 1e3, best.cardinality,
             best.execution.max_intermediate_rows()))
    if best.elapsed_seconds < scq.elapsed_seconds:
        print("    -> %.1fx faster than the SCQ (paper: 430x at 100M triples)"
              % (scq.elapsed_seconds / best.elapsed_seconds))
    else:
        print("    -> intermediates shrank %.1fx; the wall-time gap widens "
              "with scale (try more universities)"
              % (scq.execution.max_intermediate_rows()
                 / max(best.execution.max_intermediate_rows(), 1)))

    # -- Step 4: GCov ----------------------------------------------------
    print("\n[4] GCov's cost-based search:")
    gcov = answerer.answer(query, Strategy.REF_GCOV)
    print("    chose %s after exploring %d covers (estimated cost %.0f)"
          % (gcov.details["cover"], gcov.details["explored_covers"],
             gcov.details["estimated_cost"]))
    print("    evaluated in %.0f ms, %d answers"
          % (gcov.elapsed_seconds * 1e3, gcov.cardinality))

    sat = answerer.answer(query, Strategy.SAT)
    assert sat.answer == scq.answer == best.answer == gcov.answer
    print("\nAll complete strategies agree: %d answers." % sat.cardinality)


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 5)
