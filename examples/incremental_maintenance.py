"""Sat vs Ref under updates: the maintenance penalty of Section 1.

The paper motivates Ref with the cost of keeping a saturation current:
"the saturation needs to be maintained after changes in the data
and/or constraints".  This example runs a small update workload —
triple insertions, triple deletions, then a constraint change — and
shows what each technique pays:

* Sat: incremental maintenance per data update (support counting), and
  a full resaturation on the constraint change;
* Ref: nothing on data updates, one re-reformulation on the
  constraint change.

Run:  python examples/incremental_maintenance.py
"""

from __future__ import annotations

import time

from repro.bench import format_table
from repro.datasets import UB, generate_lubm, lubm_queries
from repro.rdf import RDF_TYPE, Triple, URI
from repro.saturation import IncrementalSaturator
from repro.schema import Constraint, Schema
from repro.reformulation import reformulate


def timed(label, fn):
    start = time.perf_counter()
    result = fn()
    elapsed = (time.perf_counter() - start) * 1e3
    return label, elapsed, result


def main() -> None:
    graph = generate_lubm(universities=2, seed=1)
    schema = Schema.from_graph(graph)
    data = list(graph.data_triples())
    query = lubm_queries()["Q6"]

    rows = []

    label, ms, saturator = timed(
        "Sat: initial saturation (%d triples)" % len(data),
        lambda: IncrementalSaturator(schema, data),
    )
    rows.append([label, "%.1f" % ms])
    print(
        "saturation holds %d triples (%d derived)"
        % (len(saturator), saturator.derived_count)
    )

    # A batch of new graduate students joins.
    dept = URI("http://www.Department0.University0.edu")
    newcomers = []
    for index in range(200):
        student = URI("http://www.Department0.University0.edu/NewStudent%d" % index)
        newcomers.append(Triple(student, RDF_TYPE, UB.GraduateStudent))
        newcomers.append(Triple(student, UB.memberOf, dept))

    label, ms, _ = timed(
        "Sat: insert 400-triple batch (incremental)",
        lambda: saturator.insert_all(newcomers),
    )
    rows.append([label, "%.1f" % ms])

    label, ms, _ = timed(
        "Sat: delete the same batch (support counting)",
        lambda: saturator.delete_all(newcomers),
    )
    rows.append([label, "%.1f" % ms])

    rows.append(["Ref: data updates", "0.0 (nothing to maintain)"])

    # A constraint change hits both techniques differently.
    new_constraint = Constraint.subclass(UB.Lecturer, UB.Professor)
    label, ms, _ = timed(
        "Sat: add 'Lecturer ⊑ Professor' (full resaturation)",
        lambda: saturator.add_constraint(new_constraint),
    )
    rows.append([label, "%.1f" % ms])

    amended = schema.copy()
    amended.add(new_constraint)
    label, ms, _ = timed(
        "Ref: re-reformulate the next query",
        lambda: reformulate(query, amended),
    )
    rows.append([label, "%.2f" % ms])

    print()
    print(format_table(["operation", "time (ms)"], rows,
                       title="Sat vs Ref under updates"))


if __name__ == "__main__":
    main()
