"""The demonstration scenario of Section 5, as a terminal walkthrough.

Follows the attendee experience the paper describes:

1. pick an RDF graph and visualize its statistics;
2. select a query and answer it through all available systems,
   comparing performance and completeness;
3. inspect the runtime: the chosen plan, (sub)query cardinalities and
   costs, and the space of covers GCov explored;
4. modify the constraints and re-run to see the impact.

Run:  python examples/demo_walkthrough.py [lubm|geo|bib]
"""

from __future__ import annotations

import sys

from repro import QueryAnswerer, Strategy
from repro.bench import format_table
from repro.datasets import (
    UB,
    bib_queries,
    generate_bib,
    generate_geo,
    generate_lubm,
    geo_queries,
    lubm_queries,
)
from repro.optimizer import gcov
from repro.rdf import shorten
from repro.reformulation import ReformulationTooLarge, ucq_size
from repro.schema import Constraint
from repro.storage import QueryTooLargeError

SCENARIOS = {
    "lubm": (
        lambda: generate_lubm(universities=2, seed=1),
        lambda: lubm_queries()["Q9"],
    ),
    "geo": (lambda: generate_geo(seed=1), lambda: geo_queries()["G2"]),
    "bib": (lambda: generate_bib(seed=1), lambda: bib_queries()["B3"]),
}


def step1_statistics(answerer: QueryAnswerer) -> None:
    print("\n== Step 1: dataset statistics " + "=" * 38)
    summary = answerer.store.statistics.summary()
    print(format_table(list(summary), [list(summary.values())]))
    stats = answerer.store.statistics
    rows = [
        [
            shorten(answerer.store.dictionary.decode(property_id)),
            property_stats.triples,
            property_stats.distinct_subjects,
            property_stats.distinct_objects,
        ]
        for property_id, property_stats in sorted(
            stats.per_property.items(), key=lambda item: -item[1].triples
        )[:6]
    ]
    print()
    print(format_table(["property", "triples", "#s", "#o"], rows))


def step2_compare(answerer: QueryAnswerer, query) -> None:
    print("\n== Step 2: answer through all systems " + "=" * 30)
    print("query:", query)
    rows = []
    for strategy in (
        Strategy.SAT,
        Strategy.REF_UCQ,
        Strategy.REF_SCQ,
        Strategy.REF_GCOV,
        Strategy.DATALOG,
        Strategy.REF_VIRTUOSO,
        Strategy.REF_ALLEGRO,
    ):
        try:
            report = answerer.answer(query, strategy)
            rows.append(
                [
                    strategy.value,
                    "%.1f" % (report.elapsed_seconds * 1e3),
                    report.cardinality,
                ]
            )
        except (QueryTooLargeError, ReformulationTooLarge) as exc:
            rows.append([strategy.value, "FAIL", str(exc)[:48]])
    print(format_table(["system", "ms", "answers"], rows))


def step3_inspect(answerer: QueryAnswerer, query) -> None:
    print("\n== Step 3: inspect plan, costs and the explored space " + "=" * 13)
    search = gcov(query, answerer.schema, answerer.store, answerer.backend)
    print("GCov chose %r (estimated cost %.0f)" % (search.cover, search.cost))
    explored = sorted(search.explored, key=lambda pair: pair[1])[:6]
    print(
        format_table(
            ["explored cover", "estimated cost"],
            [[repr(cover), "%.0f" % cost] for cover, cost in explored],
        )
    )
    report = answerer.answer(query, Strategy.REF_GCOV)
    print("\nplan cardinalities (operator, estimated, actual):")
    for operator, estimated, actual in report.execution.node_cardinalities()[:6]:
        print("    %-28s %10.0f %10d" % (operator[:28], estimated, actual))


def step4_modify(answerer: QueryAnswerer, query) -> None:
    print("\n== Step 4: modify the constraints and re-run " + "=" * 23)
    before = ucq_size(query, answerer.schema)
    amended = answerer.schema.copy()
    amended.add(Constraint.subclass(UB.term("Emeritus"), UB.FullProfessor))
    amended.add(Constraint.domain(UB.term("mentors"), UB.Professor))
    after = ucq_size(query, amended)
    print(
        "UCQ reformulation size: %d disjuncts -> %d after adding two "
        "constraints" % (before, after)
    )
    print("(constraint modifications 'may have a dramatic impact' — §5)")


def main(scenario: str = "lubm") -> None:
    build_graph, build_query = SCENARIOS[scenario]
    graph = build_graph()
    query = build_query()
    answerer = QueryAnswerer(graph)
    print("Scenario %r: %d triples" % (scenario, len(graph)))
    step1_statistics(answerer)
    step2_compare(answerer, query)
    step3_inspect(answerer, query)
    if scenario == "lubm":
        step4_modify(answerer, query)


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "lubm")
