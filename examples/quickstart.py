"""Quickstart: the paper's running example, end to end.

Builds the bibliographic graph of Figure 2, shows that plain query
*evaluation* misses implicit answers, then answers the example query
with every technique in the library — saturation, the three
reformulation strategies, the cost-based GCov, Datalog, and the
simulated incomplete commercial strategies — and prints what each
returns.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import QueryAnswerer, Strategy
from repro.datasets import books_dataset
from repro.query import Cover, evaluate_cq
from repro.saturation import saturate


def main() -> None:
    graph, schema, query = books_dataset()

    print("The graph of Figure 2 (%d explicit triples):" % len(graph))
    for triple in sorted(graph):
        print("   ", triple)

    print("\nThe query (names of authors of things connected to '1949'):")
    print("   ", query)

    print("\nPlain evaluation over the explicit triples:")
    print("   ", set(evaluate_cq(graph, query)) or "{} — incomplete!")

    saturated = saturate(graph, schema)
    print(
        "\nSaturation adds %d implicit triples, e.g.:"
        % (len(saturated) - len(graph))
    )
    for triple in sorted(saturated.difference(graph))[:4]:
        print("   ", triple)

    answerer = QueryAnswerer(graph, schema)
    print("\nAnswering through every technique:")
    for strategy in Strategy:
        cover = None
        if strategy is Strategy.REF_JUCQ:
            cover = Cover(query, [[0, 1], [2]])
        report = answerer.answer(query, strategy, cover=cover)
        names = sorted(term.value for (term,) in report.answer)
        print(
            "    %-22s %-20s %6.2f ms   %s"
            % (strategy.value, names or "(no answers)",
               report.elapsed_seconds * 1e3,
               report.details if report.details else "")
        )

    print(
        "\nNote the incomplete commercial-style strategies: allegrograph-"
        "style misses the answer because it ignores the subproperty and "
        "domain/range constraints the derivation needs."
    )


if __name__ == "__main__":
    main()
