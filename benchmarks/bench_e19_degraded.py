"""E19 — degraded-mode serving: availability under faults with the brownout ladder.

The robustness claim: when the backend starts failing under a tenant
workload, a front door with the brownout ladder *serves through* the
fault — it climbs to stale-while-revalidate and keeps answering from
expired cache entries (flagged, and provably subsets of the serial
ground truth) — while the same front door without the ladder fails
every request the fault touches.  When the fault clears, the ladder
walks back down to NORMAL on its own.

One closed-loop schedule, run twice on identical seeds (same
:class:`~repro.resilience.faults.FaultPlan`, same submissions, same
fake clock):

* **warm** rounds populate every tenant's cache partition;
* an irrelevant *noise* triple then bumps the data epoch (so the warm
  entries are expired — exactly the stale-serving regime — while the
  query answers themselves are unchanged);
* **fault** rounds arm a high-rate transient
  :class:`~repro.service.chaos.ServiceChaos`; the ladder run climbs to
  stale-serving and keeps answering, the bare run keeps failing;
* **recovery** rounds disarm the chaos; refreshes succeed again and
  the ladder de-escalates level by level to NORMAL.

Availability = completed responses / submitted requests (shed and
failed both count against it).  The three assertions written into
``BENCH_E19.json`` and enforced here and in CI:

1. availability(ladder) strictly exceeds availability(no ladder);
2. every answer that went out degraded (stale or partial) is flagged
   as such and is a subset of the serial answerer's ground truth —
   and every *unflagged* answer equals the ground truth exactly;
3. the controller's transition log shows it reached stale-serving and
   returned to NORMAL after the fault window.

Runs two ways: under pytest with the rest of benchmarks/, and as a CI
smoke script (``python benchmarks/bench_e19_degraded.py --quick``).
"""

from __future__ import annotations

import argparse
import itertools
import os
import sys
import time
from typing import Dict, List, Optional, Sequence

_SRC = os.path.abspath(
    os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir, "src")
)
if os.path.isdir(_SRC) and _SRC not in sys.path:
    sys.path.insert(0, _SRC)

_REPO_ROOT = os.path.dirname(_SRC)

from repro.bench import format_table, write_json_report
from repro.core import QueryAnswerer
from repro.datasets import generate_lubm, lubm_queries
from repro.rdf import Namespace, RDF_TYPE, Triple
from repro.resilience.clock import FakeClock
from repro.resilience.faults import FaultPlan
from repro.service import (
    AdmissionRejected,
    BrownoutPolicy,
    DONE,
    NORMAL,
    QueryRequest,
    QueryService,
    STALE_SERVING,
    ServiceChaos,
    TenantConfig,
)

#: The CI chaos-matrix seed convention (same as the resilience tests).
CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "7"))

NOISE = Namespace("http://example.org/e19-noise/")

#: Two cacheable queries, alternated per round.
QUERY_MIX = ("Q1", "Q4")

TENANTS = (("gold", 2), ("bronze", 1))

#: Distinguishes the per-run noise triple (see :func:`run_schedule`).
_noise_counter = itertools.count(1)


def _policy() -> BrownoutPolicy:
    """The ladder policy for E19: default thresholds, but a short
    recovery streak (2 clear rounds per level) and two refreshes per
    round so the recovery phase fits a bounded schedule."""
    return BrownoutPolicy(recovery_rounds=2, refreshes_per_round=2)


def run_schedule(
    graph,
    *,
    ladder: bool,
    warm_rounds: int,
    fault_rounds: int,
    recovery_rounds: int,
    transient_rate: float = 0.95,
    engine: str = "builtin",
    seed: int = CHAOS_SEED,
) -> Dict:
    """One closed-loop session under the warm → fault → recovery
    schedule; ``ladder`` toggles the brownout controller (everything
    else — seeds, submissions, clock — is identical)."""
    queries = lubm_queries()
    clock = FakeClock(auto_advance=0.001)
    chaos = ServiceChaos(
        FaultPlan(seed=seed, transient_rate=transient_rate),
        clock=clock,
        armed=False,
    )
    service = QueryService(
        graph,
        tenants=[
            TenantConfig(name, weight=weight, queue_depth=8)
            for name, weight in TENANTS
        ],
        capacity=len(TENANTS),
        clock=clock,
        engine=engine,
        brownout=_policy() if ladder else None,
        chaos=chaos,
        watchdog_seconds=30.0,
        # E19 measures the *ladder*; with breakers on, the injected
        # backend fault (which is not tenant-specific) would trip every
        # tenant's breaker and the comparison would measure breaker
        # cooldowns instead.  Breakers get their own unit tests.
        breaker_threshold=0,
    )
    tickets = []
    submitted = 0

    def play_round(round_index: int) -> None:
        nonlocal submitted
        query = queries[QUERY_MIX[round_index % len(QUERY_MIX)]]
        for name, _weight in TENANTS:
            submitted += 1
            try:
                tickets.append(service.submit(QueryRequest(name, query)))
            except AdmissionRejected:
                continue
        service.step()

    wall_start = time.perf_counter()
    round_counter = 0
    level_trace: List[int] = []

    for _ in range(warm_rounds):
        play_round(round_counter)
        round_counter += 1
    # Expire the warm entries without changing any query's answer: one
    # irrelevant data triple bumps every partition's data epoch.  The
    # subject is unique per run — runs share the input graph object
    # (the answerer's inserts flow back into it), and a duplicate
    # insert would be a no-op that leaves a later run's entries fresh.
    noise = NOISE["visitor-%d" % next(_noise_counter)]
    inserted = service.insert(Triple(noise, RDF_TYPE, NOISE.Visitor))
    assert inserted, "noise triple must be new or the epoch never bumps"
    chaos.arm()
    for _ in range(fault_rounds):
        play_round(round_counter)
        round_counter += 1
        if service.brownout is not None:
            level_trace.append(service.brownout.level)
    chaos.disarm()
    for _ in range(recovery_rounds):
        play_round(round_counter)
        round_counter += 1
        if service.brownout is not None:
            level_trace.append(service.brownout.level)
    service.drain()
    wall_seconds = time.perf_counter() - wall_start

    # Ground truth: the serial answerer on the final graph state (the
    # noise triple is in both; it matches no query in the mix).
    serial = QueryAnswerer(graph, engine=engine)
    expected = {
        name: sorted(serial.answer(queries[name]).answer) for name in QUERY_MIX
    }
    flagged_total = 0
    unflagged_mismatches = 0
    flagged_non_subsets = 0
    for ticket in tickets:
        if ticket.status != DONE:
            continue
        # Identify the query by the request itself, not the answer.
        query_name = next(
            qn for qn in QUERY_MIX if queries[qn] is ticket.request.query
        )
        truth = expected[query_name]
        got = sorted(ticket.answer)
        if ticket.stale or ticket.degraded:
            flagged_total += 1
            if not set(got) <= set(truth):
                flagged_non_subsets += 1
        elif got != truth:
            unflagged_mismatches += 1

    summary = service.describe()
    completed = summary["completed"]
    result = {
        "ladder": ladder,
        "submitted": submitted,
        "completed": completed,
        "failed": summary["failed"],
        "shed": summary["shed"],
        "availability": completed / submitted if submitted else 0.0,
        "stale_serves": summary["stale_serves"],
        "degraded": summary["degraded"],
        "refreshes": summary["refreshes"],
        "refresh_failures": summary["refresh_failures"],
        "flagged_answers": flagged_total,
        "flagged_non_subsets": flagged_non_subsets,
        "unflagged_mismatches": unflagged_mismatches,
        "wall_seconds": wall_seconds,
    }
    if ladder:
        brownout = service.brownout.as_dict()
        result["max_level"] = max([0] + level_trace)
        result["final_level"] = service.brownout.level
        result["returned_to_normal"] = service.brownout.level == NORMAL
        result["reached_stale_serving"] = any(
            level >= STALE_SERVING for level in level_trace
        )
        result["transitions"] = brownout["transitions"]
    return result


def run_comparison(
    graph,
    *,
    warm_rounds: int = 4,
    fault_rounds: int = 10,
    recovery_rounds: int = 14,
    engine: str = "builtin",
    seed: int = CHAOS_SEED,
) -> Dict[str, Dict]:
    kwargs = dict(
        warm_rounds=warm_rounds,
        fault_rounds=fault_rounds,
        recovery_rounds=recovery_rounds,
        engine=engine,
        seed=seed,
    )
    return {
        "with_ladder": run_schedule(graph, ladder=True, **kwargs),
        "without_ladder": run_schedule(graph, ladder=False, **kwargs),
    }


def emit_report(results: Dict[str, Dict]) -> str:
    rows = [
        [
            scenario,
            payload["submitted"],
            payload["completed"],
            payload["failed"],
            "%.3f" % payload["availability"],
            payload["stale_serves"],
            payload["flagged_answers"],
            payload.get("final_level", "-"),
        ]
        for scenario, payload in results.items()
    ]
    return format_table(
        ["scenario", "sub", "done", "fail", "availability",
         "stale", "flagged", "final lvl"],
        rows,
        title="E19: degraded-mode serving under an injected fault window "
              "(seed %d)" % CHAOS_SEED,
    )


def check_results(results: Dict[str, Dict]) -> List[str]:
    """The acceptance criteria as a list of failure messages."""
    ladder = results["with_ladder"]
    bare = results["without_ladder"]
    problems = []
    if not ladder["availability"] > bare["availability"]:
        problems.append(
            "availability with ladder (%.3f) does not strictly exceed "
            "without (%.3f)" % (ladder["availability"], bare["availability"])
        )
    for scenario, payload in results.items():
        if payload["flagged_non_subsets"]:
            problems.append(
                "%s: %d flagged answer(s) were not subsets of ground truth"
                % (scenario, payload["flagged_non_subsets"])
            )
        if payload["unflagged_mismatches"]:
            problems.append(
                "%s: %d unflagged answer(s) diverged from ground truth"
                % (scenario, payload["unflagged_mismatches"])
            )
    if not ladder["reached_stale_serving"]:
        problems.append("ladder never reached stale-serving under the fault")
    if not ladder["returned_to_normal"]:
        problems.append(
            "ladder did not return to NORMAL after the fault cleared "
            "(final level %s)" % ladder["final_level"]
        )
    if ladder["stale_serves"] == 0:
        problems.append("ladder run served nothing stale")
    return problems


# ---------------------------------------------------------------------------
# pytest entry points (collected with the rest of benchmarks/)


def test_ladder_strictly_improves_availability(lubm_graph):
    results = run_comparison(lubm_graph)
    assert not check_results(results), check_results(results)


def test_ladder_run_is_deterministic(lubm_graph):
    first = run_comparison(lubm_graph)
    second = run_comparison(lubm_graph)
    for scenario in first:
        for key in ("availability", "stale_serves", "failed", "completed"):
            assert first[scenario][key] == second[scenario][key]


# ---------------------------------------------------------------------------
# script entry point (CI smoke: python benchmarks/bench_e19_degraded.py --quick)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="one-university instance; assert the availability, "
             "flagged-subset and return-to-normal criteria",
    )
    parser.add_argument("--universities", type=int, default=2)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--fault-rounds", type=int, default=10)
    parser.add_argument("--recovery-rounds", type=int, default=14)
    parser.add_argument(
        "--engine", default="builtin",
        choices=["builtin", "materialized", "pipelined"],
    )
    parser.add_argument(
        "--output",
        default=os.path.join(_REPO_ROOT, "BENCH_E19.json"),
        help="where to write the JSON artifact",
    )
    args = parser.parse_args(argv)
    universities = 1 if args.quick else args.universities
    graph = generate_lubm(universities=universities, seed=args.seed)
    results = run_comparison(
        graph,
        fault_rounds=args.fault_rounds,
        recovery_rounds=args.recovery_rounds,
        engine=args.engine,
    )
    print(emit_report(results))
    problems = check_results(results)
    payload = {
        "experiment": "E19",
        "claim": "the brownout ladder serves through an injected fault "
                 "window (stale answers flagged, subsets of ground truth), "
                 "strictly beats the bare service's availability, and "
                 "returns to NORMAL once the fault clears",
        "universities": universities,
        "seed": args.seed,
        "chaos_seed": CHAOS_SEED,
        "engine": args.engine,
        "scenarios": results,
        "assertions": {
            "availability_strictly_improved": (
                results["with_ladder"]["availability"]
                > results["without_ladder"]["availability"]
            ),
            "flagged_answers_are_subsets": all(
                r["flagged_non_subsets"] == 0 for r in results.values()
            ),
            "unflagged_answers_exact": all(
                r["unflagged_mismatches"] == 0 for r in results.values()
            ),
            "returned_to_normal": results["with_ladder"]["returned_to_normal"],
            "problems": problems,
        },
    }
    written = write_json_report(args.output, payload)
    print("\nwrote %s" % written)
    for problem in problems:
        print("FAIL: %s" % problem, file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
