"""E1 — Example 1's UCQ reformulation blow-up (paper, Section 4).

Paper's numbers on their LUBM schema: the CQ-to-UCQ reformulation of
the six-atom query is a union of 318,096 CQs (= 564 alternatives for
each of the two open type atoms), which "could not even be parsed".

Reproduced here: the per-atom alternative counts on our RDFS
projection of the LUBM ontology, the total disjunct count (the product
of the per-atom counts: open-type² × memberOf-unfoldings²), and the
parse failure of the materialized-size check on all three backend
profiles.  Absolute counts differ from 318,096 because the published
RDFS projection is not fully specified; the *shape* — five to six
orders of magnitude, driven squarely by the open type atoms — is the
reproduction target.
"""

from __future__ import annotations


from repro.bench import format_table
from repro.datasets import example1_query
from repro.reformulation import atom_reformulation_size, ucq_size
from repro.storage import DEFAULT_BACKENDS, QueryTooLargeError


def test_per_atom_alternative_counts(schema):
    """t1/t2 (open type atoms) must dominate every other atom by two
    orders of magnitude — the source of the blow-up."""
    query = example1_query()
    counts = [
        atom_reformulation_size(atom, schema) for atom in query.atoms
    ]
    print()
    print(
        format_table(
            ["atom", "pattern", "alternatives"],
            [
                ["t%d" % (index + 1), repr(atom), count]
                for index, (atom, count) in enumerate(zip(query.atoms, counts))
            ],
            title="E1: per-atom reformulation sizes (paper: t1=t2=564)",
        )
    )
    assert counts[0] == counts[1]          # both open type atoms
    assert counts[0] > 100                 # hundreds of unfoldings
    assert all(count <= 3 for count in counts[2:])


def test_total_ucq_size_is_product(schema):
    query = example1_query()
    counts = [atom_reformulation_size(atom, schema) for atom in query.atoms]
    expected = 1
    for count in counts:
        expected *= count
    total = ucq_size(query, schema)
    print("\nE1: UCQ disjuncts = %d (paper: 318,096)" % total)
    assert total == expected
    assert total > 100_000


def test_unparseable_on_every_backend(schema, lubm_store):
    """The UCQ's atom count exceeds every profile's parser limit —
    the paper's 'could not even be parsed', without materializing."""
    from repro import QueryAnswerer, Strategy

    query = example1_query()
    rows = []
    for backend in DEFAULT_BACKENDS:
        answerer = QueryAnswerer(lubm_store.to_graph(), backend=backend)
        try:
            answerer.answer(query, Strategy.REF_UCQ)
            outcome = "parsed (unexpected)"
            failed = False
        except QueryTooLargeError as exc:
            outcome = "FAIL: %d atoms > limit %d" % (exc.atom_count, exc.limit)
            failed = True
        rows.append([backend.name, outcome])
        assert failed, backend.name
    print()
    print(format_table(["backend", "UCQ outcome"], rows, title="E1: parse outcomes"))


def test_benchmark_size_estimation(benchmark, schema):
    """Sizing the reformulation (without materializing) must be cheap —
    it is what lets the optimizer refuse hopeless strategies early."""
    query = example1_query()
    result = benchmark(ucq_size, query, schema)
    assert result > 100_000
