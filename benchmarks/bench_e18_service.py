"""E18 — multi-tenant serving: latency percentiles and shed rate under load.

The serving layer's claim: with admission control in front of the
answerer, a saturating closed-loop workload degrades *predictably* —
excess requests are shed at the front door with typed rejections and
retry hints, the admitted requests complete with answers identical to
a serial :class:`~repro.core.answerer.QueryAnswerer`, and weighted
tenants split the executor in proportion to their weights.

Two scenarios over one LUBM instance and a three-query mix:

* **provisioned** — offered load fits the queues; the shed rate must
  be exactly zero and every request completes;
* **saturated** — each client keeps its queue over-full on purpose
  (offered load ≈ 2x queue capacity per round); shedding must engage
  (nonzero shed rate), while everything admitted still completes and
  matches the serial answers.

Clients are closed-loop: each tenant re-submits as soon as the service
sheds or completes its previous batch, `rounds` times.  The service
clock is a :class:`~repro.resilience.clock.FakeClock` stepped per
event, so the reported p50/p95/p99 are *deterministic simulated*
latencies (queueing + service ticks), reproducible bit-for-bit across
runs; wall-clock seconds are reported separately for throughput.

Runs two ways: under pytest with the rest of benchmarks/, and as a CI
smoke script (``python benchmarks/bench_e18_service.py --quick``) that
asserts the saturation/equivalence criteria and writes
``BENCH_E18.json``.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Dict, List, Optional, Sequence

_SRC = os.path.abspath(
    os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir, "src")
)
if os.path.isdir(_SRC) and _SRC not in sys.path:
    sys.path.insert(0, _SRC)

_REPO_ROOT = os.path.dirname(_SRC)

from repro.bench import format_table, write_json_report
from repro.core import QueryAnswerer
from repro.datasets import generate_lubm, lubm_queries
from repro.resilience.clock import FakeClock
from repro.service import (
    AdmissionRejected,
    DONE,
    QueryRequest,
    QueryService,
    TenantConfig,
)

#: The query mix (name, weight-in-mix): mostly cheap lookups plus a
#: heavier join, the shape a shared endpoint actually serves.
QUERY_MIX = (("Q1", 2), ("Q4", 2), ("Q2", 1))

TENANTS = (
    ("gold", 3),
    ("silver", 2),
    ("bronze", 1),
)


def mix_for(rounds: int) -> List[str]:
    """The deterministic per-round query schedule (mix unrolled)."""
    unrolled = [name for name, count in QUERY_MIX for _ in range(count)]
    return [unrolled[i % len(unrolled)] for i in range(rounds)]


def run_scenario(
    graph,
    *,
    queue_depth: int,
    burst: int,
    rounds: int,
    capacity: int = 2,
    engine: str = "builtin",
) -> Dict:
    """One closed-loop serving session.

    Per round, every tenant submits ``burst`` requests (the closed
    loop: clients immediately refill after each scheduling round), then
    the service runs one step.  ``burst > queue_depth`` oversubscribes
    the queues and forces shedding.
    """
    queries = lubm_queries()
    schedule = mix_for(rounds)
    clock = FakeClock(auto_advance=0.001)
    service = QueryService(
        graph,
        tenants=[
            TenantConfig(name, weight=weight, queue_depth=queue_depth)
            for name, weight in TENANTS
        ],
        capacity=capacity,
        clock=clock,
        engine=engine,
    )
    tickets = []
    wall_start = time.perf_counter()
    for round_index in range(rounds):
        query = queries[schedule[round_index]]
        for name, _weight in TENANTS:
            for _ in range(burst):
                try:
                    ticket = service.submit(QueryRequest(name, query))
                except AdmissionRejected:
                    continue
                tickets.append((schedule[round_index], ticket))
        service.step()
    service.drain()
    wall_seconds = time.perf_counter() - wall_start

    # The acceptance criterion: every admitted answer equals the serial
    # answerer's answer for the same query on the same data.
    serial = QueryAnswerer(graph, engine=engine)
    expected = {
        name: sorted(serial.answer(queries[name]).answer)
        for name in {entry for entry, _count in QUERY_MIX}
    }
    mismatches = sum(
        1
        for name, ticket in tickets
        if ticket.status == DONE and sorted(ticket.answer) != expected[name]
    )

    summary = service.describe()
    return {
        "queue_depth": queue_depth,
        "burst": burst,
        "rounds": rounds,
        "capacity": capacity,
        "submitted": summary["submitted"],
        "completed": summary["completed"],
        "shed": summary["shed"],
        "shed_rate": summary["shed_rate"],
        "latency": summary["latency"],
        "completions_by_tenant": {
            name: bucket["completed"]
            for name, bucket in summary["tenants"].items()
        },
        "cache_hits": summary["cache_hits"],
        "answer_mismatches": mismatches,
        "wall_seconds": wall_seconds,
    }


def emit_report(results: Dict[str, Dict]) -> str:
    rows = [
        [
            scenario,
            payload["submitted"],
            payload["completed"],
            "%.2f" % payload["shed_rate"],
            "%.1f" % (payload["latency"]["p50"] * 1e3),
            "%.1f" % (payload["latency"]["p95"] * 1e3),
            "%.1f" % (payload["latency"]["p99"] * 1e3),
            payload["answer_mismatches"],
        ]
        for scenario, payload in results.items()
    ]
    return format_table(
        ["scenario", "sub", "done", "shed rate",
         "p50 ms", "p95 ms", "p99 ms", "mismatches"],
        rows,
        title="E18: multi-tenant serving under closed-loop load "
              "(simulated-clock latencies)",
    )


# ---------------------------------------------------------------------------
# pytest entry points (collected with the rest of benchmarks/)


def test_provisioned_load_sheds_nothing(lubm_graph):
    result = run_scenario(lubm_graph, queue_depth=4, burst=1, rounds=6)
    assert result["shed_rate"] == 0.0
    assert result["completed"] == result["submitted"]
    assert result["answer_mismatches"] == 0


def test_saturation_sheds_but_admitted_answers_stay_serial(lubm_graph):
    result = run_scenario(lubm_graph, queue_depth=2, burst=4, rounds=6)
    assert result["shed"] > 0  # load shedding engaged
    assert result["completed"] > 0
    assert result["answer_mismatches"] == 0  # admitted == serial answers


def test_weighted_tenants_split_completions_by_weight(lubm_graph):
    result = run_scenario(lubm_graph, queue_depth=2, burst=4, rounds=8)
    done = result["completions_by_tenant"]
    # Saturated throughout, so completions track the 3:2:1 weights
    # (integer rounding gives the adjacent tiers some slack).
    assert done["gold"] > done["bronze"]
    assert done["gold"] >= done["silver"] >= done["bronze"]


def test_percentiles_are_deterministic(lubm_graph):
    first = run_scenario(lubm_graph, queue_depth=2, burst=3, rounds=4)
    second = run_scenario(lubm_graph, queue_depth=2, burst=3, rounds=4)
    assert first["latency"] == second["latency"]
    assert first["shed_rate"] == second["shed_rate"]


# ---------------------------------------------------------------------------
# script entry point (CI smoke: python benchmarks/bench_e18_service.py --quick)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="one-university instance, fewer rounds; assert nonzero "
             "shed at saturation and serial-equal admitted answers",
    )
    parser.add_argument("--universities", type=int, default=2)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--rounds", type=int, default=10)
    parser.add_argument(
        "--engine", default="builtin",
        choices=["builtin", "materialized", "pipelined"],
    )
    parser.add_argument(
        "--output",
        default=os.path.join(_REPO_ROOT, "BENCH_E18.json"),
        help="where to write the JSON artifact",
    )
    args = parser.parse_args(argv)
    universities = 1 if args.quick else args.universities
    rounds = 5 if args.quick else args.rounds
    graph = generate_lubm(universities=universities, seed=args.seed)
    results = {
        "provisioned": run_scenario(
            graph, queue_depth=4, burst=1, rounds=rounds, engine=args.engine
        ),
        "saturated": run_scenario(
            graph, queue_depth=2, burst=4, rounds=rounds, engine=args.engine
        ),
    }
    print(emit_report(results))
    payload = {
        "experiment": "E18",
        "claim": "admission control sheds saturating load with typed "
                 "rejections while admitted answers equal the serial "
                 "answerer; weighted tenants split capacity fairly",
        "universities": universities,
        "seed": args.seed,
        "engine": args.engine,
        "scenarios": results,
    }
    written = write_json_report(args.output, payload)
    print("\nwrote %s" % written)
    failed = False
    if results["provisioned"]["shed"] != 0:
        print("FAIL: provisioned scenario shed requests", file=sys.stderr)
        failed = True
    if results["saturated"]["shed"] == 0:
        print("FAIL: saturated scenario shed nothing", file=sys.stderr)
        failed = True
    for scenario, result in results.items():
        if result["answer_mismatches"]:
            print(
                "FAIL: %s scenario: %d admitted answer(s) diverged from "
                "the serial answerer" % (scenario, result["answer_mismatches"]),
                file=sys.stderr,
            )
            failed = True
        if result["completed"] == 0:
            print("FAIL: %s scenario completed nothing" % scenario,
                  file=sys.stderr)
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
