"""E11 — the distributed-endpoints motivation (Section 1).

"Computing the complete (distributed) set of consequences in this
setting is unfeasible, especially considering that such sources often
return only restricted answers (e.g., the first 50)."  Reproduced:

* global saturation is structurally impossible: endpoints refuse bulk
  export, and crawling them through their query interface truncates —
  the closure built from truncated crawls is *provably incomplete*;
* Ref answers completely through the same restricted interfaces, with
  a few small requests per query, including answers whose derivation
  spans sources (a fact here, a constraint there);
* the per-query data transfer of Ref is a small fraction of the data a
  saturation attempt would have to move.
"""

from __future__ import annotations

import pytest

from repro.bench import format_table
from repro.datasets import generate_lubm, lubm_queries, lubm_schema
from repro.federation import Endpoint, ExportForbidden, FederatedAnswerer
from repro.query import ConjunctiveQuery, TriplePattern, Variable, evaluate_cq
from repro.rdf import Graph
from repro.saturation import saturate


def _shard(graph, parts):
    shards = [Graph() for _ in range(parts)]
    for index, triple in enumerate(sorted(graph.data_triples())):
        shards[index % parts].add(triple)
    return shards


@pytest.fixture(scope="module")
def federation_setup():
    graph = generate_lubm(universities=2, seed=1, include_schema=False)
    schema = lubm_schema()
    shards = _shard(graph, parts=4)
    endpoints = [
        Endpoint("shard%d" % index, shard, result_limit=None)
        for index, shard in enumerate(shards)
    ]
    full = graph.copy()
    full.add_all(schema.to_triples())
    return graph, schema, endpoints, saturate(full)


def test_saturation_is_infeasible(federation_setup):
    """Both roads to a global closure are blocked."""
    graph, schema, endpoints, _ = federation_setup
    # Road 1: dump every endpoint. Refused.
    for endpoint in endpoints:
        with pytest.raises(ExportForbidden):
            endpoint.export()

    # Road 2: crawl through the query interface under a result limit.
    limited = [
        Endpoint(e.name + "-limited", Graph(), result_limit=50)
        for e in endpoints
    ]
    # Rebuild limited endpoints over the same shards.
    shards = _shard(graph, parts=4)
    limited = [
        Endpoint("l%d" % index, shard, result_limit=50)
        for index, shard in enumerate(shards)
    ]
    x, p, o = Variable("x"), Variable("p"), Variable("o")
    crawl = ConjunctiveQuery([x, p, o], [TriplePattern(x, p, o)])
    harvested = 0
    truncated_endpoints = 0
    for endpoint in limited:
        result = endpoint.evaluate(crawl)
        harvested += len(result)
        truncated_endpoints += int(result.truncated)
    print(
        "\nE11: crawling under limit-50 harvested %d of %d triples "
        "(%d/%d endpoints truncated) — any closure built on this is "
        "incomplete" % (harvested, len(graph), truncated_endpoints, len(limited))
    )
    assert truncated_endpoints == len(limited)
    assert harvested < len(graph)


def test_ref_is_complete_over_federation(federation_setup):
    graph, schema, endpoints, saturated = federation_setup
    federation = FederatedAnswerer(endpoints, schema)
    rows = []
    for name in ("Q1", "Q5", "Q6", "Q13"):
        query = lubm_queries()[name]
        federation.reset_counters()
        answer = federation.answer(query)
        expected = evaluate_cq(saturated, query)
        assert answer.rows == expected, name
        assert not answer.truncated
        rows.append(
            [name, answer.cardinality, answer.requests, answer.rows_transferred]
        )
    print()
    print(
        format_table(
            ["query", "answers", "requests", "rows transferred"],
            rows,
            title="E11: federated Ref (complete, per-query cost only)",
        )
    )


def test_cross_source_entailment(federation_setup):
    """An implicit fact whose premises live on different sources —
    the paper's 'one fact in one endpoint, a constraint in another'."""
    graph, schema, endpoints, saturated = federation_setup
    federation = FederatedAnswerer(endpoints, schema)
    # Q13 (degreeFrom) entails through the subproperty constraint held
    # by the client while the degree triples are scattered over shards.
    query = lubm_queries()["Q13"]
    answer = federation.answer(query)
    assert answer.rows == evaluate_cq(saturated, query)
    assert answer.cardinality > 0


def test_transfer_economics(federation_setup):
    """Ref's rows-transferred per query is a fraction of the dataset a
    saturation attempt must move in full."""
    graph, schema, endpoints, _ = federation_setup
    federation = FederatedAnswerer(endpoints, schema)
    federation.reset_counters()
    query = lubm_queries()["Q1"]
    answer = federation.answer(query)
    fraction = answer.rows_transferred / len(graph)
    print(
        "\nE11: Q1 moved %d rows (%.1f%% of the %d-triple federation); "
        "saturation needs 100%% of it, continuously"
        % (answer.rows_transferred, fraction * 100, len(graph))
    )
    assert fraction < 0.5


def test_benchmark_federated_query(benchmark, federation_setup):
    graph, schema, endpoints, _ = federation_setup
    federation = FederatedAnswerer(endpoints, schema)
    query = lubm_queries()["Q1"]
    answer = benchmark.pedantic(
        lambda: federation.answer(query), rounds=3, iterations=1
    )
    assert answer.cardinality > 0
