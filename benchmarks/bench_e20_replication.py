"""E20 — replicated serving: availability and staleness under a kill/partition schedule.

The robustness claim: a WAL-shipping cluster behind the replica-aware
front door *serves through* a primary crash — reads keep flowing to
bounded-staleness followers while the failover coordinator elects and
promotes the most-caught-up follower, and writes resume against the
new primary after one lease — whereas a single-node deployment loses
every read and write until the node is restarted and recovered.

One deterministic schedule, run against both topologies with the same
seeds, the same fake clock, and the same per-round operation mix
(writes of noise triples that no query matches + one catalog read per
tenant):

* a **warm** prefix loads the dataset and lets the followers catch up;
* at ``kill_round`` the primary (or the single node) crashes;
* at ``partition_round`` one follower is cut off (replicated only —
  it must stop serving bounded reads once its lag exceeds the bound);
* at ``heal_round`` everything is mended: the dead node restarts and
  recovers, partitions lift, and divergent followers reseed.

Availability = successful operations / attempted operations (reads
and writes attempted every round in both runs).  The assertions
written into ``BENCH_E20.json`` and enforced here and in CI:

1. availability(replicated) strictly exceeds availability(single);
2. every completed read — fresh or flagged stale — equals the fixed
   ground truth (the noise writes match no query, so staleness may
   delay nothing observable; correctness must be exact);
3. every read served by a lagging follower is flagged with its lag,
   and while a primary is alive the lag respects the tenant's bound;
4. after heal the cluster converges: every live follower is
   byte-identical to the primary (checkpoint-encoding fingerprints).

Runs two ways: under pytest with the rest of benchmarks/, and as a CI
smoke script (``python benchmarks/bench_e20_replication.py --quick``).
"""

from __future__ import annotations

import argparse
import os
import shutil
import sys
import tempfile
import time
from typing import Dict, List, Optional, Sequence

_SRC = os.path.abspath(
    os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir, "src")
)
if os.path.isdir(_SRC) and _SRC not in sys.path:
    sys.path.insert(0, _SRC)

_REPO_ROOT = os.path.dirname(_SRC)

from repro.bench import format_table, write_json_report
from repro.query import parse_query
from repro.rdf import Graph, Namespace, RDF_TYPE, RDFS_SUBCLASSOF, Triple
from repro.replication import PrimaryFenced, ReplicaRouter, ReplicationCluster
from repro.resilience.clock import FakeClock
from repro.service import DONE, QueryRequest, QueryService, TenantConfig

#: The CI chaos-matrix seed convention (same as the resilience tests).
CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "7"))

EX = Namespace("http://example.org/e20/")
NOISE = Namespace("http://example.org/e20-noise/")

STUDENT_QUERY = "SELECT ?x WHERE { ?x rdf:type <http://example.org/e20/Student> }"

#: Tenant staleness bounds in LSNs (both opt in to replica reads).
TENANTS = (("gold", 2, 4), ("bronze", 1, 4))

#: Link fault rates for the replicated run — the catch-up path must
#: work under loss, reordering, duplication, and torn frames.
LINK_FAULTS = {
    "drop_rate": 0.10,
    "duplicate_rate": 0.05,
    "delay_rate": 0.05,
    "delay_rounds": 2,
    "tear_rate": 0.05,
}


def build_dataset(students: int = 24) -> Graph:
    """A small subclass hierarchy: half the individuals are typed by a
    subclass, so reformulation (not raw matching) produces the fixed
    ground truth."""
    graph = Graph()
    graph.add(Triple(EX.Grad, RDFS_SUBCLASSOF, EX.Student))
    for index in range(students):
        klass = EX.Grad if index % 2 else EX.Student
        graph.add(Triple(EX["s%d" % index], RDF_TYPE, klass))
    return graph


def ground_truth(students: int = 24) -> List[tuple]:
    """The fixed answer set, in the answerer's row shape (1-tuples)."""
    return sorted((EX["s%d" % index],) for index in range(students))


class Schedule:
    """The shared chaos schedule, in service rounds."""

    def __init__(self, rounds: int, kill_round: int, partition_round: int,
                 heal_round: int):
        if not kill_round < partition_round < heal_round < rounds:
            raise ValueError("schedule must order kill < partition < heal "
                             "< rounds")
        self.rounds = rounds
        self.kill_round = kill_round
        self.partition_round = partition_round
        self.heal_round = heal_round

    def as_dict(self) -> Dict[str, int]:
        return {
            "rounds": self.rounds,
            "kill_round": self.kill_round,
            "partition_round": self.partition_round,
            "heal_round": self.heal_round,
        }


def run_replicated(schedule: Schedule, *, students: int = 24,
                   seed: int = CHAOS_SEED, engine: str = "builtin") -> Dict:
    """The replicated topology: three nodes, faulty links, the service
    reading through :class:`ReplicaRouter` bounded-staleness routing."""
    graph = build_dataset(students)
    truth = ground_truth(students)
    query = parse_query(STUDENT_QUERY)
    directory = tempfile.mkdtemp(prefix="repro-e20-")
    wall_start = time.perf_counter()
    cluster = ReplicationCluster(
        directory, ("n1", "n2", "n3"), seed=seed, link_faults=LINK_FAULTS,
        lease_seconds=3.0,
    )
    try:
        cluster.primary_node.load(graph)
        cluster.pump_until_converged()
        router = ReplicaRouter(cluster)
        service = QueryService(
            graph,
            tenants=[TenantConfig(name, weight=weight, replica_max_lag=bound)
                     for name, weight, bound in TENANTS],
            clock=FakeClock(auto_advance=0.001),
            engine=engine,
            replicas=router,
        )
        reads = writes = read_failures = write_failures = 0
        stale_reads = 0
        bound_violations = 0
        wrong_answers = 0
        max_lag_seen = 0
        tickets = []
        for round_index in range(schedule.rounds):
            if round_index == schedule.kill_round:
                cluster.kill_primary()
            if round_index == schedule.partition_round:
                cluster.partition(sorted(
                    node.name for node in cluster.followers())[0])
            if round_index == schedule.heal_round:
                cluster.heal()
            writes += 1
            try:
                service.insert(Triple(NOISE["w%d" % round_index], RDF_TYPE,
                                      NOISE.Write))
            except PrimaryFenced:
                write_failures += 1
            round_tickets = []
            for name, _weight, _bound in TENANTS:
                reads += 1
                round_tickets.append(service.submit(
                    QueryRequest(name, query)))
            primary_alive_at_serve = cluster.primary_node.alive
            service.step()
            service.drain()
            for ticket in round_tickets:
                if ticket.status != DONE:
                    read_failures += 1
                    continue
                if sorted(ticket.answer) != truth:
                    wrong_answers += 1
                replica = ticket.report.details.get("replica")
                if replica and replica["lag"] > 0:
                    stale_reads += 1
                    max_lag_seen = max(max_lag_seen, replica["lag"])
                    bound = next(b for n, _w, b in TENANTS
                                 if n == ticket.request.tenant)
                    if primary_alive_at_serve and replica["lag"] > bound:
                        bound_violations += 1
            tickets.extend(round_tickets)
        converge_rounds = cluster.pump_until_converged()
        problems = cluster.verify_consistency()
        attempted = reads + writes
        failures = read_failures + write_failures
        return {
            "topology": "replicated",
            "attempted": attempted,
            "reads": reads,
            "writes": writes,
            "read_failures": read_failures,
            "write_failures": write_failures,
            "availability": (attempted - failures) / attempted,
            "stale_reads": stale_reads,
            "max_lag_seen": max_lag_seen,
            "bound_violations": bound_violations,
            "wrong_answers": wrong_answers,
            "final_epoch": cluster.coordinator.epoch,
            "elections": cluster.coordinator.elections,
            "reseeds": len(cluster.reseed_log),
            "divergences": cluster.divergences,
            "converge_rounds": converge_rounds,
            "consistency_problems": problems,
            "router": router.status(),
            "wall_seconds": time.perf_counter() - wall_start,
        }
    finally:
        cluster.close()
        shutil.rmtree(directory, ignore_errors=True)


def run_single(schedule: Schedule, *, students: int = 24,
               seed: int = CHAOS_SEED, engine: str = "builtin") -> Dict:
    """The baseline: one durable node, no replicas.  While it is down
    every read and write fails; at heal it restarts and recovers."""
    from repro.replication.node import ReplicaNode

    graph = build_dataset(students)
    truth = ground_truth(students)
    query = parse_query(STUDENT_QUERY)
    directory = tempfile.mkdtemp(prefix="repro-e20-solo-")
    wall_start = time.perf_counter()
    node = ReplicaNode("solo", os.path.join(directory, "solo"))
    node.promote(1)
    try:
        node.load(graph)
        reads = writes = read_failures = write_failures = 0
        wrong_answers = 0
        for round_index in range(schedule.rounds):
            if round_index == schedule.kill_round:
                node.kill()
            if round_index == schedule.heal_round:
                node.restart()
                node.promote(1)
            writes += 1
            try:
                node.insert(Triple(NOISE["w%d" % round_index], RDF_TYPE,
                                   NOISE.Write))
            except PrimaryFenced:
                write_failures += 1
            for _name, _weight, _bound in TENANTS:
                reads += 1
                if not node.alive:
                    read_failures += 1
                    continue
                result = node.reader(engine).answer(query)
                if sorted(result.answer) != truth:
                    wrong_answers += 1
        attempted = reads + writes
        failures = read_failures + write_failures
        return {
            "topology": "single",
            "attempted": attempted,
            "reads": reads,
            "writes": writes,
            "read_failures": read_failures,
            "write_failures": write_failures,
            "availability": (attempted - failures) / attempted,
            "stale_reads": 0,
            "max_lag_seen": 0,
            "bound_violations": 0,
            "wrong_answers": wrong_answers,
            "wall_seconds": time.perf_counter() - wall_start,
        }
    finally:
        if node.alive:
            node.durable.close()
        shutil.rmtree(directory, ignore_errors=True)


def run_comparison(schedule: Schedule, *, students: int = 24,
                   seed: int = CHAOS_SEED,
                   engine: str = "builtin") -> Dict[str, Dict]:
    return {
        "replicated": run_replicated(schedule, students=students, seed=seed,
                                     engine=engine),
        "single": run_single(schedule, students=students, seed=seed,
                             engine=engine),
    }


def emit_report(results: Dict[str, Dict], schedule: Schedule) -> str:
    rows = [
        [
            payload["topology"],
            payload["attempted"],
            payload["read_failures"],
            payload["write_failures"],
            "%.3f" % payload["availability"],
            payload["stale_reads"],
            payload["max_lag_seen"],
            payload.get("final_epoch", "-"),
            payload.get("reseeds", "-"),
        ]
        for payload in results.values()
    ]
    return format_table(
        ["topology", "ops", "rfail", "wfail", "availability", "stale",
         "max lag", "epoch", "reseeds"],
        rows,
        title="E20: replicated vs single-node serving under kill at r%d, "
              "partition at r%d, heal at r%d (seed %d)"
              % (schedule.kill_round, schedule.partition_round,
                 schedule.heal_round, CHAOS_SEED),
    )


def check_results(results: Dict[str, Dict]) -> List[str]:
    """The acceptance criteria as a list of failure messages."""
    replicated = results["replicated"]
    single = results["single"]
    problems = []
    if not replicated["availability"] > single["availability"]:
        problems.append(
            "replicated availability (%.3f) does not strictly exceed "
            "single-node (%.3f)"
            % (replicated["availability"], single["availability"]))
    for payload in results.values():
        if payload["wrong_answers"]:
            problems.append(
                "%s: %d answer(s) diverged from ground truth"
                % (payload["topology"], payload["wrong_answers"]))
    if replicated["bound_violations"]:
        problems.append(
            "%d replica read(s) exceeded the tenant staleness bound "
            "while a primary was alive" % replicated["bound_violations"])
    if replicated["consistency_problems"]:
        problems.append(
            "cluster did not converge after heal: %s"
            % "; ".join(replicated["consistency_problems"]))
    if replicated["final_epoch"] < 2:
        problems.append("the kill never caused a failover (epoch still %d)"
                        % replicated["final_epoch"])
    if replicated["read_failures"]:
        problems.append(
            "%d replicated read(s) failed — follower routing should have "
            "covered the crash window" % replicated["read_failures"])
    return problems


# ---------------------------------------------------------------------------
# pytest entry points (collected with the rest of benchmarks/)


def _default_schedule(quick: bool = False) -> Schedule:
    if quick:
        return Schedule(rounds=20, kill_round=5, partition_round=10,
                        heal_round=14)
    return Schedule(rounds=36, kill_round=8, partition_round=18,
                    heal_round=26)


def test_replication_strictly_improves_availability():
    results = run_comparison(_default_schedule(quick=True))
    assert not check_results(results), check_results(results)


def test_replicated_run_is_deterministic():
    schedule = _default_schedule(quick=True)
    first = run_replicated(schedule)
    second = run_replicated(schedule)
    for key in ("availability", "stale_reads", "read_failures",
                "write_failures", "final_epoch", "reseeds"):
        assert first[key] == second[key]


# ---------------------------------------------------------------------------
# script entry point (CI smoke: python benchmarks/bench_e20_replication.py --quick)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="short schedule; assert the availability, ground-truth, "
             "staleness-bound and convergence criteria",
    )
    parser.add_argument("--students", type=int, default=24)
    parser.add_argument("--rounds", type=int, default=None)
    parser.add_argument(
        "--engine", default="builtin",
        choices=["builtin", "materialized", "pipelined"],
    )
    parser.add_argument(
        "--output",
        default=os.path.join(_REPO_ROOT, "BENCH_E20.json"),
        help="where to write the JSON artifact",
    )
    args = parser.parse_args(argv)
    schedule = _default_schedule(quick=args.quick)
    if args.rounds:
        schedule = Schedule(rounds=args.rounds,
                            kill_round=args.rounds // 4,
                            partition_round=args.rounds // 2,
                            heal_round=(args.rounds * 3) // 4)
    results = run_comparison(schedule, students=args.students,
                             engine=args.engine)
    print(emit_report(results, schedule))
    problems = check_results(results)
    payload = {
        "experiment": "E20",
        "claim": "WAL-shipping replication with failover serves reads "
                 "through a primary crash within bounded staleness and "
                 "strictly beats single-node availability; after heal "
                 "every follower is byte-identical to the primary",
        "chaos_seed": CHAOS_SEED,
        "engine": args.engine,
        "schedule": schedule.as_dict(),
        "link_faults": LINK_FAULTS,
        "scenarios": results,
        "assertions": {
            "availability_strictly_improved": (
                results["replicated"]["availability"]
                > results["single"]["availability"]
            ),
            "answers_exact": all(
                r["wrong_answers"] == 0 for r in results.values()
            ),
            "staleness_bound_respected": (
                results["replicated"]["bound_violations"] == 0
            ),
            "converged_after_heal": (
                not results["replicated"]["consistency_problems"]
            ),
            "problems": problems,
        },
    }
    written = write_json_report(args.output, payload)
    print("\nwrote %s" % written)
    for problem in problems:
        print("FAIL: %s" % problem, file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
