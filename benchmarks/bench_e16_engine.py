"""E16 — pipelined vs materialized execution on Example 1's covers.

The engine refactor's claim: both physical engines interpret the same
plan IR and return identical answers, but the pipelined executor
streams fixed-size batches through its operators, so its memory
high-water mark (peak concurrently *buffered* rows: hash build tables,
sort buffers, distinct sets) stays far below the materialized
interpreter, which by construction holds every operator's full output.
Example 1's cover spectrum — the per-atom SCQ, the paper's best cover,
and GCov's choice — spans the intermediate-size range where that gap
matters (the paper's 33M-row SCQ vs 2.5k-row grouped cover).

Measured here, per cover and per engine: wall time (best of N) and the
engine's peak rows held.  Runs two ways: under pytest alongside the
other benchmarks, and as a script
(``python benchmarks/bench_e16_engine.py --quick``) for CI smoke.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional, Sequence, Tuple

_SRC = os.path.abspath(
    os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir, "src")
)
if os.path.isdir(_SRC) and _SRC not in sys.path:
    sys.path.insert(0, _SRC)

_REPO_ROOT = os.path.dirname(_SRC)

from repro import QueryAnswerer, Strategy
from repro.bench import format_table, write_json_report
from repro.datasets import example1_best_cover, example1_query, generate_lubm
from repro.optimizer import gcov
from repro.query import Cover

ROUNDS = 3


def cover_spectrum(answerer: QueryAnswerer, query) -> List[Tuple[str, Cover]]:
    """Example 1's covers, worst to best: the SCQ's per-atom cover, the
    cost-based GCov choice, and the paper's hand-picked best."""
    search = gcov(query, answerer.schema, answerer.store, answerer.backend)
    return [
        ("per-atom (SCQ)", Cover.per_atom(query)),
        ("gcov", search.cover),
        ("paper best", example1_best_cover(query)),
    ]


def _best_report(answerer, query, cover, rounds=ROUNDS):
    reports = [
        answerer.answer(query, Strategy.REF_JUCQ, cover=cover)
        for _ in range(rounds)
    ]
    return min(reports, key=lambda report: report.elapsed_seconds)


def run_engine_comparison(
    graph, query, rounds: int = ROUNDS
) -> List[Tuple[str, object, object]]:
    """(cover label, materialized report, pipelined report) per cover.

    Both answerers share the data; the reports carry wall time and the
    per-engine peak-rows metric (``max_intermediate_rows`` for the
    interpreter, ``peak_buffered_rows`` for the pipeline).
    """
    materialized = QueryAnswerer(graph, engine="materialized")
    pipelined = QueryAnswerer(graph, engine="pipelined")
    results = []
    for label, cover in cover_spectrum(materialized, query):
        rm = _best_report(materialized, query, cover, rounds)
        rp = _best_report(pipelined, query, cover, rounds)
        assert rp.answer == rm.answer, label
        results.append((label, rm, rp))
    return results


def emit_report(graph) -> str:
    query = example1_query()
    rows = []
    for label, rm, rp in run_engine_comparison(graph, query):
        materialized_peak = rm.execution.max_intermediate_rows()
        pipelined_peak = rp.execution.peak_buffered_rows
        rows.append(
            [
                label,
                "%.1f" % (rm.elapsed_seconds * 1e3),
                "%.1f" % (rp.elapsed_seconds * 1e3),
                materialized_peak,
                pipelined_peak,
                "%.1fx" % (materialized_peak / max(pipelined_peak, 1)),
            ]
        )
    return format_table(
        ["cover", "materialized ms", "pipelined ms",
         "materialized peak rows", "pipelined peak rows", "peak ratio"],
        rows,
        title="E16: engines across Example 1's cover spectrum",
    )


# ---------------------------------------------------------------------------
# pytest entry points (collected with the rest of benchmarks/)


def test_engines_agree_across_cover_spectrum(lubm_graph):
    query = example1_query()
    results = run_engine_comparison(lubm_graph, query, rounds=1)
    assert len(results) == 3
    # run_engine_comparison asserts answer equality per cover; pin the
    # engines' identities on top.
    for _label, rm, rp in results:
        assert rm.execution.engine == "materialized"
        assert rp.execution.engine == "pipelined"
        assert rp.execution.metrics is not None


def test_pipelined_buffers_less_on_scq(lubm_graph):
    """The headline: on the blowup cover the pipeline's high-water mark
    is a fraction of what the interpreter materializes."""
    query = example1_query()
    materialized = QueryAnswerer(lubm_graph, engine="materialized")
    pipelined = QueryAnswerer(lubm_graph, engine="pipelined")
    cover = Cover.per_atom(query)
    rm = _best_report(materialized, query, cover, rounds=1)
    rp = _best_report(pipelined, query, cover, rounds=1)
    assert rp.answer == rm.answer
    assert rp.execution.peak_buffered_rows < rm.execution.max_intermediate_rows()


def test_benchmark_materialized_scq(benchmark, lubm_graph):
    answerer = QueryAnswerer(lubm_graph, engine="materialized")
    query = example1_query()
    cover = Cover.per_atom(query)
    report = benchmark.pedantic(
        lambda: answerer.answer(query, Strategy.REF_JUCQ, cover=cover),
        rounds=3,
        iterations=1,
    )
    assert report.cardinality > 0


def test_benchmark_pipelined_scq(benchmark, lubm_graph):
    answerer = QueryAnswerer(lubm_graph, engine="pipelined")
    query = example1_query()
    cover = Cover.per_atom(query)
    report = benchmark.pedantic(
        lambda: answerer.answer(query, Strategy.REF_JUCQ, cover=cover),
        rounds=3,
        iterations=1,
    )
    assert report.cardinality > 0


def test_report_emits(lubm_graph):
    report = emit_report(lubm_graph)
    assert "pipelined peak rows" in report
    print("\n" + report)


# ---------------------------------------------------------------------------
# script entry point (CI smoke: python benchmarks/bench_e16_engine.py --quick)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="one-university instance, assert the peak-rows win on the "
             "SCQ cover, exit non-zero on miss",
    )
    parser.add_argument("--universities", type=int, default=2)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--output",
        default=os.path.join(_REPO_ROOT, "BENCH_E16.json"),
        help="where to write the JSON artifact",
    )
    args = parser.parse_args(argv)
    universities = 1 if args.quick else args.universities
    graph = generate_lubm(universities=universities, seed=args.seed)
    print(emit_report(graph))
    query = example1_query()
    results = run_engine_comparison(graph, query, rounds=1)
    payload = {
        "experiment": "E16",
        "claim": "the pipelined engine's buffered-rows high-water mark "
                 "stays below the materialized interpreter's peak",
        "universities": universities,
        "seed": args.seed,
        "covers": {
            label: {
                "materialized_seconds": rm.elapsed_seconds,
                "pipelined_seconds": rp.elapsed_seconds,
                "materialized_peak_rows": rm.execution.max_intermediate_rows(),
                "pipelined_peak_rows": rp.execution.peak_buffered_rows,
                "rows": rm.cardinality,
            }
            for label, rm, rp in results
        },
    }
    written = write_json_report(args.output, payload)
    print("\nwrote %s" % written)
    label, rm, rp = results[0]  # the per-atom (SCQ) cover
    materialized_peak = rm.execution.max_intermediate_rows()
    pipelined_peak = rp.execution.peak_buffered_rows
    if pipelined_peak >= materialized_peak:
        print(
            "FAIL: pipelined peak %d rows >= materialized peak %d on %s"
            % (pipelined_peak, materialized_peak, label),
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
