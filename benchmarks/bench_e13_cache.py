"""E13 — amortizing reformulation: warm vs cold answering.

The cache subsystem's claim: for repeated-query workloads, serving the
reformulation (and, absent updates, the answer) from the
:class:`~repro.cache.QueryCache` removes the cost the paper shows
dominating query answering — the UCQ construction, the SCQ fragment
reformulations, the GCov cover search.  Measured here on the LUBM
workload:

* cold vs warm answering per strategy (warm-cache REF_GCOV must be
  ≥ 5× faster than cold on repeated queries — the acceptance bar);
* the hit/miss/eviction counters behind those timings;
* the update penalty: one insert retires answers but not
  reformulations, so the post-update run pays evaluation only.

Runs two ways: under pytest alongside the other benchmarks, and as a
script (``python benchmarks/bench_e13_cache.py --quick``) for CI smoke.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Dict, List, Optional, Sequence, Tuple

_SRC = os.path.abspath(
    os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir, "src")
)
if os.path.isdir(_SRC) and _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro import QueryAnswerer, Strategy
from repro.bench import format_table
from repro.cache import QueryCache
from repro.datasets import generate_lubm, lubm_queries
from repro.rdf import RDF_TYPE, Triple
from repro.rdf.namespaces import Namespace

#: The repeated-query workload: every complete strategy's LUBM subset
#: that answers in interactive time on the bench instance.
WORKLOAD = ("Q1", "Q3", "Q5", "Q6", "Q13", "Q14")
STRATEGIES = (
    Strategy.REF_GCOV,
    Strategy.REF_UCQ,
    Strategy.REF_SCQ,
    Strategy.SAT,
)


def _answer_ms(answerer: QueryAnswerer, query, strategy: Strategy) -> float:
    start = time.perf_counter()
    answerer.answer(query, strategy)
    return (time.perf_counter() - start) * 1e3


def run_cache_comparison(
    graph,
    strategies: Sequence[Strategy] = STRATEGIES,
    names: Sequence[str] = WORKLOAD,
    warm_rounds: int = 3,
) -> Tuple[List[List], Dict, Dict[Strategy, float]]:
    """Answer every workload query cold then warm per strategy.

    Returns (table rows, cache stats, per-strategy speedup) where the
    speedup is total-cold-ms over best-warm-total-ms.
    """
    cache = QueryCache()
    answerer = QueryAnswerer(graph, cache=cache)
    answerer.saturated_store()  # SAT timings measure evaluation, as in E3
    queries = lubm_queries()
    rows: List[List] = []
    speedups: Dict[Strategy, float] = {}
    for strategy in strategies:
        cold_total = 0.0
        warm_total = 0.0
        for name in names:
            query = queries[name]
            cold = _answer_ms(answerer, query, strategy)
            warm = min(
                _answer_ms(answerer, query, strategy)
                for _ in range(warm_rounds)
            )
            cold_total += cold
            warm_total += warm
            rows.append(
                [strategy.value, name, "%.2f" % cold, "%.3f" % warm,
                 "%.0fx" % (cold / warm if warm > 0 else float("inf"))]
            )
        speedups[strategy] = (
            cold_total / warm_total if warm_total > 0 else float("inf")
        )
    return rows, cache.stats(), speedups


def run_update_penalty(graph, names: Sequence[str] = WORKLOAD[:3]) -> List[List]:
    """Warm the cache, apply one insert, measure the re-answer cost:
    the answer tier misses (epoch bumped) while the reformulation tier
    still hits — the update pays evaluation, not reformulation."""
    cache = QueryCache()
    answerer = QueryAnswerer(graph, cache=cache)
    queries = lubm_queries()
    for name in names:
        answerer.answer(queries[name], Strategy.REF_GCOV)
        answerer.answer(queries[name], Strategy.REF_GCOV)
    EX = Namespace("http://example.org/bench-e13/")
    answerer.insert(Triple(EX.student, RDF_TYPE, EX.Freshling))
    rows = []
    for name in names:
        start = time.perf_counter()
        report = answerer.answer(queries[name], Strategy.REF_GCOV)
        elapsed = (time.perf_counter() - start) * 1e3
        entry = report.details["cache"]
        rows.append(
            [name, "%.2f" % elapsed, entry["answer"],
             entry["reformulation"] or "-"]
        )
    return rows


def emit_report(graph) -> str:
    """The E13 report: timings plus the cache counters (the acceptance
    criterion asks for hit/miss counters in the emitted report)."""
    rows, stats, speedups = run_cache_comparison(graph)
    lines = [
        format_table(
            ["strategy", "query", "cold ms", "warm ms", "speedup"],
            rows,
            title="E13: cold vs warm answering (LUBM)",
        ),
        "",
        format_table(
            ["tier", "hits", "misses", "evictions", "invalidations"],
            [
                [
                    tier,
                    stats[tier]["hits"],
                    stats[tier]["misses"],
                    stats[tier]["evictions"],
                    stats[tier]["invalidations"],
                ]
                for tier in ("reformulation", "answer")
            ],
            title="cache counters",
        ),
        "",
        format_table(
            ["query", "post-update ms", "answer tier", "reformulation tier"],
            run_update_penalty(graph),
            title="update penalty (one insert, REF_GCOV)",
        ),
        "",
        "warm REF_GCOV speedup over cold: %.0fx (bar: >= 5x)"
        % speedups[Strategy.REF_GCOV],
    ]
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# pytest entry points (collected with the rest of benchmarks/)


def test_warm_gcov_at_least_5x(lubm_graph):
    """The acceptance bar: warm-cache REF_GCOV >= 5x faster than cold."""
    _, stats, speedups = run_cache_comparison(
        lubm_graph, strategies=(Strategy.REF_GCOV,)
    )
    assert speedups[Strategy.REF_GCOV] >= 5.0, speedups
    assert stats["answer"]["hits"] > 0
    assert stats["answer"]["misses"] >= len(WORKLOAD)


def test_update_retires_answers_not_reformulations(lubm_graph):
    rows = run_update_penalty(lubm_graph)
    for _, _, answer_tier, reformulation_tier in rows:
        assert answer_tier == "miss"
        assert reformulation_tier == "hit"


def test_benchmark_warm_answering(benchmark, lubm_graph):
    cache = QueryCache()
    answerer = QueryAnswerer(lubm_graph, cache=cache)
    query = lubm_queries()["Q5"]
    answerer.answer(query, Strategy.REF_GCOV)  # warm it
    benchmark.pedantic(
        lambda: answerer.answer(query, Strategy.REF_GCOV),
        rounds=5,
        iterations=10,
    )


def test_report_emits(lubm_graph, capsys):
    report = emit_report(lubm_graph)
    assert "cache counters" in report
    assert "hits" in report
    print("\n" + report)


# ---------------------------------------------------------------------------
# script entry point (CI smoke: python benchmarks/bench_e13_cache.py --quick)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="one-university instance, assert the 5x bar, exit non-zero on miss",
    )
    parser.add_argument("--universities", type=int, default=2)
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args(argv)
    universities = 1 if args.quick else args.universities
    graph = generate_lubm(universities=universities, seed=args.seed)
    print(emit_report(graph))
    _, _, speedups = run_cache_comparison(
        graph, strategies=(Strategy.REF_GCOV,)
    )
    if speedups[Strategy.REF_GCOV] < 5.0:
        print(
            "FAIL: warm REF_GCOV only %.1fx faster than cold"
            % speedups[Strategy.REF_GCOV],
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
