"""E21 — the columnar engine against both row engines on Example 1.

The columnar engine's claim: over the same plan IR, SPO/POS/OSP
sorted-run scans plus merge joins and merge unions beat the row
engines on the reformulation blowup — the per-atom SCQ cover whose
unions multiply through the joins — while never buffering more rows
than the pipelined engine (merge operators hold only the current
equal-key groups; everything else falls back to the pipelined
engine's own algorithms).

Measured here, per cover and per engine: wall time (best of N), peak
rows held, and answer identity across all three engines.  The deep
run uses a ~10^6-triple LUBM fragment (``--universities 540``) where
the vectorized scans' constant-factor win compounds; CI smoke
(``--quick``) runs one university and asserts the ordering only.

Runs two ways: under pytest alongside the other benchmarks, and as a
script (``python benchmarks/bench_e21_columnar.py --quick``).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional, Sequence, Tuple

_SRC = os.path.abspath(
    os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir, "src")
)
if os.path.isdir(_SRC) and _SRC not in sys.path:
    sys.path.insert(0, _SRC)

_REPO_ROOT = os.path.dirname(_SRC)

from repro import QueryAnswerer, Strategy
from repro.bench import format_table, write_json_report
from repro.datasets import example1_best_cover, example1_query, generate_lubm
from repro.query import Cover

ROUNDS = 3

#: ~10^6 triples at LUBM's ~1.85k triples per university.
DEEP_UNIVERSITIES = 540


def cover_spectrum(query) -> List[Tuple[str, Cover]]:
    """Example 1's covers, worst to best: the blowup (per-atom SCQ)
    and the paper's hand-picked best."""
    return [
        ("per-atom (SCQ)", Cover.per_atom(query)),
        ("paper best", example1_best_cover(query)),
    ]


def _best_report(answerer, query, cover, rounds=ROUNDS):
    reports = [
        answerer.answer(query, Strategy.REF_JUCQ, cover=cover)
        for _ in range(rounds)
    ]
    return min(reports, key=lambda report: report.elapsed_seconds)


def _peak(report) -> int:
    if report.execution.engine == "materialized":
        return report.execution.max_intermediate_rows()
    return report.execution.peak_buffered_rows


def run_three_engine_comparison(
    graph, query, rounds: int = ROUNDS
) -> List[Tuple[str, object, object, object]]:
    """(cover label, materialized, pipelined, columnar report) per
    cover, answers asserted identical across the matrix."""
    answerers = {
        engine: QueryAnswerer(graph, engine=engine)
        for engine in ("materialized", "pipelined", "columnar")
    }
    results = []
    for label, cover in cover_spectrum(query):
        rm = _best_report(answerers["materialized"], query, cover, rounds)
        rp = _best_report(answerers["pipelined"], query, cover, rounds)
        rc = _best_report(answerers["columnar"], query, cover, rounds)
        assert rp.answer == rm.answer, label
        assert rc.answer == rm.answer, label
        results.append((label, rm, rp, rc))
    return results


def emit_report(graph) -> str:
    query = example1_query()
    rows = []
    for label, rm, rp, rc in run_three_engine_comparison(graph, query):
        rows.append(
            [
                label,
                "%.1f" % (rm.elapsed_seconds * 1e3),
                "%.1f" % (rp.elapsed_seconds * 1e3),
                "%.1f" % (rc.elapsed_seconds * 1e3),
                _peak(rm),
                _peak(rp),
                _peak(rc),
                "%.2fx" % (rm.elapsed_seconds / max(rc.elapsed_seconds, 1e-9)),
            ]
        )
    return format_table(
        ["cover", "mat ms", "pipe ms", "col ms",
         "mat peak", "pipe peak", "col peak", "col speedup"],
        rows,
        title="E21: three engines across Example 1's cover spectrum",
    )


# ---------------------------------------------------------------------------
# pytest entry points (collected with the rest of benchmarks/)


def test_three_engines_agree_across_cover_spectrum(lubm_graph):
    query = example1_query()
    results = run_three_engine_comparison(lubm_graph, query, rounds=1)
    assert len(results) == 2
    for _label, rm, rp, rc in results:
        assert rm.execution.engine == "materialized"
        assert rp.execution.engine == "pipelined"
        assert rc.execution.engine == "columnar"
        assert rc.execution.metrics is not None


def test_columnar_peak_no_worse_than_pipelined_on_scq(lubm_graph):
    """The memory half of the claim: on the blowup cover the columnar
    engine's high-water mark never exceeds the pipelined engine's."""
    query = example1_query()
    cover = Cover.per_atom(query)
    pipelined = QueryAnswerer(lubm_graph, engine="pipelined")
    columnar = QueryAnswerer(lubm_graph, engine="columnar")
    rp = _best_report(pipelined, query, cover, rounds=1)
    rc = _best_report(columnar, query, cover, rounds=1)
    assert rc.answer == rp.answer
    assert _peak(rc) <= _peak(rp)


def test_benchmark_columnar_scq(benchmark, lubm_graph):
    answerer = QueryAnswerer(lubm_graph, engine="columnar")
    query = example1_query()
    cover = Cover.per_atom(query)
    report = benchmark.pedantic(
        lambda: answerer.answer(query, Strategy.REF_JUCQ, cover=cover),
        rounds=3,
        iterations=1,
    )
    assert report.cardinality > 0


def test_report_emits(lubm_graph):
    report = emit_report(lubm_graph)
    assert "col speedup" in report
    print("\n" + report)


# ---------------------------------------------------------------------------
# script entry point (CI smoke: python benchmarks/bench_e21_columnar.py --quick)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="one-university instance, assert answer identity and the "
             "peak-rows ordering only (speedup needs scale), exit "
             "non-zero on miss",
    )
    parser.add_argument("--universities", type=int, default=DEEP_UNIVERSITIES)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--rounds", type=int, default=2,
        help="best-of-N per engine per cover; N>=2 lets the columnar "
             "engine's first round pay the one-time lazy index build "
             "so the best round measures steady-state evaluation",
    )
    parser.add_argument(
        "--output",
        default=os.path.join(_REPO_ROOT, "BENCH_E21.json"),
        help="where to write the JSON artifact",
    )
    args = parser.parse_args(argv)
    universities = 1 if args.quick else args.universities
    graph = generate_lubm(universities=universities, seed=args.seed)
    print("%d universities, %d triples" % (universities, len(graph)))
    query = example1_query()
    results = run_three_engine_comparison(graph, query, rounds=args.rounds)
    rows = [
        [
            label,
            "%.1f" % (rm.elapsed_seconds * 1e3),
            "%.1f" % (rp.elapsed_seconds * 1e3),
            "%.1f" % (rc.elapsed_seconds * 1e3),
            _peak(rm), _peak(rp), _peak(rc),
            "%.2fx" % (rm.elapsed_seconds / max(rc.elapsed_seconds, 1e-9)),
        ]
        for label, rm, rp, rc in results
    ]
    print(format_table(
        ["cover", "mat ms", "pipe ms", "col ms",
         "mat peak", "pipe peak", "col peak", "col speedup"],
        rows,
        title="E21: three engines across Example 1's cover spectrum",
    ))
    payload = {
        "experiment": "E21",
        "claim": "the columnar engine beats the materialized interpreter "
                 ">=3x on the reformulation-blowup cover at scale, with "
                 "peak buffered rows no worse than the pipelined engine",
        "universities": universities,
        "triples": len(graph),
        "seed": args.seed,
        "covers": {
            label: {
                "materialized_seconds": rm.elapsed_seconds,
                "pipelined_seconds": rp.elapsed_seconds,
                "columnar_seconds": rc.elapsed_seconds,
                "materialized_peak_rows": _peak(rm),
                "pipelined_peak_rows": _peak(rp),
                "columnar_peak_rows": _peak(rc),
                "columnar_speedup_vs_materialized":
                    rm.elapsed_seconds / max(rc.elapsed_seconds, 1e-9),
                "rows": rm.cardinality,
            }
            for label, rm, rp, rc in results
        },
    }
    written = write_json_report(args.output, payload)
    print("\nwrote %s" % written)
    label, rm, rp, rc = results[0]  # the per-atom (SCQ) blowup cover
    if _peak(rc) > _peak(rp):
        print(
            "FAIL: columnar peak %d rows > pipelined peak %d on %s"
            % (_peak(rc), _peak(rp), label),
            file=sys.stderr,
        )
        return 1
    speedup = rm.elapsed_seconds / max(rc.elapsed_seconds, 1e-9)
    if not args.quick and speedup < 3.0:
        print(
            "FAIL: columnar speedup %.2fx < 3x over materialized on %s"
            % (speedup, label),
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
