"""E2 — Example 1: SCQ vs the paper's best cover vs GCov (Section 4).

Paper's numbers (100M triples, their RDBMS): SCQ evaluates in 229 s
with 33M-row intermediate results; the cover
``{{t1,t3},{t3,t5},{t2,t4},{t4,t6}}`` takes 524 ms — 430× faster —
because grouping each open type atom with a selective degree atom
shrinks intermediates to thousands of rows.

Reproduced shape: the best cover beats SCQ in wall time, its largest
intermediate result is a fraction of SCQ's, and GCov finds a cover in
that family automatically.  Ratios are smaller at laptop scale (both
absolute sizes shrink), but the ordering and the mechanism — smaller
intermediates through grouping — are the same.
"""

from __future__ import annotations

import pytest

from repro import QueryAnswerer, Strategy
from repro.bench import format_speedup, format_table
from repro.datasets import example1_best_cover, example1_query, generate_lubm
from repro.optimizer import gcov


@pytest.fixture(scope="module")
def query():
    return example1_query()


@pytest.fixture(scope="module")
def large_answerer():
    """A 20-university instance (~37k triples): large enough for the
    wall-time ordering of the paper to emerge, not just the
    intermediate-size ordering (Python constant factors mute the gap
    on tiny data; it widens monotonically with scale — see the sweep
    test)."""
    return QueryAnswerer(generate_lubm(universities=20, seed=1))


def test_benchmark_scq(benchmark, lubm_answerer, query):
    report = benchmark.pedantic(
        lambda: lubm_answerer.answer(query, Strategy.REF_SCQ),
        rounds=3,
        iterations=1,
    )
    assert report.cardinality > 0


def test_benchmark_best_cover(benchmark, lubm_answerer, query):
    cover = example1_best_cover(query)
    report = benchmark.pedantic(
        lambda: lubm_answerer.answer(query, Strategy.REF_JUCQ, cover=cover),
        rounds=3,
        iterations=1,
    )
    assert report.cardinality > 0


def test_benchmark_gcov_total(benchmark, lubm_answerer, query):
    """GCov including the search itself (the price of cost-based Ref)."""
    report = benchmark.pedantic(
        lambda: lubm_answerer.answer(query, Strategy.REF_GCOV),
        rounds=2,
        iterations=1,
    )
    assert report.cardinality > 0


def _best_of(answer_fn, rounds=3):
    """Best-of-N runs: wall-clock comparisons need noise control."""
    reports = [answer_fn() for _ in range(rounds)]
    return min(reports, key=lambda report: report.elapsed_seconds)


def test_intermediate_results_and_speedup(large_answerer, query):
    """The paper's mechanism: grouping shrinks intermediate results,
    and at sufficient scale the wall time follows."""
    scq = _best_of(lambda: large_answerer.answer(query, Strategy.REF_SCQ))
    best = _best_of(
        lambda: large_answerer.answer(
            query, Strategy.REF_JUCQ, cover=example1_best_cover(query)
        )
    )
    sat = large_answerer.answer(query, Strategy.SAT)
    assert scq.answer == best.answer == sat.answer

    rows = [
        [
            "SCQ (per-atom cover)",
            "%.1f" % (scq.elapsed_seconds * 1e3),
            scq.execution.max_intermediate_rows(),
        ],
        [
            "best cover {t1,t3},{t3,t5},{t2,t4},{t4,t6}",
            "%.1f" % (best.elapsed_seconds * 1e3),
            best.execution.max_intermediate_rows(),
        ],
    ]
    print()
    print(
        format_table(
            ["strategy", "time (ms)", "max intermediate rows"],
            rows,
            title="E2: Example 1 (paper: 229 s vs 524 ms, 33.3M vs 2.5k rows)",
        )
    )
    print(
        "speedup best-cover vs SCQ: %s (paper: 430x at 100M triples)"
        % format_speedup(scq.elapsed_seconds, best.elapsed_seconds)
    )
    # Deterministic shape assertions: the grouped cover's largest
    # intermediate is a fraction of the SCQ's (the paper's mechanism),
    # and the cost model agrees on the ordering (what GCov relies on).
    assert (
        best.execution.max_intermediate_rows()
        < scq.execution.max_intermediate_rows() / 2
    )
    from repro.optimizer import CoverCostEstimator
    from repro.query import Cover

    estimator = CoverCostEstimator(
        query, large_answerer.schema, large_answerer.store,
        large_answerer.backend,
    )
    assert estimator.cost(example1_best_cover(query)) < estimator.cost(
        Cover.per_atom(query)
    )
    # Wall time is load-sensitive on shared machines: require only that
    # the grouped cover is not materially slower (the measured times go
    # into EXPERIMENTS.md; on a quiet machine it wins outright and the
    # margin grows with scale — see the sweep test).
    assert best.elapsed_seconds < scq.elapsed_seconds * 1.5


def test_scale_sweep_crossover(query):
    """Best-cover advantage grows with data size: the intermediate-size
    gap is a stable >2x factor at every scale, and the wall-time ratio
    trends in the cover's favour as data grows."""
    rows = []
    time_ratios = []
    for universities in (2, 10, 20):
        answerer = QueryAnswerer(generate_lubm(universities=universities, seed=1))
        scq = _best_of(lambda: answerer.answer(query, Strategy.REF_SCQ))
        best = _best_of(
            lambda: answerer.answer(
                query, Strategy.REF_JUCQ, cover=example1_best_cover(query)
            )
        )
        time_ratios.append(scq.elapsed_seconds / best.elapsed_seconds)
        intermediate_ratio = scq.execution.max_intermediate_rows() / max(
            best.execution.max_intermediate_rows(), 1
        )
        assert intermediate_ratio > 2.0
        rows.append(
            [
                universities,
                len(answerer.graph),
                "%.0f" % (scq.elapsed_seconds * 1e3),
                "%.0f" % (best.elapsed_seconds * 1e3),
                "%.2fx" % time_ratios[-1],
                "%.1fx" % intermediate_ratio,
            ]
        )
    print()
    print(
        format_table(
            ["universities", "triples", "SCQ ms", "best ms",
             "time ratio", "intermediate ratio"],
            rows,
            title="E2: scale sweep",
        )
    )


def test_gcov_selects_grouped_cover(lubm_answerer, query):
    """GCov's chosen cover groups each type atom with a degree atom —
    rediscovering the paper's insight from the cost model alone."""
    search = gcov(
        query,
        lubm_answerer.schema,
        lubm_answerer.store,
        lubm_answerer.backend,
    )
    print("\nE2: GCov cover = %r, estimated cost %.0f, explored %d covers"
          % (search.cover, search.cost, search.explored_count))
    for type_atom_index in (0, 1):
        for fragment in search.cover.fragments:
            if type_atom_index in fragment:
                assert len(fragment) > 1
