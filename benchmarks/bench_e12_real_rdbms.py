"""E12 — validation on a genuine RDBMS (SQLite).

The paper's experiments run reformulations as SQL on real engines.
This experiment does the same with the one real engine available in a
Python standard library: the reformulated queries are translated to
SQL over the dictionary-encoded triple table and executed by SQLite.

* every strategy's SQL returns exactly the built-in executor's answers
  (the substitution argument of DESIGN.md §2, closed empirically);
* SQLite's own parser limit (500 compound-SELECT terms) rejects large
  UCQ reformulations — the paper's "could not even be parsed" on a
  real parser, with the threshold an order of magnitude *stricter*
  than our simulated profiles;
* timing: the same strategy ordering (grouped covers beat the SCQ's
  big intermediate results) holds on the real engine.
"""

from __future__ import annotations

import sqlite3
import time

import pytest

from repro.bench import format_table
from repro.datasets import example1_best_cover, example1_query, lubm_queries
from repro.reformulation import jucq_for_cover, reformulate, scq_reformulation, ucq_size
from repro.storage import SQLITE_COMPOUND_SELECT_LIMIT, SqliteBackend


@pytest.fixture(scope="module")
def sqlite_backend(lubm_answerer):
    backend = SqliteBackend(lubm_answerer.store)
    yield backend
    backend.close()


def test_sqlite_agrees_on_workload(lubm_answerer, sqlite_backend):
    schema = lubm_answerer.schema
    rows = []
    for name in ("Q1", "Q4", "Q5", "Q6", "Q13", "Q14"):
        query = lubm_queries()[name]
        union = reformulate(query, schema)
        start = time.perf_counter()
        sqlite_answer = sqlite_backend.run(union)
        sqlite_ms = (time.perf_counter() - start) * 1e3
        start = time.perf_counter()
        our_answer = lubm_answerer.executor.run(union).answer()
        our_ms = (time.perf_counter() - start) * 1e3
        assert sqlite_answer == our_answer, name
        rows.append([name, len(sqlite_answer), "%.1f" % sqlite_ms, "%.1f" % our_ms])
    print()
    print(
        format_table(
            ["query", "rows (equal)", "SQLite ms", "built-in ms"],
            rows,
            title="E12: Ref-UCQ on a real RDBMS vs the built-in executor",
        )
    )


def test_sqlite_agrees_on_jucq(lubm_answerer, sqlite_backend):
    schema = lubm_answerer.schema
    query = example1_query()
    for jucq in (
        scq_reformulation(query, schema),
        jucq_for_cover(example1_best_cover(query), schema),
    ):
        assert sqlite_backend.run(jucq) == (
            lubm_answerer.executor.run(jucq).answer()
        )


def test_real_parser_rejects_example1(lubm_answerer, sqlite_backend):
    """Example 1's UCQ exceeds SQLite's 500-term compound limit by
    ~370×: the real engine cannot even *receive* it.  We verify the
    threshold with a 501-term probe rather than materializing the
    186,624-CQ union."""
    schema = lubm_answerer.schema
    query = example1_query()
    size = ucq_size(query, schema)
    print(
        "\nE12: Example 1's UCQ = %d disjuncts vs SQLite's compound-SELECT "
        "limit of %d" % (size, SQLITE_COMPOUND_SELECT_LIMIT)
    )
    assert size > SQLITE_COMPOUND_SELECT_LIMIT

    from repro.query import ConjunctiveQuery, TriplePattern, UnionQuery, Variable
    from repro.datasets.lubm import UB
    from repro.rdf import RDF_TYPE

    x = Variable("x")
    probe = UnionQuery(
        [
            ConjunctiveQuery([x], [TriplePattern(x, RDF_TYPE, UB.Course)])
            for _ in range(SQLITE_COMPOUND_SELECT_LIMIT + 1)
        ]
    )
    with pytest.raises(sqlite3.OperationalError):
        sqlite_backend.run(probe)


def test_strategy_ordering_on_real_engine(lubm_answerer, sqlite_backend):
    """SCQ vs the grouped cover, timed on SQLite itself: the grouped
    cover must win outright on the real engine (it does, by ~3x even
    at the 2-university scale)."""
    schema = lubm_answerer.schema
    query = example1_query()
    scq = scq_reformulation(query, schema)
    best = jucq_for_cover(example1_best_cover(query), schema)

    def run_timed(jucq):
        best_seconds = float("inf")
        answer = None
        for _ in range(3):
            start = time.perf_counter()
            answer = sqlite_backend.run(jucq)
            best_seconds = min(best_seconds, time.perf_counter() - start)
        return answer, best_seconds * 1e3

    scq_answer, scq_ms = run_timed(scq)
    best_answer, best_ms = run_timed(best)
    assert scq_answer == best_answer
    print(
        "\nE12: on SQLite — SCQ %.1f ms vs grouped cover %.1f ms "
        "(identical %d answers)" % (scq_ms, best_ms, len(best_answer))
    )
    assert best_ms < scq_ms


def test_scale_sweep_on_real_engine():
    """The paper's headline shape, on a genuine RDBMS: the grouped
    cover's advantage over the SCQ *grows with data size* (paper:
    430x at 100M triples; measured here 3x → 6x over 4k → 74k
    triples).  C-speed execution removes the per-plan interpreter
    overhead that mutes the gap in the pure-Python executor (E2)."""
    from repro.datasets import generate_lubm
    from repro.storage import TripleStore

    query = example1_query()
    rows = []
    speedups = []
    for universities in (2, 20, 40):
        store = TripleStore.from_graph(
            generate_lubm(universities=universities, seed=1)
        )
        schema = store.schema
        scq = scq_reformulation(query, schema)
        best = jucq_for_cover(example1_best_cover(query), schema)
        with SqliteBackend(store) as backend:
            def best_of(jucq):
                best_seconds = float("inf")
                answer = None
                for _ in range(3):
                    start = time.perf_counter()
                    answer = backend.run(jucq)
                    best_seconds = min(
                        best_seconds, time.perf_counter() - start
                    )
                return answer, best_seconds * 1e3

            scq_answer, scq_ms = best_of(scq)
            best_answer, best_ms = best_of(best)
        assert scq_answer == best_answer
        speedups.append(scq_ms / best_ms)
        rows.append(
            [
                universities,
                store.triple_count,
                "%.0f" % scq_ms,
                "%.0f" % best_ms,
                "%.1fx" % speedups[-1],
            ]
        )
    print()
    print(
        format_table(
            ["universities", "triples", "SCQ ms", "best cover ms", "speedup"],
            rows,
            title="E12: Example 1 on SQLite (paper: 430x at 100M triples)",
        )
    )
    assert all(speedup > 1.5 for speedup in speedups)
    assert speedups[-1] > speedups[0]


def test_benchmark_sqlite_ucq(benchmark, lubm_answerer, sqlite_backend):
    union = reformulate(lubm_queries()["Q5"], lubm_answerer.schema)
    answer = benchmark(sqlite_backend.run, union)
    assert len(answer) > 0
