"""A2 — ablation: UCQ subsumption pruning.

Rewriting engines prune subsumed disjuncts before evaluation ([8],
[10]).  Measured here: how many disjuncts the LUBM workload's
reformulations lose to pruning, what that saves at evaluation time,
and what the (quadratic) pruning itself costs — the trade a real
engine must price.
"""

from __future__ import annotations

import time

import pytest

from repro.bench import format_table
from repro.datasets import lubm_queries
from repro.reformulation import prune_subsumed, reformulate


@pytest.fixture(scope="module")
def reformulations(lubm_answerer):
    schema = lubm_answerer.schema
    unions = {}
    for name in ("Q2", "Q5", "Q6", "Q8", "Q9", "Q13"):
        unions[name] = reformulate(lubm_queries()[name], schema)
    return unions


def test_pruning_effect_table(lubm_answerer, reformulations):
    executor = lubm_answerer.executor
    rows = []
    any_pruned = False
    for name, union in reformulations.items():
        start = time.perf_counter()
        pruned = prune_subsumed(union)
        prune_ms = (time.perf_counter() - start) * 1e3

        start = time.perf_counter()
        full_answer = executor.run(union).answer()
        full_ms = (time.perf_counter() - start) * 1e3
        start = time.perf_counter()
        pruned_answer = executor.run(pruned).answer()
        pruned_ms = (time.perf_counter() - start) * 1e3

        assert pruned_answer == full_answer, name
        if len(pruned) < len(union):
            any_pruned = True
        rows.append(
            [
                name,
                len(union),
                len(pruned),
                "%.1f" % prune_ms,
                "%.1f" % full_ms,
                "%.1f" % pruned_ms,
            ]
        )
    print()
    print(
        format_table(
            ["query", "disjuncts", "after pruning", "prune ms",
             "eval full ms", "eval pruned ms"],
            rows,
            title="A2: subsumption pruning on LUBM reformulations",
        )
    )
    # The LUBM hierarchy makes several reformulations redundant
    # (e.g. τ-unfoldings subsumed by broader ones) — pruning must bite
    # somewhere on this workload.
    assert any_pruned


def test_benchmark_prune(benchmark, lubm_answerer):
    union = reformulate(lubm_queries()["Q9"], lubm_answerer.schema)
    pruned = benchmark(prune_subsumed, union)
    assert len(pruned) <= len(union)
