"""E4 — the data-management-platform dimension (Section 5).

The demo runs every cover-based strategy "through three
well-established RDBMSs"; here, through the three backend profiles
(hash-join, sort-merge, index-nested-loop engines with distinct cost
constants and parser limits).  Shapes to reproduce:

* answers are backend-independent (completeness does not depend on the
  platform);
* the strategy *ordering* (GCov ≤ SCQ) holds on every backend — the
  paper's point that cover choice, not engine choice, is the decisive
  factor;
* parser limits differ: the strictest profile rejects UCQs the largest
  profile still accepts.
"""

from __future__ import annotations

import pytest

from repro import QueryAnswerer, Strategy
from repro.bench import format_table
from repro.datasets import example1_query, lubm_queries
from repro.reformulation import ucq_size
from repro.storage import DEFAULT_BACKENDS, QueryTooLargeError


@pytest.fixture(scope="module")
def answerers(lubm_graph):
    return {
        backend.name: QueryAnswerer(lubm_graph, backend=backend)
        for backend in DEFAULT_BACKENDS
    }


def test_answers_backend_independent(answerers):
    query = lubm_queries()["Q9"]
    answers = {
        name: answerer.answer(query, Strategy.REF_GCOV).answer
        for name, answerer in answerers.items()
    }
    assert len(set(answers.values())) == 1


def test_strategy_ordering_per_backend(answerers):
    """GCov's cover never does worse than SCQ's on any profile (same
    complete answer, fewer or equal intermediate rows)."""
    query = example1_query()
    rows = []
    for name, answerer in answerers.items():
        scq = answerer.answer(query, Strategy.REF_SCQ)
        gcov = answerer.answer(query, Strategy.REF_GCOV)
        assert scq.answer == gcov.answer
        assert (
            gcov.execution.max_intermediate_rows()
            <= scq.execution.max_intermediate_rows()
        )
        rows.append(
            [
                name,
                "%.0f" % (scq.elapsed_seconds * 1e3),
                scq.execution.max_intermediate_rows(),
                "%.0f" % (gcov.elapsed_seconds * 1e3),
                gcov.execution.max_intermediate_rows(),
            ]
        )
    print()
    print(
        format_table(
            ["backend", "SCQ ms", "SCQ max rows", "GCov ms", "GCov max rows"],
            rows,
            title="E4: Example 1 per backend",
        )
    )


def test_parser_limits_differ(lubm_graph, schema):
    """A mid-size UCQ passes the generous parser and fails the strict
    one — the per-engine failure thresholds the demo exposes.

    The probe conjoins two open type atoms on a shared subject: its
    UCQ has (open-type-alternatives)² disjuncts of two atoms each,
    ~42k projected atoms on this schema — between loopdb's 20k limit
    and hashdb's 100k.
    """
    from repro.query import ConjunctiveQuery, TriplePattern, Variable
    from repro.rdf import RDF_TYPE

    subject = Variable("s")
    u, v = Variable("u"), Variable("v")
    query = ConjunctiveQuery(
        [subject, u, v],
        [
            TriplePattern(subject, RDF_TYPE, u),
            TriplePattern(subject, RDF_TYPE, v),
        ],
    )
    size = ucq_size(query, schema) * len(query.atoms)
    limits = sorted(backend.max_query_atoms for backend in DEFAULT_BACKENDS)
    print("\nE4: probe query projects to ~%d atoms; limits: %s" % (size, limits))
    assert limits[0] < size <= limits[-1]

    statuses = {}
    for backend in DEFAULT_BACKENDS:
        answerer = QueryAnswerer(lubm_graph, backend=backend)
        try:
            answerer.answer(query, Strategy.REF_UCQ)
            statuses[backend.name] = "ok"
        except QueryTooLargeError:
            statuses[backend.name] = "fail"
    print("E4: UCQ outcome per backend: %s" % statuses)
    assert statuses["loopdb"] == "fail"
    assert statuses["hashdb"] == "ok"


@pytest.mark.parametrize(
    "backend", DEFAULT_BACKENDS, ids=lambda backend: backend.name
)
def test_benchmark_gcov_per_backend(benchmark, lubm_graph, backend):
    answerer = QueryAnswerer(lubm_graph, backend=backend)
    query = lubm_queries()["Q9"]
    report = benchmark.pedantic(
        lambda: answerer.answer(query, Strategy.REF_GCOV),
        rounds=2,
        iterations=1,
    )
    assert report.cardinality >= 0
