"""E9 — impact of constraint modifications on Ref (Section 5, step 4).

"Choose (from a pre-defined set) or propose modifications to the
available RDF data and constraints, and re-run … constraints and query
modifications, in particular, may have a dramatic impact."  Reproduced:
the UCQ reformulation size of Example 1 under schema edits — deepening
a hierarchy or adding domain/range constraints multiplies the size,
and pruning constraints collapses it.
"""

from __future__ import annotations


from repro.bench import format_table
from repro.datasets import UB, example1_query
from repro.reformulation import ucq_size
from repro.schema import Constraint, ConstraintKind


def _sizes(schema, query):
    return ucq_size(query, schema)


def test_schema_edit_impact_table(schema):
    query = example1_query()
    baseline = _sizes(schema, query)

    # Edit 1: a new leaf class under an existing deep hierarchy.
    deeper = schema.copy()
    deeper.add(Constraint.subclass(UB.term("EmeritusProfessor"), UB.FullProfessor))
    deeper_size = _sizes(deeper, query)

    # Edit 2: a new property with a domain (feeds every type atom).
    richer = schema.copy()
    richer.add(Constraint.domain(UB.term("mentors"), UB.Professor))
    richer_size = _sizes(richer, query)

    # Edit 3: drop all domain/range constraints (hierarchies only).
    pruned = schema.copy()
    for constraint in list(pruned.direct_constraints()):
        if constraint.kind in (ConstraintKind.DOMAIN, ConstraintKind.RANGE):
            pruned.remove(constraint)
    pruned_size = _sizes(pruned, query)

    rows = [
        ["baseline LUBM schema", baseline],
        ["+ EmeritusProfessor ⊑ FullProfessor", deeper_size],
        ["+ mentors with domain Professor", richer_size],
        ["- all domain/range constraints", pruned_size],
    ]
    print()
    print(
        format_table(
            ["schema variant", "Example 1 UCQ disjuncts"],
            rows,
            title="E9: constraint edits vs reformulation size",
        )
    )
    assert deeper_size > baseline
    assert richer_size > baseline
    assert pruned_size < baseline


def test_single_constraint_is_quadratic_here(schema):
    """Example 1 has *two* open type atoms, so one schema edit moves
    the UCQ size quadratically — the 'dramatic impact'."""
    query = example1_query()
    baseline = _sizes(schema, query)
    amended = schema.copy()
    amended.add(Constraint.domain(UB.term("mentors"), UB.Person))
    amended_size = _sizes(amended, query)
    per_atom_delta = (amended_size / baseline) ** 0.5
    print(
        "\nE9: one domain constraint: %d -> %d disjuncts (x%.3f per atom, "
        "squared overall)" % (baseline, amended_size, per_atom_delta)
    )
    assert amended_size > baseline * 1.01


def test_query_modification_impact(schema):
    """The query-side knob: binding Example 1's type variables to
    constants collapses the reformulation."""
    from repro.query import ConjunctiveQuery

    query = example1_query()
    bound = query.substitute(
        {query.head[1]: UB.Student, query.head[3]: UB.Professor}
    )
    open_size = _sizes(schema, query)
    bound_size = _sizes(schema, bound)
    print(
        "\nE9: binding u,v to classes: %d -> %d disjuncts"
        % (open_size, bound_size)
    )
    assert bound_size < open_size / 100


def test_benchmark_reformulation_after_edit(benchmark, schema):
    """Ref's full response to a schema change: recompute the
    reformulation (compare E7's resaturation cost)."""
    from repro.datasets import lubm_queries
    from repro.reformulation import reformulate

    amended = schema.copy()
    amended.add(Constraint.subclass(UB.term("EmeritusProfessor"), UB.FullProfessor))
    query = lubm_queries()["Q6"]
    union = benchmark(reformulate, query, amended)
    assert len(union) > 1
