"""A4 — ablation: characteristic sets vs the textbook estimator on
star queries.

The paper's cost model uses textbook formulas (per DESIGN.md and A1).
Characteristic sets — from the RDF-3X line the paper cites as [14] —
give near-exact star-join cardinalities instead.  This ablation
measures, on the LUBM instance:

* how few characteristic sets the data has (the method's premise);
* estimation error of both methods on the workload's star sub-queries;
* the build cost of the statistic.
"""

from __future__ import annotations

import pytest

from repro.bench import format_table
from repro.datasets import UB
from repro.query import ConjunctiveQuery, TriplePattern, Variable, evaluate_cq
from repro.storage import HASH_BACKEND, Planner
from repro.storage.charsets import CharacteristicSets


@pytest.fixture(scope="module")
def charsets(lubm_store):
    return CharacteristicSets(lubm_store)


def star_queries():
    """Star-shaped sub-queries drawn from the workload's joins."""
    s = Variable("s")
    o = [Variable("o%d" % index) for index in range(4)]
    return {
        "degrees": ConjunctiveQuery(
            [s, o[0], o[1]],
            [
                TriplePattern(s, UB.mastersDegreeFrom, o[0]),
                TriplePattern(s, UB.doctoralDegreeFrom, o[1]),
            ],
        ),
        "teaching-faculty": ConjunctiveQuery(
            [s, o[0], o[1]],
            [
                TriplePattern(s, UB.worksFor, o[0]),
                TriplePattern(s, UB.teacherOf, o[1]),
            ],
        ),
        "student-profile": ConjunctiveQuery(
            [s, o[0], o[1]],
            [
                TriplePattern(s, UB.memberOf, o[0]),
                TriplePattern(s, UB.takesCourse, o[1]),
            ],
        ),
        "full-degree-star": ConjunctiveQuery(
            [s, o[0], o[1], o[2]],
            [
                TriplePattern(s, UB.undergraduateDegreeFrom, o[0]),
                TriplePattern(s, UB.mastersDegreeFrom, o[1]),
                TriplePattern(s, UB.doctoralDegreeFrom, o[2]),
            ],
        ),
        # Anti-correlated roles: students take courses, faculty teach
        # them — no subject does both, but the textbook independence
        # assumption predicts hundreds of rows.
        "disjoint-roles": ConjunctiveQuery(
            [s, o[0], o[1]],
            [
                TriplePattern(s, UB.takesCourse, o[0]),
                TriplePattern(s, UB.teacherOf, o[1]),
            ],
        ),
    }


def _textbook_estimate(store, query):
    plan = Planner(store, HASH_BACKEND).plan(query)
    return plan.estimated_rows


def test_few_characteristic_sets(lubm_store, charsets):
    """Real-shaped data collapses into few characteristic sets."""
    subjects = lubm_store.statistics.distinct_subjects
    print(
        "\nA4: %d subjects fall into %d characteristic sets"
        % (subjects, charsets.set_count)
    )
    assert charsets.set_count < subjects / 10


def test_star_estimate_comparison(lubm_graph, lubm_store, charsets):
    rows = []
    charset_errors = []
    textbook_errors = []
    for name, query in star_queries().items():
        actual = len(evaluate_cq(lubm_graph, query))
        property_ids = charsets.star_properties(query)
        assert property_ids is not None, name
        charset_estimate = charsets.estimate_star_rows(property_ids)
        textbook_estimate = _textbook_estimate(lubm_store, query)
        denominator = max(actual, 1)
        charset_errors.append(abs(charset_estimate - actual) / denominator)
        textbook_errors.append(abs(textbook_estimate - actual) / denominator)
        rows.append(
            [
                name,
                actual,
                "%.1f" % charset_estimate,
                "%.1f" % textbook_estimate,
            ]
        )
    print()
    print(
        format_table(
            ["star query", "actual rows", "charset estimate",
             "textbook estimate"],
            rows,
            title="A4: star-join cardinality estimation",
        )
    )
    mean_charset = sum(charset_errors) / len(charset_errors)
    mean_textbook = sum(textbook_errors) / len(textbook_errors)
    print(
        "A4: mean relative error — characteristic sets %.2f vs textbook %.2f"
        % (mean_charset, mean_textbook)
    )
    # LUBM's correlations are clean containments, where the textbook
    # containment assumption is also exact; the anti-correlated star is
    # where it breaks while characteristic sets stay exact.
    assert mean_charset < mean_textbook


def test_subject_counts_exact(lubm_graph, lubm_store, charsets):
    """The star subject counts are exact by construction."""
    s = Variable("s")
    query = star_queries()["degrees"]
    property_ids = charsets.star_properties(query)
    brute = len(
        evaluate_cq(
            lubm_graph,
            ConjunctiveQuery([s], query.atoms),
        )
    )
    assert charsets.star_subject_count(property_ids) == brute


def test_benchmark_build(benchmark, lubm_store):
    charsets = benchmark.pedantic(
        lambda: CharacteristicSets(lubm_store), rounds=2, iterations=1
    )
    assert charsets.set_count > 1
