"""E15 — the price of durability: WAL overhead and recovery time.

Two measurements justify the crash-safe storage design:

* **WAL overhead** — bulk-loading through :class:`DurableStore` (one
  framed, checksummed record per triple) versus building the same
  in-memory :class:`TripleStore` directly.  The design target is ≤2×
  the in-memory load with ``sync="never"`` (the simulated-crash
  durability model; ``sync="always"`` pays real fsyncs and is reported
  but not bounded).
* **recovery scaling** — recovery time must scale with the *WAL
  suffix* behind the latest checkpoint, not with total data size:
  restoring a checkpoint is a bulk decode, replaying the suffix is
  per-record work.  Reported as a suffix-length sweep at fixed data
  size, plus the same suffix at two data sizes.

Runs two ways: under pytest alongside the other benchmarks, and as a
script (``python benchmarks/bench_e15_durability.py --quick``) for CI
smoke.
"""

from __future__ import annotations

import argparse
import os
import shutil
import sys
import tempfile
import time
from typing import Dict, List, Optional, Sequence

_SRC = os.path.abspath(
    os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir, "src")
)
if os.path.isdir(_SRC) and _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.bench import format_table
from repro.datasets import generate_lubm, lubm_schema
from repro.durability import DurableStore, list_wal_segments, recover
from repro.durability.io import FileSystem
from repro.rdf import Namespace, RDF_TYPE, Triple
from repro.storage import TripleStore

EX = Namespace("http://example.org/e15/")

#: Suffix lengths (records behind the checkpoint) for the sweep.
SUFFIX_LENGTHS = (0, 500, 1000, 2000)

#: The WAL-overhead budget: durable load ≤ this × in-memory build.
OVERHEAD_BUDGET = 2.0

REPEATS = 3


def _suffix_triples(count: int) -> List[Triple]:
    """Synthetic data triples disjoint from the LUBM instance."""
    return [
        Triple(EX.term("s%d" % index), RDF_TYPE, EX.term("C%d" % (index % 7)))
        for index in range(count)
    ]


def _wal_bytes(directory: str) -> int:
    io = FileSystem()
    total = sum(io.size(path) for _, path in list_wal_segments(io, directory))
    io.close_all()
    return total


def run_wal_overhead(graph, schema, repeats: int = REPEATS) -> Dict:
    """Best-of-*repeats* load times: in-memory vs durable (both sync
    policies), plus the WAL footprint of the durable load."""
    memory_times = []
    for _ in range(repeats):
        start = time.perf_counter()
        TripleStore.from_graph(graph, schema)
        memory_times.append(time.perf_counter() - start)

    durable_times: Dict[str, List[float]] = {"never": [], "always": []}
    records = wal_bytes = 0
    for sync in ("never", "always"):
        for _ in range(repeats):
            directory = tempfile.mkdtemp(prefix="e15-load-")
            try:
                durable = DurableStore.open(directory, sync=sync)
                start = time.perf_counter()
                records = durable.load(graph, schema)
                durable_times[sync].append(time.perf_counter() - start)
                durable.close()
                if sync == "never":
                    wal_bytes = _wal_bytes(directory)
            finally:
                shutil.rmtree(directory, ignore_errors=True)

    memory = min(memory_times)
    never = min(durable_times["never"])
    return {
        "triples": len(graph),
        "records": records,
        "wal_bytes": wal_bytes,
        "memory_s": memory,
        "durable_never_s": never,
        "durable_always_s": min(durable_times["always"]),
        "ratio": never / memory if memory > 0 else float("inf"),
    }


def run_recovery_scaling(
    graph,
    schema,
    suffix_lengths: Sequence[int] = SUFFIX_LENGTHS,
    repeats: int = REPEATS,
) -> List[Dict]:
    """Recovery time as a function of WAL-suffix length at fixed data
    size: load + checkpoint once, then append *n* suffix records and
    time ``recover`` (best of *repeats*, read-only so the suffix
    survives between repeats)."""
    records: List[Dict] = []
    for suffix in suffix_lengths:
        directory = tempfile.mkdtemp(prefix="e15-recover-")
        try:
            durable = DurableStore.open(directory, sync="never")
            durable.load(graph, schema)
            durable.checkpoint()
            for triple in _suffix_triples(suffix):
                durable.insert(triple)
            durable.close()
            times = []
            replayed = triples = 0
            for _ in range(repeats):
                start = time.perf_counter()
                result = recover(directory, truncate=False)
                times.append(time.perf_counter() - start)
                replayed = result.records_replayed
                triples = result.store.triple_count
            records.append(
                {
                    "suffix": suffix,
                    "replayed": replayed,
                    "triples": triples,
                    "recover_s": min(times),
                }
            )
        finally:
            shutil.rmtree(directory, ignore_errors=True)
    return records


def emit_report(graph, schema) -> str:
    overhead = run_wal_overhead(graph, schema)
    scaling = run_recovery_scaling(graph, schema)
    lines = [
        "E15: WAL overhead (%d triples, %d records, %.1f KiB log)"
        % (
            overhead["triples"],
            overhead["records"],
            overhead["wal_bytes"] / 1024.0,
        ),
        "  in-memory build: %7.1f ms" % (overhead["memory_s"] * 1e3),
        "  durable load   : %7.1f ms (sync=never, %.2fx)  /  %7.1f ms (sync=always)"
        % (
            overhead["durable_never_s"] * 1e3,
            overhead["ratio"],
            overhead["durable_always_s"] * 1e3,
        ),
        "",
        format_table(
            ["WAL suffix", "records replayed", "triples recovered",
             "recovery time"],
            [
                [
                    record["suffix"],
                    record["replayed"],
                    record["triples"],
                    "%.1f ms" % (record["recover_s"] * 1e3),
                ]
                for record in scaling
            ],
            title="E15: recovery time vs WAL-suffix length (fixed base data)",
        ),
    ]
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# pytest entry points (collected with the rest of benchmarks/)


def test_wal_overhead_within_budget(lubm_graph):
    overhead = run_wal_overhead(lubm_graph, lubm_schema())
    assert overhead["records"] >= overhead["triples"]  # + constraints
    assert overhead["wal_bytes"] > 0
    assert overhead["ratio"] <= OVERHEAD_BUDGET, (
        "durable load %.2fx over in-memory build exceeds the %.1fx budget"
        % (overhead["ratio"], OVERHEAD_BUDGET)
    )


def test_recovery_scales_with_suffix_not_data(lubm_graph):
    """The checkpoint does its job: replay work tracks the suffix
    length exactly, and a longer suffix never recovers *faster* than
    an empty one by more than noise."""
    schema = lubm_schema()
    scaling = run_recovery_scaling(
        lubm_graph, schema, suffix_lengths=(0, 2000), repeats=2
    )
    empty, long = scaling
    assert empty["replayed"] == 0
    assert long["replayed"] == 2000
    assert long["triples"] == empty["triples"] + 2000
    # The timing claim, kept robust: replaying 2000 records costs
    # something, but far less than the full load it replaces.
    overhead = run_wal_overhead(lubm_graph, schema, repeats=1)
    assert empty["recover_s"] < overhead["durable_never_s"] * 2


def test_recovered_equals_loaded(lubm_graph, tmp_path):
    schema = lubm_schema()
    directory = str(tmp_path / "wal")
    durable = DurableStore.open(directory, sync="never")
    durable.load(lubm_graph, schema)
    durable.checkpoint()
    durable.close()
    result = recover(directory)
    assert set(result.store.to_graph()) == set(durable.store.to_graph())


def test_report_emits(lubm_graph):
    report = emit_report(lubm_graph, lubm_schema())
    assert "WAL overhead" in report
    assert "recovery time vs WAL-suffix length" in report
    print("\n" + report)


# ---------------------------------------------------------------------------
# script entry point (CI smoke: python benchmarks/bench_e15_durability.py --quick)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="one-university instance, assert the overhead budget, "
        "exit non-zero on miss",
    )
    parser.add_argument("--universities", type=int, default=2)
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args(argv)
    universities = 1 if args.quick else args.universities
    graph = generate_lubm(
        universities=universities, seed=args.seed, include_schema=False
    )
    schema = lubm_schema()
    print(emit_report(graph, schema))
    overhead = run_wal_overhead(graph, schema)
    if overhead["ratio"] > OVERHEAD_BUDGET:
        print(
            "FAIL: WAL overhead %.2fx exceeds the %.1fx budget"
            % (overhead["ratio"], OVERHEAD_BUDGET),
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
