"""E10 — dataset statistics panels (Section 5, demo step 1).

"Pick an RDF graph (data and constraints), and visualize its
statistics (value distributions for subject, property and object, for
attribute pairs etc.)."  Reproduced: the summary panel and per-property
distribution table for each dataset, plus the cost of keeping the
statistics current at load time (they are maintained incrementally, so
this is simply load throughput).
"""

from __future__ import annotations

import pytest

from repro.bench import format_table
from repro.datasets import generate_bib, generate_geo, generate_lubm
from repro.rdf import shorten
from repro.storage import TripleStore


DATASETS = {
    "lubm(2 universities)": lambda: generate_lubm(universities=2, seed=1),
    "geo(insee-like)": lambda: generate_geo(seed=1),
    "bib(dblp-like)": lambda: generate_bib(seed=1),
}


def test_summary_panels():
    rows = []
    for name, build in DATASETS.items():
        store = TripleStore.from_graph(build())
        summary = store.statistics.summary()
        rows.append(
            [
                name,
                summary["triples"],
                summary["properties"],
                summary["classes"],
                summary["distinct_subjects"],
                summary["distinct_objects"],
            ]
        )
        assert summary["triples"] > 100
        assert summary["classes"] > 3
    print()
    print(
        format_table(
            ["dataset", "triples", "props", "classes", "subjects", "objects"],
            rows,
            title="E10: dataset statistics panels",
        )
    )


def test_property_distribution_panel(lubm_store):
    """The per-property drill-down: counts and distinct values."""
    stats = lubm_store.statistics
    rows = []
    for property_id, property_stats in sorted(
        stats.per_property.items(),
        key=lambda item: -item[1].triples,
    )[:8]:
        rows.append(
            [
                shorten(lubm_store.dictionary.decode(property_id)),
                property_stats.triples,
                property_stats.distinct_subjects,
                property_stats.distinct_objects,
            ]
        )
    print()
    print(
        format_table(
            ["property", "triples", "distinct s", "distinct o"],
            rows,
            title="E10: top properties (LUBM)",
        )
    )
    assert rows[0][1] >= rows[-1][1]


def test_class_cardinality_panel(lubm_store):
    stats = lubm_store.statistics
    rows = sorted(
        (
            (shorten(lubm_store.dictionary.decode(class_id)), count)
            for class_id, count in stats.class_cardinality.items()
        ),
        key=lambda item: -item[1],
    )[:8]
    print()
    print(
        format_table(
            ["class", "explicit instances"],
            rows,
            title="E10: class cardinalities (most specific types only)",
        )
    )
    # Undergraduates dominate, per LUBM's population ratios.
    assert "UndergraduateStudent" in rows[0][0]


@pytest.mark.parametrize("name", list(DATASETS), ids=list(DATASETS))
def test_benchmark_load_with_statistics(benchmark, name):
    graph = DATASETS[name]()
    store = benchmark.pedantic(
        lambda: TripleStore.from_graph(graph), rounds=2, iterations=1
    )
    assert store.statistics.total_triples == store.triple_count
