"""E14 — resilience under injected faults: graceful partial answers.

The resilience layer's claim, measured instead of asserted: a
federation wrapped in seeded :class:`~repro.resilience.FaultPlan`
chaos stays *sound* (every answer is a subset of the fault-free one),
*honest* (a lossy answer is never certified complete), and degrades
*gracefully* (a permanent outage on one shard still yields the full
answer over the remaining sources, with the dead endpoint's circuit
breaker open).  Reported here on the LUBM federation:

* a fault-rate sweep (transient-error probability 0 → 0.6): per-rate
  completeness ratio, request/retry counts and how often the retry
  policy recovered a complete answer anyway;
* the outage scenario: one of three shards dead from the start —
  answer over the survivors, breaker state, requests wasted.

Everything runs on an injected :class:`~repro.resilience.FakeClock`:
backoff sleeps and breaker cooldowns are simulated, so the "chaos"
benchmark finishes in milliseconds and replays bit-identically for a
given ``REPRO_CHAOS_SEED`` (the CI matrix sets three fixed values).

Runs two ways: under pytest alongside the other benchmarks, and as a
script (``python benchmarks/bench_e14_resilience.py --quick``) for CI
smoke.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Dict, List, Optional, Sequence

_SRC = os.path.abspath(
    os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir, "src")
)
if os.path.isdir(_SRC) and _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.bench import format_table
from repro.datasets import generate_lubm, lubm_queries, lubm_schema
from repro.federation import Endpoint, FederatedAnswerer
from repro.rdf import Graph
from repro.resilience import ChaosEndpoint, FakeClock, FaultPlan, RetryPolicy
from repro.resilience.breaker import OPEN
from repro.resilience.report import SKIPPED_OPEN_CIRCUIT

#: CI sets this per matrix leg; locally the default keeps runs stable.
CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))

#: The federated LUBM subset (E11's workload — answers via a handful
#: of per-atom requests, so fault rates bite without dominating).
WORKLOAD = ("Q1", "Q5", "Q6", "Q13")
FAULT_RATES = (0.0, 0.1, 0.3, 0.6)
PARTS = 3


def _shard(graph, parts: int = PARTS) -> List[Graph]:
    shards = [Graph() for _ in range(parts)]
    for index, triple in enumerate(sorted(graph.data_triples())):
        shards[index % parts].add(triple)
    return shards


def _federation(
    shards: Sequence[Graph],
    schema,
    clock: FakeClock,
    plan_factory=None,
    seed: int = CHAOS_SEED,
    breaker_threshold: int = 3,
) -> FederatedAnswerer:
    """A federation over *shards*; with *plan_factory* each endpoint is
    wrapped in its own seeded chaos plan."""
    endpoints = [
        Endpoint("shard%d" % index, shard)
        for index, shard in enumerate(shards)
    ]
    if plan_factory is not None:
        endpoints = [
            ChaosEndpoint(endpoint, plan_factory(index), clock=clock)
            for index, endpoint in enumerate(endpoints)
        ]
    return FederatedAnswerer(
        endpoints,
        schema,
        retry_policy=RetryPolicy(max_attempts=3, seed=seed),
        request_deadline=30.0,
        breaker_threshold=breaker_threshold,
        clock=clock,
    )


def run_fault_sweep(
    graph,
    schema,
    rates: Sequence[float] = FAULT_RATES,
    names: Sequence[str] = WORKLOAD,
    seed: int = CHAOS_SEED,
) -> List[Dict]:
    """Answer the workload under each transient-fault rate.

    Returns one record per rate with the aggregate completeness ratio
    (retained answer rows over fault-free answer rows), request/retry
    counts, and the soundness verdict (chaotic ⊆ complete, lossy ⇒
    confessed) — the assertions CI relies on.
    """
    queries = lubm_queries()
    shards = _shard(graph)
    baseline = _federation(shards, schema, FakeClock(), seed=seed)
    complete = {name: baseline.answer(queries[name]) for name in names}
    records: List[Dict] = []
    for rate in rates:
        clock = FakeClock()
        federation = _federation(
            shards,
            schema,
            clock,
            plan_factory=lambda index: FaultPlan(
                # Decorrelate per (sweep seed, rate, endpoint) so every
                # leg of the sweep replays its own fault schedule.
                seed=seed * 7919 + int(rate * 100) * 31 + index,
                transient_rate=rate,
            ),
            seed=seed,
        )
        retained = expected = requests = retries = 0
        complete_answers = sound = honest = 0
        for name in names:
            answer = federation.answer(queries[name])
            full = complete[name].rows
            retained += len(answer.rows & full)
            expected += len(full)
            requests += sum(e.requests for e in answer.report)
            retries += answer.report.total_retries()
            complete_answers += int(answer.complete)
            sound += int(answer.rows <= full)
            honest += int(answer.complete <= (answer.rows == full))
        records.append(
            {
                "rate": rate,
                "ratio": retained / expected if expected else 1.0,
                "requests": requests,
                "retries": retries,
                "complete": complete_answers,
                "queries": len(names),
                "sound": sound == len(names),
                "honest": honest == len(names),
            }
        )
    return records


def run_outage_scenario(
    graph, schema, seed: int = CHAOS_SEED, name: str = "Q13"
) -> Dict:
    """One of three shards dead from request zero: the answer must
    equal the fault-free answer over the two survivors, the dead
    endpoint's breaker must open, and no wall-clock time passes."""
    queries = lubm_queries()
    shards = _shard(graph)
    survivors = _federation(shards[1:], schema, FakeClock(), seed=seed)
    expected = survivors.answer(queries[name]).rows

    clock = FakeClock()
    federation = _federation(
        shards,
        schema,
        clock,
        plan_factory=lambda index: FaultPlan(
            seed=seed + index, outage_after=0 if index == 0 else None
        ),
        seed=seed,
        # An outage is non-retryable, so the dead shard sees one
        # request per query atom; threshold 2 lets a two-atom query
        # open the breaker within a single federated answer.
        breaker_threshold=2,
    )
    answer = federation.answer(queries[name])
    dead = answer.report["shard0"]
    return {
        "rows": answer.rows,
        "expected": expected,
        "complete": answer.complete,
        "dead_status": dead.status,
        "dead_requests": dead.requests,
        "breaker_open": federation.breakers[0].state == OPEN,
        "breaker_rejections": federation.breakers[0].rejected_requests,
        "skipped": answer.report.skipped_endpoints,
        "fake_sleeps": len(clock.sleeps),
    }


def emit_report(graph, schema, seed: int = CHAOS_SEED) -> str:
    sweep = run_fault_sweep(graph, schema, seed=seed)
    outage = run_outage_scenario(graph, schema, seed=seed)
    lines = [
        format_table(
            ["fault rate", "completeness", "complete answers",
             "requests", "retries", "sound"],
            [
                [
                    "%.1f" % record["rate"],
                    "%.0f%%" % (record["ratio"] * 100),
                    "%d/%d" % (record["complete"], record["queries"]),
                    record["requests"],
                    record["retries"],
                    "yes" if record["sound"] and record["honest"] else "NO",
                ]
                for record in sweep
            ],
            title="E14: transient-fault sweep (LUBM federation, seed %d)"
            % seed,
        ),
        "",
        "outage scenario (shard0 dead from request 0, Q13):",
        "  answer over survivors: %s (%d rows, complete=%s)"
        % (
            "MATCH" if outage["rows"] == outage["expected"] else "MISMATCH",
            len(outage["rows"]),
            outage["complete"],
        ),
        "  shard0: status=%s after %d request(s); breaker open=%s, "
        "rejected %d call(s)"
        % (
            outage["dead_status"],
            outage["dead_requests"],
            outage["breaker_open"],
            outage["breaker_rejections"],
        ),
        "  clock: %d simulated sleep(s), zero wall-clock waiting"
        % outage["fake_sleeps"],
    ]
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# pytest entry points (collected with the rest of benchmarks/)


def test_fault_sweep_is_sound_and_honest(lubm_graph):
    records = run_fault_sweep(lubm_graph, lubm_schema())
    for record in records:
        assert record["sound"], record
        assert record["honest"], record
    # Rate 0 is the control: nothing lost, everything certified.
    assert records[0]["ratio"] == 1.0
    assert records[0]["complete"] == records[0]["queries"]
    assert records[0]["retries"] == 0


def test_retries_recover_low_fault_rates(lubm_graph):
    """At a 10% transient rate the retry policy (3 attempts) should
    recover every query to a certified-complete answer."""
    records = run_fault_sweep(lubm_graph, lubm_schema(), rates=(0.1,))
    (record,) = records
    assert record["complete"] == record["queries"], record
    assert record["ratio"] == 1.0


def test_outage_degrades_gracefully(lubm_graph):
    outage = run_outage_scenario(lubm_graph, lubm_schema())
    assert outage["rows"] == outage["expected"]
    assert not outage["complete"]
    assert outage["dead_status"] in ("degraded", SKIPPED_OPEN_CIRCUIT)
    assert outage["breaker_open"]


def test_report_emits(lubm_graph):
    report = emit_report(lubm_graph, lubm_schema())
    assert "transient-fault sweep" in report
    assert "outage scenario" in report
    print("\n" + report)


# ---------------------------------------------------------------------------
# script entry point (CI smoke: python benchmarks/bench_e14_resilience.py --quick)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="one-university instance, assert soundness, exit non-zero on miss",
    )
    parser.add_argument("--universities", type=int, default=2)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--chaos-seed",
        type=int,
        default=CHAOS_SEED,
        help="fault-schedule seed (default: $REPRO_CHAOS_SEED or 0)",
    )
    args = parser.parse_args(argv)
    universities = 1 if args.quick else args.universities
    graph = generate_lubm(
        universities=universities, seed=args.seed, include_schema=False
    )
    schema = lubm_schema()
    print(emit_report(graph, schema, seed=args.chaos_seed))
    failures = []
    for record in run_fault_sweep(graph, schema, seed=args.chaos_seed):
        if not (record["sound"] and record["honest"]):
            failures.append("rate %.1f lost soundness" % record["rate"])
    outage = run_outage_scenario(graph, schema, seed=args.chaos_seed)
    if outage["rows"] != outage["expected"]:
        failures.append("outage answer diverged from the survivors' answer")
    if not outage["breaker_open"]:
        failures.append("dead endpoint's breaker never opened")
    if failures:
        for failure in failures:
            print("FAIL: %s" % failure, file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
