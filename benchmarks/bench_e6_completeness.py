"""E6 — completeness of the fixed commercial Ref strategies (Section 5).

"Our demo integrates the popular RDF platforms Virtuoso and
AllegroGraph using their own (incomplete) Ref strategy" — simulated
here by the reformulation policies that ignore part of RDFS ([6]
documents the commercial engines ignoring constraints).  The table to
reproduce: per query, the answer counts of complete Ref vs the
incomplete strategies, with the incomplete ones missing answers on any
query whose entailments go through the constraints they drop.
"""

from __future__ import annotations

import pytest

from repro import Strategy
from repro.bench import format_table
from repro.datasets import books_dataset, lubm_queries
from repro import QueryAnswerer

COMPLETENESS_STRATEGIES = (
    Strategy.REF_UCQ,
    Strategy.REF_VIRTUOSO,
    Strategy.REF_ALLEGRO,
)


def completeness_row(answerer, name, query):
    counts = {}
    for strategy in COMPLETENESS_STRATEGIES:
        counts[strategy] = answerer.answer(query, strategy).cardinality
    complete = counts[Strategy.REF_UCQ]
    row = [name, complete]
    for strategy in COMPLETENESS_STRATEGIES[1:]:
        recall = counts[strategy] / complete if complete else 1.0
        row.append("%d (%.0f%%)" % (counts[strategy], recall * 100))
    return row, counts


def _workload():
    """Queries chosen to exercise each dropped feature.

    LUBM data types every generated entity explicitly, so subclass
    reasoning alone recovers most types; domain/range reasoning is
    decisive exactly for entities that are *never* explicitly typed —
    here, the degree-pool universities, which exist only as
    ``degreeFrom`` objects (range typing makes them Universities).
    """
    from repro.datasets.lubm import UB
    from repro.query import ConjunctiveQuery, TriplePattern, Variable
    from repro.rdf import RDF_TYPE

    x = Variable("x")
    queries = dict(lubm_queries())
    queries["U1"] = ConjunctiveQuery(
        [x], [TriplePattern(x, RDF_TYPE, UB.University)]
    )
    queries["U2"] = ConjunctiveQuery(
        [x], [TriplePattern(x, RDF_TYPE, UB.Organization)]
    )
    return queries


def test_completeness_table_lubm(lubm_answerer):
    rows = []
    losses = {strategy: 0 for strategy in COMPLETENESS_STRATEGIES[1:]}
    queries = _workload()
    for name in ("Q5", "Q6", "Q13", "Q14", "U1", "U2"):
        row, counts = completeness_row(lubm_answerer, name, queries[name])
        rows.append(row)
        for strategy in COMPLETENESS_STRATEGIES[1:]:
            if counts[strategy] < counts[Strategy.REF_UCQ]:
                losses[strategy] += 1
        # Incomplete strategies never invent answers.
        for strategy in COMPLETENESS_STRATEGIES[1:]:
            assert counts[strategy] <= counts[Strategy.REF_UCQ]
    print()
    print(
        format_table(
            ["query", "complete", "virtuoso-style", "allegrograph-style"],
            rows,
            title="E6: answer counts under incomplete Ref (LUBM)",
        )
    )
    # U1/U2 need range typing (virtuoso-style loses them); Q5/Q6 need
    # subproperty reasoning on memberOf (allegrograph-style loses more).
    assert losses[Strategy.REF_VIRTUOSO] >= 1
    assert losses[Strategy.REF_ALLEGRO] >= losses[Strategy.REF_VIRTUOSO]


def test_books_example_completeness():
    graph, schema, query = books_dataset()
    answerer = QueryAnswerer(graph, schema)
    complete = answerer.answer(query, Strategy.REF_UCQ).cardinality
    virtuoso = answerer.answer(query, Strategy.REF_VIRTUOSO).cardinality
    allegro = answerer.answer(query, Strategy.REF_ALLEGRO).cardinality
    print(
        "\nE6: books example — complete=%d, virtuoso-style=%d, "
        "allegrograph-style=%d" % (complete, virtuoso, allegro)
    )
    assert complete == 1
    assert allegro == 0  # needs subproperty reasoning it drops


def test_incomplete_is_faster_but_wrong(lubm_answerer):
    """The trade the commercial engines make: smaller reformulations,
    fewer answers."""
    query = lubm_queries()["Q5"]
    complete = lubm_answerer.answer(query, Strategy.REF_UCQ)
    allegro = lubm_answerer.answer(query, Strategy.REF_ALLEGRO)
    assert allegro.details["ucq_disjuncts"] < complete.details["ucq_disjuncts"]
    assert allegro.cardinality < complete.cardinality


@pytest.mark.parametrize(
    "strategy", COMPLETENESS_STRATEGIES, ids=lambda s: s.value
)
def test_benchmark_policy(benchmark, lubm_answerer, strategy):
    query = lubm_queries()["Q6"]
    report = benchmark.pedantic(
        lambda: lubm_answerer.answer(query, strategy),
        rounds=3,
        iterations=1,
    )
    assert report.cardinality >= 0
