"""Shared benchmark fixtures.

All benchmarks run on seeded, deterministic data.  The LUBM-style
instance is the workhorse (the paper's evaluation dataset); its scale
is laptop-sized per DESIGN.md's substitution table — runtime *shapes*
(who wins, by what order of magnitude, where strategies fail) are the
reproduction target, not absolute milliseconds.
"""

from __future__ import annotations

import pytest

from repro import QueryAnswerer
from repro.datasets import generate_lubm, lubm_schema
from repro.storage import TripleStore


@pytest.fixture(scope="session")
def lubm_graph():
    """Two universities, ≈7.5k triples — the standard bench instance."""
    return generate_lubm(universities=2, seed=1)


@pytest.fixture(scope="session")
def lubm_store(lubm_graph):
    return TripleStore.from_graph(lubm_graph)


@pytest.fixture(scope="session")
def lubm_answerer(lubm_graph):
    answerer = QueryAnswerer(lubm_graph)
    # Pre-build the saturated store so SAT timings measure evaluation,
    # not one-off construction (saturation cost is E7's subject).
    answerer.saturated_store()
    return answerer


@pytest.fixture(scope="session")
def schema():
    return lubm_schema()
