"""E22 — hierarchy-aware interval encoding across Example 1's covers.

The encoding's claim: dictionary-encoding the schema's class/property
hierarchies in DFS-interval order lets the reformulator replace every
covered subclass/subproperty union by ONE interval atom executed as a
range scan — Example 1's 564-branch type expansions become single
``type(x) ∈ [lo, hi)`` probes on the sorted POS run.  The UCQ shrinks
(fewer disjuncts to plan, scan, and dedup) and each surviving disjunct
scans one contiguous id range instead of unioning hundreds of point
lookups.

Three measurements, answers asserted byte-identical in every cell:

* **Cover spectrum** (full reasoning): per cover × engine, classic vs
  interval-encoded wall time.  Here domain/range alternatives — which
  are genuinely distinct CQs and never collapse — dominate the scan
  volume, so the encoding is a measured-but-modest win; the deep gate
  is a no-regression guard plus recorded speedups.
* **Type-heavy UCQ** (subclass/subproperty reasoning, the workload
  the encoding targets): Example 1's x-side — the open type atom with
  its selective ``mastersDegreeFrom`` join — run as a full UCQ.  The
  classic reformulation is 264 disjuncts, the interval one ~26; the
  row engines gate ≥2x, the columnar engine (already good at unions,
  the E21 finding) records its speedup.
* **UCQ feasibility**: Example 1's complete UCQ under hierarchy
  reasoning is 69,696 disjuncts classic — past the backend's atom
  limit, it *refuses* — while the interval reformulation (~676) runs
  to completion.  Gated on the ≥20x size collapse and the
  refusal-vs-completes flip (the quick run also executes the interval
  UCQ and checks it against the JUCQ reference).

The deep run uses a ~10^6-triple LUBM fragment (``--universities
540``); CI smoke (``--quick``) runs one university and asserts answer
identity plus the collapse itself (zero subclass enumeration branches
left in Example 1's type atoms).

Runs two ways: under pytest alongside the other benchmarks, and as a
script (``python benchmarks/bench_e22_interval.py --quick``).
"""

from __future__ import annotations

import argparse
import gc
import os
import sys
from contextlib import contextmanager
from typing import List, Optional, Sequence, Tuple

_SRC = os.path.abspath(
    os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir, "src")
)
if os.path.isdir(_SRC) and _SRC not in sys.path:
    sys.path.insert(0, _SRC)

_REPO_ROOT = os.path.dirname(_SRC)

from repro import QueryAnswerer, Strategy
from repro.bench import format_table, write_json_report
from repro.datasets import example1_best_cover, example1_query, generate_lubm
from repro.query import ConjunctiveQuery, Cover
from repro.reformulation import ucq_size
from repro.reformulation.policy import ReformulationPolicy
from repro.storage.backends import QueryTooLargeError

ROUNDS = 3

#: ~10^6 triples at LUBM's ~1.85k triples per university.
DEEP_UNIVERSITIES = 540

ENGINES = ("materialized", "pipelined", "columnar")

#: The encoding's target regime: subclass/subproperty reasoning (the
#: hierarchies the interval layout encodes), no domain/range typing.
HIERARCHY_POLICY = ReformulationPolicy(
    subclass=True, subproperty=True, domain_range=False
)

#: Generous enough that every refusal below is the backend's own atom
#: limit, not the answerer's disjunct cap.
UCQ_DISJUNCT_CAP = 200000


def cover_spectrum(query) -> List[Tuple[str, Cover]]:
    """Example 1's covers, worst to best: the blowup (per-atom SCQ)
    and the paper's hand-picked best."""
    return [
        ("per-atom (SCQ)", Cover.per_atom(query)),
        ("paper best", example1_best_cover(query)),
    ]


def type_heavy_query() -> ConjunctiveQuery:
    """Example 1's x-side: the open type atom, its selective
    ``mastersDegreeFrom`` constant, and the ``memberOf`` join — the
    shape where reformulation breadth, not join depth, is the cost."""
    full = example1_query()
    atoms = (full.atoms[0], full.atoms[2], full.atoms[4])
    return ConjunctiveQuery((full.atoms[0].subject, full.atoms[0].object), atoms)


@contextmanager
def _steady_timing():
    """Cyclic GC off for the timed region: with a ~10^6-triple store
    live, a generation-2 collection landing inside one variant's round
    swamps the very difference under measurement (everything here is
    acyclic, so refcounting still frees the temporaries)."""
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()
        gc.collect()


def _best_report(answerer, query, cover, rounds=ROUNDS):
    reports = [
        answerer.answer(query, Strategy.REF_JUCQ, cover=cover)
        for _ in range(rounds)
    ]
    return min(reports, key=lambda report: report.elapsed_seconds)


def run_encoding_comparison(graph, query, rounds: int = ROUNDS):
    """Per cover: {engine: (classic report, interval report)}, answers
    asserted identical across the whole matrix.  One engine's pair of
    answerers is alive at a time (two extra stores of the graph), and
    the columnar cells — cheap but variance-prone at this heap size —
    get extra rounds."""
    specs = cover_spectrum(query)
    cells_by_cover = {label: {} for label, _ in specs}
    reference = {label: None for label, _ in specs}
    for engine in ENGINES:
        classic = QueryAnswerer(graph, engine=engine)
        encoded = QueryAnswerer(graph, engine=engine, interval_encoding=True)
        engine_rounds = max(rounds, 4) if engine == "columnar" else rounds
        for label, cover in specs:
            with _steady_timing():
                rc = _best_report(classic, query, cover, engine_rounds)
                ri = _best_report(encoded, query, cover, engine_rounds)
            if reference[label] is None:
                reference[label] = rc.answer
            assert rc.answer == reference[label], (label, engine, "classic")
            assert ri.answer == reference[label], (label, engine, "interval")
            cells_by_cover[label][engine] = (rc, ri)
        del classic, encoded
        gc.collect()
    return [(label, cells_by_cover[label]) for label, _ in specs]


def run_type_heavy(graph, rounds: int = ROUNDS):
    """The type-heavy UCQ leg: {engine: (classic, interval)} reports
    plus the two reformulation sizes, answers asserted identical."""
    query = type_heavy_query()
    cells = {}
    sizes = {}
    reference = None
    for engine in ENGINES:
        pair = []
        for label, kwargs in (
            ("classic", {}),
            ("interval", {"interval_encoding": True}),
        ):
            answerer = QueryAnswerer(
                graph, engine=engine, policy=HIERARCHY_POLICY, **kwargs
            )
            sizes[label] = ucq_size(
                query, answerer.schema, HIERARCHY_POLICY, answerer.encoding
            )
            with _steady_timing():
                reports = [
                    answerer.answer(
                        query, Strategy.REF_UCQ,
                        max_disjuncts=UCQ_DISJUNCT_CAP,
                    )
                    for _ in range(rounds + 1)  # first round pays index build
                ]
            best = min(reports, key=lambda r: r.elapsed_seconds)
            if reference is None:
                reference = best.answer
            assert best.answer == reference, (engine, label)
            pair.append(best)
            del answerer
            gc.collect()
        cells[engine] = tuple(pair)
    return cells, sizes["classic"], sizes["interval"]


def check_ucq_feasibility(graph, execute: bool):
    """Example 1's complete UCQ under hierarchy reasoning: classic
    must refuse (backend atom limit), interval must stay ~2 orders of
    magnitude smaller — and, when *execute* is set, actually run and
    agree with the JUCQ reference."""
    query = example1_query()
    classic = QueryAnswerer(graph, engine="columnar", policy=HIERARCHY_POLICY)
    encoded = QueryAnswerer(
        graph,
        engine="columnar",
        policy=HIERARCHY_POLICY,
        interval_encoding=True,
    )
    classic_size = ucq_size(query, classic.schema, HIERARCHY_POLICY, None)
    interval_size = ucq_size(
        query, encoded.schema, HIERARCHY_POLICY, encoded.encoding
    )
    assert classic_size >= 20 * interval_size, (classic_size, interval_size)
    refused = False
    try:
        classic.answer(query, Strategy.REF_UCQ, max_disjuncts=UCQ_DISJUNCT_CAP)
    except QueryTooLargeError:
        refused = True
    assert refused, "classic UCQ unexpectedly fit the backend limit"
    interval_seconds = None
    if execute:
        report = encoded.answer(
            query, Strategy.REF_UCQ, max_disjuncts=UCQ_DISJUNCT_CAP
        )
        reference = encoded.answer(
            query, Strategy.REF_JUCQ, cover=Cover.per_atom(query)
        )
        assert report.answer == reference.answer
        interval_seconds = report.elapsed_seconds
    return {
        "classic_ucq_size": classic_size,
        "interval_ucq_size": interval_size,
        "size_ratio": classic_size / interval_size,
        "classic_refused": refused,
        "interval_seconds": interval_seconds,
    }


def _table(results) -> str:
    rows = []
    for label, cells in results:
        for engine in ENGINES:
            rc, ri = cells[engine]
            stats = ri.details.get("interval") or {}
            rows.append(
                [
                    label,
                    engine,
                    "%.1f" % (rc.elapsed_seconds * 1e3),
                    "%.1f" % (ri.elapsed_seconds * 1e3),
                    "%.2fx"
                    % (rc.elapsed_seconds / max(ri.elapsed_seconds, 1e-9)),
                    stats.get("interval_atoms", 0),
                    stats.get("branches_collapsed", 0),
                ]
            )
    return format_table(
        ["cover", "engine", "classic ms", "interval ms", "speedup",
         "interval atoms", "branches collapsed"],
        rows,
        title="E22: interval encoding on/off across Example 1's covers",
    )


def _type_heavy_table(cells, classic_size, interval_size) -> str:
    rows = []
    for engine in ENGINES:
        rc, ri = cells[engine]
        rows.append(
            [
                engine,
                classic_size,
                interval_size,
                "%.1f" % (rc.elapsed_seconds * 1e3),
                "%.1f" % (ri.elapsed_seconds * 1e3),
                "%.2fx"
                % (rc.elapsed_seconds / max(ri.elapsed_seconds, 1e-9)),
            ]
        )
    return format_table(
        ["engine", "classic disjuncts", "interval disjuncts",
         "classic ms", "interval ms", "speedup"],
        rows,
        title="E22: type-heavy UCQ (hierarchy reasoning, Example 1 x-side)",
    )


def assert_no_subclass_branches(graph) -> int:
    """Example 1's interval-encoded reformulation contains zero
    subclass-enumeration branches on its type atoms; returns how many
    union branches the intervals collapsed."""
    from repro.encoding import HierarchyInterval
    from repro.rdf import RDF_TYPE
    from repro.reformulation import reformulate

    query = example1_query()
    answerer = QueryAnswerer(graph, interval_encoding=True)
    union = reformulate(
        query, answerer.schema, answerer.policy, encoding=answerer.encoding
    )
    collapsed = 0
    for disjunct in union.disjuncts:
        for atom in disjunct.atoms:
            if isinstance(atom.object, HierarchyInterval):
                collapsed += max(0, atom.object.branches - 1)
            elif atom.property == RDF_TYPE:
                # Any remaining constant type must be the queried class
                # itself or a domain/range head — never a strict
                # subclass of a covered class (those live in intervals).
                klass = atom.object
                for queried in (a.object for a in query.atoms
                                if a.property == RDF_TYPE):
                    assert klass not in answerer.schema.subclasses(queried), (
                        "subclass enumeration branch survived: %r" % (klass,)
                    )
    assert collapsed > 0
    return collapsed


# ---------------------------------------------------------------------------
# pytest entry points (collected with the rest of benchmarks/)


def test_interval_matrix_agrees(lubm_graph):
    query = example1_query()
    results = run_encoding_comparison(lubm_graph, query, rounds=1)
    assert len(results) == 2
    for _label, cells in results:
        for engine in ENGINES:
            rc, ri = cells[engine]
            assert rc.execution.engine == ri.execution.engine
            assert ri.details["interval"]["interval_atoms"] > 0


def test_interval_collapses_example1(lubm_graph):
    assert assert_no_subclass_branches(lubm_graph) > 0


def test_interval_type_heavy_agrees(lubm_graph):
    cells, classic_size, interval_size = run_type_heavy(lubm_graph, rounds=1)
    assert classic_size >= 5 * interval_size
    for engine in ENGINES:
        rc, ri = cells[engine]
        assert rc.cardinality == ri.cardinality


def test_interval_ucq_feasibility(lubm_graph):
    facts = check_ucq_feasibility(lubm_graph, execute=True)
    assert facts["classic_refused"]
    assert facts["size_ratio"] >= 20
    assert facts["interval_seconds"] is not None


def test_benchmark_interval_columnar_scq(benchmark, lubm_graph):
    answerer = QueryAnswerer(
        lubm_graph, engine="columnar", interval_encoding=True
    )
    query = example1_query()
    cover = Cover.per_atom(query)
    report = benchmark.pedantic(
        lambda: answerer.answer(query, Strategy.REF_JUCQ, cover=cover),
        rounds=3,
        iterations=1,
    )
    assert report.cardinality > 0


def test_report_emits(lubm_graph):
    results = run_encoding_comparison(
        lubm_graph, example1_query(), rounds=1
    )
    report = _table(results)
    assert "speedup" in report
    print("\n" + report)


# ---------------------------------------------------------------------------
# script entry point (CI smoke: python benchmarks/bench_e22_interval.py --quick)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="one-university instance, assert answer identity, the "
             "union collapse, and UCQ feasibility only (speedups need "
             "scale), exit non-zero on miss",
    )
    parser.add_argument("--universities", type=int, default=DEEP_UNIVERSITIES)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--rounds", type=int, default=2,
        help="best-of-N per cell; N>=2 lets the first round pay the "
             "one-time lazy index build so the best round measures "
             "steady-state evaluation",
    )
    parser.add_argument(
        "--output",
        default=os.path.join(_REPO_ROOT, "BENCH_E22.json"),
        help="where to write the JSON artifact",
    )
    args = parser.parse_args(argv)
    universities = 1 if args.quick else args.universities
    graph = generate_lubm(universities=universities, seed=args.seed)
    print("%d universities, %d triples" % (universities, len(graph)))
    collapsed = assert_no_subclass_branches(graph)
    print("Example 1 type unions collapsed: %d branch(es) -> intervals"
          % collapsed)

    feasibility = check_ucq_feasibility(graph, execute=args.quick)
    print(
        "full-UCQ feasibility (hierarchy reasoning): classic %d disjuncts "
        "-> refused; interval %d disjuncts (%.0fx smaller)%s"
        % (
            feasibility["classic_ucq_size"],
            feasibility["interval_ucq_size"],
            feasibility["size_ratio"],
            ""
            if feasibility["interval_seconds"] is None
            else " -> ran in %.2fs" % feasibility["interval_seconds"],
        )
    )

    query = example1_query()
    results = run_encoding_comparison(graph, query, rounds=args.rounds)
    print(_table(results))
    th_cells, th_classic_size, th_interval_size = run_type_heavy(
        graph, rounds=args.rounds
    )
    print(_type_heavy_table(th_cells, th_classic_size, th_interval_size))

    def speedup(pair):
        rc, ri = pair
        return rc.elapsed_seconds / max(ri.elapsed_seconds, 1e-9)

    payload = {
        "experiment": "E22",
        "claim": "interval encoding removes subclass enumeration from "
                 "every plan with byte-identical answers: a measured "
                 "speedup over the PR 9 columnar baseline on both "
                 "covers, >=2x on the type-heavy UCQ's row engines, "
                 "and the full hierarchy-reasoning UCQ flips from "
                 "refused (69k disjuncts) to answerable",
        "universities": universities,
        "triples": len(graph),
        "seed": args.seed,
        "branches_collapsed_example1": collapsed,
        "ucq_feasibility": feasibility,
        "covers": {
            label: {
                engine: {
                    "classic_seconds": rc.elapsed_seconds,
                    "interval_seconds": ri.elapsed_seconds,
                    "interval_speedup":
                        rc.elapsed_seconds / max(ri.elapsed_seconds, 1e-9),
                    "interval_atoms":
                        ri.details["interval"]["interval_atoms"],
                    "branches_collapsed":
                        ri.details["interval"]["branches_collapsed"],
                    "rows": rc.cardinality,
                }
                for engine, (rc, ri) in cells.items()
            }
            for label, cells in results
        },
        "type_heavy_ucq": {
            "classic_disjuncts": th_classic_size,
            "interval_disjuncts": th_interval_size,
            "engines": {
                engine: {
                    "classic_seconds": rc.elapsed_seconds,
                    "interval_seconds": ri.elapsed_seconds,
                    "interval_speedup": speedup((rc, ri)),
                    "rows": rc.cardinality,
                }
                for engine, (rc, ri) in th_cells.items()
            },
        },
    }
    written = write_json_report(args.output, payload)
    print("\nwrote %s" % written)

    if args.quick:
        return 0

    failures = []
    for label, cells in results:
        s = speedup(cells["columnar"])
        print("columnar interval speedup on %s: %.2fx" % (label, s))
        if s < 0.9:
            failures.append(
                "interval-encoded columnar regressed on %s: %.2fx < 0.9x"
                % (label, s)
            )
    for engine in ("materialized", "pipelined"):
        s = speedup(th_cells[engine])
        print("type-heavy UCQ %s interval speedup: %.2fx" % (engine, s))
        if s < 2.0:
            failures.append(
                "type-heavy UCQ %s speedup %.2fx < 2x" % (engine, s)
            )
    print(
        "type-heavy UCQ columnar interval speedup: %.2fx"
        % speedup(th_cells["columnar"])
    )
    for failure in failures:
        print("FAIL: %s" % failure, file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
