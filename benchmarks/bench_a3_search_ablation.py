"""A3 — ablation: greedy (GCov) vs beam search over the cover space.

GCov is deliberately greedy ("starts with a cover where each atom is
alone … and adds an atom to a fragment if the cost model suggests" —
Section 4).  The ablation prices the road not taken: a beam search
with the same moves and the same cost model.  Reported per query:
chosen-cover cost, covers explored (the planning bill), and whether
the greedy local optimum left anything on the table.
"""

from __future__ import annotations

import pytest

from repro.bench import format_table
from repro.datasets import example1_query, lubm_queries
from repro.optimizer import CoverCostEstimator, beam_search, gcov


WORKLOAD = ("Q2", "Q7", "Q8", "Q9", "Ex1")


def _queries():
    catalog = dict(lubm_queries())
    catalog["Ex1"] = example1_query()
    return catalog


def test_greedy_vs_beam_table(lubm_answerer):
    schema = lubm_answerer.schema
    store = lubm_answerer.store
    backend = lubm_answerer.backend
    rows = []
    catalog = _queries()
    for name in WORKLOAD:
        query = catalog[name]
        estimator = CoverCostEstimator(query, schema, store, backend)
        greedy = gcov(query, schema, store, backend, estimator=estimator)
        beam = beam_search(
            query, schema, store, backend, beam_width=4, estimator=estimator
        )
        assert beam.cost <= greedy.cost + 1e-9
        gap = (
            (greedy.cost - beam.cost) / greedy.cost * 100
            if greedy.cost > 0
            else 0.0
        )
        rows.append(
            [
                name,
                "%.0f" % greedy.cost,
                greedy.explored_count,
                "%.0f" % beam.cost,
                beam.explored_count,
                "%.1f%%" % gap,
            ]
        )
    print()
    print(
        format_table(
            ["query", "GCov cost", "GCov explored",
             "beam cost", "beam explored", "greedy gap"],
            rows,
            title="A3: greedy vs beam-4 cover search",
        )
    )


def test_beam_explores_more(lubm_answerer):
    query = example1_query()
    estimator = CoverCostEstimator(
        query, lubm_answerer.schema, lubm_answerer.store, lubm_answerer.backend
    )
    greedy = gcov(
        query, lubm_answerer.schema, lubm_answerer.store,
        lubm_answerer.backend, estimator=estimator,
    )
    beam = beam_search(
        query, lubm_answerer.schema, lubm_answerer.store,
        lubm_answerer.backend, estimator=estimator,
    )
    print(
        "\nA3: Example 1 — greedy explored %d covers, beam explored %d"
        % (greedy.explored_count, beam.explored_count)
    )
    assert beam.explored_count >= greedy.explored_count


@pytest.mark.parametrize("search_name", ["gcov", "beam"])
def test_benchmark_search(benchmark, lubm_answerer, search_name):
    query = example1_query()
    search = gcov if search_name == "gcov" else beam_search

    def run():
        return search(
            query,
            lubm_answerer.schema,
            lubm_answerer.store,
            lubm_answerer.backend,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.cover is not None
