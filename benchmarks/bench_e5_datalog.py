"""E5 — the Dat alternative (Section 5): RDF → Datalog → bottom-up.

The demo encodes data, constraints and query into a Datalog program
evaluated by LogicBlox; our semi-naive engine plays that role.  Shapes
to reproduce:

* Dat computes the complete answer (it saturates inside the fixpoint);
* Dat pays the saturation cost *per query* — unlike Sat, which pays
  once, and unlike Ref, which never materializes entailments — so on
  repeated selective queries Ref wins, while Dat is competitive on a
  one-shot query over fresh data (no precomputation at all).
"""

from __future__ import annotations

import pytest

from repro import Strategy
from repro.bench import format_table
from repro.datalog import answer_query, encode, evaluate_program
from repro.datasets import books_dataset, lubm_queries
from repro.schema import Schema


@pytest.fixture(scope="module")
def lubm_schema_obj(lubm_graph):
    return Schema.from_graph(lubm_graph)


def test_dat_complete_on_workload(lubm_graph, lubm_schema_obj, lubm_answerer):
    rows = []
    for name in ("Q1", "Q3", "Q4", "Q12", "Q14"):
        query = lubm_queries()[name]
        dat_answer = answer_query(lubm_graph, lubm_schema_obj, query)
        sat_report = lubm_answerer.answer(query, Strategy.SAT)
        assert dat_answer == sat_report.answer, name
        rows.append([name, len(dat_answer)])
    print()
    print(format_table(["query", "rows (Dat == Sat)"], rows,
                       title="E5: Dat completeness"))


def test_fixpoint_statistics(lubm_graph, lubm_schema_obj):
    """The Dat engine's work: rounds to fixpoint and derived facts —
    the quantities that make per-query saturation expensive."""
    query = lubm_queries()["Q1"]
    program = encode(lubm_graph, lubm_schema_obj, query)
    result = evaluate_program(program)
    print(
        "\nE5: semi-naive fixpoint: %d rounds, %d derived facts "
        "over %d input triples"
        % (result.rounds, result.derived, len(lubm_graph))
    )
    assert result.rounds >= 2
    assert result.derived > len(lubm_graph) * 0.5


def test_benchmark_dat_single_query(benchmark, lubm_graph, lubm_schema_obj):
    query = lubm_queries()["Q1"]
    answer = benchmark.pedantic(
        lambda: answer_query(lubm_graph, lubm_schema_obj, query),
        rounds=2,
        iterations=1,
    )
    assert len(answer) >= 0


def test_benchmark_ref_single_query(benchmark, lubm_answerer):
    """The comparison point: Ref-GCov on the same query, same data."""
    query = lubm_queries()["Q1"]
    report = benchmark.pedantic(
        lambda: lubm_answerer.answer(query, Strategy.REF_GCOV),
        rounds=2,
        iterations=1,
    )
    assert report.cardinality >= 0


def test_benchmark_dat_books(benchmark):
    graph, schema, query = books_dataset()
    answer = benchmark(answer_query, graph, schema, query)
    assert len(answer) == 1


def test_repeated_queries_favour_ref(lubm_graph, lubm_schema_obj, lubm_answerer):
    """Dat re-saturates per query; Ref does not.  Over a 5-query batch
    the Ref total must beat the Dat total."""
    import time

    names = ("Q1", "Q3", "Q4", "Q12", "Q14")
    start = time.perf_counter()
    for name in names:
        answer_query(lubm_graph, lubm_schema_obj, lubm_queries()[name])
    dat_total = time.perf_counter() - start

    start = time.perf_counter()
    for name in names:
        lubm_answerer.answer(lubm_queries()[name], Strategy.REF_GCOV)
    ref_total = time.perf_counter() - start

    print(
        "\nE5: 5-query batch: Dat %.0f ms vs Ref-GCov %.0f ms"
        % (dat_total * 1e3, ref_total * 1e3)
    )
    assert ref_total < dat_total
