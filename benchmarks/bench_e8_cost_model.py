"""E8 — cost-model introspection (Section 5, demo step 3).

Attendees inspect "cardinalities and costs of (sub)queries; and (if
the cover was selected by GCov) the space of explored alternatives,
and their estimated costs".  Reproduced:

* estimated vs measured cost over the *entire partition-cover space*
  of a mid-size query — the estimates must rank covers usefully
  (positive rank correlation), which is all GCov needs;
* GCov's pick lands in the cheap tail of the real distribution;
* per-node estimated vs actual cardinalities on the chosen plan.
"""

from __future__ import annotations

import time

import pytest
from scipy import stats

from repro import Strategy
from repro.bench import format_table
from repro.datasets import example1_query, lubm_queries
from repro.optimizer import CoverCostEstimator, exhaustive_cover_search, gcov
from repro.query import ConjunctiveQuery, Variable
from repro.reformulation import jucq_for_cover
from repro.storage import Executor


@pytest.fixture(scope="module")
def probe_query():
    """Q9's triangle: 6 atoms would be Bell(6)=203 covers; use its
    4-atom core (Bell(4)=15) so the full space is measurable."""
    queries = lubm_queries()
    q9 = queries["Q9"]
    return ConjunctiveQuery(
        [item for item in q9.head if isinstance(item, Variable)],
        q9.atoms[:2] + q9.atoms[3:5],
    )


def test_estimates_rank_real_costs(lubm_answerer, probe_query):
    schema = lubm_answerer.schema
    store = lubm_answerer.store
    estimator = CoverCostEstimator(probe_query, schema, store)
    result = exhaustive_cover_search(
        probe_query, schema, store, estimator=estimator
    )

    estimated = []
    measured = []
    rows = []
    executor = Executor(store, lubm_answerer.backend)
    for cover, cost in result.space:
        jucq = jucq_for_cover(cover, schema)
        start = time.perf_counter()
        executor.run(jucq)
        elapsed = time.perf_counter() - start
        estimated.append(cost)
        measured.append(elapsed)
        rows.append([repr(cover), "%.0f" % cost, "%.1f" % (elapsed * 1e3)])

    rho, _ = stats.spearmanr(estimated, measured)
    print()
    print(
        format_table(
            ["cover", "estimated cost", "measured ms"],
            rows,
            title="E8: the priced cover space (Bell(4) = 15 covers)",
        )
    )
    print("E8: Spearman rank correlation estimate vs runtime: %.2f" % rho)
    assert rho > 0.3


def test_gcov_lands_in_cheap_tail(lubm_answerer, probe_query):
    schema = lubm_answerer.schema
    store = lubm_answerer.store
    estimator = CoverCostEstimator(probe_query, schema, store)
    exhaustive = exhaustive_cover_search(
        probe_query, schema, store, estimator=estimator
    )
    greedy = gcov(probe_query, schema, store, estimator=estimator)
    ranked_costs = [cost for _, cost in exhaustive.ranked()]
    median = ranked_costs[len(ranked_costs) // 2]
    print(
        "\nE8: GCov cost %.0f vs partition space best %.0f / median %.0f"
        % (greedy.cost, exhaustive.cost, median)
    )
    assert greedy.cost <= median


def test_plan_cardinality_inspection(lubm_answerer):
    """Demo step 3's panel: estimated vs actual rows per plan node."""
    query = lubm_queries()["Q9"]
    report = lubm_answerer.answer(query, Strategy.REF_GCOV)
    cards = report.execution.node_cardinalities()
    shown = cards[:8]
    print()
    print(
        format_table(
            ["operator", "estimated rows", "actual rows"],
            [[op, "%.0f" % est, actual] for op, est, actual in shown],
            title="E8: plan inspection (first nodes)",
        )
    )
    assert all(actual is not None for _, _, actual in cards)


def test_benchmark_gcov_search_only(benchmark, lubm_answerer):
    """The optimizer's own price: searching the cover space for
    Example 1 (the cost the paper's systems pay at planning time)."""
    query = example1_query()
    result = benchmark.pedantic(
        lambda: gcov(
            query,
            lubm_answerer.schema,
            lubm_answerer.store,
            lubm_answerer.backend,
        ),
        rounds=2,
        iterations=1,
    )
    assert result.explored_count > 10
