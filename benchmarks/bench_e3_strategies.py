"""E3 — reformulation strategies across the LUBM workload (Section 5,
first demo dimension).

For every query of the workload (LUBM Q1–Q14 plus Example 1), answer
through Sat, Ref-UCQ, Ref-SCQ and Ref-GCov, recording per-query time,
answer cardinality and failures.  The shapes to reproduce:

* Sat evaluation is fast once the (expensive, E7) saturation exists;
* Ref-UCQ works on selective queries but *fails* on open-variable
  queries (Example 1) — "a fixed reformulation strategy may lead to
  very bad performance or simply fail";
* Ref-SCQ always runs but pays large intermediate results;
* Ref-GCov is complete, never fails, and tracks the best strategy —
  "a cost-based query reformulation approach allows avoiding such
  performance pitfalls".

All complete strategies must return identical answers on every query.
"""

from __future__ import annotations

import pytest

from repro import Strategy
from repro.bench import compare_strategies, format_table
from repro.datasets import lubm_queries, example1_query

STRATEGIES = (
    Strategy.SAT,
    Strategy.REF_UCQ,
    Strategy.REF_SCQ,
    Strategy.REF_GCOV,
)


def workload():
    queries = lubm_queries()
    ordered = [("Q%d" % index, queries["Q%d" % index]) for index in range(1, 15)]
    ordered.append(("Ex1", example1_query()))
    return ordered


def test_strategy_matrix(lubm_answerer):
    """The headline table: query × strategy → time / rows / FAIL."""
    rows = []
    ucq_failures = 0
    for name, query in workload():
        outcomes = compare_strategies(lubm_answerer, query, STRATEGIES)
        answers = {
            outcome.report.answer
            for outcome in outcomes.values()
            if outcome.ok
        }
        assert len(answers) == 1, "strategies disagree on %s" % name
        if not outcomes[Strategy.REF_UCQ].ok:
            ucq_failures += 1
        rows.append(
            [name]
            + [outcomes[strategy].cell() for strategy in STRATEGIES]
        )
    print()
    print(
        format_table(
            ["query"] + [strategy.value for strategy in STRATEGIES],
            rows,
            title="E3: strategy matrix on LUBM workload",
        )
    )
    # Ref-UCQ must fail somewhere (Example 1) while GCov never does.
    assert ucq_failures >= 1


@pytest.mark.parametrize(
    "strategy", [Strategy.SAT, Strategy.REF_SCQ, Strategy.REF_GCOV],
    ids=lambda s: s.value,
)
def test_benchmark_workload(benchmark, lubm_answerer, strategy):
    """Total workload time per strategy (one benchmark per strategy)."""
    queries = [query for _, query in workload()]

    def run_all():
        total_rows = 0
        for query in queries:
            total_rows += lubm_answerer.answer(query, strategy).cardinality
        return total_rows

    total = benchmark.pedantic(run_all, rounds=2, iterations=1)
    assert total > 0


def test_benchmark_ucq_on_selective_queries(benchmark, lubm_answerer):
    """Ref-UCQ on the queries it *can* answer (no open variables)."""
    queries = [
        query
        for name, query in workload()
        if name not in ("Ex1",)
    ]

    def run_all():
        total_rows = 0
        for query in queries:
            total_rows += lubm_answerer.answer(
                query, Strategy.REF_UCQ
            ).cardinality
        return total_rows

    total = benchmark.pedantic(run_all, rounds=2, iterations=1)
    assert total > 0
