"""A1 — ablation: exact per-constant statistics vs uniformity.

DESIGN.md's cost model uses MCV-style exact frequencies for
bound-constant scans by default.  This ablation re-prices E8's cover
space with the textbook uniformity assumption instead and compares:

* scan-estimate error on constant-bound patterns;
* the rank correlation between estimated cover costs and measured
  runtimes (the quantity GCov's decisions live off);
* whether GCov's chosen cover changes.
"""

from __future__ import annotations

import time

import pytest
from scipy import stats as scipy_stats

from repro.bench import format_table
from repro.datasets import example1_query, lubm_queries
from repro.optimizer import CoverCostEstimator, exhaustive_cover_search, gcov
from repro.query import ConjunctiveQuery, Variable
from repro.reformulation import jucq_for_cover
from repro.storage import BackendProfile, Executor

EXACT = BackendProfile("exact-stats", exact_constant_stats=True)
UNIFORM = BackendProfile("uniform-stats", exact_constant_stats=False)


@pytest.fixture(scope="module")
def probe_query():
    q9 = lubm_queries()["Q9"]
    head = [item for item in q9.head if isinstance(item, Variable)]
    return ConjunctiveQuery(head, q9.atoms[:2] + q9.atoms[3:5])


def _rank_correlation(answerer_store, schema, query, backend):
    estimator = CoverCostEstimator(query, schema, answerer_store, backend)
    space = exhaustive_cover_search(
        query, schema, answerer_store, backend, estimator=estimator
    ).space
    executor = Executor(answerer_store, backend)
    estimated, measured = [], []
    for cover, cost in space:
        jucq = jucq_for_cover(cover, schema)
        start = time.perf_counter()
        executor.run(jucq)
        measured.append(time.perf_counter() - start)
        estimated.append(cost)
    rho, _ = scipy_stats.spearmanr(estimated, measured)
    return rho


def test_estimate_quality_comparison(lubm_answerer, probe_query):
    schema = lubm_answerer.schema
    store = lubm_answerer.store
    rho_exact = _rank_correlation(store, schema, probe_query, EXACT)
    rho_uniform = _rank_correlation(store, schema, probe_query, UNIFORM)
    print()
    print(
        format_table(
            ["statistics", "Spearman(est, measured)"],
            [["exact (MCV-style)", "%.2f" % rho_exact],
             ["uniformity assumption", "%.2f" % rho_uniform]],
            title="A1: estimate quality over the cover space",
        )
    )
    # Exact stats must not *hurt* the ranking.
    assert rho_exact >= rho_uniform - 0.15


def test_constant_scan_errors(lubm_answerer):
    """Per-scan relative error on the workload's constant-bound atoms."""
    from repro.cost import cardinality
    from repro.storage import ScanNode, Planner

    store = lubm_answerer.store
    statistics = store.statistics
    errors = {"exact": [], "uniform": []}
    planner = Planner(store, EXACT)
    for name in ("Q1", "Q3", "Q4", "Q7"):
        query = lubm_queries()[name]
        for atom in query.atoms:
            scan = planner._scan_for_atom(atom)
            if scan is None:
                continue
            bound = scan.bound_positions()
            if bound[0] is None and bound[2] is None:
                continue  # no constant beyond the property
            actual = len(
                __import__("repro.storage.executor", fromlist=["_execute_scan"])
                ._execute_scan(scan, store)
            )
            for label, flag in (("exact", True), ("uniform", False)):
                estimate = cardinality.estimate_scan(
                    scan, statistics, store.type_property_id, flag
                )
                errors[label].append(abs(estimate - actual))
    mean_exact = sum(errors["exact"]) / max(len(errors["exact"]), 1)
    mean_uniform = sum(errors["uniform"]) / max(len(errors["uniform"]), 1)
    print(
        "\nA1: mean |estimate - actual| on %d constant-bound scans: "
        "exact %.2f vs uniform %.2f"
        % (len(errors["exact"]), mean_exact, mean_uniform)
    )
    assert mean_exact <= mean_uniform


def _groups_type_atoms(cover):
    return all(
        len(fragment) > 1
        for type_atom_index in (0, 1)
        for fragment in cover.fragments
        if type_atom_index in fragment
    )


def test_gcov_choice_stability(lubm_answerer):
    """Does the ablation change the chosen cover for Example 1?

    Finding: the statistics assumption changes the *selected cover*.
    The textbook uniformity model (the paper's, and our default) picks
    the fully grouped cover of Example 1; the sharper MCV estimates
    price the Zipf-head degree constant realistically high, under
    which the model genuinely prefers leaving ``t1`` ungrouped (beam
    search concurs, so it is a model preference, not a greedy
    artifact).  At the paper's scale — where the degree constant is
    rare, as uniformity predicts — the grouped cover is the right
    call, which is why the textbook model is the faithful default.
    """
    from repro.optimizer import beam_search

    query = example1_query()
    schema = lubm_answerer.schema
    store = lubm_answerer.store
    exact_greedy = gcov(query, schema, store, EXACT)
    uniform_greedy = gcov(query, schema, store, UNIFORM)
    exact_beam = beam_search(query, schema, store, EXACT, beam_width=4)
    print(
        "\nA1: GCov (uniformity):  %r\n"
        "    GCov (exact stats):  %r\n"
        "    beam-4 (exact):      %r"
        % (uniform_greedy.cover, exact_greedy.cover, exact_beam.cover)
    )
    assert _groups_type_atoms(uniform_greedy.cover)
    # Under exact statistics greedy and beam agree with each other —
    # whatever they choose, it is the model speaking, not the search.
    assert (
        _groups_type_atoms(exact_greedy.cover)
        == _groups_type_atoms(exact_beam.cover)
    )
