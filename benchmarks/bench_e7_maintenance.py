"""E7 — the Sat maintenance penalty (Section 1).

"The saturation needs to be maintained after changes in the data
and/or constraints, which may incur a performance penalty" — the
paper's motivation for Ref.  Measured here:

* initial saturation cost vs store-loading cost (what Ref avoids);
* incremental maintenance per inserted/deleted triple batch;
* schema changes: a single added constraint forces full resaturation,
  while Ref absorbs it by re-reformulating the next query — the
  dramatic asymmetry the demo's step 4 shows.
"""

from __future__ import annotations

import time

import pytest

from repro.bench import format_table
from repro.datasets import UB
from repro.rdf import Graph
from repro.saturation import IncrementalSaturator, saturate
from repro.schema import Constraint, Schema
from repro.storage import TripleStore


@pytest.fixture(scope="module")
def data(lubm_graph):
    return list(lubm_graph.data_triples())


@pytest.fixture(scope="module")
def schema_obj(lubm_graph):
    return Schema.from_graph(lubm_graph)


def test_benchmark_initial_saturation(benchmark, lubm_graph):
    saturated = benchmark.pedantic(
        lambda: saturate(lubm_graph), rounds=2, iterations=1
    )
    assert len(saturated) > len(lubm_graph)


def test_benchmark_plain_load(benchmark, lubm_graph):
    """Ref's setup cost: just load and close the (tiny) schema."""
    store = benchmark.pedantic(
        lambda: TripleStore.from_graph(lubm_graph), rounds=2, iterations=1
    )
    assert store.triple_count >= len(lubm_graph)


def test_benchmark_incremental_insert_batch(benchmark, data, schema_obj):
    base = IncrementalSaturator(schema_obj, data[:-500])
    batch = data[-500:]

    def insert_and_rollback():
        base.insert_all(batch)
        base.delete_all(batch)

    benchmark.pedantic(insert_and_rollback, rounds=2, iterations=1)


def test_incremental_vs_recompute(data, schema_obj):
    """Maintaining beats recomputing for small update batches."""
    saturator = IncrementalSaturator(schema_obj, data)
    batch = data[:200]

    start = time.perf_counter()
    saturator.delete_all(batch)
    saturator.insert_all(batch)
    incremental = time.perf_counter() - start

    start = time.perf_counter()
    saturate(Graph(data), schema_obj)
    recompute = time.perf_counter() - start

    print(
        "\nE7: 200-triple churn: incremental %.1f ms vs recompute %.1f ms"
        % (incremental * 1e3, recompute * 1e3)
    )
    assert incremental < recompute


def test_schema_change_costs(data, schema_obj):
    """One new constraint: Sat resaturates everything; Ref re-plans one
    query.  The demo's 'constraint modifications may have a dramatic
    impact'."""
    saturator = IncrementalSaturator(schema_obj, data)
    new_constraint = Constraint.subclass(UB.Lecturer, UB.Professor)

    start = time.perf_counter()
    saturator.add_constraint(new_constraint)
    sat_cost = time.perf_counter() - start

    # Ref's response: reformulate a representative query again.
    from repro.datasets import lubm_queries
    from repro.reformulation import reformulate

    amended = schema_obj.copy()
    amended.add(new_constraint)
    query = lubm_queries()["Q6"]
    start = time.perf_counter()
    reformulate(query, amended)
    ref_cost = time.perf_counter() - start

    rows = [
        ["Sat: full resaturation", "%.1f" % (sat_cost * 1e3)],
        ["Ref: re-reformulate next query", "%.3f" % (ref_cost * 1e3)],
    ]
    print()
    print(
        format_table(
            ["response to constraint change", "time (ms)"],
            rows,
            title="E7: adding 'Lecturer ⊑ Professor'",
        )
    )
    assert ref_cost < sat_cost


def test_saturation_size_overhead(lubm_graph):
    """The storage-side cost of Sat: how many extra triples the
    saturation materializes (the space Ref never spends)."""
    saturated = saturate(lubm_graph)
    overhead = (len(saturated) - len(lubm_graph)) / len(lubm_graph)
    print(
        "\nE7: saturation adds %d triples to %d explicit (%.0f%% overhead)"
        % (len(saturated) - len(lubm_graph), len(lubm_graph), overhead * 100)
    )
    assert overhead > 0.3
