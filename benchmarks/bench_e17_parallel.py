"""E17 — intra-query parallelism: fragment and federation fan-out.

The parallel subsystem's claim: work that *waits* — fragment queries
round-tripping to a backend RDBMS, per-endpoint federation requests —
overlaps on the shared worker pool instead of summing, while the
answers stay identical to the serial run.  Two legs, both on
Example 1:

* **Fragment leg** — the paper's best cover splits Example 1 into four
  fragments, each a UCQ the deployed system ships to its RDBMS.  A
  simulated backend answers each fragment after a fixed round-trip
  latency (a real ``time.sleep``, so the GIL is released exactly as a
  socket wait would release it); fragments are fetched serially vs on
  the pool, then joined and projected identically.

* **Federation leg** — the dataset sharded over four endpoints behind
  :class:`~repro.resilience.faults.ChaosEndpoint` latency injection on
  the system clock; :class:`~repro.federation.client.FederatedAnswerer`
  runs with ``parallelism`` 1 vs N.

Pure-Python CPU work gains nothing from threads (the GIL serializes
it); E17 deliberately measures the latency-bound shape where the pool
pays off — see DESIGN.md §12 for when parallelism helps vs hurts.

Runs two ways: under pytest alongside the other benchmarks, and as a
script (``python benchmarks/bench_e17_parallel.py --quick``) for CI
smoke.  The script asserts the ≥2x speedup at 4 workers on both legs,
checks byte-identical sorted answers, and writes ``BENCH_E17.json``.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Dict, List, Optional, Sequence, Set, Tuple

_SRC = os.path.abspath(
    os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir, "src")
)
if os.path.isdir(_SRC) and _SRC not in sys.path:
    sys.path.insert(0, _SRC)

_REPO_ROOT = os.path.dirname(_SRC)

from repro.bench import format_table, write_json_report
from repro.datasets import (
    example1_best_cover,
    example1_query,
    generate_lubm,
    lubm_queries,
    lubm_schema,
)
from repro.engine.pipeline import join_relations
from repro.federation import Endpoint, FederatedAnswerer
from repro.parallel import ExecutorPool
from repro.query import Variable
from repro.query.evaluation import evaluate_ucq
from repro.rdf import Graph
from repro.reformulation import jucq_for_cover
from repro.resilience.faults import ChaosEndpoint, FaultPlan

WORKER_SWEEP = (1, 2, 4)
FRAGMENT_LATENCY = 0.075  # simulated per-fragment RDBMS round-trip
ENDPOINT_LATENCY = 0.050  # injected per-request endpoint latency


def canonical_bytes(rows) -> bytes:
    """The byte-identity witness: sorted rows, one per line."""
    lines = [
        "|".join(term.lexical() for term in row) for row in sorted(rows)
    ]
    return "\n".join(lines).encode("utf-8")


# ---------------------------------------------------------------------------
# Fragment leg


class SimulatedFragmentBackend:
    """Answers one fragment UCQ after a fixed round-trip latency.

    Stands in for the paper's deployment where each fragment query runs
    on a backend RDBMS: the sleep models the round trip (and releases
    the GIL, like the socket wait it simulates); the evaluation itself
    is the reference evaluator over the shared graph.
    """

    def __init__(self, graph: Graph, latency_seconds: float):
        self.graph = graph
        self.latency_seconds = latency_seconds

    def fetch(self, union) -> Set[Tuple]:
        if self.latency_seconds > 0:
            time.sleep(self.latency_seconds)
        return set(evaluate_ucq(self.graph, union))


def evaluate_fragments(
    jucq, backend: SimulatedFragmentBackend, pool: Optional[ExecutorPool]
):
    """Fetch every fragment (serially or on the pool), then join and
    project — the join/projection phase is serial and identical in both
    modes, so any answer difference would be the fan-out's fault."""
    if pool is not None and pool.usable():
        fragment_rows = pool.map(backend.fetch, list(jucq.fragments))
    else:
        fragment_rows = [backend.fetch(union) for union in jucq.fragments]
    schema: Optional[Tuple] = None
    rows: Set[Tuple] = set()
    for head, fetched in zip(jucq.fragment_heads, fragment_rows):
        if schema is None:
            schema, rows = tuple(head), fetched
        else:
            schema, rows = join_relations(schema, rows, tuple(head), fetched)
    positions = {}
    for index, item in enumerate(schema or ()):
        if isinstance(item, Variable) and item not in positions:
            positions[item] = index
    projected: Set[Tuple] = set()
    for row in rows:
        projected.add(
            tuple(
                row[positions[item]] if isinstance(item, Variable) else item
                for item in jucq.head
            )
        )
    return frozenset(projected)


def run_fragment_leg(
    graph: Graph,
    latency_seconds: float = FRAGMENT_LATENCY,
    workers: Sequence[int] = WORKER_SWEEP,
) -> Dict:
    """Example 1 through the paper's best cover, serial vs pool."""
    query = example1_query()
    cover = example1_best_cover(query)
    schema = lubm_schema()
    jucq = jucq_for_cover(cover, schema)
    backend = SimulatedFragmentBackend(graph, latency_seconds)
    timings: Dict[int, float] = {}
    baseline_bytes = None
    for count in workers:
        pool = ExecutorPool(count) if count > 1 else None
        try:
            start = time.perf_counter()
            answer = evaluate_fragments(jucq, backend, pool)
            timings[count] = time.perf_counter() - start
        finally:
            if pool is not None:
                pool.close()
        encoded = canonical_bytes(answer)
        if baseline_bytes is None:
            baseline_bytes = encoded
            cardinality = len(answer)
        assert encoded == baseline_bytes, (
            "fragment leg: answers diverged at %d workers" % count
        )
    return {
        "latency_seconds": latency_seconds,
        "fragments": jucq.fragment_count(),
        "rows": cardinality,
        "seconds_by_workers": {str(count): timings[count] for count in workers},
        "speedup_at_max": timings[workers[0]] / timings[workers[-1]],
        "identical_answers": True,
    }


# ---------------------------------------------------------------------------
# Federation leg


def build_federation(
    graph: Graph, endpoints: int, latency_seconds: float, parallelism: int
) -> FederatedAnswerer:
    shards = [Graph() for _ in range(endpoints)]
    for index, triple in enumerate(sorted(graph.data_triples())):
        shards[index % endpoints].add(triple)
    sources = [
        ChaosEndpoint(
            Endpoint("shard%d" % index, shard),
            FaultPlan(
                seed=index,
                latency_rate=1.0,
                latency_seconds=latency_seconds,
            ),
        )
        for index, shard in enumerate(shards)
    ]
    return FederatedAnswerer(sources, lubm_schema(), parallelism=parallelism)


def run_federation_leg(
    graph: Graph,
    latency_seconds: float = ENDPOINT_LATENCY,
    endpoints: int = 4,
    workers: Sequence[int] = WORKER_SWEEP,
) -> Dict:
    """LUBM Q2 (six atoms, so 6x4 endpoint requests) over a sharded
    federation, endpoint latency injected on the system clock (real
    sleeps, overlapping only under the pool).  Q2 rather than Example 1
    because this leg isolates *request* overlap: Q2's per-endpoint
    evaluation is milliseconds, so the injected round trips dominate —
    Example 1's open type atoms would instead measure GIL-serialized
    local evaluation."""
    query = lubm_queries()["Q2"]
    timings: Dict[int, float] = {}
    baseline_bytes = None
    for count in workers:
        answerer = build_federation(graph, endpoints, latency_seconds, count)
        start = time.perf_counter()
        result = answerer.answer(query)
        timings[count] = time.perf_counter() - start
        assert result.complete
        encoded = canonical_bytes(result.rows)
        if baseline_bytes is None:
            baseline_bytes = encoded
            cardinality = result.cardinality
            requests = result.requests
        assert encoded == baseline_bytes, (
            "federation leg: answers diverged at %d workers" % count
        )
        assert result.requests == requests, (
            "federation leg: request accounting diverged at %d workers" % count
        )
    return {
        "latency_seconds": latency_seconds,
        "endpoints": endpoints,
        "requests": requests,
        "rows": cardinality,
        "seconds_by_workers": {str(count): timings[count] for count in workers},
        "speedup_at_max": timings[workers[0]] / timings[workers[-1]],
        "identical_answers": True,
    }


def emit_report(results: Dict[str, Dict]) -> str:
    rows: List[List[object]] = []
    for leg, payload in results.items():
        timings = payload["seconds_by_workers"]
        for count in sorted(timings, key=int):
            rows.append(
                [
                    leg,
                    count,
                    "%.1f" % (timings[count] * 1e3),
                    "%.2fx" % (timings["1"] / timings[count]),
                    payload["rows"],
                ]
            )
    return format_table(
        ["leg", "workers", "ms", "speedup", "answer rows"],
        rows,
        title="E17: intra-query parallelism (latency-bound fan-out)",
    )


# ---------------------------------------------------------------------------
# pytest entry points (collected with the rest of benchmarks/)


def test_fragment_leg_identical_answers(lubm_graph):
    result = run_fragment_leg(
        lubm_graph, latency_seconds=0.005, workers=(1, 4)
    )
    assert result["identical_answers"]
    assert result["rows"] > 0
    assert result["fragments"] == 4


def test_federation_leg_identical_answers(lubm_graph):
    result = run_federation_leg(
        lubm_graph, latency_seconds=0.005, endpoints=4, workers=(1, 4)
    )
    assert result["identical_answers"]
    assert result["rows"] > 0


def test_fragment_fanout_overlaps_latency(lubm_graph):
    """Four 50 ms round trips serially cost ≥200 ms; on four workers
    they overlap.  Generous margin: assert any overlap at all, the
    precise ≥2x criterion is the script's (CI smoke) assertion."""
    result = run_fragment_leg(
        lubm_graph, latency_seconds=0.05, workers=(1, 4)
    )
    assert result["speedup_at_max"] > 1.2


# ---------------------------------------------------------------------------
# script entry point (CI smoke: python benchmarks/bench_e17_parallel.py --quick)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="one-university instance; assert the >=2x speedup at 4 "
             "workers on both legs, exit non-zero on miss",
    )
    parser.add_argument("--universities", type=int, default=2)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--output",
        default=os.path.join(_REPO_ROOT, "BENCH_E17.json"),
        help="where to write the JSON artifact",
    )
    args = parser.parse_args(argv)
    universities = 1 if args.quick else args.universities
    graph = generate_lubm(universities=universities, seed=args.seed)
    results = {
        "fragment": run_fragment_leg(graph),
        "federation": run_federation_leg(graph),
    }
    print(emit_report(results))
    payload = {
        "experiment": "E17",
        "claim": "latency-bound fragment/federation fan-out overlaps on "
                 "the worker pool; answers byte-identical to serial",
        "universities": universities,
        "seed": args.seed,
        "legs": results,
    }
    written = write_json_report(args.output, payload)
    print("\nwrote %s" % written)
    failed = False
    for leg, result in results.items():
        speedup = result["speedup_at_max"]
        if speedup < 2.0:
            print(
                "FAIL: %s leg speedup %.2fx < 2.0x at %d workers"
                % (leg, speedup, WORKER_SWEEP[-1]),
                file=sys.stderr,
            )
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
