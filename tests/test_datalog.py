"""Unit tests for the Datalog engine and the Dat encoding."""

import pytest

from repro.datalog import (
    DVar,
    DatalogAtom,
    DatalogProgram,
    DatalogRule,
    answer_query,
    encode,
    evaluate_program,
)
from repro.query import ConjunctiveQuery, TriplePattern, Variable, evaluate_cq
from repro.rdf import Graph, Literal, Namespace, RDF_TYPE, Triple
from repro.saturation import saturate
from repro.schema import Constraint, Schema

EX = Namespace("http://example.org/")


class TestEngine:
    def test_facts_only(self):
        program = DatalogProgram()
        program.add_fact("p", (1, 2))
        result = evaluate_program(program)
        assert result.facts("p") == {(1, 2)}
        assert result.rounds == 1

    def test_transitive_closure(self):
        program = DatalogProgram()
        for edge in ((1, 2), (2, 3), (3, 4)):
            program.add_fact("edge", edge)
        x, y, z = DVar("x"), DVar("y"), DVar("z")
        program.add_rule(
            DatalogRule(DatalogAtom("path", (x, y)), [DatalogAtom("edge", (x, y))])
        )
        program.add_rule(
            DatalogRule(
                DatalogAtom("path", (x, z)),
                [DatalogAtom("edge", (x, y)), DatalogAtom("path", (y, z))],
            )
        )
        result = evaluate_program(program)
        assert result.facts("path") == {
            (1, 2), (2, 3), (3, 4), (1, 3), (2, 4), (1, 4),
        }

    def test_cyclic_terminates(self):
        program = DatalogProgram()
        program.add_fact("edge", (1, 2))
        program.add_fact("edge", (2, 1))
        x, y, z = DVar("x"), DVar("y"), DVar("z")
        program.add_rule(
            DatalogRule(DatalogAtom("path", (x, y)), [DatalogAtom("edge", (x, y))])
        )
        program.add_rule(
            DatalogRule(
                DatalogAtom("path", (x, z)),
                [DatalogAtom("path", (x, y)), DatalogAtom("path", (y, z))],
            )
        )
        result = evaluate_program(program)
        assert result.facts("path") == {(1, 2), (2, 1), (1, 1), (2, 2)}

    def test_constants_in_rules(self):
        program = DatalogProgram()
        program.add_fact("p", (1, 2))
        program.add_fact("p", (3, 2))
        x = DVar("x")
        program.add_rule(
            DatalogRule(DatalogAtom("q", (x,)), [DatalogAtom("p", (x, 2))])
        )
        assert evaluate_program(program).facts("q") == {(1,), (3,)}

    def test_unsafe_rule_rejected(self):
        x, y = DVar("x"), DVar("y")
        with pytest.raises(ValueError):
            DatalogRule(DatalogAtom("q", (x, y)), [DatalogAtom("p", (x,))])

    def test_empty_body_rejected(self):
        with pytest.raises(ValueError):
            DatalogRule(DatalogAtom("q", (1,)), [])

    def test_non_ground_fact_rejected(self):
        program = DatalogProgram()
        with pytest.raises(ValueError):
            program.add_fact("p", (DVar("x"),))

    def test_arity_conflict_rejected(self):
        program = DatalogProgram()
        program.add_fact("p", (1,))
        program.add_fact("p", (1, 2))
        with pytest.raises(ValueError):
            evaluate_program(program)

    def test_repeated_variable_in_body_atom(self):
        program = DatalogProgram()
        program.add_fact("p", (1, 1))
        program.add_fact("p", (1, 2))
        x = DVar("x")
        program.add_rule(
            DatalogRule(DatalogAtom("diag", (x,)), [DatalogAtom("p", (x, x))])
        )
        assert evaluate_program(program).facts("diag") == {(1,)}


class TestDatEncoding:
    def test_matches_saturation_on_books(self, books, books_saturated):
        graph, schema, query = books
        expected = evaluate_cq(books_saturated, query)
        assert answer_query(graph, schema, query) == expected

    def test_entailed_constraints_query_visible(self):
        graph = Graph([Triple(EX.a, RDF_TYPE, EX.A)])
        schema = Schema(
            [
                Constraint.subclass(EX.A, EX.B),
                Constraint.subclass(EX.B, EX.C),
            ]
        )
        x, y = Variable("x"), Variable("y")
        from repro.rdf import RDFS_SUBCLASSOF

        query = ConjunctiveQuery(
            [x, y], [TriplePattern(x, RDFS_SUBCLASSOF, y)]
        )
        answer = answer_query(graph, schema, query)
        assert (EX.A, EX.C) in answer

    def test_literal_never_typed_by_range(self):
        graph = Graph([Triple(EX.a, EX.p, Literal("v"))])
        schema = Schema([Constraint.range(EX.p, EX.C)])
        x = Variable("x")
        query = ConjunctiveQuery([x], [TriplePattern(x, RDF_TYPE, EX.C)])
        assert answer_query(graph, schema, query) == frozenset()

    def test_inadmissible_constraint_fires_nothing(self):
        from repro.rdf import RDFS_DOMAIN

        graph = Graph(
            [
                Triple(EX.a, RDF_TYPE, EX.C),
                Triple(RDF_TYPE, RDFS_DOMAIN, EX.D),
            ]
        )
        x = Variable("x")
        query = ConjunctiveQuery([x], [TriplePattern(x, RDF_TYPE, EX.D)])
        assert answer_query(graph, Schema(), query) == frozenset()

    def test_program_shape(self, books):
        graph, schema, query = books
        program = encode(graph, schema, query)
        predicates = {predicate for predicate, _ in program.facts}
        assert "triple" in predicates
        assert "subjectable" in predicates
        # 14 entailment rules + 1 query rule.
        assert len(program.rules) == 15

    def test_matches_saturation_on_lubm_sample(self, lubm_small):
        from repro.datasets import lubm_queries

        schema = Schema.from_graph(lubm_small)
        saturated = saturate(lubm_small)
        for name in ("Q1", "Q5", "Q6", "Q13"):
            query = lubm_queries()[name]
            expected = evaluate_cq(saturated, query)
            assert answer_query(lubm_small, schema, query) == expected
