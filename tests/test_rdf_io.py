"""Unit tests for the N-Triples-style reader/writer."""

import io

import pytest

from repro.rdf import (
    BlankNode,
    Graph,
    Literal,
    Namespace,
    ParseError,
    Triple,
    URI,
    graph_to_string,
    parse_line,
    parse_term,
    read_ntriples,
    write_ntriples,
)

EX = Namespace("http://example.org/")


class TestParseTerm:
    def test_uri(self):
        assert parse_term("<http://e/a>") == URI("http://e/a")

    def test_blank_node(self):
        assert parse_term("_:b1") == BlankNode("b1")

    def test_plain_literal(self):
        assert parse_term('"hello"') == Literal("hello")

    def test_typed_literal(self):
        term = parse_term('"1"^^<http://www.w3.org/2001/XMLSchema#integer>')
        assert term.value == "1"
        assert term.datatype.value.endswith("integer")

    def test_escaped_literal_roundtrip(self):
        original = Literal('say "hi"\nthere\\')
        assert parse_term(original.n3()) == original

    def test_empty_uri_rejected(self):
        with pytest.raises(ParseError):
            parse_term("<>")

    def test_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_term("??")


class TestParseLine:
    def test_simple(self):
        triple = parse_line("<http://e/a> <http://e/p> <http://e/b> .")
        assert triple == Triple(URI("http://e/a"), URI("http://e/p"), URI("http://e/b"))

    def test_missing_term(self):
        with pytest.raises(ParseError):
            parse_line("<http://e/a> <http://e/p> .")

    def test_extra_term(self):
        with pytest.raises(ParseError):
            parse_line("<http://e/a> <http://e/p> <http://e/b> <http://e/c> .")

    def test_literal_property_rejected(self):
        with pytest.raises(ParseError):
            parse_line('<http://e/a> "p" <http://e/b> .')

    def test_error_carries_line_number(self):
        with pytest.raises(ParseError) as info:
            parse_line("junk !", line_number=7)
        assert "line 7" in str(info.value)


class TestGraphIO:
    def test_roundtrip(self):
        graph = Graph(
            [
                Triple(EX.a, EX.p, EX.b),
                Triple(EX.a, EX.q, Literal("v w")),
                Triple(BlankNode("n"), EX.p, Literal('quo"te')),
            ]
        )
        assert read_ntriples(graph_to_string(graph)) == graph

    def test_comments_and_blanks_skipped(self):
        text = "# header\n\n<http://e/a> <http://e/p> <http://e/b> .\n"
        assert len(read_ntriples(text)) == 1

    def test_write_is_sorted(self):
        graph = Graph([Triple(EX.b, EX.p, EX.o), Triple(EX.a, EX.p, EX.o)])
        lines = graph_to_string(graph).splitlines()
        assert lines == sorted(lines)

    def test_write_returns_count(self):
        buffer = io.StringIO()
        graph = Graph([Triple(EX.a, EX.p, EX.b)])
        assert write_ntriples(graph, buffer) == 1

    def test_file_roundtrip(self, tmp_path):
        from repro.rdf import load_file, save_file

        graph = Graph([Triple(EX.a, EX.p, Literal("v"))])
        path = str(tmp_path / "g.nt")
        assert save_file(graph, path) == 1
        assert load_file(path) == graph

    def test_parse_error_includes_line(self):
        with pytest.raises(ParseError) as info:
            read_ntriples("<http://e/a> <http://e/p> <http://e/b> .\nbad line\n")
        assert info.value.line_number == 2


class TestParseErrorDiagnostics:
    def test_error_carries_offending_text(self):
        with pytest.raises(ParseError) as info:
            read_ntriples("this is not a triple !\n")
        error = info.value
        assert error.line_number == 1
        assert error.line_text == "this is not a triple !"
        assert "this is not a triple !" in str(error)
        assert error.reason  # the bare message survives separately

    def test_term_level_error_still_carries_line(self):
        with pytest.raises(ParseError) as info:
            read_ntriples('<http://e/a> "p" <http://e/b> .\n')
        assert info.value.line_number == 1
        assert info.value.line_text is not None


class TestLenientMode:
    TEXT = (
        "<http://e/a> <http://e/p> <http://e/b> .\n"
        "junk one !\n"
        "<http://e/c> <http://e/p> <http://e/d> .\n"
        "junk two ?\n"
    )

    def test_strict_false_skips_and_collects(self):
        errors = []
        graph = read_ntriples(self.TEXT, strict=False, errors=errors)
        assert len(graph) == 2
        assert [error.line_number for error in errors] == [2, 4]
        assert errors[0].line_text == "junk one !"
        assert errors[1].line_text == "junk two ?"

    def test_strict_false_without_error_list(self):
        assert len(read_ntriples(self.TEXT, strict=False)) == 2

    def test_strict_default_raises_on_first_bad_line(self):
        with pytest.raises(ParseError) as info:
            read_ntriples(self.TEXT)
        assert info.value.line_number == 2

    def test_load_file_lenient(self, tmp_path):
        from repro.rdf import load_file

        path = tmp_path / "messy.nt"
        path.write_text(self.TEXT, encoding="utf-8")
        errors = []
        graph = load_file(str(path), strict=False, errors=errors)
        assert len(graph) == 2 and len(errors) == 2


class TestLiteralEscaping:
    def test_backslash_n_sequence_is_not_a_newline(self):
        # The regression the single-pass unescaper guards: an escaped
        # backslash followed by 'n' must NOT decode to a newline.
        literal = Literal("back\\nslash")  # backslash + 'n', no newline
        assert parse_term(literal.n3()) == literal

    def test_carriage_return_and_tab_round_trip(self):
        literal = Literal("a\rb\tc")
        token = literal.n3()
        assert "\r" not in token and "\t" not in token
        assert parse_term(token) == literal

    def test_datatype_marker_inside_value(self):
        # Regression: '^^' inside the *value* must not be mistaken for
        # the datatype separator (the old parser split on it textually).
        assert parse_term('"a^^b"') == Literal("a^^b")
        typed = Literal("x^^y", URI("http://www.w3.org/2001/XMLSchema#string"))
        assert parse_term(typed.n3()) == typed
