"""Unit tests for the N-Triples-style reader/writer."""

import io

import pytest

from repro.rdf import (
    BlankNode,
    Graph,
    Literal,
    Namespace,
    ParseError,
    Triple,
    URI,
    graph_to_string,
    parse_line,
    parse_term,
    read_ntriples,
    write_ntriples,
)

EX = Namespace("http://example.org/")


class TestParseTerm:
    def test_uri(self):
        assert parse_term("<http://e/a>") == URI("http://e/a")

    def test_blank_node(self):
        assert parse_term("_:b1") == BlankNode("b1")

    def test_plain_literal(self):
        assert parse_term('"hello"') == Literal("hello")

    def test_typed_literal(self):
        term = parse_term('"1"^^<http://www.w3.org/2001/XMLSchema#integer>')
        assert term.value == "1"
        assert term.datatype.value.endswith("integer")

    def test_escaped_literal_roundtrip(self):
        original = Literal('say "hi"\nthere\\')
        assert parse_term(original.n3()) == original

    def test_empty_uri_rejected(self):
        with pytest.raises(ParseError):
            parse_term("<>")

    def test_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_term("??")


class TestParseLine:
    def test_simple(self):
        triple = parse_line("<http://e/a> <http://e/p> <http://e/b> .")
        assert triple == Triple(URI("http://e/a"), URI("http://e/p"), URI("http://e/b"))

    def test_missing_term(self):
        with pytest.raises(ParseError):
            parse_line("<http://e/a> <http://e/p> .")

    def test_extra_term(self):
        with pytest.raises(ParseError):
            parse_line("<http://e/a> <http://e/p> <http://e/b> <http://e/c> .")

    def test_literal_property_rejected(self):
        with pytest.raises(ParseError):
            parse_line('<http://e/a> "p" <http://e/b> .')

    def test_error_carries_line_number(self):
        with pytest.raises(ParseError) as info:
            parse_line("junk !", line_number=7)
        assert "line 7" in str(info.value)


class TestGraphIO:
    def test_roundtrip(self):
        graph = Graph(
            [
                Triple(EX.a, EX.p, EX.b),
                Triple(EX.a, EX.q, Literal("v w")),
                Triple(BlankNode("n"), EX.p, Literal('quo"te')),
            ]
        )
        assert read_ntriples(graph_to_string(graph)) == graph

    def test_comments_and_blanks_skipped(self):
        text = "# header\n\n<http://e/a> <http://e/p> <http://e/b> .\n"
        assert len(read_ntriples(text)) == 1

    def test_write_is_sorted(self):
        graph = Graph([Triple(EX.b, EX.p, EX.o), Triple(EX.a, EX.p, EX.o)])
        lines = graph_to_string(graph).splitlines()
        assert lines == sorted(lines)

    def test_write_returns_count(self):
        buffer = io.StringIO()
        graph = Graph([Triple(EX.a, EX.p, EX.b)])
        assert write_ntriples(graph, buffer) == 1

    def test_file_roundtrip(self, tmp_path):
        from repro.rdf import load_file, save_file

        graph = Graph([Triple(EX.a, EX.p, Literal("v"))])
        path = str(tmp_path / "g.nt")
        assert save_file(graph, path) == 1
        assert load_file(path) == graph

    def test_parse_error_includes_line(self):
        with pytest.raises(ParseError) as info:
            read_ntriples("<http://e/a> <http://e/p> <http://e/b> .\nbad line\n")
        assert info.value.line_number == 2
