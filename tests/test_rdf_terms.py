"""Unit tests for RDF terms: identity, ordering, immutability."""

import pytest

from repro.rdf import BlankNode, Literal, URI
from repro.rdf.namespaces import XSD_NS


class TestURI:
    def test_equality_by_value(self):
        assert URI("http://e/a") == URI("http://e/a")
        assert URI("http://e/a") != URI("http://e/b")

    def test_hashable(self):
        assert len({URI("http://e/a"), URI("http://e/a")}) == 1

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            URI("")

    def test_rejects_non_string(self):
        with pytest.raises(ValueError):
            URI(42)

    def test_immutable(self):
        uri = URI("http://e/a")
        with pytest.raises(AttributeError):
            uri.value = "http://e/b"

    def test_n3(self):
        assert URI("http://e/a").n3() == "<http://e/a>"

    def test_local_name_fragment(self):
        assert URI("http://e/ns#Book").local_name() == "Book"

    def test_local_name_path(self):
        assert URI("http://e/ns/Book").local_name() == "Book"

    def test_local_name_opaque(self):
        assert URI("urn:isbn:123").local_name() == "urn:isbn:123"


class TestBlankNode:
    def test_equality_by_label(self):
        assert BlankNode("b1") == BlankNode("b1")
        assert BlankNode("b1") != BlankNode("b2")

    def test_not_equal_to_uri(self):
        assert BlankNode("b1") != URI("b1")

    def test_fresh_labels_unique(self):
        labels = {BlankNode.fresh().label for _ in range(100)}
        assert len(labels) == 100

    def test_rejects_empty_label(self):
        with pytest.raises(ValueError):
            BlankNode("")

    def test_n3(self):
        assert BlankNode("b1").n3() == "_:b1"


class TestLiteral:
    def test_equality_includes_datatype(self):
        typed = Literal("1", XSD_NS.term("integer"))
        assert Literal("1") != typed
        assert typed == Literal("1", XSD_NS.term("integer"))

    def test_n3_plain(self):
        assert Literal("1949").n3() == '"1949"'

    def test_n3_typed(self):
        literal = Literal("1", XSD_NS.term("integer"))
        assert literal.n3() == '"1"^^<http://www.w3.org/2001/XMLSchema#integer>'

    def test_n3_escapes(self):
        assert Literal('say "hi"\n').n3() == '"say \\"hi\\"\\n"'

    def test_rejects_non_string_value(self):
        with pytest.raises(ValueError):
            Literal(1949)

    def test_rejects_non_uri_datatype(self):
        with pytest.raises(ValueError):
            Literal("1", "integer")


class TestOrdering:
    def test_group_order_uri_bnode_literal(self):
        terms = [Literal("a"), BlankNode("a"), URI("a")]
        assert sorted(terms) == [URI("a"), BlankNode("a"), Literal("a")]

    def test_lexicographic_within_group(self):
        assert URI("http://a") < URI("http://b")

    def test_sort_is_deterministic(self):
        terms = [URI("b"), Literal("a"), BlankNode("c"), URI("a")]
        assert sorted(terms) == sorted(reversed(sorted(terms)))
