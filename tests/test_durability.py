"""Unit tests for the crash-safe storage layer.

Covers the WAL record codec (framing, torn/corrupt truncation), the
checkpoint codec (self-validating header, atomic publication,
corrupt-fallback), the op codec, and the :class:`DurableStore` facade:
reopen equality, epoch persistence, incremental-saturation recovery,
retention pruning, and the satellite guarantee that a recovered
store's statistics equal a fresh ``from_graph`` build.
"""

from __future__ import annotations

import pytest

from repro.cache import QueryCache
from repro.core import QueryAnswerer, Strategy
from repro.datasets import books_example_query, books_graph, books_schema
from repro.durability import (
    CheckpointCorrupt,
    DurableStore,
    FileSystem,
    HEADER_SIZE,
    MAX_PAYLOAD,
    OP_CONSTRAINT_ADD,
    OP_CONSTRAINT_REMOVE,
    OP_DELETE,
    OP_INSERT,
    WALFormatError,
    WriteAheadLog,
    decode_checkpoint,
    decode_op,
    decode_records,
    encode_checkpoint,
    encode_op,
    encode_record,
    recover,
    verify_recovery,
    wal_path,
)
from repro.rdf import Literal, Namespace, RDF_TYPE, Triple
from repro.schema import Constraint
from repro.storage import TripleStore

EX = Namespace("http://example.org/")


def sample_triples(count=6):
    return [Triple(EX.term("s%d" % i), RDF_TYPE, EX.C) for i in range(count)]


# ---------------------------------------------------------------------------
# WAL record codec


class TestRecordCodec:
    def test_round_trip(self):
        payloads = [b"", b"x", b"hello world", bytes(range(256))]
        data = b"".join(encode_record(p) for p in payloads)
        result = decode_records(data)
        assert result.records == payloads
        assert result.valid_length == len(data)
        assert not result.truncated

    def test_torn_tail_is_truncated_not_raised(self):
        data = encode_record(b"ok") + encode_record(b"torn")[:-1]
        result = decode_records(data)
        assert result.records == [b"ok"]
        assert result.truncated and result.reason == "torn record"
        assert result.valid_length == HEADER_SIZE + 2

    def test_torn_header(self):
        data = encode_record(b"ok") + b"WR\x01"  # header cut short
        result = decode_records(data)
        assert result.records == [b"ok"]
        assert result.reason == "torn record"

    def test_bad_magic_is_corrupt(self):
        data = encode_record(b"ok") + b"XX" + b"\x00" * 20
        result = decode_records(data)
        assert result.records == [b"ok"]
        assert result.reason == "corrupt record"

    def test_flipped_payload_bit_is_corrupt(self):
        record = bytearray(encode_record(b"payload"))
        record[-1] ^= 0x40
        result = decode_records(bytes(record))
        assert result.records == []
        assert result.reason == "corrupt record"
        assert result.valid_length == 0

    def test_insane_length_is_corrupt(self):
        import struct

        frame = struct.pack("<2sII", b"WR", MAX_PAYLOAD + 1, 0)
        result = decode_records(frame + b"\x00" * 64)
        assert result.reason == "corrupt record"

    def test_oversize_payload_rejected_on_encode(self):
        with pytest.raises(ValueError):
            encode_record(b"\x00" * (MAX_PAYLOAD + 1))


class TestWriteAheadLog:
    def test_append_read_round_trip(self, tmp_path):
        log = WriteAheadLog(str(tmp_path / "wal.log"), sync="never")
        for payload in (b"one", b"two", b"three"):
            log.append(payload)
        reread = WriteAheadLog(str(tmp_path / "wal.log"), sync="never")
        assert reread.size == log.size
        assert reread.read_from().records == [b"one", b"two", b"three"]

    def test_read_from_offset(self, tmp_path):
        log = WriteAheadLog(str(tmp_path / "wal.log"), sync="never")
        first_end = log.append(b"first")
        log.append(b"second")
        assert log.read_from(first_end).records == [b"second"]

    def test_missing_file_reads_empty(self, tmp_path):
        log = WriteAheadLog(str(tmp_path / "absent.log"), sync="never")
        result = log.read_from()
        assert result.records == [] and not result.truncated

    def test_truncate_to(self, tmp_path):
        log = WriteAheadLog(str(tmp_path / "wal.log"), sync="never")
        keep = log.append(b"keep")
        log.append(b"drop")
        log.truncate_to(keep)
        assert WriteAheadLog(str(tmp_path / "wal.log")).read_from().records == [
            b"keep"
        ]

    def test_bad_sync_policy_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            WriteAheadLog(str(tmp_path / "wal.log"), sync="sometimes")


# ---------------------------------------------------------------------------
# Op codec


class TestOpCodec:
    def test_round_trip_all_ops(self):
        triple = Triple(EX.a, EX.p, Literal('tricky "quote" \\ \n value'))
        schema_triple = Constraint.subclass(EX.C, EX.D).to_triple()
        for op, subject in [
            (OP_INSERT, triple),
            (OP_DELETE, triple),
            (OP_CONSTRAINT_ADD, schema_triple),
            (OP_CONSTRAINT_REMOVE, schema_triple),
        ]:
            assert decode_op(encode_op(op, subject)) == (op, subject)

    def test_unknown_tag_rejected(self):
        with pytest.raises(WALFormatError):
            decode_op(b"Z+ <http://a> <http://b> <http://c> .")

    def test_non_utf8_rejected(self):
        with pytest.raises(WALFormatError):
            decode_op(b"T+ \xff\xfe")

    def test_bad_triple_rejected(self):
        with pytest.raises(WALFormatError):
            decode_op(b"T+ not a triple at all")

    def test_unknown_op_rejected_on_encode(self):
        with pytest.raises(ValueError):
            encode_op("X?", Triple(EX.a, EX.p, EX.b))


# ---------------------------------------------------------------------------
# Checkpoint codec


class TestCheckpointCodec:
    BODY = {"format": 1, "sequence": 1, "wal_segment": 1, "wal_offset": 0}

    def test_round_trip(self):
        assert decode_checkpoint(encode_checkpoint(self.BODY)) == self.BODY

    def test_missing_header(self):
        with pytest.raises(CheckpointCorrupt):
            decode_checkpoint(b"{}")

    def test_header_without_newline(self):
        with pytest.raises(CheckpointCorrupt):
            decode_checkpoint(b"REPRO-CHECKPOINT v1 crc32=0 length=0")

    def test_torn_body(self):
        data = encode_checkpoint(self.BODY)
        with pytest.raises(CheckpointCorrupt):
            decode_checkpoint(data[:-3])

    def test_flipped_body_bit(self):
        data = bytearray(encode_checkpoint(self.BODY))
        data[-1] ^= 0x01
        with pytest.raises(CheckpointCorrupt):
            decode_checkpoint(bytes(data))

    def test_wrong_format_version(self):
        with pytest.raises(CheckpointCorrupt):
            decode_checkpoint(encode_checkpoint(dict(self.BODY, format=99)))


# ---------------------------------------------------------------------------
# DurableStore: reopen equality and recovery behavior


class TestDurableStore:
    def test_reopen_restores_triples_and_schema(self, tmp_path):
        directory = str(tmp_path / "wal")
        durable = DurableStore.open(directory, sync="never")
        durable.load(books_graph(), books_schema())
        expected = set(durable.store.to_graph())
        closure = set(durable.store.schema.entailed_triples())
        durable.close()

        reopened = DurableStore.open(directory, sync="never")
        assert set(reopened.store.to_graph()) == expected
        assert set(reopened.store.schema.entailed_triples()) == closure

    def test_reopen_after_checkpoint_and_suffix(self, tmp_path):
        directory = str(tmp_path / "wal")
        durable = DurableStore.open(directory, sync="never")
        triples = sample_triples()
        for triple in triples[:3]:
            durable.insert(triple)
        durable.checkpoint()
        for triple in triples[3:]:
            durable.insert(triple)
        durable.delete(triples[0])
        durable.close()

        result = recover(directory)
        assert result.checkpoint_sequence == 1
        # Only the post-checkpoint suffix replays.
        assert result.records_replayed == 4
        assert set(result.store.to_graph()) == set(triples[1:])

    def test_deletes_and_constraint_removal_replay(self, tmp_path):
        directory = str(tmp_path / "wal")
        durable = DurableStore.open(directory, sync="never",
                                    with_saturator=True)
        constraint = Constraint.subclass(EX.Manager, EX.Employee)
        durable.add_constraint(constraint)
        durable.insert(Triple(EX.ann, RDF_TYPE, EX.Manager))
        durable.remove_constraint(constraint)
        durable.close()

        result = recover(directory, with_saturator=True)
        saturated = result.saturator.saturated()
        assert Triple(EX.ann, RDF_TYPE, EX.Manager) in saturated
        assert Triple(EX.ann, RDF_TYPE, EX.Employee) not in saturated
        assert len(result.store.schema) == 0

    def test_constraint_is_one_record(self, tmp_path):
        """One C+ record covers its derived schema-triple inserts."""
        directory = str(tmp_path / "wal")
        durable = DurableStore.open(directory, sync="never")
        durable.add_constraint(Constraint.subclass(EX.A, EX.B))
        durable.add_constraint(Constraint.subclass(EX.B, EX.C))  # closes A<C
        assert durable.records_logged == 2
        durable.close()
        result = recover(directory)
        assert set(result.store.schema.entailed_triples()) == {
            Constraint.subclass(EX.A, EX.B).to_triple(),
            Constraint.subclass(EX.B, EX.C).to_triple(),
            Constraint.subclass(EX.A, EX.C).to_triple(),
        }

    def test_duplicate_ops_not_logged(self, tmp_path):
        durable = DurableStore.open(str(tmp_path / "wal"), sync="never")
        triple = Triple(EX.a, RDF_TYPE, EX.C)
        assert durable.insert(triple)
        assert not durable.insert(triple)
        assert not durable.delete(Triple(EX.zz, RDF_TYPE, EX.C))
        assert durable.records_logged == 1

    def test_epochs_survive_recovery(self, tmp_path):
        directory = str(tmp_path / "wal")
        durable = DurableStore.open(directory, sync="never")
        durable.add_constraint(Constraint.subclass(EX.A, EX.B))
        for triple in sample_triples(4):
            durable.insert(triple)
        live = (durable.data_epoch, durable.schema_epoch)
        durable.checkpoint()
        durable.insert(Triple(EX.extra, RDF_TYPE, EX.C))
        durable.close()

        reopened = DurableStore.open(directory)
        assert reopened.data_epoch == live[0] + 1
        assert reopened.schema_epoch == live[1]

        cache = QueryCache()
        reopened.attach_cache(cache)
        assert cache.data_epoch == reopened.data_epoch
        assert cache.schema_epoch == reopened.schema_epoch
        # Epochs never move backwards on attach.
        advanced = QueryCache()
        advanced.data_epoch = 10 ** 6
        reopened.attach_cache(advanced)
        assert advanced.data_epoch == 10 ** 6

    def test_corrupt_latest_checkpoint_falls_back(self, tmp_path):
        directory = str(tmp_path / "wal")
        durable = DurableStore.open(directory, sync="never")
        triples = sample_triples()
        for triple in triples[:2]:
            durable.insert(triple)
        durable.checkpoint()
        for triple in triples[2:4]:
            durable.insert(triple)
        second = durable.checkpoint()
        durable.close()

        # Bit-rot the newest checkpoint; the previous one (and its
        # retained WAL segments) must reconstruct the same state.
        blob = bytearray(FileSystem().read(second))
        blob[len(blob) // 2] ^= 0x10
        FileSystem().write(second, bytes(blob))

        result = recover(directory)
        assert result.checkpoint_sequence == 1
        assert result.corrupt_checkpoints
        assert set(result.store.to_graph()) == set(triples[:4])

    def test_all_checkpoints_corrupt_replays_wal_from_scratch(self, tmp_path):
        directory = str(tmp_path / "wal")
        durable = DurableStore.open(directory, sync="never")
        triples = sample_triples(4)
        for triple in triples:
            durable.insert(triple)
        path = durable.checkpoint()
        durable.close()
        FileSystem().write(path, b"REPRO-CHECKPOINT v1 garbage\n{}")

        result = recover(directory)
        assert result.checkpoint_sequence is None
        assert set(result.store.to_graph()) == set(triples)

    def test_garbage_wal_tail_truncated_and_resumable(self, tmp_path):
        directory = str(tmp_path / "wal")
        durable = DurableStore.open(directory, sync="never")
        triples = sample_triples(4)
        for triple in triples[:3]:
            durable.insert(triple)
        durable.close()
        io = FileSystem()
        io.append(wal_path(directory, 0), b"\xde\xad\xbe\xef")
        io.close_all()

        result = recover(directory)
        assert result.truncated and result.truncated_bytes == 4
        assert set(result.store.to_graph()) == set(triples[:3])

        # Truncation is physical: appends continue cleanly after it.
        reopened = DurableStore.open(directory, sync="never")
        reopened.insert(triples[3])
        reopened.close()
        assert set(recover(directory).store.to_graph()) == set(triples)

    def test_valid_record_with_alien_payload_truncates(self, tmp_path):
        directory = str(tmp_path / "wal")
        durable = DurableStore.open(directory, sync="never")
        durable.insert(Triple(EX.a, RDF_TYPE, EX.C))
        durable.wal.append(b"not an op at all")
        durable.insert(Triple(EX.b, RDF_TYPE, EX.C))
        durable.close()

        result = recover(directory)
        assert result.truncated
        assert "undecodable" in result.reason
        # The prefix property holds: everything after the alien record
        # is dropped even though its frames were valid.
        assert set(result.store.to_graph()) == {Triple(EX.a, RDF_TYPE, EX.C)}

    def test_retention_keeps_fallback_checkpoint(self, tmp_path):
        directory = str(tmp_path / "wal")
        durable = DurableStore.open(directory, sync="never")
        for index, triple in enumerate(sample_triples(5)):
            durable.insert(triple)
            durable.checkpoint()
        durable.close()
        io = FileSystem()
        names = io.listdir(directory)
        checkpoints = [n for n in names if n.startswith("checkpoint-")]
        assert checkpoints == [
            "checkpoint-00000004.ckpt", "checkpoint-00000005.ckpt"
        ]
        # Segments older than the fallback checkpoint's are pruned.
        segments = [n for n in names if n.startswith("wal-")]
        assert min(segments) >= "wal-00000004.log"
        assert set(recover(directory).store.to_graph()) == set(
            sample_triples(5))

    def test_pinned_snapshot_survives_checkpoint_rotation(self, tmp_path):
        # A pinned snapshot must stay readable after the checkpoint it
        # froze against is rotated out by the retention window: the
        # pin's lifetime is the reader's, not the pruner's.
        directory = str(tmp_path / "wal")
        durable = DurableStore.open(directory, sync="never")
        triples = sample_triples(6)
        for triple in triples[:3]:
            durable.insert(triple)
        durable.checkpoint()
        snapshot = durable.pin_snapshot()
        pinned_label = snapshot.label
        # Three more checkpoints push the pin-time one past the
        # retention window (KEEP_CHECKPOINTS = 2) and prune it.
        for triple in triples[3:]:
            durable.insert(triple)
            durable.checkpoint()
        io = FileSystem()
        checkpoints = sorted(
            n for n in io.listdir(directory) if n.startswith("checkpoint-"))
        assert "checkpoint-00000001.ckpt" not in checkpoints
        # The pinned view still reads the pre-rotation state exactly.
        assert snapshot.label == pinned_label
        assert set(snapshot.store().to_graph()) == set(triples[:3])
        assert durable.store.triple_count == 6
        snapshot.release()
        durable.close()

    def test_recover_empty_directory(self, tmp_path):
        result = recover(str(tmp_path / "nothing"))
        assert result.empty
        assert result.store.triple_count == 0
        summary = result.summary()
        assert summary["empty"] is True and summary["triples"] == 0


# ---------------------------------------------------------------------------
# Satellite: recovered statistics equal a fresh from_graph build


class TestRecoveredStatistics:
    def _per_property(self, store):
        """Per-property statistics keyed by decoded term — id
        assignment differs between recovery paths and from_graph."""
        return {
            store.dictionary.decode(property_id): (
                stats.triples,
                stats.distinct_subjects,
                stats.distinct_objects,
            )
            for property_id, stats in store.statistics.per_property.items()
        }

    def _class_cardinality(self, store):
        return {
            store.dictionary.decode(class_id): count
            for class_id, count in store.statistics.class_cardinality.items()
        }

    def _assert_stats_match_fresh(self, recovered):
        fresh = TripleStore.from_graph(recovered.to_graph(), recovered.schema)
        assert self._per_property(recovered) == self._per_property(fresh)
        assert self._class_cardinality(recovered) == self._class_cardinality(
            fresh)
        assert recovered.statistics.total_triples == (
            fresh.statistics.total_triples)

    def test_stats_after_wal_only_recovery(self, tmp_path):
        directory = str(tmp_path / "wal")
        durable = DurableStore.open(directory, sync="never")
        durable.load(books_graph(), books_schema())
        durable.close()
        self._assert_stats_match_fresh(recover(directory).store)

    def test_stats_after_checkpoint_recovery(self, tmp_path):
        directory = str(tmp_path / "wal")
        durable = DurableStore.open(directory, sync="never")
        durable.load(books_graph(), books_schema())
        durable.checkpoint()
        durable.insert(Triple(EX.late, RDF_TYPE, EX.C))
        durable.close()
        self._assert_stats_match_fresh(recover(directory).store)

    def test_stats_after_delete_heavy_history(self, tmp_path):
        directory = str(tmp_path / "wal")
        durable = DurableStore.open(directory, sync="never")
        triples = sample_triples(8)
        for triple in triples:
            durable.insert(triple)
        for triple in triples[::2]:
            durable.delete(triple)
        durable.close()
        recovered = recover(directory).store
        assert set(recovered.to_graph()) == set(triples[1::2])
        self._assert_stats_match_fresh(recovered)

    def test_verify_recovery_passes_on_clean_state(self, tmp_path):
        directory = str(tmp_path / "wal")
        durable = DurableStore.open(directory, sync="never",
                                    with_saturator=True)
        durable.load(books_graph(), books_schema())
        durable.checkpoint()
        durable.close()
        result = recover(directory, with_saturator=True)
        assert verify_recovery(result) == []


# ---------------------------------------------------------------------------
# Query answers survive recovery


class TestAnswersAfterRecovery:
    def test_books_answers_equal_after_reopen(self, tmp_path):
        directory = str(tmp_path / "wal")
        durable = DurableStore.open(directory, sync="never")
        durable.load(books_graph(), books_schema())
        durable.close()

        query = books_example_query()
        result = recover(directory)
        recovered_answer = QueryAnswerer(result.store.to_graph()).answer(
            query, Strategy.REF_UCQ)
        fresh_answer = QueryAnswerer(
            books_graph(), schema=books_schema()).answer(
                query, Strategy.REF_UCQ)
        assert recovered_answer.answer == fresh_answer.answer
        assert recovered_answer.cardinality > 0
