"""Unit tests for plan explain output and the beam-search optimizer."""

import pytest

from repro.datasets import example1_query, generate_lubm, lubm_queries
from repro.optimizer import CoverCostEstimator, beam_search, gcov
from repro.query import ConjunctiveQuery, TriplePattern, Variable
from repro.reformulation import reformulate
from repro.rdf import Graph, Namespace, RDF_TYPE, Triple
from repro.schema import Constraint
from repro.storage import Executor, TripleStore, explain, plan_summary

EX = Namespace("http://example.org/")
x, y = Variable("x"), Variable("y")


@pytest.fixture(scope="module")
def small_store():
    graph = Graph(
        [
            Triple(EX.a, RDF_TYPE, EX.C),
            Triple(EX.b, RDF_TYPE, EX.C),
            Triple(EX.a, EX.p, EX.b),
            Constraint.subclass(EX.D, EX.C).to_triple(),
        ]
    )
    return TripleStore.from_graph(graph)


class TestExplain:
    def test_scan_line_decodes_constants(self, small_store):
        executor = Executor(small_store)
        query = ConjunctiveQuery([x], [TriplePattern(x, RDF_TYPE, EX.C)])
        result = executor.run(query)
        text = explain(result.plan, small_store)
        assert "Scan(?x, rdf:type, C)" in text
        assert "actual=" in text

    def test_join_line(self, small_store):
        executor = Executor(small_store)
        query = ConjunctiveQuery(
            [x, y],
            [TriplePattern(x, RDF_TYPE, EX.C), TriplePattern(x, EX.p, y)],
        )
        text = explain(executor.run(query).plan, small_store)
        assert "Join" in text
        assert "?x" in text

    def test_union_elision(self, small_store):
        schema = small_store.schema
        # Build a union with several inputs by reformulating a type atom
        # against an enlarged schema.
        enlarged = schema.copy()
        for index in range(6):
            enlarged.add(Constraint.subclass(EX.term("Sub%d" % index), EX.C))
        store = TripleStore.from_graph(small_store.to_graph(), enlarged)
        query = ConjunctiveQuery([x], [TriplePattern(x, RDF_TYPE, EX.C)])
        union = reformulate(query, enlarged)
        plan = Executor(store).planner.plan(union)
        text = explain(plan, store, max_union_children=2)
        assert "more inputs" in text

    def test_unexecuted_plan_has_no_actuals(self, small_store):
        query = ConjunctiveQuery([x], [TriplePattern(x, RDF_TYPE, EX.C)])
        plan = Executor(small_store).planner.plan(query)
        text = explain(plan, small_store)
        assert "actual=" not in text
        assert "rows≈" in text

    def test_plan_summary(self, small_store):
        query = ConjunctiveQuery(
            [x, y],
            [TriplePattern(x, RDF_TYPE, EX.C), TriplePattern(x, EX.p, y)],
        )
        plan = Executor(small_store).planner.plan(query)
        summary = plan_summary(plan)
        assert summary["scan_atoms"] == 2
        assert summary["operators"]["ScanNode"] == 2
        assert summary["total_estimated_cost"] > 0


class TestBeamSearch:
    @pytest.fixture(scope="class")
    def setup(self):
        graph = generate_lubm(universities=1, seed=9)
        store = TripleStore.from_graph(graph)
        return store.schema.copy(), store

    def test_beam_matches_or_beats_gcov(self, setup):
        schema, store = setup
        query = example1_query()
        estimator = CoverCostEstimator(query, schema, store)
        greedy = gcov(query, schema, store, estimator=estimator)
        beam = beam_search(query, schema, store, estimator=estimator)
        assert beam.cost <= greedy.cost

    def test_beam_width_one_close_to_greedy(self, setup):
        schema, store = setup
        query = lubm_queries()["Q9"]
        estimator = CoverCostEstimator(query, schema, store)
        greedy = gcov(query, schema, store, estimator=estimator)
        narrow = beam_search(
            query, schema, store, beam_width=1, estimator=estimator
        )
        # Width-1 beam is greedy-like; costs agree within a factor.
        assert narrow.cost <= greedy.cost * 1.01

    def test_valid_cover(self, setup):
        schema, store = setup
        query = lubm_queries()["Q2"]
        result = beam_search(query, schema, store)
        covered = set()
        for fragment in result.cover.fragments:
            covered |= fragment
        assert covered == set(range(len(query.atoms)))

    def test_explored_superset_of_rounds(self, setup):
        schema, store = setup
        query = lubm_queries()["Q7"]
        result = beam_search(query, schema, store)
        assert result.explored_count >= result.iterations
