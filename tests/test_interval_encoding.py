"""Hierarchy-aware interval encoding (the LiteMat-style layout).

Three layers of guarantees:

* **Layout**: DFS-preorder interval labeling covers exactly the nodes
  whose entailed subtree fills a contiguous id region (single-parent
  chains and trees), and declines multi-parent extras, cycle members,
  and class/property homonyms — coverage is an optimization, never a
  correctness requirement.
* **Growth**: a new leaf lands in a spare hole while the slack lasts
  (``extend``); exhausted slack refuses, and the re-encode path
  (``rebuild_with_hierarchy``) restores full coverage.
* **Semantics** (hypothesis): under random schema DAGs and interleaved
  hierarchy/data mutations, matching by interval equals the explicit
  transitive-closure union, on every engine.

Plus the query-side no-mutation rule: answering — including pricing
covers and planning constants the data never stored — must not grow
the store's dictionary.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import QueryAnswerer, Strategy
from repro.encoding import (
    HierarchyEncoding,
    HierarchyInterval,
    preencode_hierarchy,
    rebuild_with_hierarchy,
)
from repro.encoding.hierarchy import detect_encoding
from repro.query import ConjunctiveQuery, TriplePattern, Variable
from repro.rdf import Graph, Namespace, RDF_TYPE, Triple
from repro.schema import Constraint, Schema
from repro.storage import TripleStore
from repro.storage.executor import ENGINES, Executor

EX = Namespace("http://example.org/")
x, y = Variable("x"), Variable("y")


def _tree_schema():
    """A 3-level class tree plus a 2-level property chain."""
    return Schema(
        [
            Constraint.subclass(EX.B1, EX.A),
            Constraint.subclass(EX.B2, EX.A),
            Constraint.subclass(EX.C1, EX.B1),
            Constraint.subclass(EX.C2, EX.B1),
            Constraint.subproperty(EX.q1, EX.p),
            Constraint.subproperty(EX.q2, EX.p),
        ]
    )


class TestLayout:
    def test_tree_is_fully_covered(self):
        schema = _tree_schema()
        store = TripleStore()
        encoding = preencode_hierarchy(store, schema)
        for klass in (EX.A, EX.B1):
            interval = encoding.type_interval(klass)
            assert interval is not None, klass
            members = {klass} | schema.subclasses(klass)
            ids = {store.dictionary.lookup(m) for m in members}
            assert all(interval.lo <= i < interval.hi for i in ids)
            # Every non-hole id inside the window is a member.
            inside = {
                i
                for i in range(interval.lo, interval.hi)
                if not store.dictionary.is_hole(i)
            }
            assert inside == ids
        assert encoding.property_interval(EX.p) is not None
        # Leaves have no union to collapse, hence no interval.
        assert encoding.type_interval(EX.C1) is None
        assert encoding.property_interval(EX.q1) is None

    def test_branches_count_the_collapsed_union(self):
        schema = _tree_schema()
        encoding = preencode_hierarchy(TripleStore(), schema)
        assert encoding.type_interval(EX.A).branches == 5  # A,B1,B2,C1,C2
        assert encoding.type_interval(EX.B1).branches == 3
        assert encoding.property_interval(EX.p).branches == 3

    def test_multi_parent_extra_parent_uncovered(self):
        # D has two parents; it lives in one region, so the other
        # parent cannot be contiguous — and must come out uncovered.
        schema = Schema(
            [
                Constraint.subclass(EX.D, EX.P1),
                Constraint.subclass(EX.D, EX.P2),
                Constraint.subclass(EX.E, EX.P2),
            ]
        )
        store = TripleStore()
        encoding = preencode_hierarchy(store, schema)
        covered = [
            k for k in (EX.P1, EX.P2) if encoding.type_interval(k) is not None
        ]
        uncovered = [
            k for k in (EX.P1, EX.P2) if encoding.type_interval(k) is None
        ]
        assert len(covered) == 1 and len(uncovered) == 1
        # The covered parent's window really contains D.
        interval = encoding.type_interval(covered[0])
        assert interval.lo <= store.dictionary.lookup(EX.D) < interval.hi

    def test_cycle_members_uncovered(self):
        schema = Schema(
            [
                Constraint.subclass(EX.X, EX.Y),
                Constraint.subclass(EX.Y, EX.X),
            ]
        )
        encoding = preencode_hierarchy(TripleStore(), schema)
        assert encoding.type_interval(EX.X) is None
        assert encoding.type_interval(EX.Y) is None

    def test_detect_agrees_with_preencode(self):
        schema = _tree_schema()
        store = TripleStore()
        encoding = preencode_hierarchy(store, schema)
        detected = detect_encoding(store.dictionary, schema)
        for node, interval in encoding.class_intervals.items():
            other = detected.type_interval(node)
            assert other is not None
            # Same membership semantics: identical non-hole content.
            content = lambda iv: {
                i
                for i in range(iv.lo, iv.hi)
                if not store.dictionary.is_hole(i)
            }
            assert content(other) == content(interval)

    def test_token_distinguishes_versions(self):
        schema = _tree_schema()
        store = TripleStore()
        encoding = preencode_hierarchy(store, schema)
        before = encoding.token()
        schema.add(Constraint.subclass(EX.New, EX.B1))
        assert encoding.extend(store.dictionary, schema, EX.New, EX.B1)
        assert encoding.token() != before


class TestExtendAndRebuild:
    def test_extend_lands_in_ancestor_intervals(self):
        schema = _tree_schema()
        store = TripleStore()
        encoding = preencode_hierarchy(store, schema)
        schema.add(Constraint.subclass(EX.C3, EX.B1))
        assert encoding.extend(store.dictionary, schema, EX.C3, EX.B1)
        new_id = store.dictionary.lookup(EX.C3)
        assert new_id is not None
        for ancestor in (EX.B1, EX.A):
            interval = encoding.type_interval(ancestor)
            assert interval.lo <= new_id < interval.hi

    def test_extend_refuses_when_slack_exhausted(self):
        schema = _tree_schema()
        store = TripleStore()
        encoding = preencode_hierarchy(store, schema, spare=1)
        schema.add(Constraint.subclass(EX.C3, EX.B1))
        assert encoding.extend(store.dictionary, schema, EX.C3, EX.B1)
        schema.add(Constraint.subclass(EX.C4, EX.B1))
        assert not encoding.extend(store.dictionary, schema, EX.C4, EX.B1)

    def test_extend_refuses_non_leaf_and_multi_parent(self):
        schema = _tree_schema()
        store = TripleStore()
        encoding = preencode_hierarchy(store, schema)
        # Multi-parent child: ancestors exceed one parent's chain.
        schema.add(Constraint.subclass(EX.M, EX.B1))
        schema.add(Constraint.subclass(EX.M, EX.B2))
        assert not encoding.extend(store.dictionary, schema, EX.M, EX.B1)

    def test_rebuild_restores_coverage_and_triples(self):
        schema = _tree_schema()
        store = TripleStore()
        encoding = preencode_hierarchy(store, schema, spare=0)
        graph = Graph()
        graph.add(Triple(EX.i1, RDF_TYPE, EX.C1))
        graph.add(Triple(EX.i1, EX.q1, EX.i2))
        store.load(graph, schema)
        schema.add(Constraint.subclass(EX.C3, EX.B1))
        assert not encoding.extend(store.dictionary, schema, EX.C3, EX.B1)
        rebuilt, fresh = rebuild_with_hierarchy(store, schema)
        assert set(rebuilt.to_graph().data_triples()) == set(
            store.to_graph().data_triples()
        )
        interval = fresh.type_interval(EX.B1)
        assert interval is not None
        assert (
            interval.lo <= rebuilt.dictionary.lookup(EX.C3) < interval.hi
        )


def _type_members(store, schema, klass):
    members = {klass} | schema.subclasses(klass)
    return frozenset(
        (t.subject,)
        for t in store.to_graph().data_triples()
        if t.property == RDF_TYPE and t.object in members
    )


def _edge_members(store, schema, prop):
    members = {prop} | schema.subproperties(prop)
    return frozenset(
        (t.subject, t.object)
        for t in store.to_graph().data_triples()
        if t.property in members
    )


def _assert_intervals_match_closure(store, schema, encoding):
    """Every covered node's interval atom matches exactly its explicit
    transitive-closure union, on every engine."""
    executor = Executor(store)
    for klass, interval in encoding.class_intervals.items():
        query = ConjunctiveQuery(
            [x], [TriplePattern(x, RDF_TYPE, interval)]
        )
        expected = _type_members(store, schema, klass)
        for engine in ENGINES:
            got = executor.run(query, engine=engine).answer()
            assert got == expected, (klass, engine)
    for prop, interval in encoding.property_intervals.items():
        query = ConjunctiveQuery([x, y], [TriplePattern(x, interval, y)])
        expected = _edge_members(store, schema, prop)
        for engine in ENGINES:
            got = executor.run(query, engine=engine).answer()
            assert got == expected, (prop, engine)


class TestIntervalSemantics:
    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(data=st.data())
    def test_random_dag_and_mutations_match_closure(self, data):
        n_classes = data.draw(st.integers(2, 7), label="classes")
        classes = [EX.term("K%d" % i) for i in range(n_classes)]
        n_props = data.draw(st.integers(1, 4), label="properties")
        props = [EX.term("r%d" % i) for i in range(n_props)]
        schema = Schema()
        for i in range(1, n_classes):
            for parent in data.draw(
                st.sets(st.sampled_from(classes[:i]), max_size=2),
                label="class parents",
            ):
                schema.add(Constraint.subclass(classes[i], parent))
        for i in range(1, n_props):
            for parent in data.draw(
                st.sets(st.sampled_from(props[:i]), max_size=2),
                label="property parents",
            ):
                schema.add(Constraint.subproperty(props[i], parent))

        store = TripleStore()
        encoding = preencode_hierarchy(store, schema, spare=1)
        instances = [EX.term("inst%d" % i) for i in range(5)]
        graph = Graph()
        for _ in range(data.draw(st.integers(0, 12), label="triples")):
            subject = data.draw(st.sampled_from(instances))
            if data.draw(st.booleans()):
                graph.add(
                    Triple(
                        subject, RDF_TYPE, data.draw(st.sampled_from(classes))
                    )
                )
            else:
                graph.add(
                    Triple(
                        subject,
                        data.draw(st.sampled_from(props)),
                        data.draw(st.sampled_from(instances)),
                    )
                )
        store.load(graph, schema)
        _assert_intervals_match_closure(store, schema, encoding)

        # Interleaved mutations: grow the hierarchy (spare slack first,
        # re-encode when it refuses) and the data, re-checking closure
        # equality after every step.
        for step in range(data.draw(st.integers(1, 4), label="mutations")):
            if data.draw(st.booleans(), label="mutate hierarchy"):
                new = EX.term("grown%d" % step)
                parent = data.draw(st.sampled_from(classes), label="parent")
                schema.add(Constraint.subclass(new, parent))
                classes.append(new)
                if not encoding.extend(
                    store.dictionary, schema, new, parent
                ):
                    store, encoding = rebuild_with_hierarchy(store, schema)
                store.insert(
                    Triple(
                        data.draw(st.sampled_from(instances)), RDF_TYPE, new
                    )
                )
            else:
                store.insert(
                    Triple(
                        data.draw(st.sampled_from(instances)),
                        data.draw(st.sampled_from(props)),
                        data.draw(st.sampled_from(instances)),
                    )
                )
            _assert_intervals_match_closure(store, schema, encoding)


class TestNoDictionaryMutation:
    """Answering must never grow the store's dictionary — planner
    projection specs and estimator head specs resolve constants via
    lookup and carry unknown ones as ready terms."""

    def _fixture(self):
        schema = _tree_schema()
        graph = Graph()
        graph.add(Triple(EX.i1, RDF_TYPE, EX.C1))
        graph.add(Triple(EX.i1, EX.q1, EX.i2))
        return graph, schema

    @pytest.mark.parametrize("engine", list(ENGINES) + ["sqlite"])
    @pytest.mark.parametrize("interval", [False, True])
    def test_answering_never_grows_dictionary(self, engine, interval):
        graph, schema = self._fixture()
        answerer = QueryAnswerer(
            graph, schema, engine=engine, interval_encoding=interval
        )
        before = len(answerer.store.dictionary)
        # A head constant and an atom constant the data never stored.
        query = ConjunctiveQuery(
            [x, EX.NeverStored],
            [
                TriplePattern(x, RDF_TYPE, EX.A),
                TriplePattern(x, EX.p, EX.AlsoNeverStored),
            ],
        )
        for strategy in (
            Strategy.REF_UCQ,
            Strategy.REF_SCQ,
            Strategy.REF_GCOV,
        ):
            report = answerer.answer(query, strategy)
            assert report.answer == frozenset()
        assert len(answerer.store.dictionary) == before

    def test_unstored_head_constant_is_returned(self):
        graph, schema = self._fixture()
        answerer = QueryAnswerer(graph, schema)
        before = len(answerer.store.dictionary)
        query = ConjunctiveQuery(
            [x, EX.NeverStored], [TriplePattern(x, RDF_TYPE, EX.A)]
        )
        report = answerer.answer(query, Strategy.REF_UCQ)
        assert report.answer == frozenset({(EX.i1, EX.NeverStored)})
        assert len(answerer.store.dictionary) == before
