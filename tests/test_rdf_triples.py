"""Unit tests for triples and well-formedness."""

import pytest

from repro.rdf import (
    BlankNode,
    Literal,
    Namespace,
    RDF_TYPE,
    RDFS_DOMAIN,
    RDFS_RANGE,
    RDFS_SUBCLASSOF,
    RDFS_SUBPROPERTYOF,
    Triple,
)

EX = Namespace("http://example.org/")


class TestWellFormedness:
    def test_literal_subject_rejected(self):
        with pytest.raises(ValueError):
            Triple(Literal("x"), EX.p, EX.o)

    def test_blank_node_property_rejected(self):
        with pytest.raises(ValueError):
            Triple(EX.s, BlankNode("b"), EX.o)

    def test_literal_property_rejected(self):
        with pytest.raises(ValueError):
            Triple(EX.s, Literal("p"), EX.o)

    def test_any_object_allowed(self):
        for obj in (EX.o, BlankNode("b"), Literal("v")):
            assert Triple(EX.s, EX.p, obj).object == obj

    def test_blank_node_subject_allowed(self):
        assert Triple(BlankNode("b"), EX.p, EX.o).subject == BlankNode("b")


class TestClassification:
    def test_class_assertion(self):
        assert Triple(EX.s, RDF_TYPE, EX.C).is_class_assertion()
        assert not Triple(EX.s, EX.p, EX.o).is_class_assertion()

    def test_schema_triples(self):
        for prop in (RDFS_SUBCLASSOF, RDFS_SUBPROPERTYOF, RDFS_DOMAIN, RDFS_RANGE):
            assert Triple(EX.a, prop, EX.b).is_schema_triple()

    def test_type_triple_is_data(self):
        triple = Triple(EX.s, RDF_TYPE, EX.C)
        assert triple.is_data_triple()
        assert not triple.is_schema_triple()


class TestIdentity:
    def test_equality_and_hash(self):
        first = Triple(EX.s, EX.p, EX.o)
        second = Triple(EX.s, EX.p, EX.o)
        assert first == second
        assert len({first, second}) == 1

    def test_inequality(self):
        assert Triple(EX.s, EX.p, EX.o) != Triple(EX.s, EX.p, EX.o2)

    def test_immutable(self):
        triple = Triple(EX.s, EX.p, EX.o)
        with pytest.raises(AttributeError):
            triple.subject = EX.other

    def test_iteration_order(self):
        triple = Triple(EX.s, EX.p, EX.o)
        assert list(triple) == [EX.s, EX.p, EX.o]

    def test_sorting(self):
        a = Triple(EX.a, EX.p, EX.o)
        b = Triple(EX.b, EX.p, EX.o)
        assert sorted([b, a]) == [a, b]

    def test_n3(self):
        triple = Triple(EX.s, EX.p, Literal("v"))
        assert triple.n3() == '<http://example.org/s> <http://example.org/p> "v" .'
