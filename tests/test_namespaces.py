"""Unit tests for namespaces and the RDF/RDFS vocabulary constants."""

import pytest

from repro.rdf import (
    Namespace,
    RDF_NS,
    RDF_TYPE,
    RDFS_DOMAIN,
    RDFS_NS,
    RDFS_RANGE,
    RDFS_SUBCLASSOF,
    RDFS_SUBPROPERTYOF,
    SCHEMA_PROPERTIES,
    URI,
    shorten,
)


class TestNamespace:
    def test_attribute_access(self):
        EX = Namespace("http://example.org/")
        assert EX.Book == URI("http://example.org/Book")

    def test_term_method(self):
        EX = Namespace("http://example.org/")
        assert EX.term("with space") == URI("http://example.org/with space")

    def test_getitem(self):
        EX = Namespace("http://example.org/")
        assert EX["Book"] == EX.Book

    def test_contains(self):
        EX = Namespace("http://example.org/")
        assert EX.Book in EX
        assert URI("http://other.org/x") not in EX

    def test_underscore_attributes_raise(self):
        EX = Namespace("http://example.org/")
        with pytest.raises(AttributeError):
            EX._private

    def test_empty_prefix_rejected(self):
        with pytest.raises(ValueError):
            Namespace("")


class TestVocabulary:
    def test_standard_uris(self):
        assert RDF_TYPE.value == (
            "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"
        )
        assert RDFS_SUBCLASSOF.value == (
            "http://www.w3.org/2000/01/rdf-schema#subClassOf"
        )

    def test_schema_properties_exactly_four(self):
        assert SCHEMA_PROPERTIES == frozenset(
            {RDFS_SUBCLASSOF, RDFS_SUBPROPERTYOF, RDFS_DOMAIN, RDFS_RANGE}
        )

    def test_type_not_a_schema_property(self):
        assert RDF_TYPE not in SCHEMA_PROPERTIES

    def test_namespaces_contain_their_terms(self):
        assert RDF_TYPE in RDF_NS
        assert RDFS_DOMAIN in RDFS_NS


class TestShorten:
    def test_well_known(self):
        assert shorten(RDF_TYPE) == "rdf:type"
        assert shorten(RDFS_SUBCLASSOF) == "rdfs:subClassOf"

    def test_unknown_falls_back_to_local_name(self):
        assert shorten(URI("http://example.org/ns#Thing")) == "Thing"
