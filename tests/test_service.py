"""The deterministic concurrency harness for the multi-tenant service.

Every test here is seeded and driven by a
:class:`~repro.resilience.clock.FakeClock`-stepped schedule — zero
wall-clock sleeps.  The scheduling loop of
:class:`~repro.service.QueryService` is step-driven, so a scripted
sequence of submit/step/write events *is* an interleaving, and the same
script replays identically on every run.  Covered:

* admission: bounded queues, typed shedding with retry-after hints,
  standing quotas, deadline expiry;
* weighted fair scheduling: exact stride-schedule ratios and
  no-starvation under a flooding tenant;
* snapshot isolation: byte-identical answers at a pinned epoch under
  concurrent inserts, bulk loads, saturation, and (through the durable
  store) constraint changes — on both in-process engines;
* service == direct-answerer equivalence, including the per-tenant
  cache partitions and their shared-epoch invalidation;
* budget attribution: overruns (and sibling aborts) name the
  originating tenant/request, never an innocent bystander;
* a hypothesis property: random tenant/priority/arrival schedules
  conserve requests (admitted + shed == submitted) and never starve.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import QueryAnswerer, Strategy
from repro.datasets import books_dataset, generate_lubm, lubm_queries
from repro.query import parse_query
from repro.rdf import Graph, Namespace, RDF_TYPE, RDFS_SUBCLASSOF, Triple
from repro.resilience.clock import FakeClock
from repro.resilience.errors import BudgetExceeded
from repro.schema import Constraint
from repro.service import (
    AdmissionController,
    AdmissionRejected,
    DONE,
    EXPIRED,
    FAILED,
    QueryRequest,
    QueryService,
    REASON_QUEUE_FULL,
    REASON_QUOTA_EXHAUSTED,
    REASON_UNKNOWN_TENANT,
    TenantConfig,
)
from repro.storage.snapshot import SnapshotManager
from repro.storage.store import TripleStore

EX = Namespace("http://example.org/svc/")

STUDENT_QUERY = "SELECT ?x WHERE { ?x rdf:type <http://example.org/svc/Student> }"


def tiny_dataset():
    """Two students (one via subclass entailment) and a student query."""
    graph = Graph()
    graph.add(Triple(EX.Grad, RDFS_SUBCLASSOF, EX.Student))
    graph.add(Triple(EX.alice, RDF_TYPE, EX.Grad))
    graph.add(Triple(EX.bob, RDF_TYPE, EX.Student))
    return graph, parse_query(STUDENT_QUERY)


def make_service(graph, schema=None, *, tenants, clock=None, **kwargs):
    clock = clock if clock is not None else FakeClock(auto_advance=0.001)
    return QueryService(graph, schema, tenants=tenants, clock=clock, **kwargs)


def rows(ticket_or_report):
    answer = getattr(ticket_or_report, "answer", ticket_or_report)
    return sorted(answer)


class TestAdmission:
    def test_unknown_tenant_is_shed_typed(self):
        graph, query = tiny_dataset()
        service = make_service(graph, tenants=["alpha"])
        with pytest.raises(AdmissionRejected) as caught:
            service.submit(QueryRequest("ghost", query))
        assert caught.value.reason == REASON_UNKNOWN_TENANT
        assert caught.value.retry_after is None  # retrying cannot help
        assert service.metrics.tenants["ghost"].shed_total() == 1

    def test_bounded_queue_sheds_past_depth_with_retry_hint(self):
        graph, query = tiny_dataset()
        service = make_service(
            graph, tenants=[TenantConfig("alpha", queue_depth=3)]
        )
        for _ in range(3):
            service.submit(QueryRequest("alpha", query))
        with pytest.raises(AdmissionRejected) as caught:
            service.submit(QueryRequest("alpha", query))
        exc = caught.value
        assert exc.reason == REASON_QUEUE_FULL
        assert exc.queued == 3
        assert exc.retry_after is not None and exc.retry_after > 0
        assert exc.diagnostics()["reason"] == REASON_QUEUE_FULL
        # The queue itself stays intact: draining completes exactly 3.
        service.drain()
        assert service.metrics.totals()["completed"] == 3
        assert service.metrics.shed_rate() == pytest.approx(0.25)

    def test_retry_after_tracks_observed_service_time(self):
        graph, query = tiny_dataset()
        clock = FakeClock(auto_advance=0.01)
        service = make_service(
            graph, tenants=[TenantConfig("alpha", queue_depth=1)], clock=clock
        )
        service.submit(QueryRequest("alpha", query))
        service.drain()
        first_estimate = service.admission.retry_after()
        # The EWMA has now seen a real (fake-clock) service time.
        assert first_estimate > 0
        service.submit(QueryRequest("alpha", query))
        with pytest.raises(AdmissionRejected) as caught:
            service.submit(QueryRequest("alpha", query))
        assert caught.value.retry_after >= first_estimate

    def test_quota_exhaustion_sheds_future_requests_only(self):
        graph, query = tiny_dataset()
        service = make_service(
            graph,
            tenants=[TenantConfig("alpha", queue_depth=4, quota_rows=2)],
        )
        first = service.submit(QueryRequest("alpha", query))
        second = service.submit(QueryRequest("alpha", query))
        service.drain()
        # Both answers stand (2 rows each; the second trips the quota
        # *after* completing).
        assert first.status == DONE and second.status == DONE
        assert service.admission.quota_exhausted("alpha")
        with pytest.raises(AdmissionRejected) as caught:
            service.submit(QueryRequest("alpha", query))
        assert caught.value.reason == REASON_QUOTA_EXHAUSTED

    def test_priority_orders_within_tenant_fifo_on_ties(self):
        graph, query = tiny_dataset()
        service = make_service(
            graph, tenants=[TenantConfig("alpha", queue_depth=8)], capacity=1
        )
        low = service.submit(QueryRequest("alpha", query, priority=0))
        high = service.submit(QueryRequest("alpha", query, priority=5))
        tied = service.submit(QueryRequest("alpha", query, priority=5))
        order = []
        while service.admission.backlog():
            order.extend(t.owner for t in service.step())
        assert order == [high.owner, tied.owner, low.owner]

    def test_deadline_expires_queued_requests(self):
        graph, query = tiny_dataset()
        clock = FakeClock(auto_advance=0.001)
        service = make_service(
            graph, tenants=[TenantConfig("alpha", queue_depth=4)], clock=clock
        )
        urgent = service.submit(QueryRequest("alpha", query, deadline=0.5))
        patient = service.submit(QueryRequest("alpha", query))
        clock.advance(1.0)  # the urgent request's horizon passes unserved
        finished = service.drain()
        assert urgent.status == EXPIRED
        assert urgent in finished and urgent.answer is None
        assert patient.status == DONE
        totals = service.metrics.totals()
        assert totals["expired"] == 1 and totals["completed"] == 1

    def test_capacity_slots_are_not_wasted_on_expired_tickets(self):
        graph, query = tiny_dataset()
        clock = FakeClock(auto_advance=0.001)
        service = make_service(
            graph,
            tenants=[TenantConfig("alpha", queue_depth=8)],
            clock=clock,
            capacity=2,
        )
        doomed = [
            service.submit(QueryRequest("alpha", query, deadline=0.1))
            for _ in range(3)
        ]
        live = [service.submit(QueryRequest("alpha", query)) for _ in range(2)]
        clock.advance(1.0)
        finished = service.step()
        # One step: all 3 expired tickets drained for free AND both live
        # requests ran in the round's 2 slots.
        assert len(finished) == 5
        assert all(t.status == EXPIRED for t in doomed)
        assert all(t.status == DONE for t in live)


class TestWeightedFairness:
    def submit_flood(self, service, query, tenants, per_tenant):
        tickets = {name: [] for name in tenants}
        for _ in range(per_tenant):
            for name in tenants:
                tickets[name].append(service.submit(QueryRequest(name, query)))
        return tickets

    def test_stride_schedule_matches_weights_exactly(self):
        graph, query = tiny_dataset()
        service = make_service(
            graph,
            tenants=[
                TenantConfig("alpha", weight=3, queue_depth=12),
                TenantConfig("beta", weight=1, queue_depth=12),
            ],
            capacity=4,
        )
        self.submit_flood(service, query, ["alpha", "beta"], 8)
        order = []
        while len(order) < 8:
            order.extend(t.request.tenant for t in service.step())
        # Both backlogged throughout: the first 8 grants split 3:1.
        assert order[:8].count("alpha") == 6
        assert order[:8].count("beta") == 2
        # Determinism: an identical service replays the same schedule.
        replay = make_service(
            graph,
            tenants=[
                TenantConfig("alpha", weight=3, queue_depth=12),
                TenantConfig("beta", weight=1, queue_depth=12),
            ],
            capacity=4,
        )
        self.submit_flood(replay, query, ["alpha", "beta"], 8)
        replay_order = []
        while len(replay_order) < 8:
            replay_order.extend(t.request.tenant for t in replay.step())
        assert replay_order[:8] == order[:8]

    def test_flooding_tenant_cannot_starve_light_tenant(self):
        graph, query = tiny_dataset()
        service = make_service(
            graph,
            tenants=[
                TenantConfig("flood", weight=1, queue_depth=32),
                TenantConfig("light", weight=1, queue_depth=4),
            ],
            capacity=1,
        )
        for _ in range(20):
            service.submit(QueryRequest("flood", query))
        lone = service.submit(QueryRequest("light", query))
        steps = 0
        while lone.status != DONE:
            service.step()
            steps += 1
        # Equal weights: the light tenant is served by the second grant
        # no matter how deep the flood's backlog is.
        assert steps <= 2

    def test_idleness_banks_no_credit(self):
        graph, query = tiny_dataset()
        service = make_service(
            graph,
            tenants=[
                TenantConfig("busy", weight=1, queue_depth=32),
                TenantConfig("idle", weight=1, queue_depth=32),
            ],
            capacity=1,
        )
        for _ in range(6):
            service.submit(QueryRequest("busy", query))
            service.step()
        # "idle" wakes up with a stale-low pass; it must not monopolize.
        for _ in range(6):
            service.submit(QueryRequest("idle", query))
        for _ in range(4):
            service.submit(QueryRequest("busy", query))
        order = []
        while service.admission.backlog():
            order.extend(t.request.tenant for t in service.step())
        # After one catch-up grant the two tenants alternate.
        assert order[:2].count("idle") <= 2
        assert order[1:5].count("busy") >= 2


@pytest.mark.parametrize("engine", ["builtin", "pipelined"])
class TestSnapshotIsolation:
    def test_pinned_reads_identical_under_concurrent_inserts(self, engine):
        graph, query = tiny_dataset()
        service = make_service(
            graph, tenants=["reader", "writer"], engine=engine
        )
        baseline = service.submit(QueryRequest("reader", query))
        service.drain()
        expected = rows(baseline)
        snapshot = service.pin()
        # Writer-side churn lands between pin and read.
        service.insert(Triple(EX.carol, RDF_TYPE, EX.Student))
        service.insert(Triple(EX.dave, RDF_TYPE, EX.Grad))
        pinned = service.submit(
            QueryRequest("reader", query, snapshot=snapshot)
        )
        live = service.submit(QueryRequest("reader", query))
        service.drain()
        assert rows(pinned) == expected  # byte-identical pre-write view
        assert len(rows(live)) == len(expected) + 2
        # More writes while the pin is still held change nothing.
        service.insert(Triple(EX.erin, RDF_TYPE, EX.Student))
        again = service.submit(QueryRequest("reader", query, snapshot=snapshot))
        service.drain()
        assert rows(again) == expected
        service.release(snapshot)

    def test_pinned_reads_survive_bulk_load_and_saturation(self, engine):
        graph, query = tiny_dataset()
        service = make_service(graph, tenants=["reader"], engine=engine)
        snapshot = service.pin()
        bulk = Graph()
        for index in range(25):
            bulk.add(Triple(EX["new%d" % index], RDF_TYPE, EX.Student))
        assert service.load(bulk) == 25
        # A saturation round on the live store (the SAT strategy builds
        # and maintains G∞) must not leak into the pinned view either.
        sat = service.submit(QueryRequest("reader", query, strategy=Strategy.SAT))
        pinned = service.submit(QueryRequest("reader", query, snapshot=snapshot))
        service.drain()
        assert len(rows(sat)) == 2 + 25
        assert rows(pinned) == rows(
            QueryAnswerer(tiny_dataset()[0], engine=engine).answer(query).answer
        )
        service.release(snapshot)

    def test_snapshot_equivalence_between_engines(self, engine):
        """The pinned state answers identically on every engine — the
        frozen copy is a real store, not an engine-specific artifact."""
        graph, query = tiny_dataset()
        service = make_service(graph, tenants=["reader"], engine=engine)
        snapshot = service.pin()
        service.insert(Triple(EX.zed, RDF_TYPE, EX.Student))
        frozen = snapshot.store()
        other = "pipelined" if engine == "builtin" else "builtin"
        here = QueryAnswerer(frozen.to_graph(), frozen.schema, engine=engine)
        there = QueryAnswerer(frozen.to_graph(), frozen.schema, engine=other)
        assert rows(here.answer(query).answer) == rows(there.answer(query).answer)
        service.release(snapshot)


class TestSnapshotManager:
    def test_pin_is_free_until_first_write(self):
        graph, _ = tiny_dataset()
        store = TripleStore.from_graph(graph)
        manager = SnapshotManager(store)
        pins = [manager.pin() for _ in range(5)]
        assert manager.frozen_copies == 0  # O(1) pins, no copies yet
        store.insert(Triple(EX.new, RDF_TYPE, EX.Student))
        assert manager.frozen_copies == 1  # one shared copy for all 5
        assert all(p.store() is pins[0].store() for p in pins)
        for pin in pins:
            pin.release()
        assert manager.frozen_copies == 0 and manager.active_pins == 0

    def test_epoch_advances_per_write_with_per_epoch_copies(self):
        graph, _ = tiny_dataset()
        store = TripleStore.from_graph(graph)
        manager = SnapshotManager(store)
        first = manager.pin()
        store.insert(Triple(EX.n1, RDF_TYPE, EX.Student))
        second = manager.pin()
        store.insert(Triple(EX.n2, RDF_TYPE, EX.Student))
        assert first.epoch != second.epoch
        assert first.store().triple_count + 1 == second.store().triple_count
        assert manager.frozen_copies == 2
        second.release()
        assert manager.frozen_copies == 1
        first.release()

    def test_released_snapshot_refuses_reads(self):
        graph, _ = tiny_dataset()
        manager = SnapshotManager(TripleStore.from_graph(graph))
        snapshot = manager.pin()
        snapshot.release()
        snapshot.release()  # idempotent
        with pytest.raises(ValueError):
            snapshot.store()

    def test_unpinned_writes_cost_nothing(self):
        graph, _ = tiny_dataset()
        store = TripleStore.from_graph(graph)
        manager = SnapshotManager(store)
        for index in range(10):
            store.insert(Triple(EX["free%d" % index], RDF_TYPE, EX.Student))
        assert manager.frozen_copies == 0
        assert manager.epoch == 10

    def test_durable_store_snapshot_survives_constraint_change(self, tmp_path):
        from repro.durability import DurableStore

        graph, query = tiny_dataset()
        durable = DurableStore.open(str(tmp_path / "wal"))
        durable.load(graph)
        snapshot = durable.pin_snapshot()
        pinned_counts = snapshot.store().triple_count
        assert snapshot.label == (durable.data_epoch, durable.schema_epoch)
        # A constraint change mutates the schema *before* its entailed
        # triples land — the durable store pre-declares the write, so
        # the pinned view keeps the old schema AND the old triples.
        durable.add_constraint(Constraint.subclass(EX.Student, EX.Person))
        assert durable.store.triple_count > pinned_counts
        assert snapshot.store().triple_count == pinned_counts
        assert not snapshot.store().schema.superclasses(EX.Student)
        snapshot.release()
        durable.close()


class TestServiceEquivalence:
    def test_matches_direct_answerer_on_books(self):
        graph, schema, query = books_dataset()
        service = make_service(graph, schema, tenants=["alpha", "beta"])
        direct = QueryAnswerer(graph, schema)
        for strategy in (Strategy.SAT, Strategy.REF_UCQ, Strategy.REF_GCOV):
            ticket = service.submit(
                QueryRequest("alpha", query, strategy=strategy)
            )
            service.drain()
            assert ticket.status == DONE
            assert rows(ticket) == rows(direct.answer(query, strategy).answer)

    @pytest.mark.parametrize("engine", ["builtin", "pipelined"])
    def test_matches_direct_answerer_on_lubm(self, engine):
        graph = generate_lubm(universities=1, seed=7)
        queries = lubm_queries()
        service = make_service(
            graph, tenants=["alpha", "beta", "gamma"], engine=engine,
            capacity=3,
        )
        direct = QueryAnswerer(graph, engine=engine)
        names = ["Q1", "Q2", "Q5"]
        tenants = ["alpha", "beta", "gamma"]
        tickets = [
            service.submit(QueryRequest(tenants[i], queries[name]))
            for i, name in enumerate(names)
        ]
        service.drain()
        for ticket, name in zip(tickets, names):
            assert ticket.status == DONE, name
            assert rows(ticket) == rows(direct.answer(queries[name]).answer), name

    def test_tenant_cache_partitions_share_epoch_invalidation(self):
        graph, query = tiny_dataset()
        service = make_service(graph, tenants=["alpha", "beta"])
        a1 = service.submit(QueryRequest("alpha", query))
        a2 = service.submit(QueryRequest("alpha", query))
        b1 = service.submit(QueryRequest("beta", query))
        service.drain()
        # Partition privacy: alpha's repeat hits, beta's first is a miss
        # even though alpha cached the same (query, epoch) answer.
        assert (a1.cache, a2.cache, b1.cache) == ("miss", "hit", "miss")
        # Shared-epoch invalidation: one write retires *every* tenant's
        # cached answers at once.
        service.insert(Triple(EX.fresh, RDF_TYPE, EX.Student))
        a3 = service.submit(QueryRequest("alpha", query))
        b2 = service.submit(QueryRequest("beta", query))
        service.drain()
        assert (a3.cache, b2.cache) == ("miss", "miss")
        assert len(rows(a3)) == len(rows(a1)) + 1  # and they see the write
        assert rows(a3) == rows(b2)

    def test_cached_answers_equal_computed_answers(self):
        graph, schema, query = books_dataset()
        service = make_service(graph, schema, tenants=["alpha"])
        cold = service.submit(QueryRequest("alpha", query))
        warm = service.submit(QueryRequest("alpha", query))
        service.drain()
        assert cold.cache == "miss" and warm.cache == "hit"
        assert rows(cold) == rows(warm)


class TestBudgetAttribution:
    def test_overrun_details_carry_owner(self):
        from repro.resilience import ExecutionBudget

        budget = ExecutionBudget(max_rows=1, owner="alpha/req-7")
        with pytest.raises(BudgetExceeded) as caught:
            budget.charge_rows(5, operator="Join")
        assert caught.value.owner == "alpha/req-7"
        assert caught.value.details["owner"] == "alpha/req-7"
        # A sibling worker's abort copy names the same originator.
        with pytest.raises(BudgetExceeded) as sibling:
            budget.charge_rows(1, operator="Scan")
        assert sibling.value.sibling_abort
        assert sibling.value.details["owner"] == "alpha/req-7"
        assert sibling.value.details["sibling_abort"] is True

    def test_service_attributes_trip_to_originating_request(self):
        graph = generate_lubm(universities=1, seed=7)
        queries = lubm_queries()
        service = make_service(
            graph,
            tenants=[
                TenantConfig("greedy", queue_depth=4, request_rows=1),
                TenantConfig("modest", queue_depth=4),
            ],
            capacity=2,
        )
        doomed = service.submit(QueryRequest("greedy", queries["Q2"]))
        fine = service.submit(QueryRequest("modest", queries["Q1"]))
        service.drain()
        assert doomed.status == FAILED
        assert isinstance(doomed.error, BudgetExceeded)
        assert doomed.error.details["owner"] == doomed.owner
        assert fine.status == DONE
        assert service.metrics.tenants["greedy"].budget_trips == 1
        assert service.metrics.tenants["modest"].budget_trips == 0
        assert service.metrics.totals()["failed"] == 1


# ----------------------------------------------------------------------
# Hypothesis: random schedules against the admission controller.

TENANTS = ("t0", "t1", "t2")

events = st.lists(
    st.one_of(
        st.tuples(
            st.just("submit"),
            st.integers(min_value=0, max_value=len(TENANTS) - 1),
            st.integers(min_value=0, max_value=3),
        ),
        st.just(("step",)),
    ),
    min_size=1,
    max_size=60,
)


class TestAdmissionProperties:
    @settings(
        max_examples=50,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        schedule=events,
        weights=st.tuples(*[st.integers(min_value=1, max_value=4)] * 3),
        capacity=st.integers(min_value=1, max_value=3),
    )
    def test_conservation_and_no_starvation(self, schedule, weights, capacity):
        controller = AdmissionController(
            [
                TenantConfig(name, weight=weight, queue_depth=3)
                for name, weight in zip(TENANTS, weights)
            ],
            capacity=capacity,
            clock=FakeClock(auto_advance=0.001),
        )
        submitted = shed = 0
        admitted = []
        dequeued = []
        for event in schedule:
            if event[0] == "submit":
                _, index, priority = event
                submitted += 1
                try:
                    admitted.append(
                        controller.submit(
                            QueryRequest(TENANTS[index], "q", priority=priority)
                        )
                    )
                except AdmissionRejected as exc:
                    assert exc.reason == REASON_QUEUE_FULL
                    shed += 1
            else:
                runnable, expired = controller.next_batch()
                assert not expired  # no deadlines in this schedule
                dequeued.extend(runnable)
                # Work-conservation: a round only under-fills its
                # capacity when the queues ran dry.
                if controller.backlog():
                    assert len(runnable) == capacity
        # Conservation at the front door.
        assert len(admitted) + shed == submitted
        # No starvation: draining the backlog hands out every admitted
        # ticket exactly once, none left behind, none duplicated.
        while controller.backlog():
            runnable, _ = controller.next_batch()
            assert runnable
            dequeued.extend(runnable)
        assert controller.backlog() == 0
        assert len(dequeued) == len(admitted)
        assert {id(t) for t in dequeued} == {id(t) for t in admitted}

    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(data=st.data())
    def test_schedules_replay_identically(self, data):
        schedule = data.draw(events)

        def run():
            controller = AdmissionController(
                [TenantConfig(name, queue_depth=3) for name in TENANTS],
                capacity=2,
                clock=FakeClock(auto_advance=0.001),
            )
            trace = []
            for event in schedule:
                if event[0] == "submit":
                    _, index, priority = event
                    try:
                        ticket = controller.submit(
                            QueryRequest(TENANTS[index], "q", priority=priority)
                        )
                        trace.append(("admit", ticket.request.tenant))
                    except AdmissionRejected as exc:
                        trace.append(("shed", exc.reason))
                else:
                    runnable, _ = controller.next_batch()
                    trace.append(
                        ("run", tuple(t.request.tenant for t in runnable))
                    )
            return trace

        assert run() == run()


class TestServeMetrics:
    def test_describe_is_json_ready_and_consistent(self):
        graph, query = tiny_dataset()
        service = make_service(
            graph, tenants=[TenantConfig("alpha", queue_depth=1), "beta"]
        )
        service.submit(QueryRequest("alpha", query))
        with pytest.raises(AdmissionRejected):
            service.submit(QueryRequest("alpha", query))
        service.submit(QueryRequest("beta", query))
        service.drain()
        import json

        summary = service.describe()
        json.dumps(summary)  # no unserializable values anywhere
        assert summary["submitted"] == 3
        assert summary["completed"] == 2
        assert summary["shed"] == 1
        assert summary["shed_rate"] == pytest.approx(1 / 3)
        assert summary["latency"]["p50"] > 0
        assert summary["tenants"]["alpha"]["shed"] == {REASON_QUEUE_FULL: 1}
        assert summary["snapshots"]["active_pins"] == 0

    def test_percentiles_are_nearest_rank(self):
        from repro.service import percentile

        samples = [0.01 * i for i in range(1, 101)]
        assert percentile(samples, 0.50) == pytest.approx(0.50)
        assert percentile(samples, 0.95) == pytest.approx(0.95)
        assert percentile(samples, 0.99) == pytest.approx(0.99)
        assert percentile([], 0.5) == 0.0
        assert percentile([7.0], 0.99) == 7.0
