"""Unit tests for the query algebra: patterns, CQs, UCQs, JUCQs."""

import pytest

from repro.query import (
    ConjunctiveQuery,
    JoinOfUnions,
    TriplePattern,
    UnionQuery,
    Variable,
    fresh_variable,
)
from repro.rdf import Literal, Namespace, RDF_TYPE, Triple

EX = Namespace("http://example.org/")
x, y, z = Variable("x"), Variable("y"), Variable("z")


class TestVariable:
    def test_identity(self):
        assert Variable("x") == Variable("x")
        assert Variable("x") != Variable("y")
        assert len({Variable("x"), Variable("x")}) == 1

    def test_fresh_variables_unique(self):
        names = {fresh_variable().name for _ in range(50)}
        assert len(names) == 50

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            Variable("")


class TestTriplePattern:
    def test_variables(self):
        pattern = TriplePattern(x, EX.p, y)
        assert pattern.variables() == {x, y}

    def test_is_type_atom(self):
        assert TriplePattern(x, RDF_TYPE, EX.C).is_type_atom()
        assert not TriplePattern(x, EX.p, EX.C).is_type_atom()

    def test_substitute(self):
        pattern = TriplePattern(x, EX.p, y).substitute({x: EX.a})
        assert pattern == TriplePattern(EX.a, EX.p, y)

    def test_substitute_leaves_unbound(self):
        pattern = TriplePattern(x, y, z).substitute({y: RDF_TYPE})
        assert pattern.subject == x
        assert pattern.property == RDF_TYPE

    def test_matches_binds(self):
        pattern = TriplePattern(x, EX.p, y)
        binding = pattern.matches(Triple(EX.a, EX.p, EX.b))
        assert binding == {x: EX.a, y: EX.b}

    def test_matches_repeated_variable(self):
        pattern = TriplePattern(x, EX.p, x)
        assert pattern.matches(Triple(EX.a, EX.p, EX.a)) == {x: EX.a}
        assert pattern.matches(Triple(EX.a, EX.p, EX.b)) is None

    def test_matches_constant_mismatch(self):
        pattern = TriplePattern(EX.a, EX.p, y)
        assert pattern.matches(Triple(EX.b, EX.p, EX.c)) is None

    def test_ground_to_triple(self):
        pattern = TriplePattern(EX.a, EX.p, Literal("v"))
        assert pattern.to_triple() == Triple(EX.a, EX.p, Literal("v"))

    def test_non_ground_to_triple_rejected(self):
        with pytest.raises(ValueError):
            TriplePattern(x, EX.p, EX.b).to_triple()

    def test_rejects_bad_position(self):
        with pytest.raises(ValueError):
            TriplePattern("x", EX.p, EX.o)


class TestConjunctiveQuery:
    def test_head_must_occur_in_body(self):
        with pytest.raises(ValueError):
            ConjunctiveQuery([z], [TriplePattern(x, EX.p, y)])

    def test_head_constants_allowed(self):
        query = ConjunctiveQuery([x, EX.C], [TriplePattern(x, RDF_TYPE, EX.C)])
        assert query.arity == 2

    def test_empty_body_rejected(self):
        with pytest.raises(ValueError):
            ConjunctiveQuery([], [])

    def test_boolean_query(self):
        query = ConjunctiveQuery([], [TriplePattern(x, EX.p, y)])
        assert query.is_boolean()

    def test_variables(self):
        query = ConjunctiveQuery(
            [x], [TriplePattern(x, EX.p, y), TriplePattern(y, EX.q, z)]
        )
        assert query.variables() == {x, y, z}

    def test_substitute_head_and_body(self):
        query = ConjunctiveQuery([x, y], [TriplePattern(x, EX.p, y)])
        bound = query.substitute({y: EX.b})
        assert bound.head == (x, EX.b)
        assert bound.atoms[0].object == EX.b


class TestCanonicalization:
    def test_renaming_invariance(self):
        first = ConjunctiveQuery(
            [x], [TriplePattern(x, EX.p, y), TriplePattern(y, EX.q, z)]
        )
        a, b = Variable("aa"), Variable("bb")
        second = ConjunctiveQuery(
            [x], [TriplePattern(x, EX.p, a), TriplePattern(a, EX.q, b)]
        )
        assert first.canonical() == second.canonical()

    def test_atom_order_invariance(self):
        first = ConjunctiveQuery(
            [x], [TriplePattern(x, EX.p, y), TriplePattern(x, EX.q, z)]
        )
        second = ConjunctiveQuery(
            [x], [TriplePattern(x, EX.q, z), TriplePattern(x, EX.p, y)]
        )
        assert first.canonical() == second.canonical()

    def test_distinguishes_head(self):
        first = ConjunctiveQuery([x], [TriplePattern(x, EX.p, y)])
        second = ConjunctiveQuery([y], [TriplePattern(x, EX.p, y)])
        assert first.canonical() != second.canonical()

    def test_distinguishes_structure(self):
        first = ConjunctiveQuery([x], [TriplePattern(x, EX.p, y)])
        second = ConjunctiveQuery([x], [TriplePattern(x, EX.p, x)])
        assert first.canonical() != second.canonical()


class TestUnionQuery:
    def test_arity_checked(self):
        one = ConjunctiveQuery([x], [TriplePattern(x, EX.p, y)])
        two = ConjunctiveQuery([x, y], [TriplePattern(x, EX.p, y)])
        with pytest.raises(ValueError):
            UnionQuery([one, two])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            UnionQuery([])

    def test_atom_count(self):
        cq = ConjunctiveQuery([x], [TriplePattern(x, EX.p, y), TriplePattern(x, EX.q, z)])
        assert UnionQuery([cq, cq]).atom_count() == 4

    def test_deduplicated(self):
        first = ConjunctiveQuery([x], [TriplePattern(x, EX.p, y)])
        renamed = ConjunctiveQuery([x], [TriplePattern(x, EX.p, Variable("w"))])
        assert len(UnionQuery([first, renamed]).deduplicated()) == 1


class TestJoinOfUnions:
    def test_head_variable_must_be_exposed(self):
        union = UnionQuery([ConjunctiveQuery([x], [TriplePattern(x, EX.p, y)])])
        with pytest.raises(ValueError):
            JoinOfUnions([z], [((x,), union)])

    def test_fragment_arity_checked(self):
        union = UnionQuery([ConjunctiveQuery([x], [TriplePattern(x, EX.p, y)])])
        with pytest.raises(ValueError):
            JoinOfUnions([x], [((x, y), union)])

    def test_shared_variables(self):
        left = UnionQuery(
            [ConjunctiveQuery([x, y], [TriplePattern(x, EX.p, y)])]
        )
        right = UnionQuery(
            [ConjunctiveQuery([y, z], [TriplePattern(y, EX.q, z)])]
        )
        jucq = JoinOfUnions([x, z], [((x, y), left), ((y, z), right)])
        assert jucq.shared_variables() == {y}
        assert jucq.fragment_count() == 2
        assert jucq.atom_count() == 2
