"""Unit tests for saturation: rules, fast/naive engines, fixpoint laws."""


from repro.rdf import (
    BlankNode,
    Graph,
    Literal,
    Namespace,
    RDF_TYPE,
    RDFS_DOMAIN,
    RDFS_RANGE,
    RDFS_SUBCLASSOF,
    RDFS_SUBPROPERTYOF,
    Triple,
)
from repro.schema import Constraint, Schema
from repro.saturation import (
    is_saturated,
    saturate,
    saturate_naive,
)

EX = Namespace("http://example.org/")


class TestInstanceRules:
    def test_type_propagation(self):
        graph = Graph(
            [
                Triple(EX.a, RDF_TYPE, EX.Manager),
                Triple(EX.Manager, RDFS_SUBCLASSOF, EX.Employee),
            ]
        )
        assert Triple(EX.a, RDF_TYPE, EX.Employee) in saturate(graph)

    def test_type_propagation_transitive(self):
        graph = Graph(
            [
                Triple(EX.a, RDF_TYPE, EX.A),
                Triple(EX.A, RDFS_SUBCLASSOF, EX.B),
                Triple(EX.B, RDFS_SUBCLASSOF, EX.C),
            ]
        )
        saturated = saturate(graph)
        assert Triple(EX.a, RDF_TYPE, EX.B) in saturated
        assert Triple(EX.a, RDF_TYPE, EX.C) in saturated

    def test_property_propagation(self):
        graph = Graph(
            [
                Triple(EX.a, EX.writtenBy, EX.b),
                Triple(EX.writtenBy, RDFS_SUBPROPERTYOF, EX.hasAuthor),
            ]
        )
        assert Triple(EX.a, EX.hasAuthor, EX.b) in saturate(graph)

    def test_domain_typing(self):
        graph = Graph(
            [
                Triple(EX.a, EX.p, EX.b),
                Triple(EX.p, RDFS_DOMAIN, EX.C),
            ]
        )
        assert Triple(EX.a, RDF_TYPE, EX.C) in saturate(graph)

    def test_range_typing(self):
        graph = Graph(
            [
                Triple(EX.a, EX.p, EX.b),
                Triple(EX.p, RDFS_RANGE, EX.C),
            ]
        )
        assert Triple(EX.b, RDF_TYPE, EX.C) in saturate(graph)

    def test_range_typing_skips_literal_objects(self):
        graph = Graph(
            [
                Triple(EX.a, EX.p, Literal("v")),
                Triple(EX.p, RDFS_RANGE, EX.C),
            ]
        )
        saturated = saturate(graph)
        for triple in saturated:
            assert not isinstance(triple.subject, Literal)

    def test_chained_subproperty_then_domain(self):
        graph = Graph(
            [
                Triple(EX.a, EX.p, EX.b),
                Triple(EX.p, RDFS_SUBPROPERTYOF, EX.q),
                Triple(EX.q, RDFS_DOMAIN, EX.C),
            ]
        )
        saturated = saturate(graph)
        assert Triple(EX.a, EX.q, EX.b) in saturated
        assert Triple(EX.a, RDF_TYPE, EX.C) in saturated

    def test_type_as_superproperty(self):
        # p ⊑sp rdf:type: (s p C) entails (s rdf:type C), which chains
        # into the class hierarchy.
        graph = Graph(
            [
                Triple(EX.a, EX.isA, EX.C),
                Triple(EX.isA, RDFS_SUBPROPERTYOF, RDF_TYPE),
                Triple(EX.C, RDFS_SUBCLASSOF, EX.D),
            ]
        )
        saturated = saturate(graph)
        assert Triple(EX.a, RDF_TYPE, EX.C) in saturated
        assert Triple(EX.a, RDF_TYPE, EX.D) in saturated


class TestSchemaRules:
    def test_entailed_schema_triples_added(self):
        graph = Graph(
            [
                Triple(EX.A, RDFS_SUBCLASSOF, EX.B),
                Triple(EX.B, RDFS_SUBCLASSOF, EX.C),
            ]
        )
        assert Triple(EX.A, RDFS_SUBCLASSOF, EX.C) in saturate(graph)

    def test_domain_widening_entailed(self):
        graph = Graph(
            [
                Triple(EX.p, RDFS_DOMAIN, EX.C),
                Triple(EX.C, RDFS_SUBCLASSOF, EX.D),
            ]
        )
        assert Triple(EX.p, RDFS_DOMAIN, EX.D) in saturate(graph)

    def test_inadmissible_constraints_inert(self):
        graph = Graph(
            [
                Triple(EX.a, RDF_TYPE, EX.C),
                # Meta-level nonsense: must not fire anything.
                Triple(RDF_TYPE, RDFS_DOMAIN, EX.D),
            ]
        )
        saturated = saturate(graph)
        assert Triple(EX.a, RDF_TYPE, EX.D) not in saturated
        # But the explicit triple is preserved.
        assert Triple(RDF_TYPE, RDFS_DOMAIN, EX.D) in saturated


class TestEngineLaws:
    def test_fast_equals_naive_on_books(self, books):
        graph, _, _ = books
        assert set(saturate(graph)) == set(saturate_naive(graph))

    def test_idempotent(self, books):
        graph, _, _ = books
        once = saturate(graph)
        twice = saturate(once)
        assert set(once) == set(twice)

    def test_is_saturated(self, books):
        graph, _, _ = books
        assert not is_saturated(graph)
        assert is_saturated(saturate(graph))

    def test_monotone(self, books):
        graph, _, _ = books
        bigger = graph.copy()
        bigger.add(Triple(EX.extra, RDF_TYPE, EX.C))
        assert set(saturate(graph)) <= set(saturate(bigger))

    def test_input_not_mutated(self, books):
        graph, _, _ = books
        before = len(graph)
        saturate(graph)
        assert len(graph) == before

    def test_separate_schema_argument(self):
        data = Graph([Triple(EX.a, RDF_TYPE, EX.Manager)])
        schema = Schema([Constraint.subclass(EX.Manager, EX.Employee)])
        saturated = saturate(data, schema)
        assert Triple(EX.a, RDF_TYPE, EX.Employee) in saturated

    def test_books_implicit_triples(self, books, books_saturated):
        graph, _, _ = books
        from repro.datasets.books import BOOKS

        implicit = books_saturated.difference(graph)
        assert Triple(BOOKS.doi1, RDF_TYPE, BOOKS.Publication) in implicit
        assert Triple(BOOKS.doi1, BOOKS.hasAuthor, BlankNode("b1")) in implicit
        assert Triple(BlankNode("b1"), RDF_TYPE, BOOKS.Person) in implicit
