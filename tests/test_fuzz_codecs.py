"""Fuzz tests (hypothesis) for the two byte-level codecs the system's
durability rests on:

* the N-Triples reader/writer (``repro.rdf.io``) — arbitrary terms must
  survive serialize→parse, and arbitrary garbage must be *rejected*
  (strict mode) or *skipped-and-collected* (lenient mode), never
  silently misread;
* the WAL record framing (``repro.durability.wal``) — arbitrary payload
  sequences must round-trip, and arbitrary corruption (bit flips,
  truncation, garbage buffers) must never raise from
  :func:`decode_records` and always yields an exact *prefix* of the
  original records — the invariant crash recovery is built on.

Like the chaos tests, the exploration is seeded from
``REPRO_CHAOS_SEED`` so each CI matrix leg fuzzes a distinct but
reproducible example stream.
"""

from __future__ import annotations

import os

from hypothesis import HealthCheck, given, seed, settings
from hypothesis import strategies as st

from repro.durability import (
    HEADER_SIZE,
    MAGIC,
    decode_records,
    encode_record,
)
from repro.durability.ops import (
    OP_DELETE,
    OP_INSERT,
    decode_op,
    encode_op,
)
from repro.rdf import (
    BlankNode,
    Graph,
    Literal,
    ParseError,
    Triple,
    URI,
    graph_to_string,
    parse_line,
    parse_term,
    read_ntriples,
)

#: CI sets this per matrix leg; locally the default keeps runs stable.
CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))

fuzz_settings = settings(
    max_examples=80,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

# ---------------------------------------------------------------------------
# Strategies

#: URI contents: anything printable except ``>`` (the N-Triples token
#: delimiter, which ``URI.n3`` does not escape) and line breaks (the
#: serialization is line-based).
_uri_text = st.text(
    alphabet=st.characters(blacklist_characters=">\n\r", blacklist_categories=("Cs",)),
    min_size=1,
    max_size=30,
)
uri_st = st.builds(URI, _uri_text)

#: Blank node labels: the tokenizer's label alphabet, minus ``.`` so a
#: label can never swallow the end-of-statement dot.
blank_st = st.builds(
    BlankNode,
    st.text(
        alphabet="abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_-",
        min_size=1,
        max_size=12,
    ),
)

#: Literal values: anything at all (including quotes, backslashes,
#: newlines, tabs and the ``^^`` datatype marker) — the escaping layer
#: must cope.  Surrogates are excluded because they cannot be encoded
#: to UTF-8 for the file round-trip.
_literal_text = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)),
    max_size=30,
)
literal_st = st.builds(
    Literal,
    _literal_text,
    st.one_of(st.none(), uri_st),
)

term_st = st.one_of(uri_st, blank_st, literal_st)

triple_st = st.builds(
    Triple,
    st.one_of(uri_st, blank_st),
    uri_st,
    term_st,
)

graph_st = st.lists(triple_st, max_size=10).map(Graph)


# ---------------------------------------------------------------------------
# N-Triples codec: round-trip

@seed(CHAOS_SEED)
@fuzz_settings
@given(term=term_st)
def test_term_roundtrip(term):
    assert parse_term(term.n3()) == term


@seed(CHAOS_SEED + 1)
@fuzz_settings
@given(triple=triple_st)
def test_triple_line_roundtrip(triple):
    assert parse_line(triple.n3()) == triple


@seed(CHAOS_SEED + 2)
@fuzz_settings
@given(graph=graph_st)
def test_graph_roundtrip(graph):
    assert read_ntriples(graph_to_string(graph)) == graph


@seed(CHAOS_SEED + 3)
@fuzz_settings
@given(graph=graph_st)
def test_file_roundtrip(graph, tmp_path_factory):
    from repro.rdf import load_file, save_file

    path = str(tmp_path_factory.mktemp("fuzz") / "g.nt")
    save_file(graph, path)
    assert load_file(path) == graph


# ---------------------------------------------------------------------------
# N-Triples codec: garbage rejection

def _line_is_garbage(line):
    """True when *line* is neither ignorable nor a parseable triple."""
    stripped = line.strip()
    if not stripped or stripped.startswith("#"):
        return False
    try:
        parse_line(stripped)
        return False
    except ParseError:
        return True


@seed(CHAOS_SEED + 4)
@fuzz_settings
@given(
    text=st.text(
        alphabet=st.characters(blacklist_categories=("Cs",)), max_size=60
    )
)
def test_garbage_never_crashes_and_strict_lenient_agree(text):
    """Arbitrary text either parses or raises ParseError — nothing
    else — and lenient mode skips exactly the lines strict mode would
    have raised on."""
    lines = text.split("\n")
    garbage_lines = [
        number for number, line in enumerate(lines, start=1)
        if _line_is_garbage(line)
    ]
    errors = []
    graph = read_ntriples(text, strict=False, errors=errors)
    assert [error.line_number for error in errors] == garbage_lines
    for error in errors:
        assert error.line_text is not None
        assert error.reason
    if garbage_lines:
        try:
            read_ntriples(text)
            raise AssertionError("strict mode accepted a garbage line")
        except ParseError as exc:
            assert exc.line_number == garbage_lines[0]
    else:
        assert read_ntriples(text) == graph


@seed(CHAOS_SEED + 5)
@fuzz_settings
@given(graph=graph_st, junk=st.text(max_size=20))
def test_lenient_load_recovers_good_lines(graph, junk):
    """Interleaving junk lines with a serialized graph: lenient mode
    recovers exactly the graph, collecting one error per junk line."""
    # Split on '\n' exactly as the reader does — str.splitlines would
    # also split on U+0085/U+2028, which literals may legally contain.
    good_lines = [
        line for line in graph_to_string(graph).split("\n") if line
    ]
    junk_line = junk.replace("\n", " ").replace("\r", " ")
    interleaved = []
    for line in good_lines:
        interleaved.append(junk_line)
        interleaved.append(line)
    interleaved.append(junk_line)
    text = "\n".join(interleaved)
    errors = []
    recovered = read_ntriples(text, strict=False, errors=errors)
    junk_is_bad = _line_is_garbage(junk_line)
    assert recovered == graph
    assert len(errors) == (len(good_lines) + 1 if junk_is_bad else 0)


# ---------------------------------------------------------------------------
# WAL record codec: round-trip

payloads_st = st.lists(st.binary(max_size=40), max_size=8)


@seed(CHAOS_SEED + 6)
@fuzz_settings
@given(payloads=payloads_st)
def test_wal_roundtrip(payloads):
    buffer = b"".join(encode_record(payload) for payload in payloads)
    result = decode_records(buffer)
    assert result.records == payloads
    assert result.valid_length == len(buffer)
    assert not result.truncated


@seed(CHAOS_SEED + 7)
@fuzz_settings
@given(payloads=payloads_st, data=st.data())
def test_wal_truncation_yields_exact_prefix(payloads, data):
    """Cutting the buffer at any byte yields the exact record prefix
    whose frames fit, flagged truncated unless the cut is a boundary."""
    buffer = b"".join(encode_record(payload) for payload in payloads)
    cut = data.draw(st.integers(0, len(buffer)))
    result = decode_records(buffer[:cut])
    boundaries = [0]
    for payload in payloads:
        boundaries.append(boundaries[-1] + HEADER_SIZE + len(payload))
    survivors = sum(1 for b in boundaries[1:] if b <= cut)
    assert result.records == payloads[:survivors]
    assert result.valid_length == boundaries[survivors]
    assert result.truncated == (cut != boundaries[survivors])


@seed(CHAOS_SEED + 8)
@fuzz_settings
@given(payloads=payloads_st.filter(lambda p: p), data=st.data())
def test_wal_bit_flip_truncates_at_damaged_frame(payloads, data):
    """Flipping any byte never raises, and every record *before* the
    damaged frame survives intact while the damaged one is dropped."""
    buffer = bytearray(b"".join(encode_record(payload) for payload in payloads))
    position = data.draw(st.integers(0, len(buffer) - 1))
    flip = data.draw(st.integers(1, 255))
    buffer[position] ^= flip
    result = decode_records(bytes(buffer))
    boundaries = [0]
    for payload in payloads:
        boundaries.append(boundaries[-1] + HEADER_SIZE + len(payload))
    intact = sum(1 for b in boundaries[1:] if b <= position)
    # CRC/magic/length checks must stop the decode at the damaged
    # frame; everything before it is untouched bytes and must decode.
    assert result.records[:intact] == payloads[:intact]
    assert len(result.records) == intact
    assert result.truncated
    assert result.valid_length == boundaries[intact]


@seed(CHAOS_SEED + 9)
@fuzz_settings
@given(garbage=st.binary(max_size=80))
def test_wal_garbage_never_raises(garbage):
    """Arbitrary bytes decode to a (possibly empty) valid prefix."""
    result = decode_records(garbage)
    assert 0 <= result.valid_length <= len(garbage)
    assert result.records == [] or garbage[:2] == MAGIC
    if result.valid_length != len(garbage):
        assert result.truncated and result.reason


@seed(CHAOS_SEED + 10)
@fuzz_settings
@given(triple=triple_st, data=st.data())
def test_op_payload_roundtrip(triple, data):
    """The op layer on top of the framing: T±/C± payloads round-trip
    through encode→frame→decode→decode_op."""
    op = data.draw(st.sampled_from([OP_INSERT, OP_DELETE]))
    payload = encode_op(op, triple)
    framed = decode_records(encode_record(payload))
    assert framed.records == [payload]
    decoded_op, decoded_triple = decode_op(framed.records[0])
    assert (decoded_op, decoded_triple) == (op, triple)
