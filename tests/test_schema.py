"""Unit tests for RDFS constraints and the schema closure."""

import pytest

from repro.rdf import (
    Namespace,
    RDF_TYPE,
    RDFS_DOMAIN,
    RDFS_SUBCLASSOF,
    RDFS_SUBPROPERTYOF,
    Triple,
)
from repro.schema import (
    Constraint,
    ConstraintKind,
    Schema,
    constraints_from_triples,
    is_admissible_constraint,
)

EX = Namespace("http://example.org/")


class TestConstraint:
    def test_triple_roundtrip(self):
        constraint = Constraint.subclass(EX.A, EX.B)
        assert Constraint.from_triple(constraint.to_triple()) == constraint

    def test_from_non_schema_triple_rejected(self):
        with pytest.raises(ValueError):
            Constraint.from_triple(Triple(EX.a, EX.p, EX.b))

    def test_kind_property_uris(self):
        assert ConstraintKind.SUBCLASS.property_uri == RDFS_SUBCLASSOF
        assert ConstraintKind.DOMAIN.property_uri == RDFS_DOMAIN

    def test_equality(self):
        assert Constraint.domain(EX.p, EX.C) == Constraint.domain(EX.p, EX.C)
        assert Constraint.domain(EX.p, EX.C) != Constraint.range(EX.p, EX.C)

    def test_constraints_from_triples_skips_data(self):
        triples = [
            Triple(EX.a, EX.p, EX.b),
            Triple(EX.A, RDFS_SUBCLASSOF, EX.B),
        ]
        assert list(constraints_from_triples(triples)) == [
            Constraint.subclass(EX.A, EX.B)
        ]


class TestAdmissibility:
    def test_normal_constraint_admissible(self):
        assert is_admissible_constraint(Triple(EX.A, RDFS_SUBCLASSOF, EX.B))

    def test_builtin_subject_inadmissible(self):
        assert not is_admissible_constraint(
            Triple(RDF_TYPE, RDFS_DOMAIN, EX.C)
        )
        assert not is_admissible_constraint(
            Triple(RDFS_SUBCLASSOF, RDFS_SUBPROPERTYOF, EX.p)
        )

    def test_builtin_object_inadmissible(self):
        assert not is_admissible_constraint(
            Triple(EX.p, RDFS_SUBPROPERTYOF, RDFS_SUBCLASSOF)
        )

    def test_type_as_superproperty_admissible(self):
        assert is_admissible_constraint(
            Triple(EX.isA, RDFS_SUBPROPERTYOF, RDF_TYPE)
        )

    def test_type_as_domain_target_inadmissible(self):
        assert not is_admissible_constraint(Triple(EX.p, RDFS_DOMAIN, RDF_TYPE))

    def test_data_triple_not_a_constraint(self):
        assert not is_admissible_constraint(Triple(EX.a, EX.p, EX.b))

    def test_inadmissible_filtered_from_schema(self):
        schema = Schema.from_triples(
            [Triple(RDF_TYPE, RDFS_DOMAIN, EX.C), Triple(EX.A, RDFS_SUBCLASSOF, EX.B)]
        )
        assert len(schema) == 1


class TestClosure:
    def test_subclass_transitivity(self):
        schema = Schema(
            [Constraint.subclass(EX.A, EX.B), Constraint.subclass(EX.B, EX.C)]
        )
        assert schema.superclasses(EX.A) == {EX.B, EX.C}
        assert schema.subclasses(EX.C) == {EX.A, EX.B}

    def test_subproperty_transitivity(self):
        schema = Schema(
            [
                Constraint.subproperty(EX.p, EX.q),
                Constraint.subproperty(EX.q, EX.r),
            ]
        )
        assert schema.superproperties(EX.p) == {EX.q, EX.r}
        assert schema.subproperties(EX.r) == {EX.p, EX.q}

    def test_subclass_cycle(self):
        schema = Schema(
            [Constraint.subclass(EX.A, EX.B), Constraint.subclass(EX.B, EX.A)]
        )
        assert EX.A in schema.superclasses(EX.B)
        assert EX.B in schema.superclasses(EX.A)
        # Cycles make every member reachable from itself.
        assert EX.A in schema.superclasses(EX.A)

    def test_domain_inherited_from_superproperty(self):
        schema = Schema(
            [
                Constraint.subproperty(EX.p, EX.q),
                Constraint.domain(EX.q, EX.C),
            ]
        )
        assert EX.C in schema.domains(EX.p)

    def test_domain_widened_by_subclass(self):
        schema = Schema(
            [
                Constraint.domain(EX.p, EX.C),
                Constraint.subclass(EX.C, EX.D),
            ]
        )
        assert schema.domains(EX.p) == {EX.C, EX.D}

    def test_range_inherited_and_widened(self):
        schema = Schema(
            [
                Constraint.subproperty(EX.p, EX.q),
                Constraint.range(EX.q, EX.C),
                Constraint.subclass(EX.C, EX.D),
            ]
        )
        assert schema.ranges(EX.p) == {EX.C, EX.D}

    def test_properties_with_domain(self):
        schema = Schema(
            [
                Constraint.domain(EX.p, EX.C),
                Constraint.subclass(EX.C, EX.D),
                Constraint.domain(EX.q, EX.E),
            ]
        )
        assert schema.properties_with_domain(EX.D) == {EX.p}
        assert schema.properties_with_domain(EX.C) == {EX.p}
        assert schema.properties_with_domain(EX.E) == {EX.q}

    def test_is_subclass_reflexive(self):
        schema = Schema([Constraint.subclass(EX.A, EX.B)])
        assert schema.is_subclass(EX.A, EX.A)
        assert schema.is_subclass(EX.A, EX.B)
        assert not schema.is_subclass(EX.B, EX.A)

    def test_entailed_constraints(self):
        schema = Schema(
            [Constraint.subclass(EX.A, EX.B), Constraint.subclass(EX.B, EX.C)]
        )
        assert Constraint.subclass(EX.A, EX.C) in schema.entailed_constraints()

    def test_classes_and_properties(self):
        schema = Schema(
            [
                Constraint.subclass(EX.A, EX.B),
                Constraint.domain(EX.p, EX.C),
            ]
        )
        assert schema.classes() == frozenset({EX.A, EX.B, EX.C})
        assert schema.properties() == frozenset({EX.p})


class TestMutation:
    def test_add_invalidates_closure(self):
        schema = Schema([Constraint.subclass(EX.A, EX.B)])
        assert schema.superclasses(EX.A) == {EX.B}
        schema.add(Constraint.subclass(EX.B, EX.C))
        assert schema.superclasses(EX.A) == {EX.B, EX.C}

    def test_remove_invalidates_closure(self):
        schema = Schema(
            [Constraint.subclass(EX.A, EX.B), Constraint.subclass(EX.B, EX.C)]
        )
        schema.remove(Constraint.subclass(EX.B, EX.C))
        assert schema.superclasses(EX.A) == {EX.B}

    def test_add_duplicate_is_noop(self):
        schema = Schema([Constraint.subclass(EX.A, EX.B)])
        assert schema.add(Constraint.subclass(EX.A, EX.B)) is False

    def test_remove_absent_is_noop(self):
        schema = Schema()
        assert schema.remove(Constraint.subclass(EX.A, EX.B)) is False

    def test_copy_is_independent(self):
        schema = Schema([Constraint.subclass(EX.A, EX.B)])
        clone = schema.copy()
        clone.add(Constraint.subclass(EX.B, EX.C))
        assert len(schema) == 1
        assert len(clone) == 2

    def test_from_graph_merges_all_kinds(self, books):
        graph, schema, _ = books
        extracted = Schema.from_graph(graph)
        assert extracted == schema
