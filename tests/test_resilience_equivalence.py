"""Property-based soundness of degraded federated answers.

The resilience layer's core contract, checked differentially on random
(graph, schema, query) triples: whatever faults a seeded chaos plan
injects, the degraded :class:`FederatedAnswer` is a **subset** of the
fault-free complete answer — faults may lose rows, never invent them —
and whenever the completeness report certifies the answer complete, it
*is* the complete answer.

The chaos seed derives from ``REPRO_CHAOS_SEED`` (the CI matrix sets
three fixed values), so each CI leg replays a distinct deterministic
fault schedule.
"""

import os

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.federation import Endpoint, FederatedAnswerer
from repro.query import Variable
from repro.rdf import Graph
from repro.resilience import ChaosEndpoint, FakeClock, FaultPlan, RetryPolicy
from repro.schema import Schema

from .test_property_based import graph_st, query_st, schema_st

#: CI sets this per matrix leg; locally the default keeps runs stable.
CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))


def _build_federation(graph, schema, parts, chaos=None, clock=None):
    """A federation over *graph* sharded round-robin into *parts*,
    optionally wrapping each endpoint with a chaos plan factory."""
    shards = [Graph() for _ in range(parts)]
    for index, triple in enumerate(sorted(graph.data_triples())):
        shards[index % parts].add(triple)
    endpoints = [
        Endpoint("s%d" % index, shard) for index, shard in enumerate(shards)
    ]
    if chaos is not None:
        endpoints = [
            ChaosEndpoint(endpoint, chaos(index), clock=clock)
            for index, endpoint in enumerate(endpoints)
        ]
    merged = Schema.from_graph(graph)
    for constraint in schema.direct_constraints():
        merged.add(constraint)
    return FederatedAnswerer(
        endpoints,
        merged,
        retry_policy=RetryPolicy(max_attempts=2, seed=CHAOS_SEED),
        breaker_threshold=3,
        clock=clock if clock is not None else FakeClock(),
    )


def _data_query(query):
    """Chaos soundness only applies to data-level queries (a variable
    in property position can match client-side schema triples the
    endpoints don't hold — already excluded by the fault-free suite)."""
    return not any(
        isinstance(atom.property, Variable) for atom in query.atoms
    )


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    graph=graph_st,
    schema=schema_st,
    query=query_st(),
    parts=st.integers(1, 3),
    case_seed=st.integers(0, 2 ** 16),
)
def test_chaotic_answer_is_subset_of_complete(
    graph, schema, query, parts, case_seed
):
    if not _data_query(query):
        return
    complete = _build_federation(graph, schema, parts).answer(query)
    assert complete.complete

    clock = FakeClock()
    chaotic = _build_federation(
        graph,
        schema,
        parts,
        chaos=lambda index: FaultPlan(
            seed=CHAOS_SEED * 7919 + case_seed * 31 + index,
            transient_rate=0.4,
            latency_rate=0.2,
            latency_seconds=0.05,
            truncation_rate=0.3,
            truncation_limit=2,
            outage_after=4 if index == 0 else None,
        ),
        clock=clock,
    ).answer(query)

    # Soundness: faults lose rows, never fabricate them.
    assert chaotic.rows <= complete.rows
    # Honesty: a certified-complete chaotic answer IS the answer.
    if chaotic.complete:
        assert chaotic.rows == complete.rows
    # And a lossy one must have confessed.
    if chaotic.rows != complete.rows:
        assert not chaotic.complete


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    graph=graph_st,
    schema=schema_st,
    query=query_st(),
    case_seed=st.integers(0, 2 ** 16),
)
def test_latency_only_chaos_is_lossless(graph, schema, query, case_seed):
    """Faults that delay but never fail (pure latency, no deadline
    configured) must leave the answer bit-for-bit complete."""
    if not _data_query(query):
        return
    complete = _build_federation(graph, schema, 2).answer(query)
    clock = FakeClock()
    slow = _build_federation(
        graph,
        schema,
        2,
        chaos=lambda index: FaultPlan(
            seed=CHAOS_SEED + case_seed + index,
            latency_rate=1.0,
            latency_seconds=0.5,
        ),
        clock=clock,
    ).answer(query)
    assert slow.rows == complete.rows
    assert slow.complete
