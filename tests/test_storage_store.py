"""Unit tests for the dictionary and triple store."""

import pytest

from repro.rdf import Graph, Literal, Namespace, RDF_TYPE, Triple
from repro.schema import Constraint, Schema
from repro.storage import Dictionary, TripleStore

EX = Namespace("http://example.org/")


class TestDictionary:
    def test_encode_is_dense_and_stable(self):
        dictionary = Dictionary()
        first = dictionary.encode(EX.a)
        second = dictionary.encode(EX.b)
        assert (first, second) == (0, 1)
        assert dictionary.encode(EX.a) == first

    def test_decode_roundtrip(self):
        dictionary = Dictionary()
        term_id = dictionary.encode(Literal("v"))
        assert dictionary.decode(term_id) == Literal("v")

    def test_lookup_never_mutates(self):
        dictionary = Dictionary()
        assert dictionary.lookup(EX.a) is None
        assert len(dictionary) == 0

    def test_decode_unknown_raises(self):
        with pytest.raises(KeyError):
            Dictionary().decode(0)

    def test_contains(self):
        dictionary = Dictionary()
        dictionary.encode(EX.a)
        assert EX.a in dictionary
        assert EX.b not in dictionary


class TestTripleStore:
    def graph(self):
        return Graph(
            [
                Triple(EX.a, RDF_TYPE, EX.C),
                Triple(EX.b, RDF_TYPE, EX.C),
                Triple(EX.a, EX.p, EX.b),
                Triple(EX.C, Constraint.subclass(EX.C, EX.D).kind.property_uri, EX.D),
            ]
        )

    def test_load_counts(self):
        store = TripleStore.from_graph(self.graph())
        # 3 data triples + direct constraint + (no extra entailed).
        assert store.triple_count == 4

    def test_closed_schema_stored(self):
        graph = Graph(
            [
                Triple(EX.a, RDF_TYPE, EX.A),
                Constraint.subclass(EX.A, EX.B).to_triple(),
                Constraint.subclass(EX.B, EX.C).to_triple(),
            ]
        )
        store = TripleStore.from_graph(graph)
        entailed = Constraint.subclass(EX.A, EX.C).to_triple()
        encoded = tuple(
            store.term_id(term) for term in entailed.as_tuple()
        )
        assert None not in encoded
        assert store.contains(encoded)  # type: ignore[arg-type]

    def test_separate_schema_argument(self):
        data = Graph([Triple(EX.a, RDF_TYPE, EX.A)])
        schema = Schema([Constraint.subclass(EX.A, EX.B)])
        store = TripleStore.from_graph(data, schema)
        assert store.schema.superclasses(EX.A) == {EX.B}

    def test_duplicate_insert_ignored(self):
        store = TripleStore()
        triple = Triple(EX.a, EX.p, EX.b)
        assert store.insert(triple) is True
        assert store.insert(triple) is False
        assert store.triple_count == 1

    def test_scan_property(self):
        store = TripleStore.from_graph(self.graph())
        p_id = store.term_id(EX.p)
        pairs = list(store.scan_property(p_id))
        assert len(pairs) == 1

    def test_scan_property_subject(self):
        store = TripleStore.from_graph(self.graph())
        p_id, a_id = store.term_id(EX.p), store.term_id(EX.a)
        assert list(store.scan_property_subject(p_id, a_id)) == [
            store.term_id(EX.b)
        ]

    def test_scan_property_object(self):
        store = TripleStore.from_graph(self.graph())
        type_id, c_id = store.term_id(RDF_TYPE), store.term_id(EX.C)
        subjects = set(store.scan_property_object(type_id, c_id))
        assert subjects == {store.term_id(EX.a), store.term_id(EX.b)}

    def test_scan_missing_property(self):
        store = TripleStore.from_graph(self.graph())
        assert list(store.scan_property(99999)) == []
        assert list(store.scan_property_subject(99999, 0)) == []

    def test_type_property_id(self):
        store = TripleStore.from_graph(self.graph())
        assert store.type_property_id == store.term_id(RDF_TYPE)

    def test_to_graph_roundtrip(self):
        graph = self.graph()
        store = TripleStore.from_graph(graph)
        decoded = store.to_graph()
        for triple in graph:
            assert triple in decoded


class TestStatistics:
    def test_summary(self, lubm_small_store):
        summary = lubm_small_store.statistics.summary()
        assert summary["triples"] == lubm_small_store.triple_count
        assert summary["properties"] > 10
        assert summary["classes"] > 5

    def test_class_cardinality(self):
        store = TripleStore.from_graph(
            Graph(
                [
                    Triple(EX.a, RDF_TYPE, EX.C),
                    Triple(EX.b, RDF_TYPE, EX.C),
                    Triple(EX.c, RDF_TYPE, EX.D),
                ]
            )
        )
        c_id = store.term_id(EX.C)
        assert store.statistics.class_count(c_id) == 2

    def test_property_distincts(self):
        store = TripleStore.from_graph(
            Graph(
                [
                    Triple(EX.a, EX.p, EX.x),
                    Triple(EX.a, EX.p, EX.y),
                    Triple(EX.b, EX.p, EX.x),
                ]
            )
        )
        p_id = store.term_id(EX.p)
        stats = store.statistics
        assert stats.property_count(p_id) == 3
        assert stats.property_distinct_subjects(p_id) == 2
        assert stats.property_distinct_objects(p_id) == 2

    def test_absent_property_zeroes(self):
        store = TripleStore()
        assert store.statistics.property_count(123) == 0
        assert store.statistics.property_distinct_subjects(123) == 0

    def test_top_values(self):
        store = TripleStore.from_graph(
            Graph(
                [
                    Triple(EX.a, EX.p, EX.x),
                    Triple(EX.a, EX.p, EX.y),
                    Triple(EX.b, EX.p, EX.z),
                ]
            )
        )
        p_id = store.term_id(EX.p)
        top = store.statistics.per_property[p_id].top_subjects(1)
        assert top[0][0] == store.term_id(EX.a)
        assert top[0][1] == 2
