"""Unit tests for the cover cost estimator, GCov and the exhaustive oracle."""


import pytest

from repro.datasets import (
    example1_best_cover,
    example1_query,
    generate_lubm,
    lubm_schema,
)
from repro.optimizer import (
    CoverCostEstimator,
    INFINITE_COST,
    exhaustive_cover_search,
    gcov,
)
from repro.query import ConjunctiveQuery, Cover, TriplePattern, Variable
from repro.rdf import Namespace, RDF_TYPE
from repro.storage import TripleStore

EX = Namespace("http://example.org/")
x, y, u = Variable("x"), Variable("y"), Variable("u")


@pytest.fixture(scope="module")
def lubm_store():
    return TripleStore.from_graph(generate_lubm(universities=1, seed=9))


@pytest.fixture(scope="module")
def schema():
    return lubm_schema()


class TestEstimator:
    def test_cost_is_positive_and_finite(self, lubm_store, schema):
        query = example1_query()
        estimator = CoverCostEstimator(query, schema, lubm_store)
        cost = estimator.cost(Cover.per_atom(query))
        assert 0 < cost < INFINITE_COST

    def test_oversized_fragment_priced_infinite(self, lubm_store, schema):
        query = example1_query()
        estimator = CoverCostEstimator(
            query, schema, lubm_store, fragment_limit=10
        )
        # The single-fragment cover contains both open type atoms:
        # its UCQ has tens of thousands of disjuncts.
        assert estimator.cost(Cover.single_fragment(query)) == INFINITE_COST

    def test_fragment_plans_cached(self, lubm_store, schema):
        query = example1_query()
        estimator = CoverCostEstimator(query, schema, lubm_store)
        estimator.cost(Cover.per_atom(query))
        cached = len(estimator._fragment_plans)
        estimator.cost(Cover.per_atom(query))
        assert len(estimator._fragment_plans) == cached

    def test_paper_cover_beats_scq(self, lubm_store, schema):
        """The cost model must reproduce the paper's ordering: the
        grouped cover of Example 1 is cheaper than the SCQ cover."""
        query = example1_query()
        estimator = CoverCostEstimator(query, schema, lubm_store)
        scq_cost = estimator.cost(Cover.per_atom(query))
        best_cost = estimator.cost(example1_best_cover(query))
        assert best_cost < scq_cost


class TestGCov:
    def test_improves_on_scq(self, lubm_store, schema):
        query = example1_query()
        estimator = CoverCostEstimator(query, schema, lubm_store)
        initial = estimator.cost(Cover.per_atom(query))
        result = gcov(query, schema, lubm_store, estimator=estimator)
        assert result.cost <= initial

    def test_finds_grouping_for_example1(self, lubm_store, schema):
        """GCov must group each open type atom with a selective degree
        atom — the insight of Example 1."""
        query = example1_query()
        result = gcov(query, schema, lubm_store)
        # t1 (index 0) must not be alone: alone it scans every type
        # unfolding of the schema.
        for atom_index in (0, 1):
            fragments = [f for f in result.cover.fragments if atom_index in f]
            assert all(len(f) > 1 for f in fragments)

    def test_explored_space_recorded(self, lubm_store, schema):
        query = example1_query()
        result = gcov(query, schema, lubm_store)
        assert result.explored_count >= result.iterations
        assert all(cost >= result.cost for _, cost in result.explored)

    def test_trivial_query_stays_atomic(self, lubm_store, schema):
        query = ConjunctiveQuery(
            [x], [TriplePattern(x, RDF_TYPE, EX.term("Nothing"))]
        )
        result = gcov(query, schema, lubm_store)
        assert len(result.cover) == 1

    def test_valid_cover_returned(self, lubm_store, schema):
        query = example1_query()
        result = gcov(query, schema, lubm_store)
        covered = set()
        for fragment in result.cover.fragments:
            covered |= fragment
        assert covered == set(range(len(query.atoms)))


class TestExhaustive:
    def test_oracle_on_small_query(self, lubm_store, schema):
        from repro.datasets.lubm import UB

        query = ConjunctiveQuery(
            [x, y],
            [
                TriplePattern(x, RDF_TYPE, UB.Student),
                TriplePattern(x, UB.takesCourse, y),
                TriplePattern(y, RDF_TYPE, UB.Course),
            ],
        )
        result = exhaustive_cover_search(query, schema, lubm_store)
        assert result.cover is not None
        assert len(result.space) == 5  # Bell(3)
        assert result.cost == min(cost for _, cost in result.space)

    def test_gcov_no_worse_than_partition_optimum_modulo_overlap(
        self, lubm_store, schema
    ):
        from repro.datasets.lubm import UB

        query = ConjunctiveQuery(
            [x, y],
            [
                TriplePattern(x, RDF_TYPE, UB.Student),
                TriplePattern(x, UB.takesCourse, y),
            ],
        )
        estimator = CoverCostEstimator(query, schema, lubm_store)
        exhaustive = exhaustive_cover_search(
            query, schema, lubm_store, estimator=estimator
        )
        greedy = gcov(query, schema, lubm_store, estimator=estimator)
        # Greedy may use overlap, so it can even beat the partition
        # optimum; it must never be worse than the SCQ start by design,
        # and on 2 atoms the space is tiny, so require the optimum.
        assert greedy.cost <= exhaustive.cost

    def test_refuses_large_queries(self, lubm_store, schema):
        query = example1_query()
        atoms = list(query.atoms) * 2
        big = ConjunctiveQuery(query.head, atoms)
        with pytest.raises(ValueError):
            exhaustive_cover_search(big, schema, lubm_store)

    def test_ranked_sorted(self, lubm_store, schema):
        from repro.datasets.lubm import UB

        query = ConjunctiveQuery(
            [x], [TriplePattern(x, RDF_TYPE, UB.Student),
                  TriplePattern(x, UB.takesCourse, y)]
        )
        result = exhaustive_cover_search(query, schema, lubm_store)
        ranked = result.ranked()
        costs = [cost for _, cost in ranked]
        assert costs == sorted(costs)
