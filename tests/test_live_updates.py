"""Tests for live updates through the whole stack: store deletion,
saturator deltas, and the facade's insert/delete."""


from repro import QueryAnswerer, Strategy
from repro.datasets import generate_lubm, lubm_queries
from repro.query import Variable
from repro.rdf import Namespace, RDF_TYPE, Triple
from repro.saturation import IncrementalSaturator
from repro.schema import Constraint, Schema
from repro.storage import TripleStore

EX = Namespace("http://example.org/")
x = Variable("x")


class TestStoreDelete:
    def test_delete_removes_everywhere(self):
        store = TripleStore()
        triple = Triple(EX.a, EX.p, EX.b)
        store.insert(triple)
        assert store.delete(triple) is True
        assert store.triple_count == 0
        p_id = store.term_id(EX.p)
        assert list(store.scan_property(p_id)) == []
        assert store.statistics.property_count(p_id) == 0

    def test_delete_absent_is_noop(self):
        store = TripleStore()
        assert store.delete(Triple(EX.a, EX.p, EX.b)) is False

    def test_delete_keeps_siblings(self):
        store = TripleStore()
        first = Triple(EX.a, EX.p, EX.b)
        second = Triple(EX.a, EX.p, EX.c)
        store.insert(first)
        store.insert(second)
        store.delete(first)
        p_id, a_id = store.term_id(EX.p), store.term_id(EX.a)
        assert list(store.scan_property_subject(p_id, a_id)) == [
            store.term_id(EX.c)
        ]
        assert store.statistics.property_count(p_id) == 1

    def test_class_cardinality_maintained(self):
        store = TripleStore()
        triple = Triple(EX.a, RDF_TYPE, EX.C)
        store.insert(triple)
        store.delete(triple)
        assert store.statistics.class_count(store.term_id(EX.C)) == 0


class TestSaturatorDeltas:
    def test_insert_returns_delta(self):
        schema = Schema([Constraint.subclass(EX.A, EX.B)])
        saturator = IncrementalSaturator(schema)
        delta = saturator.insert(Triple(EX.i, RDF_TYPE, EX.A))
        assert set(delta) == {
            Triple(EX.i, RDF_TYPE, EX.A),
            Triple(EX.i, RDF_TYPE, EX.B),
        }

    def test_reinsert_returns_empty(self):
        saturator = IncrementalSaturator(Schema())
        triple = Triple(EX.a, EX.p, EX.b)
        saturator.insert(triple)
        assert saturator.insert(triple) == []

    def test_delete_returns_removed(self):
        schema = Schema([Constraint.subclass(EX.A, EX.B)])
        saturator = IncrementalSaturator(schema)
        triple = Triple(EX.i, RDF_TYPE, EX.A)
        saturator.insert(triple)
        removed = saturator.delete(triple)
        assert set(removed) == {
            Triple(EX.i, RDF_TYPE, EX.A),
            Triple(EX.i, RDF_TYPE, EX.B),
        }

    def test_delete_shared_support_partial(self):
        schema = Schema([Constraint.domain(EX.p, EX.C)])
        saturator = IncrementalSaturator(schema)
        first = Triple(EX.a, EX.p, EX.b)
        second = Triple(EX.a, EX.p, EX.c)
        saturator.insert(first)
        saturator.insert(second)
        removed = saturator.delete(first)
        # (a type C) is still supported by the second triple.
        assert Triple(EX.a, RDF_TYPE, EX.C) not in removed
        assert first in removed


class TestFacadeUpdates:
    def fresh_equal(self, answerer, query):
        """Answers after updates == answers of a freshly built answerer."""
        fresh = QueryAnswerer(answerer.graph.copy(), answerer.schema)
        for strategy in (Strategy.SAT, Strategy.REF_UCQ, Strategy.REF_SCQ):
            assert (
                answerer.answer(query, strategy).answer
                == fresh.answer(query, strategy).answer
            ), strategy

    def test_insert_visible_to_all_strategies(self, books):
        graph, schema, query = books
        answerer = QueryAnswerer(graph.copy(), schema)
        # Warm the saturated store so insert must maintain it.
        answerer.answer(query, Strategy.SAT)
        from repro.datasets.books import BOOKS
        from repro.rdf import BlankNode, Literal

        b2 = BlankNode("b2")
        answerer.insert(Triple(BOOKS.doi2, BOOKS.writtenBy, b2))
        answerer.insert(Triple(b2, BOOKS.hasName, Literal("I. Calvino")))
        answerer.insert(Triple(BOOKS.doi2, BOOKS.publishedIn, Literal("1949")))
        report = answerer.answer(query, Strategy.SAT)
        assert (Literal("I. Calvino"),) in report.answer
        self.fresh_equal(answerer, query)

    def test_delete_visible_to_all_strategies(self, books):
        graph, schema, query = books
        answerer = QueryAnswerer(graph.copy(), schema)
        answerer.answer(query, Strategy.SAT)
        from repro.datasets.books import BOOKS
        from repro.rdf import BlankNode

        answerer.delete(Triple(BOOKS.doi1, BOOKS.writtenBy, BlankNode("b1")))
        report = answerer.answer(query, Strategy.SAT)
        assert report.cardinality == 0
        self.fresh_equal(answerer, query)

    def test_updates_before_saturation_built(self, books):
        graph, schema, query = books
        answerer = QueryAnswerer(graph.copy(), schema)
        from repro.datasets.books import BOOKS
        from repro.rdf import BlankNode

        answerer.delete(Triple(BOOKS.doi1, BOOKS.writtenBy, BlankNode("b1")))
        assert answerer.answer(query, Strategy.SAT).cardinality == 0

    def test_sqlite_engine_sees_updates(self, books):
        graph, schema, query = books
        answerer = QueryAnswerer(graph.copy(), schema, engine="sqlite")
        answerer.answer(query, Strategy.REF_UCQ)
        from repro.datasets.books import BOOKS
        from repro.rdf import BlankNode

        answerer.delete(Triple(BOOKS.doi1, BOOKS.writtenBy, BlankNode("b1")))
        assert answerer.answer(query, Strategy.REF_UCQ).cardinality == 0

    def test_update_churn_on_lubm(self):
        graph = generate_lubm(universities=1, seed=11)
        answerer = QueryAnswerer(graph.copy())
        query = lubm_queries()["Q6"]
        before = answerer.answer(query, Strategy.SAT).cardinality
        from repro.datasets.lubm import UB

        newcomers = [
            Triple(EX.term("new%d" % index), RDF_TYPE, UB.GraduateStudent)
            for index in range(5)
        ]
        for triple in newcomers:
            answerer.insert(triple)
        assert answerer.answer(query, Strategy.SAT).cardinality == before + 5
        assert answerer.answer(query, Strategy.REF_SCQ).cardinality == before + 5
        for triple in newcomers:
            answerer.delete(triple)
        assert answerer.answer(query, Strategy.SAT).cardinality == before
