"""Unit tests for the QueryAnswerer facade."""

import pytest

from repro import QueryAnswerer, Strategy
from repro.core import COMPLETE_STRATEGIES
from repro.datasets import (
    example1_best_cover,
    example1_query,
    generate_lubm,
)
from repro.query import Cover
from repro.rdf import Literal, Namespace
from repro.storage import QueryTooLargeError

EX = Namespace("http://example.org/")


@pytest.fixture
def answerer(books):
    graph, schema, _ = books
    return QueryAnswerer(graph, schema)


class TestStrategies:
    def test_all_complete_strategies_agree(self, answerer, books):
        _, _, query = books
        reports = {
            strategy: answerer.answer(
                query,
                strategy,
                cover=Cover(query, [[0, 1], [2]])
                if strategy == Strategy.REF_JUCQ
                else None,
            )
            for strategy in COMPLETE_STRATEGIES
        }
        answers = {report.answer for report in reports.values()}
        assert len(answers) == 1
        assert answers.pop() == frozenset({(Literal("J. L. Borges"),)})

    def test_jucq_requires_cover(self, answerer, books):
        _, _, query = books
        with pytest.raises(ValueError):
            answerer.answer(query, Strategy.REF_JUCQ)

    def test_incomplete_strategies_lose_answers(self, answerer, books):
        _, _, query = books
        complete = answerer.answer(query, Strategy.REF_UCQ)
        allegro = answerer.answer(query, Strategy.REF_ALLEGRO)
        # The example query needs subproperty + domain/range reasoning,
        # which the AllegroGraph-style strategy ignores.
        assert len(allegro.answer) < len(complete.answer)

    def test_reports_carry_details(self, answerer, books):
        _, _, query = books
        ucq = answerer.answer(query, Strategy.REF_UCQ)
        assert ucq.details["ucq_disjuncts"] >= 1
        gcov = answerer.answer(query, Strategy.REF_GCOV)
        assert "cover" in gcov.details
        assert gcov.details["explored_covers"] >= 1

    def test_sat_caches_saturation(self, answerer, books):
        _, _, query = books
        assert answerer.saturation_seconds is None
        answerer.answer(query, Strategy.SAT)
        first = answerer.saturation_seconds
        assert first is not None
        answerer.answer(query, Strategy.SAT)
        assert answerer.saturation_seconds == first

    def test_unknown_strategy_rejected(self, answerer, books):
        _, _, query = books
        with pytest.raises(ValueError):
            answerer.answer(query, "nope")


class TestParseLimits:
    def test_ucq_blowup_fails_cleanly(self):
        graph = generate_lubm(universities=1, seed=2)
        answerer = QueryAnswerer(graph)
        with pytest.raises(QueryTooLargeError):
            answerer.answer(example1_query(), Strategy.REF_UCQ)

    def test_answer_all_skips_failures(self):
        graph = generate_lubm(universities=1, seed=2)
        answerer = QueryAnswerer(graph)
        reports = answerer.answer_all(
            example1_query(),
            strategies=(Strategy.REF_UCQ, Strategy.REF_SCQ, Strategy.SAT),
        )
        assert Strategy.REF_UCQ not in reports
        assert Strategy.REF_SCQ in reports
        assert (
            reports[Strategy.REF_SCQ].answer == reports[Strategy.SAT].answer
        )

    def test_answer_all_default_strategies(self, answerer, books):
        """All strategies, no cover: REF_JUCQ is skipped, nothing raises."""
        _, _, query = books
        reports = answerer.answer_all(query)
        assert Strategy.REF_JUCQ not in reports
        assert Strategy.SAT in reports
        assert Strategy.DATALOG in reports

    def test_answer_all_with_cover_includes_jucq(self, answerer, books):
        _, _, query = books
        cover = Cover(query, [[0, 1], [2]])
        reports = answerer.answer_all(
            query, strategies=(Strategy.REF_JUCQ, Strategy.SAT), cover=cover
        )
        assert Strategy.REF_JUCQ in reports
        assert (
            reports[Strategy.REF_JUCQ].answer == reports[Strategy.SAT].answer
        )


class TestExample1EndToEnd:
    @pytest.fixture(scope="class")
    def lubm_answerer(self):
        return QueryAnswerer(generate_lubm(universities=1, seed=1))

    def test_paper_cover_matches_sat(self, lubm_answerer):
        query = example1_query()
        sat = lubm_answerer.answer(query, Strategy.SAT)
        best = lubm_answerer.answer(
            query, Strategy.REF_JUCQ, cover=example1_best_cover(query)
        )
        assert best.answer == sat.answer
        assert sat.cardinality > 0

    def test_gcov_matches_sat(self, lubm_answerer):
        query = example1_query()
        sat = lubm_answerer.answer(query, Strategy.SAT)
        gcov = lubm_answerer.answer(query, Strategy.REF_GCOV)
        assert gcov.answer == sat.answer

    def test_intermediate_results_shrink_with_grouping(self, lubm_answerer):
        query = example1_query()
        scq = lubm_answerer.answer(query, Strategy.REF_SCQ)
        best = lubm_answerer.answer(
            query, Strategy.REF_JUCQ, cover=example1_best_cover(query)
        )
        assert (
            best.execution.max_intermediate_rows()
            < scq.execution.max_intermediate_rows()
        )
