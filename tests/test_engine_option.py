"""Tests for the facade's engine option (builtin vs SQLite) and the
SQL-backend property test."""

import pytest
from hypothesis import HealthCheck, given, settings

from repro import QueryAnswerer, Strategy
from repro.datasets import generate_lubm, lubm_queries
from repro.query import Cover, evaluate
from repro.reformulation import reformulate
from repro.reformulation.atoms import database_graph
from repro.storage import SqliteBackend, TripleStore

from tests.test_property_based import graph_st, query_st, schema_st


class TestEngineOption:
    def test_rejects_unknown_engine(self, books):
        graph, schema, _ = books
        with pytest.raises(ValueError):
            QueryAnswerer(graph, schema, engine="oracle")

    def test_books_same_answers(self, books):
        graph, schema, query = books
        builtin = QueryAnswerer(graph, schema)
        sqlite = QueryAnswerer(graph, schema, engine="sqlite")
        for strategy in (
            Strategy.SAT,
            Strategy.REF_UCQ,
            Strategy.REF_SCQ,
            Strategy.REF_GCOV,
        ):
            assert (
                sqlite.answer(query, strategy).answer
                == builtin.answer(query, strategy).answer
            ), strategy

    def test_jucq_cover_on_sqlite(self, books):
        graph, schema, query = books
        sqlite = QueryAnswerer(graph, schema, engine="sqlite")
        cover = Cover(query, [[0, 1], [2]])
        report = sqlite.answer(query, Strategy.REF_JUCQ, cover=cover)
        assert report.cardinality == 1
        assert report.execution is None  # real engine: no plan metrics

    def test_lubm_workload_same_answers(self):
        graph = generate_lubm(universities=1, seed=7)
        builtin = QueryAnswerer(graph)
        sqlite = QueryAnswerer(graph, engine="sqlite")
        for name in ("Q1", "Q5", "Q9", "Q13"):
            query = lubm_queries()[name]
            assert (
                sqlite.answer(query, Strategy.REF_SCQ).answer
                == builtin.answer(query, Strategy.REF_SCQ).answer
            ), name

    def test_datalog_unaffected_by_engine(self, books):
        graph, schema, query = books
        sqlite = QueryAnswerer(graph, schema, engine="sqlite")
        assert sqlite.answer(query, Strategy.DATALOG).cardinality == 1


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(graph=graph_st, schema=schema_st, query=query_st())
def test_sqlite_matches_reference_property(graph, schema, query):
    """Generated SQL on SQLite == the reference evaluator, for random
    graphs, schemas and reformulated queries."""
    db = database_graph(graph, schema)
    union = reformulate(query, schema)
    expected = evaluate(db, union)
    store = TripleStore.from_graph(graph, schema)
    with SqliteBackend(store) as backend:
        assert backend.run(union) == expected
