"""Unit tests for the dataset generators and workloads."""


from repro.datasets import (
    UB,
    GeneratorConfig,
    bib_queries,
    books_dataset,
    example1_best_cover,
    example1_query,
    generate_bib,
    generate_geo,
    generate_lubm,
    geo_queries,
    lubm_queries,
    lubm_schema,
    query_list,
    university_uri,
)
from repro.saturation import saturate


class TestBooks:
    def test_shape(self):
        graph, schema, query = books_dataset()
        assert len(graph) == 9  # 5 data + 4 schema triples
        assert len(schema) == 4
        assert len(query.atoms) == 3

    def test_answer_needs_entailment(self, books, books_saturated):
        from repro.query import evaluate_cq
        from repro.rdf import Literal

        graph, _, query = books
        assert evaluate_cq(graph, query) == frozenset()
        assert evaluate_cq(books_saturated, query) == frozenset(
            {(Literal("J. L. Borges"),)}
        )


class TestLubmSchema:
    def test_hierarchy_depth(self):
        schema = lubm_schema()
        assert schema.is_subclass(UB.FullProfessor, UB.Person)
        assert schema.is_subclass(UB.TeachingAssistant, UB.Person)
        assert schema.is_subproperty(UB.headOf, UB.memberOf)
        assert schema.is_subproperty(UB.doctoralDegreeFrom, UB.degreeFrom)

    def test_domain_range_reach(self):
        schema = lubm_schema()
        assert UB.Person in schema.domains(UB.mastersDegreeFrom)
        assert UB.University in schema.ranges(UB.doctoralDegreeFrom)
        assert UB.Organization in schema.ranges(UB.headOf)

    def test_sizes(self):
        schema = lubm_schema()
        assert len(schema.classes()) >= 40
        assert len(schema.properties()) >= 18


class TestLubmGenerator:
    def test_deterministic(self):
        first = generate_lubm(universities=1, seed=5)
        second = generate_lubm(universities=1, seed=5)
        assert set(first) == set(second)

    def test_seed_changes_data(self):
        first = generate_lubm(universities=1, seed=5)
        second = generate_lubm(universities=1, seed=6)
        assert set(first) != set(second)

    def test_scales_with_universities(self):
        one = generate_lubm(universities=1, seed=5)
        two = generate_lubm(universities=2, seed=5)
        assert len(two) > 1.7 * len(one)

    def test_most_specific_types_only(self):
        graph = generate_lubm(universities=1, seed=5)
        # No instance is explicitly typed with a non-leaf class that
        # its specific type already entails.
        assert not graph.subjects_of_type(UB.Professor)
        assert not graph.subjects_of_type(UB.Person)
        assert graph.subjects_of_type(UB.FullProfessor)

    def test_schema_optional(self):
        bare = generate_lubm(universities=1, seed=5, include_schema=False)
        assert not list(bare.schema_triples())

    def test_config_respected(self):
        small = generate_lubm(
            universities=1,
            seed=5,
            config=GeneratorConfig(departments=1, undergraduate_students=2),
        )
        default = generate_lubm(universities=1, seed=5)
        assert len(small) < len(default) / 2

    def test_degree_pool_skewed(self):
        graph = generate_lubm(universities=3, seed=5)
        from collections import Counter

        counts = Counter(
            triple.object
            for triple in graph.match(property=UB.mastersDegreeFrom)
        )
        popular = counts[university_uri(0)] + counts[university_uri(1)]
        assert popular > sum(counts.values()) * 0.25


class TestLubmQueries:
    def test_example1_shape(self):
        query = example1_query()
        assert query.arity == 5
        assert len(query.atoms) == 6
        assert query.atoms[0].is_type_atom()

    def test_example1_best_cover_is_papers(self):
        cover = example1_best_cover()
        assert set(cover.fragments) == {
            frozenset({0, 2}),
            frozenset({2, 4}),
            frozenset({1, 3}),
            frozenset({3, 5}),
        }

    def test_fourteen_queries(self):
        queries = lubm_queries()
        assert len(queries) == 14

    def test_query_list_order(self):
        ordered = query_list()
        assert len(ordered) == 15

    def test_queries_have_answers_on_saturated_data(self):
        from repro.query import evaluate_cq

        graph = generate_lubm(universities=1, seed=3)
        saturated = saturate(graph)
        non_empty = 0
        for name, query in lubm_queries().items():
            if evaluate_cq(saturated, query):
                non_empty += 1
        # Most of the workload must be non-trivial on generated data.
        assert non_empty >= 10


class TestGeoAndBib:
    def test_geo_deterministic_and_sized(self):
        graph = generate_geo(regions=2, departements_per_region=2,
                             communes_per_departement=5, seed=1)
        again = generate_geo(regions=2, departements_per_region=2,
                             communes_per_departement=5, seed=1)
        assert set(graph) == set(again)
        assert len(graph) > 100

    def test_geo_queries_answerable(self):
        from repro.query import evaluate_cq

        graph = generate_geo(regions=1, departements_per_region=2,
                             communes_per_departement=5, seed=1)
        saturated = saturate(graph)
        for name, query in geo_queries().items():
            assert evaluate_cq(saturated, query), name

    def test_geo_reasoning_required(self):
        from repro.query import evaluate_cq

        graph = generate_geo(regions=1, departements_per_region=1,
                             communes_per_departement=3, seed=1)
        query = geo_queries()["G1"]
        assert not evaluate_cq(graph, query)
        assert evaluate_cq(saturate(graph), query)

    def test_bib_deterministic_and_sized(self):
        graph = generate_bib(authors=10, publications=30, venues=3, seed=2)
        again = generate_bib(authors=10, publications=30, venues=3, seed=2)
        assert set(graph) == set(again)
        assert len(graph) > 100

    def test_bib_queries_answerable(self):
        from repro.query import evaluate_cq

        graph = generate_bib(authors=20, publications=60, venues=5, seed=2)
        saturated = saturate(graph)
        for name, query in bib_queries().items():
            assert evaluate_cq(saturated, query), name

    def test_bib_zipf_skew(self):
        from collections import Counter
        from repro.datasets.dblp_like import BIB

        graph = generate_bib(authors=50, publications=300, venues=5, seed=2)
        counts = Counter(
            triple.subject for triple in graph.match(property=BIB.authorOf)
        )
        most = counts.most_common(1)[0][1]
        assert most >= 5 * (sum(counts.values()) / len(counts)) / 2
