"""Run every module's doctests — documentation examples stay honest."""

import doctest
import importlib
import pkgutil

import pytest

import repro


def _module_names():
    names = ["repro"]
    for module_info in pkgutil.walk_packages(
        repro.__path__, prefix="repro."
    ):
        if module_info.name == "repro.__main__":
            continue  # executes the CLI at import
        names.append(module_info.name)
    return sorted(names)


@pytest.mark.parametrize("module_name", _module_names())
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(
        module,
        optionflags=doctest.NORMALIZE_WHITESPACE | doctest.ELLIPSIS,
    )
    assert results.failed == 0, "%d doctest failure(s) in %s" % (
        results.failed,
        module_name,
    )
