"""Unit and property tests for derivation provenance."""

from hypothesis import HealthCheck, given, settings

from repro.rdf import (
    Graph,
    Literal,
    Namespace,
    RDF_TYPE,
    Triple,
)
from repro.saturation import saturate
from repro.saturation.provenance import (
    explain_triple,
    format_derivation,
)
from repro.schema import Constraint, Schema

from tests.test_property_based import graph_st, schema_st

EX = Namespace("http://example.org/")


class TestExplain:
    def test_explicit(self):
        graph = Graph([Triple(EX.a, EX.p, EX.b)])
        derivation = explain_triple(Triple(EX.a, EX.p, EX.b), graph)
        assert derivation.is_explicit()
        assert derivation.depth() == 0

    def test_not_entailed(self):
        graph = Graph([Triple(EX.a, EX.p, EX.b)])
        assert explain_triple(Triple(EX.a, EX.q, EX.b), graph) is None

    def test_type_propagation_chain(self):
        schema = Schema(
            [
                Constraint.subclass(EX.A, EX.B),
                Constraint.subclass(EX.B, EX.C),
            ]
        )
        graph = Graph([Triple(EX.x, RDF_TYPE, EX.A)])
        derivation = explain_triple(Triple(EX.x, RDF_TYPE, EX.C), graph, schema)
        assert derivation is not None
        assert derivation.rule == "type-propagation"
        # The proof bottoms out in the explicit type assertion.
        leaf = derivation
        while leaf.premises:
            leaf = leaf.premises[0]
        assert leaf.is_explicit()
        assert leaf.triple == Triple(EX.x, RDF_TYPE, EX.A)

    def test_domain_typing(self):
        schema = Schema([Constraint.domain(EX.p, EX.C)])
        graph = Graph([Triple(EX.a, EX.p, EX.b)])
        derivation = explain_triple(Triple(EX.a, RDF_TYPE, EX.C), graph, schema)
        assert derivation.rule == "domain-typing"
        assert derivation.constraint == Constraint.domain(EX.p, EX.C)

    def test_range_typing(self):
        schema = Schema([Constraint.range(EX.p, EX.C)])
        graph = Graph([Triple(EX.a, EX.p, EX.b)])
        derivation = explain_triple(Triple(EX.b, RDF_TYPE, EX.C), graph, schema)
        assert derivation.rule == "range-typing"

    def test_literal_never_explained_as_typed(self):
        schema = Schema([Constraint.range(EX.p, EX.C)])
        graph = Graph([Triple(EX.a, EX.p, Literal("v"))])
        # A type triple with a literal subject is ill-formed and cannot
        # even be constructed; the nearest well-formed question:
        assert explain_triple(Triple(EX.a, RDF_TYPE, EX.C), graph, schema) is None

    def test_property_propagation(self):
        schema = Schema([Constraint.subproperty(EX.p, EX.q)])
        graph = Graph([Triple(EX.a, EX.p, EX.b)])
        derivation = explain_triple(Triple(EX.a, EX.q, EX.b), graph, schema)
        assert derivation.rule == "property-propagation"

    def test_entailed_schema_triple(self):
        schema = Schema(
            [
                Constraint.subclass(EX.A, EX.B),
                Constraint.subclass(EX.B, EX.C),
            ]
        )
        graph = Graph()
        derivation = explain_triple(
            Constraint.subclass(EX.A, EX.C).to_triple(), graph, schema
        )
        assert derivation.rule == "schema-closure"

    def test_chained_derivation(self):
        schema = Schema(
            [
                Constraint.subproperty(EX.writtenBy, EX.hasAuthor),
                Constraint.domain(EX.writtenBy, EX.Book),
                Constraint.subclass(EX.Book, EX.Publication),
            ]
        )
        graph = Graph([Triple(EX.d, EX.writtenBy, EX.w)])
        derivation = explain_triple(
            Triple(EX.d, RDF_TYPE, EX.Publication), graph, schema
        )
        assert derivation is not None
        # Publication via Book's subclass link over domain typing of
        # the explicit writtenBy triple.
        rules = []
        node = derivation
        while True:
            rules.append(node.rule)
            if not node.premises:
                break
            node = node.premises[0]
        assert rules == ["type-propagation", "domain-typing", "explicit"]

    def test_format(self):
        schema = Schema([Constraint.subclass(EX.A, EX.B)])
        graph = Graph([Triple(EX.x, RDF_TYPE, EX.A)])
        derivation = explain_triple(Triple(EX.x, RDF_TYPE, EX.B), graph, schema)
        text = format_derivation(derivation)
        assert "type-propagation" in text
        assert "[explicit]" in text
        assert text.count("\n") == 1


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(graph=graph_st, schema=schema_st)
def test_every_entailed_triple_is_explainable(graph, schema):
    """Backward explanation is complete w.r.t. forward saturation."""
    saturated = saturate(graph, schema)
    for triple in saturated:
        derivation = explain_triple(triple, graph, schema)
        assert derivation is not None, triple
        assert derivation.triple == triple


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(graph=graph_st, schema=schema_st)
def test_explanations_are_sound(graph, schema):
    """Whatever is explainable is in the saturation."""
    saturated = set(saturate(graph, schema))
    candidates = list(saturated)[:10]
    for triple in candidates:
        derivation = explain_triple(triple, graph, schema)
        if derivation is not None:
            assert triple in saturated
            # Leaves are explicit or closure facts.
            stack = [derivation]
            while stack:
                node = stack.pop()
                if not node.premises:
                    assert node.rule in (
                        "explicit", "schema-closure",
                        "domain-typing", "range-typing",
                    ) or node.is_explicit()
                stack.extend(node.premises)