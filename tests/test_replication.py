"""Tests for WAL-shipping replication: links, catch-up, failover,
divergence repair, and replica-aware serving (DESIGN.md §15).

The organizing invariant is *differential*: whatever the links drop,
duplicate, delay, or tear, and whoever crashes or partitions, after
heal + catch-up every live follower's state — triples, dictionary,
schema, epochs — is byte-identical to the primary's (compared through
the canonical checkpoint encoding), and a promoted follower answers
the query workload exactly as the pre-failover primary did.
"""

from __future__ import annotations

import os

import pytest

from repro.durability.wal import WriteAheadLog, encode_record
from repro.query import parse_query
from repro.rdf import Graph, Namespace, RDF_TYPE, RDFS_SUBCLASSOF, Triple
from repro.replication import (
    PrimaryFenced,
    ReplicaRouter,
    ReplicationCluster,
    ReplicationLink,
)
from repro.resilience.clock import FakeClock
from repro.resilience.faults import ReplicationFaultPlan
from repro.service import (
    DONE,
    LEVEL_NAMES,
    QueryRequest,
    QueryService,
    REPLICA_READS_ONLY,
    SHED_NEW_WORK,
    TenantConfig,
)

#: CI sweeps this (see .github/workflows/ci.yml) so the convergence
#: invariants hold at every seeded fault schedule, not one lucky one.
CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))

EX = Namespace("http://example.org/repl/")

STUDENT_QUERY = parse_query(
    "SELECT ?x WHERE { ?x rdf:type <http://example.org/repl/Student> }"
)

FAULTY_LINKS = {
    "drop_rate": 0.2,
    "duplicate_rate": 0.1,
    "delay_rate": 0.1,
    "delay_rounds": 2,
    "tear_rate": 0.1,
}


def tiny_graph(students: int = 8) -> Graph:
    graph = Graph()
    graph.add(Triple(EX.Grad, RDFS_SUBCLASSOF, EX.Student))
    for index in range(students):
        klass = EX.Grad if index % 2 else EX.Student
        graph.add(Triple(EX["s%d" % index], RDF_TYPE, klass))
    return graph


def make_cluster(tmp_path, names=("n1", "n2", "n3"), faults=None,
                 **kwargs) -> ReplicationCluster:
    return ReplicationCluster(
        str(tmp_path / "cluster"), names, seed=CHAOS_SEED,
        link_faults=faults, **kwargs)


def write_n(cluster: ReplicationCluster, count: int, start: int = 0) -> None:
    """``count`` primary inserts, one replication round after each."""
    for index in range(start, start + count):
        cluster.primary_node.insert(
            Triple(EX["w%d" % index], RDF_TYPE, EX.Write))
        cluster.pump(1)


# ---------------------------------------------------------------------------
# Fault plans and links


class TestReplicationFaults:
    def test_same_seed_same_schedule(self):
        first = ReplicationFaultPlan(seed=9, drop_rate=0.3, tear_rate=0.2)
        second = ReplicationFaultPlan(seed=9, drop_rate=0.3, tear_rate=0.2)
        frames = [64, 80, 96, 64, 128, 72]
        for size in frames:
            a, b = first.decide(size), second.decide(size)
            assert (a.drop, a.duplicate, a.delay_rounds, a.tear_at) == \
                (b.drop, b.duplicate, b.delay_rounds, b.tear_at)

    def test_draws_consumed_even_when_axis_disabled(self):
        # Enabling a second axis must not shift the first axis's
        # schedule: every decide() consumes the same number of draws.
        drops_only = ReplicationFaultPlan(seed=4, drop_rate=0.4)
        both = ReplicationFaultPlan(seed=4, drop_rate=0.4,
                                    duplicate_rate=0.0, tear_rate=0.0)
        for _ in range(16):
            assert drops_only.decide(100).drop == both.decide(100).drop

    def test_tear_point_is_a_nonempty_strict_prefix(self):
        plan = ReplicationFaultPlan(seed=2, tear_rate=1.0)
        for size in (2, 17, 300):
            for _ in range(8):
                decision = plan.decide(size)
                assert decision.tear_at is not None
                assert 0 < decision.tear_at < size
        # A 1-byte frame has no strict prefix: it stays intact.
        assert plan.decide(1).tear_at == 1

    def test_rates_validated(self):
        with pytest.raises(ValueError):
            ReplicationFaultPlan(drop_rate=1.5)


class TestReplicationLink:
    def test_fifo_without_faults(self):
        link = ReplicationLink("l")
        assert link.send(b"a") and link.send(b"b")
        assert link.deliver() == [b"a", b"b"]
        assert link.deliver() == []

    def test_backpressure_refuses_beyond_capacity(self):
        link = ReplicationLink("l", capacity=2)
        assert link.send(b"a") and link.send(b"b")
        assert not link.send(b"c")
        assert link.counters["refused"] == 1
        link.deliver()
        assert link.send(b"c")

    def test_down_link_loses_in_flight_frames(self):
        link = ReplicationLink("l")
        link.send(b"a")
        link.set_up(False)
        assert not link.send(b"b")
        assert link.deliver() == []
        assert link.counters["lost_in_flight"] == 1
        link.set_up(True)
        assert link.send(b"c")

    def test_torn_frame_delivers_prefix_only(self):
        plan = ReplicationFaultPlan(seed=2, tear_rate=1.0)
        link = ReplicationLink("l", plan=plan)
        frame = bytes(range(64))
        assert link.send(frame)
        (chunk,) = link.deliver()
        assert chunk == frame[: len(chunk)]
        assert len(chunk) < len(frame) or chunk == frame
        assert link.counters["torn"] == 1

    def test_delayed_frame_lands_after_later_traffic(self):
        plan = ReplicationFaultPlan(seed=0, delay_rate=1.0, delay_rounds=1)
        link = ReplicationLink("l", plan=plan)
        link.send(b"first")   # held
        delivered = link.deliver()
        assert b"first" not in delivered
        link.tick()
        assert b"first" in link.deliver()


# ---------------------------------------------------------------------------
# Catch-up over lossy links


class TestCatchUp:
    def test_clean_links_converge(self, tmp_path):
        cluster = make_cluster(tmp_path)
        try:
            write_n(cluster, 10)
            assert cluster.pump_until_converged() <= 5
            assert cluster.verify_consistency() == []
        finally:
            cluster.close()

    def test_faulty_links_converge_and_state_is_identical(self, tmp_path):
        cluster = make_cluster(tmp_path, faults=FAULTY_LINKS)
        try:
            cluster.primary_node.load(tiny_graph())
            write_n(cluster, 25)
            cluster.pump_until_converged()
            assert cluster.verify_consistency() == []
            primary = cluster.primary_node
            for node in cluster.followers():
                assert node.state_crc() == primary.state_crc()
                assert (sorted(node.durable.store.to_graph())
                        == sorted(primary.durable.store.to_graph()))
            # The faults actually fired and the follower machinery
            # handled them (otherwise this test proves nothing).
            fired = sum(link.counters["dropped"] + link.counters["torn"]
                        + link.counters["duplicated"]
                        for name, link in cluster.links.items()
                        if name != cluster.primary_name)
            assert fired > 0
        finally:
            cluster.close()

    def test_follower_restart_resumes_from_wal(self, tmp_path):
        cluster = make_cluster(tmp_path)
        try:
            write_n(cluster, 8)
            cluster.pump_until_converged()
            cluster.kill("n2")
            write_n(cluster, 6, start=8)
            cluster.restart("n2")
            cluster.pump_until_converged()
            assert cluster.verify_consistency() == []
            # Resumed via the ship log, not a reseed.
            assert cluster.nodes["n2"].counters["reseeds"] == 0
        finally:
            cluster.close()

    def test_lagged_follower_past_the_floor_reseeds(self, tmp_path):
        cluster = make_cluster(tmp_path, retain=4)
        try:
            write_n(cluster, 4)
            cluster.pump_until_converged()
            cluster.partition("n2")
            write_n(cluster, 12, start=4)  # floor moves past n2's lsn
            cluster.heal("n2")
            cluster.pump_until_converged()
            assert cluster.verify_consistency() == []
            assert cluster.nodes["n2"].counters["reseeds"] == 1
            assert any(entry["reason"].startswith("lagged")
                       for entry in cluster.reseed_log)
            # Falling behind is not divergence.
            assert cluster.divergences == 0
        finally:
            cluster.close()


# ---------------------------------------------------------------------------
# Failover, fencing, divergence


class TestFailover:
    def test_kill_primary_promotes_most_caught_up(self, tmp_path):
        cluster = make_cluster(tmp_path)
        try:
            write_n(cluster, 10)
            cluster.pump_until_converged()
            old = cluster.kill_primary()
            cluster.pump(4)  # lease expires, election runs
            assert cluster.primary_name != old
            assert cluster.coordinator.epoch == 2
            assert cluster.primary_node.repl_epoch == 2
            # Writes resume against the new primary.
            write_n(cluster, 3, start=10)
            cluster.pump_until_converged()
            assert cluster.primary_node.lsn == 13
        finally:
            cluster.close()

    def test_old_primary_is_fenced_at_heal_and_rejoins(self, tmp_path):
        cluster = make_cluster(tmp_path)
        try:
            write_n(cluster, 6)
            cluster.pump_until_converged()
            old = cluster.kill_primary()
            cluster.pump(4)
            write_n(cluster, 4, start=6)
            cluster.heal()
            cluster.pump(1)
            # Back, fenced, and refusing writes before it can serve.
            with pytest.raises(PrimaryFenced):
                cluster.nodes[old].insert(
                    Triple(EX.zombie, RDF_TYPE, EX.Write))
            cluster.pump_until_converged()
            assert cluster.verify_consistency() == []
            assert cluster.nodes[old].repl_epoch == cluster.coordinator.epoch
        finally:
            cluster.close()

    def test_divergent_suffix_detected_and_reseeded(self, tmp_path):
        cluster = make_cluster(tmp_path)
        try:
            write_n(cluster, 8)
            cluster.pump_until_converged()
            old = cluster.primary_name
            cluster.partition(old)
            # The partitioned primary cannot be told it lost the lease:
            # it keeps accepting writes — a divergent suffix.
            cluster.nodes[old].insert(Triple(EX.splitbrain, RDF_TYPE,
                                             EX.Write))
            cluster.pump(4)  # lease expires; a follower takes over
            assert cluster.primary_name != old
            write_n(cluster, 3, start=8)
            cluster.heal()
            cluster.pump_until_converged()
            assert cluster.verify_consistency() == []
            assert cluster.divergences == 1
            assert any(entry["reason"].startswith("diverged")
                       for entry in cluster.reseed_log)
            # The split-brain write is gone everywhere.
            for node in cluster.nodes.values():
                assert (Triple(EX.splitbrain, RDF_TYPE, EX.Write)
                        not in node.durable.store.to_graph())
        finally:
            cluster.close()

    def test_promoted_follower_answers_like_the_old_primary(self, tmp_path):
        cluster = make_cluster(tmp_path, faults=FAULTY_LINKS)
        try:
            cluster.primary_node.load(tiny_graph())
            cluster.pump_until_converged()
            before = sorted(
                cluster.primary_node.reader("builtin")
                .answer(STUDENT_QUERY).answer)
            cluster.kill_primary()
            cluster.pump(4)
            after = sorted(
                cluster.primary_node.reader("builtin")
                .answer(STUDENT_QUERY).answer)
            assert after == before
        finally:
            cluster.close()

    def test_epoch_survives_restart(self, tmp_path):
        cluster = make_cluster(tmp_path)
        try:
            write_n(cluster, 4)
            cluster.pump_until_converged()
            cluster.kill_primary()
            cluster.pump(4)
            assert cluster.coordinator.epoch == 2
            cluster.heal()
            cluster.pump_until_converged()
            name = cluster.primary_name
            epoch = cluster.nodes[name].repl_epoch
            cluster.nodes[name].kill()
            cluster.nodes[name].restart()
            # replica.meta carries the lineage across the restart.
            assert cluster.nodes[name].repl_epoch == epoch
        finally:
            cluster.close()


# ---------------------------------------------------------------------------
# The differential invariant, end to end


class TestDifferential:
    def test_chaos_schedule_converges_byte_identical(self, tmp_path):
        cluster = make_cluster(tmp_path, faults=FAULTY_LINKS)
        try:
            cluster.primary_node.load(tiny_graph())
            write_n(cluster, 10)
            cluster.kill_primary()
            cluster.pump(4)
            write_n(cluster, 6, start=10)
            victim = sorted(node.name for node in cluster.followers())[0]
            cluster.partition(victim)
            write_n(cluster, 6, start=16)
            cluster.heal()
            rounds = cluster.pump_until_converged()
            assert rounds < 200, "never converged"
            assert cluster.verify_consistency() == []
            crc = cluster.primary_node.state_crc()
            for node in cluster.followers():
                assert node.state_crc() == crc
        finally:
            cluster.close()

    def test_convergence_is_deterministic(self, tmp_path):
        outcomes = []
        for run in ("a", "b"):
            cluster = ReplicationCluster(
                str(tmp_path / run), ("n1", "n2", "n3"),
                seed=CHAOS_SEED, link_faults=FAULTY_LINKS)
            try:
                write_n(cluster, 15)
                spent = cluster.pump_until_converged()
                shipped = {
                    name: dict(link.counters)
                    for name, link in cluster.links.items()}
                outcomes.append(
                    (spent, cluster.primary_node.state_crc(), shipped))
            finally:
                cluster.close()
        assert outcomes[0] == outcomes[1]


# ---------------------------------------------------------------------------
# Replica-aware serving


def make_service(cluster, tenants, **kwargs):
    router = ReplicaRouter(cluster)
    service = QueryService(
        tiny_graph(),
        tenants=tenants,
        clock=FakeClock(auto_advance=0.001),
        brownout=kwargs.pop("brownout", None),
        replicas=router,
        **kwargs,
    )
    return service, router


class TestReplicaServing:
    def _cluster(self, tmp_path):
        cluster = make_cluster(tmp_path, names=("n1", "n2"))
        cluster.primary_node.load(tiny_graph())
        cluster.pump_until_converged()
        return cluster

    def test_bounded_tenant_reads_from_follower(self, tmp_path):
        cluster = self._cluster(tmp_path)
        try:
            service, router = make_service(
                cluster,
                [TenantConfig("bounded", replica_max_lag=2), "plain"])
            bounded = service.submit(QueryRequest("bounded", STUDENT_QUERY))
            plain = service.submit(QueryRequest("plain", STUDENT_QUERY))
            service.drain()
            assert bounded.status == DONE and plain.status == DONE
            assert bounded.report.details["replica"]["node"] == "n2"
            assert "replica" not in plain.report.details
            assert sorted(bounded.answer) == sorted(plain.answer)
            assert router.counters["replica_reads"] == 1
            assert router.counters["primary_reads"] == 1
        finally:
            cluster.close()

    def test_lagging_follower_read_is_flagged_stale(self, tmp_path):
        cluster = self._cluster(tmp_path)
        try:
            service, router = make_service(
                cluster, [TenantConfig("bounded", replica_max_lag=5)])
            # Writes mirrored to the primary; the follower has not seen
            # them yet (no pump between insert and submit).
            service.replicas.pump_per_step = 0
            service.insert(Triple(EX.fresh, RDF_TYPE, EX.Student))
            ticket = service.submit(QueryRequest("bounded", STUDENT_QUERY))
            service.drain()
            assert ticket.status == DONE
            details = ticket.report.details
            assert details["replica"]["lag"] == 1
            assert details["stale"] == {"replica_lag": 1}
            assert ticket.stale
            # The stale read is the bounded one: it misses the fresh
            # insert the primary already has.
            assert (EX.fresh,) not in ticket.answer
            assert router.counters["stale_replica_reads"] == 1
        finally:
            cluster.close()

    def test_bound_exceeded_falls_back_to_primary(self, tmp_path):
        cluster = self._cluster(tmp_path)
        try:
            service, router = make_service(
                cluster, [TenantConfig("bounded", replica_max_lag=0)])
            service.replicas.pump_per_step = 0
            service.insert(Triple(EX.fresh, RDF_TYPE, EX.Student))
            ticket = service.submit(QueryRequest("bounded", STUDENT_QUERY))
            service.drain()
            assert ticket.status == DONE
            assert "replica" not in ticket.report.details
            assert (EX.fresh,) in ticket.answer
            assert router.counters["no_replica_available"] == 1
        finally:
            cluster.close()

    def test_brownout_rung_forces_replica_reads(self, tmp_path):
        cluster = self._cluster(tmp_path)
        try:
            service, router = make_service(
                cluster, ["plain"], brownout=True)
            service.brownout.force(REPLICA_READS_ONLY, "test")
            ticket = service.submit(QueryRequest("plain", STUDENT_QUERY))
            service.drain()
            assert ticket.status == DONE
            assert ticket.report.details["replica"]["forced"]
        finally:
            cluster.close()

    def test_writes_mirror_to_primary_and_fenced_writes_surface(
            self, tmp_path):
        cluster = self._cluster(tmp_path)
        try:
            service, router = make_service(cluster, ["plain"])
            before = service.answerer.store.triple_count
            assert service.insert(Triple(EX.mirrored, RDF_TYPE, EX.Student))
            assert cluster.primary_node.durable.store.triple_count > 0
            cluster.primary_node.fence(2)
            with pytest.raises(PrimaryFenced):
                service.insert(Triple(EX.refused, RDF_TYPE, EX.Student))
            # The serving copy never saw the refused write.
            assert service.answerer.store.triple_count == before + 1
            assert router.counters["fenced_writes"] == 1
        finally:
            cluster.close()

    def test_describe_includes_replica_status(self, tmp_path):
        cluster = self._cluster(tmp_path)
        try:
            service, _router = make_service(cluster, ["plain"])
            payload = service.describe()
            assert payload["replicas"]["primary"] == "n1"
            assert "follower_lags" in payload["replicas"]
        finally:
            cluster.close()


class TestLadderRenumbering:
    def test_replica_rung_sits_between_stale_and_shed(self):
        assert REPLICA_READS_ONLY == 4
        assert SHED_NEW_WORK == 5
        assert LEVEL_NAMES[REPLICA_READS_ONLY] == "replica-reads-only"
        assert len(LEVEL_NAMES) == 6


# ---------------------------------------------------------------------------
# Satellites: WAL end_offset, breaker cooldown surfacing


class TestWalEndOffset:
    def test_end_offset_is_absolute_for_sliced_reads(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "wal.1"))
        offsets = [0]
        for index in range(3):
            wal.append(b"record-%d" % index)
            result = wal.read_from(0)
            offsets.append(result.end_offset)
        # Tail incrementally: each read resumes at the previous
        # end_offset and sees exactly the new record.
        cursor = 0
        seen = []
        for _ in range(3):
            result = wal.read_from(cursor)
            seen.extend(result.records)
            assert result.end_offset == cursor + result.valid_length
            cursor = result.end_offset
        assert seen == [b"record-0", b"record-1", b"record-2"]
        assert cursor == offsets[-1]

    def test_end_offset_with_torn_tail(self, tmp_path):
        path = str(tmp_path / "wal.1")
        wal = WriteAheadLog(path)
        wal.append(b"whole")
        good = wal.read_from(0).end_offset
        with open(path, "ab") as handle:
            handle.write(encode_record(b"torn-tail")[:-3])
        result = wal.read_from(good)
        assert result.truncated
        assert result.records == []
        # The valid prefix ends where the good bytes ended.
        assert result.end_offset == good

    def test_end_offset_past_end_and_missing_file(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "wal.1"))
        wal.append(b"x")
        end = wal.read_from(0).end_offset
        assert wal.read_from(end + 100).end_offset == end + 100
        missing = WriteAheadLog(str(tmp_path / "nope.1"))
        assert missing.read_from(7).end_offset == 7


class TestBreakerCooldownSurfacing:
    def test_rejection_carries_cooldown_remaining(self):
        from repro.resilience.faults import FaultPlan
        from repro.service import AdmissionRejected, ServiceChaos

        clock = FakeClock(auto_advance=0.001)
        chaos = ServiceChaos(
            FaultPlan(seed=1, transient_rate=1.0), clock=clock, armed=True)
        service = QueryService(
            tiny_graph(),
            tenants=["solo"],
            clock=clock,
            chaos=chaos,
            breaker_threshold=1,
        )
        service.submit(QueryRequest("solo", STUDENT_QUERY))
        service.drain()  # the injected fault opens the breaker
        with pytest.raises(AdmissionRejected) as excinfo:
            service.submit(QueryRequest("solo", STUDENT_QUERY))
        rejection = excinfo.value
        assert rejection.cooldown_remaining is not None
        assert rejection.cooldown_remaining > 0
        diagnostics = rejection.diagnostics()
        assert diagnostics["cooldown_remaining"] == \
            rejection.cooldown_remaining
        assert diagnostics["retry_after"] == rejection.retry_after
