"""The columnar index layer: sorted runs stay exact under any
mutation history.

The headline property (hypothesis): after ANY interleaving of inserts,
deletes, bulk loads and checkpoint-restore recoveries, each of the
SPO/POS/OSP sorted integer runs equals the set-based triple table
sorted under its permutation, and every ``match`` probe equals a
brute-force filter of the set — including rebuild-after-restore, where
mutations reached the store through ``_insert_encoded`` without ever
touching the Triple-level listeners (the epoch machinery's job).
"""

from __future__ import annotations

from operator import itemgetter

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.columnar.indexes import ORDER_PERMUTATIONS, SortedRunIndex
from repro.rdf import Graph, Literal, Namespace, RDF_TYPE, Triple
from repro.storage import TripleStore

EX = Namespace("http://example.org/")

SUBJECTS = [EX.term("s%d" % index) for index in range(5)]
PROPERTIES = [EX.term("p%d" % index) for index in range(3)] + [RDF_TYPE]
OBJECTS = SUBJECTS + [EX.term("C%d" % index) for index in range(3)] + [
    Literal("l0"),
    Literal("l1"),
]

triple_st = st.builds(
    Triple,
    st.sampled_from(SUBJECTS),
    st.sampled_from(PROPERTIES),
    st.sampled_from(OBJECTS),
)

operation_st = st.one_of(
    st.tuples(st.just("insert"), triple_st),
    st.tuples(st.just("delete"), triple_st),
    st.tuples(st.just("bulk"), st.lists(triple_st, max_size=8)),
    st.tuples(st.just("restore"), st.none()),
)


def assert_runs_exact(store: TripleStore) -> None:
    """Every order's run is exactly the set store, sorted its way, and
    probing agrees with a brute-force filter."""
    indexes = store.columnar()
    triples = set(store._triples)
    for name, permutation in ORDER_PERMUTATIONS.items():
        run = indexes.order(name)
        expected = sorted(triples, key=itemgetter(*permutation))
        assert len(run) == len(expected)
        assert list(run.iter_triples()) != [] or not expected
        # The run enumerates the permuted sort of the set, exactly.
        permuted = [tuple(t[p] for p in permutation) for t in expected]
        assert list(zip(*run.columns)) == permuted if expected else True
    # Probes: every (s, p, o) binding subset over one present and one
    # absent triple agrees with a brute-force filter of the set.
    samples = sorted(triples)[:1] + [(-1, -2, -3)]
    for s, p, o in samples:
        for mask in range(8):
            bound = (
                s if mask & 4 else None,
                p if mask & 2 else None,
                o if mask & 1 else None,
            )
            got = list(store.match(*bound))
            brute = [
                t
                for t in triples
                if all(b is None or t[i] == b for i, b in enumerate(bound))
            ]
            assert sorted(got) == sorted(brute), bound
            # And the enumeration itself is duplicate-free.
            assert len(got) == len(set(got))


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(operations=st.lists(operation_st, max_size=25))
def test_indexes_exact_under_interleaved_histories(operations):
    store = TripleStore()
    # Probe up front so invalidation (not just cold building) is on
    # the tested path from the first mutation.
    store.columnar().order("spo")
    for kind, payload in operations:
        if kind == "insert":
            store.insert(payload)
        elif kind == "delete":
            store.delete(payload)
        elif kind == "bulk":
            graph = Graph(list(payload))
            store.load(graph)
        else:  # restore: checkpoint round-trip into a fresh store
            terms, encoded = store.encoded_state()
            assert encoded == sorted(encoded)  # the documented contract
            store = TripleStore.from_encoded(terms, encoded, store.schema)
        assert_runs_exact(store)


def test_encoded_mutations_invalidate_without_listeners():
    """WAL replay and checkpoint restore write through
    ``_insert_encoded`` — no Triple-level listener fires, and the
    epoch alone must invalidate the built runs."""
    store = TripleStore()
    store.insert(Triple(SUBJECTS[0], PROPERTIES[0], OBJECTS[0]))
    indexes = store.columnar()
    run = indexes.order("spo")
    assert indexes.has_current("spo")
    ids = [
        store.dictionary.encode(term)
        for term in (SUBJECTS[1], PROPERTIES[0], OBJECTS[1])
    ]
    assert store._insert_encoded(tuple(ids))
    assert not indexes.has_current("spo")
    rebuilt = indexes.order("spo")
    assert rebuilt is not run
    assert len(rebuilt) == 2
    assert_runs_exact(store)


def test_listener_drops_runs_eagerly():
    store = TripleStore()
    store.insert(Triple(SUBJECTS[0], PROPERTIES[0], OBJECTS[0]))
    indexes = store.columnar()
    indexes.order("spo")
    before = indexes.build_count
    store.insert(Triple(SUBJECTS[1], PROPERTIES[1], OBJECTS[1]))
    assert indexes._orders == {}  # dropped on the write, not the probe
    indexes.order("spo")
    assert indexes.build_count == before + 1


def test_reads_do_not_rebuild():
    store = TripleStore()
    for subject in SUBJECTS:
        store.insert(Triple(subject, PROPERTIES[0], OBJECTS[0]))
    indexes = store.columnar()
    for _ in range(3):
        indexes.order("spo")
        indexes.order("pos")
        list(store.match(property_id=store.term_id(PROPERTIES[0])))
    assert indexes.build_count == 2  # one build per probed order, ever


def test_range_prefix_narrowing():
    run = SortedRunIndex(
        "spo", [(1, 1, 1), (1, 1, 2), (1, 2, 1), (2, 1, 1)]
    )
    assert run.range() == (0, 4)
    assert run.range(1) == (0, 3)
    assert run.range(1, 1) == (0, 2)
    assert run.range(1, 1, 2) == (1, 2)
    assert run.range(3) == (4, 4)
    assert run.range(1, 9) == (3, 3)


def test_unknown_order_rejected():
    with pytest.raises(ValueError):
        SortedRunIndex("pso", [])


def test_store_iteration_is_sorted_and_deterministic():
    store = TripleStore()
    for subject in reversed(SUBJECTS):
        for obj in OBJECTS[:3]:
            store.insert(Triple(subject, PROPERTIES[1], obj))
    first = list(store)
    assert first == sorted(first)
    assert list(store.scan_all()) == first
    # Serving from the built SPO run changes nothing.
    store.columnar().order("spo")
    assert list(store) == first
