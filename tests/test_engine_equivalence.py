"""Differential harness: materialized vs pipelined vs columnar.

All three physical engines interpret the same plan IR
(:mod:`repro.engine.ir`), so their contract is testable head-to-head
as a three-engine matrix:

* identical answers for every strategy on the books example and a
  LUBM micro workload (and on the reference evaluator's answers);
* on the Example-1-style SCQ blowup, the pipelined and columnar
  engines' memory high-water marks (``peak_buffered_rows``) stay
  strictly below the materialized interpreter's largest operator
  output — and the columnar peak is no worse than the pipelined one;
* a row budget aborts the pipelined/columnar run mid-stream — before
  the blowup materializes — and the error carries the partial metrics
  and decoded partial answer that the degraded-answer path
  (``allow_partial``) turns into a ``CompletenessReport``.
"""

import pytest

from repro import BudgetExceeded, ExecutionBudget, QueryAnswerer, Strategy
from repro.cache import QueryCache
from repro.datasets import lubm_queries
from repro.query import (
    ConjunctiveQuery,
    Cover,
    TriplePattern,
    UnionQuery,
    Variable,
    evaluate,
    evaluate_cq,
)
from repro.rdf import Graph, Namespace, RDF_TYPE, Triple
from repro.reformulation import ReformulationTooLarge
from repro.schema import Constraint, Schema
from repro.storage import (
    LOOP_BACKEND,
    MERGE_BACKEND,
    QueryTooLargeError,
    TripleStore,
)
from repro.storage.executor import Executor

EX = Namespace("http://example.org/")
x, y, z, w = Variable("x"), Variable("y"), Variable("z"), Variable("w")

STRATEGIES = [
    Strategy.SAT,
    Strategy.REF_UCQ,
    Strategy.REF_SCQ,
    Strategy.REF_JUCQ,
    Strategy.REF_GCOV,
]
STRATEGY_IDS = [strategy.value for strategy in STRATEGIES]

SUBCLASSES = 20
PER_CLASS = 50


def _cover_for(strategy, query):
    return Cover.per_atom(query) if strategy is Strategy.REF_JUCQ else None


@pytest.fixture(scope="module")
def blowup():
    """Example 1 in miniature: a wide type hierarchy (1000 typed
    instances) joined with a single selective ``p`` edge, so the SCQ's
    type fragment materializes a 1000-row union for a one-row answer."""
    schema = Schema(
        [
            Constraint.subclass(EX.term("C%d" % i), EX.C0)
            for i in range(1, SUBCLASSES + 1)
        ]
    )
    graph = Graph()
    for class_index in range(1, SUBCLASSES + 1):
        for instance in range(PER_CLASS):
            graph.add(
                Triple(
                    EX.term("i%d_%d" % (class_index, instance)),
                    RDF_TYPE,
                    EX.term("C%d" % class_index),
                )
            )
    graph.add(Triple(EX.i1_0, EX.p, EX.o0))
    query = ConjunctiveQuery(
        [x, y], [TriplePattern(x, RDF_TYPE, EX.C0), TriplePattern(x, EX.p, y)]
    )
    return graph, schema, query


#: The in-process engines of the three-engine differential matrix.
ALL_ENGINES = ["materialized", "pipelined", "columnar"]


@pytest.fixture(scope="module")
def lubm_answerers():
    from repro.datasets import generate_lubm

    graph = generate_lubm(universities=1, seed=3)
    return {
        engine: QueryAnswerer(graph, engine=engine) for engine in ALL_ENGINES
    }


class TestBooksDifferential:
    @pytest.mark.parametrize("strategy", STRATEGIES, ids=STRATEGY_IDS)
    def test_same_answers(self, books, books_saturated, strategy):
        graph, schema, query = books
        materialized = QueryAnswerer(graph, schema, engine="materialized")
        pipelined = QueryAnswerer(graph, schema, engine="pipelined")
        columnar = QueryAnswerer(graph, schema, engine="columnar")
        cover = _cover_for(strategy, query)
        rm = materialized.answer(query, strategy, cover=cover)
        rp = pipelined.answer(query, strategy, cover=cover)
        rc = columnar.answer(query, strategy, cover=cover)
        assert rp.answer == rm.answer, strategy
        assert rc.answer == rm.answer, strategy
        # All agree with the reference evaluator over the saturation.
        assert rp.answer == evaluate_cq(books_saturated, query)
        # Engine identity travels on the result, with metrics only on
        # the streaming engines.
        assert rm.execution.engine == "materialized"
        assert rm.execution.metrics is None
        assert rp.execution.engine == "pipelined"
        assert rp.execution.metrics is not None
        assert rp.execution.metrics.total_rows_out() > 0
        assert rc.execution.engine == "columnar"
        assert rc.execution.metrics is not None
        assert rc.execution.metrics.total_rows_out() > 0

    def test_builtin_is_materialized_alias(self, books):
        graph, schema, query = books
        answerer = QueryAnswerer(graph, schema, engine="builtin")
        report = answerer.answer(query, Strategy.REF_UCQ)
        assert report.execution.engine == "materialized"


class TestLubmDifferential:
    @pytest.mark.parametrize("name", ["Q1", "Q5", "Q9", "Q13"])
    @pytest.mark.parametrize("strategy", STRATEGIES, ids=STRATEGY_IDS)
    def test_same_answers(self, lubm_answerers, name, strategy):
        materialized = lubm_answerers["materialized"]
        query = lubm_queries()[name]
        cover = _cover_for(strategy, query)
        try:
            rm = materialized.answer(query, strategy, cover=cover)
        except (QueryTooLargeError, ReformulationTooLarge) as exc:
            # Size refusals happen at reformulation/planning time, so
            # they must be engine-independent.
            for engine in ("pipelined", "columnar"):
                with pytest.raises(type(exc)):
                    lubm_answerers[engine].answer(query, strategy, cover=cover)
            return
        for engine in ("pipelined", "columnar"):
            report = lubm_answerers[engine].answer(query, strategy, cover=cover)
            assert report.answer == rm.answer, (name, strategy, engine)


class TestScqBlowup:
    ROW_BUDGET = 1500  # between the merged cover's cost and the SCQ's

    def test_pipelined_peak_strictly_lower(self, blowup):
        graph, schema, query = blowup
        materialized = QueryAnswerer(graph, schema, engine="materialized")
        pipelined = QueryAnswerer(graph, schema, engine="pipelined")
        rm = materialized.answer(query, Strategy.REF_SCQ)
        rp = pipelined.answer(query, Strategy.REF_SCQ)
        assert rp.answer == rm.answer == frozenset({(EX.i1_0, EX.o0)})
        # The materialized interpreter held the full type-fragment
        # union; the pipeline streamed it through a hash probe and
        # only ever buffered the small build side.
        blowup_rows = rm.execution.max_intermediate_rows()
        assert blowup_rows >= SUBCLASSES * PER_CLASS
        assert rp.execution.peak_buffered_rows < blowup_rows

    def test_columnar_peak_no_worse_than_pipelined(self, blowup):
        graph, schema, query = blowup
        materialized = QueryAnswerer(graph, schema, engine="materialized")
        pipelined = QueryAnswerer(graph, schema, engine="pipelined")
        columnar = QueryAnswerer(graph, schema, engine="columnar")
        rm = materialized.answer(query, Strategy.REF_SCQ)
        rp = pipelined.answer(query, Strategy.REF_SCQ)
        rc = columnar.answer(query, Strategy.REF_SCQ)
        assert rc.answer == rm.answer == frozenset({(EX.i1_0, EX.o0)})
        # The sorted-run merge dedups the type-fragment union while
        # streaming and merge-joins it group by group, so the columnar
        # peak stays at or below the pipelined engine's (which buffers
        # a hash build side) — and far below the materialized blowup.
        blowup_rows = rm.execution.max_intermediate_rows()
        assert rc.execution.peak_buffered_rows <= rp.execution.peak_buffered_rows
        assert rc.execution.peak_buffered_rows < blowup_rows

    def test_columnar_budget_abort_carries_partial(self, blowup):
        graph, schema, query = blowup
        columnar = QueryAnswerer(graph, schema, engine="columnar")
        with pytest.raises(BudgetExceeded) as info:
            columnar.answer(
                query,
                Strategy.REF_SCQ,
                row_budget=self.ROW_BUDGET,
                budget_fallbacks=0,
            )
        exc = info.value
        assert exc.kind == "rows"
        assert exc.partial is not None
        assert exc.partial["engine"] == "columnar"
        assert exc.partial["operators"]
        assert exc.partial_answer is not None

    def test_columnar_allow_partial_degrades(self, blowup):
        graph, schema, query = blowup
        columnar = QueryAnswerer(graph, schema, engine="columnar")
        report = columnar.answer(
            query,
            Strategy.REF_SCQ,
            row_budget=self.ROW_BUDGET,
            budget_fallbacks=0,
            allow_partial=True,
        )
        assert report.details["partial"] is True
        assert report.details["completeness"]["complete"] is False
        complete = columnar.answer(query, Strategy.REF_SCQ).answer
        assert report.answer <= complete

    def test_row_budget_aborts_pipelined_mid_stream(self, blowup):
        graph, schema, query = blowup
        pipelined = QueryAnswerer(graph, schema, engine="pipelined")
        with pytest.raises(BudgetExceeded) as info:
            pipelined.answer(
                query,
                Strategy.REF_SCQ,
                row_budget=self.ROW_BUDGET,
                budget_fallbacks=0,
            )
        exc = info.value
        assert exc.kind == "rows"
        assert exc.partial is not None
        assert exc.partial["engine"] == "pipelined"
        # The abort happened while streaming: the pipeline never
        # buffered anything near the 1000-row union the materialized
        # interpreter would have built.
        assert exc.partial["peak_buffered_rows"] < SUBCLASSES * PER_CLASS
        assert exc.partial["operators"]  # per-operator metrics travel
        assert any(
            repr_ for repr_, _est, _act in exc.partial["node_cardinalities"]
        )
        # Decoded partial rows ride along for the degraded path.
        assert exc.partial_answer is not None
        assert exc.diagnostics()["partial_row_count"] == len(exc.partial_rows)

    def test_materialized_abort_reports_cardinalities(self, blowup):
        graph, schema, query = blowup
        materialized = QueryAnswerer(graph, schema, engine="materialized")
        with pytest.raises(BudgetExceeded) as info:
            materialized.answer(
                query,
                Strategy.REF_SCQ,
                row_budget=self.ROW_BUDGET,
                budget_fallbacks=0,
            )
        exc = info.value
        assert exc.partial is not None
        assert exc.partial["engine"] == "materialized"
        # Completed subtrees report their actual cardinality; the
        # aborted ancestors stay None.
        cardinalities = exc.partial["node_cardinalities"]
        assert any(actual is not None for _r, _e, actual in cardinalities)
        assert any(actual is None for _r, _e, actual in cardinalities)

    def test_allow_partial_degrades_instead_of_raising(self, blowup):
        graph, schema, query = blowup
        pipelined = QueryAnswerer(graph, schema, engine="pipelined")
        report = pipelined.answer(
            query,
            Strategy.REF_SCQ,
            row_budget=self.ROW_BUDGET,
            budget_fallbacks=0,
            allow_partial=True,
        )
        assert report.details["partial"] is True
        completeness = report.details["completeness"]
        assert completeness["complete"] is False
        assert completeness["endpoints"][0]["status"] == "degraded"
        assert report.details["budget_exceeded"]["kind"] == "rows"
        # Degraded answers are sound: a subset of the complete one.
        complete = pipelined.answer(query, Strategy.REF_SCQ).answer
        assert report.answer <= complete

    def test_allow_partial_requires_partial_rows(self, blowup):
        # The materialized interpreter aborts whole operators and has
        # no partial rows to keep — allow_partial re-raises there.
        graph, schema, query = blowup
        materialized = QueryAnswerer(graph, schema, engine="materialized")
        with pytest.raises(BudgetExceeded):
            materialized.answer(
                query,
                Strategy.REF_SCQ,
                row_budget=self.ROW_BUDGET,
                budget_fallbacks=0,
                allow_partial=True,
            )

    def test_partial_answers_never_cached(self, blowup):
        graph, schema, query = blowup
        cache = QueryCache()
        pipelined = QueryAnswerer(
            graph, schema, engine="pipelined", cache=cache
        )
        degraded = pipelined.answer(
            query,
            Strategy.REF_SCQ,
            row_budget=self.ROW_BUDGET,
            budget_fallbacks=0,
            allow_partial=True,
        )
        assert degraded.details["partial"] is True
        follow_up = pipelined.answer(query, Strategy.REF_SCQ)
        assert follow_up.details["cache"]["answer"] == "miss"
        assert follow_up.answer == frozenset({(EX.i1_0, EX.o0)})


class TestParallelDifferential:
    """``answer(parallelism=4)`` is byte-for-byte ``answer()``: the
    fan-out changes wall-clock shape only, never the answer set."""

    ENGINES = ALL_ENGINES

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("strategy", STRATEGIES, ids=STRATEGY_IDS)
    @pytest.mark.parametrize("parallelism", [1, 4])
    def test_books_answers_identical(self, books, engine, strategy, parallelism):
        graph, schema, query = books
        answerer = QueryAnswerer(graph, schema, engine=engine)
        cover = _cover_for(strategy, query)
        serial = answerer.answer(query, strategy, cover=cover)
        fanned = answerer.answer(
            query, strategy, cover=cover, parallelism=parallelism
        )
        assert fanned.answer == serial.answer, (engine, strategy, parallelism)
        assert fanned.details["parallelism"] == parallelism
        assert serial.details["parallelism"] == 1

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("name", ["Q5", "Q13"])
    def test_lubm_jucq_answers_identical(self, lubm_answerers, engine, name):
        answerer = lubm_answerers[engine]
        query = lubm_queries()[name]
        cover = Cover.per_atom(query)
        serial = answerer.answer(query, Strategy.REF_JUCQ, cover=cover)
        fanned = answerer.answer(
            query, Strategy.REF_JUCQ, cover=cover, parallelism=4
        )
        assert fanned.answer == serial.answer, (engine, name)

    def test_parallelism_validation(self, books):
        graph, schema, query = books
        answerer = QueryAnswerer(graph, schema)
        with pytest.raises(ValueError):
            answerer.answer(query, Strategy.REF_UCQ, parallelism=0)
        sqlite = QueryAnswerer(graph, schema, engine="sqlite")
        with pytest.raises(ValueError):
            sqlite.answer(query, Strategy.REF_UCQ, parallelism=2)


class TestParallelBudgetAbort:
    """A shared budget trips once and cancels the sibling fan-out; the
    degraded-answer semantics match the serial run.  The surfaced
    exception may be the primary overrun *or* a marked sibling copy of
    it (the consumer's own charge can race the queue-relayed primary),
    so these tests assert on ``kind``/diagnostics, never on the
    ``sibling_abort`` flag being absent."""

    ROW_BUDGET = TestScqBlowup.ROW_BUDGET

    @pytest.mark.parametrize("engine", ALL_ENGINES)
    def test_concurrent_abort_keeps_diagnostics(self, blowup, engine):
        graph, schema, query = blowup
        answerer = QueryAnswerer(graph, schema, engine=engine)
        with pytest.raises(BudgetExceeded) as info:
            answerer.answer(
                query,
                Strategy.REF_SCQ,
                row_budget=self.ROW_BUDGET,
                budget_fallbacks=0,
                parallelism=4,
            )
        exc = info.value
        assert exc.kind == "rows"
        assert exc.row_budget == self.ROW_BUDGET
        assert exc.partial is not None
        assert exc.partial["engine"] == engine

    def test_concurrent_partial_semantics_match_serial(self, blowup):
        graph, schema, query = blowup
        pipelined = QueryAnswerer(graph, schema, engine="pipelined")
        kwargs = dict(
            row_budget=self.ROW_BUDGET,
            budget_fallbacks=0,
            allow_partial=True,
        )
        serial = pipelined.answer(query, Strategy.REF_SCQ, **kwargs)
        fanned = pipelined.answer(
            query, Strategy.REF_SCQ, parallelism=4, **kwargs
        )
        for report in (serial, fanned):
            assert report.details["partial"] is True
            assert report.details["budget_exceeded"]["kind"] == "rows"
            assert report.details["completeness"]["complete"] is False
        # Both degraded answers are sound subsets of the complete one.
        complete = pipelined.answer(query, Strategy.REF_SCQ).answer
        assert serial.answer <= complete
        assert fanned.answer <= complete

    def test_budget_not_consumed_twice_across_workers(self, blowup):
        # The shared total is the serial semantics: four workers
        # charging one budget trip at (or just past) the same limit a
        # single thread would, not at 4x.
        graph, schema, query = blowup
        pipelined = QueryAnswerer(graph, schema, engine="pipelined")
        with pytest.raises(BudgetExceeded) as info:
            pipelined.answer(
                query,
                Strategy.REF_SCQ,
                row_budget=self.ROW_BUDGET,
                budget_fallbacks=0,
                parallelism=4,
            )
        # Generous bound: the trip happened well before anything like
        # the unbudgeted evaluation's volume materialized.
        assert info.value.rows_produced < self.ROW_BUDGET * 4


class TestExecutorEngines:
    def _store(self):
        graph = Graph(
            [Triple(EX.term("s%d" % i), EX.p, EX.term("o%d" % i))
             for i in range(30)]
            + [Triple(EX.term("s%d" % i), EX.q, EX.term("t%d" % i))
               for i in range(30)]
        )
        return TripleStore.from_graph(graph)

    def test_engine_validation(self):
        store = self._store()
        with pytest.raises(ValueError):
            Executor(store, engine="vectorized")
        with pytest.raises(ValueError):
            Executor(store).run(
                ConjunctiveQuery([x, y], [TriplePattern(x, EX.p, y)]),
                engine="vectorized",
            )

    @pytest.mark.parametrize("backend", [MERGE_BACKEND, LOOP_BACKEND],
                             ids=["merge", "nested-loop"])
    def test_join_algorithms_agree(self, backend):
        # The merge and nested-loop pipeline operators buffer inputs;
        # they still must match the materialized interpreter exactly.
        store = self._store()
        executor = Executor(store, backend)
        query = ConjunctiveQuery(
            [x, y, z],
            [TriplePattern(x, EX.p, y), TriplePattern(x, EX.q, z)],
        )
        rm = executor.run(query, engine="materialized")
        rp = executor.run(query, engine="pipelined")
        rc = executor.run(query, engine="columnar")
        assert rp.answer() == rm.answer()
        assert rc.answer() == rm.answer()
        assert rp.row_count == 30
        assert rc.row_count == 30

    def test_cross_product_agrees(self):
        store = self._store()
        executor = Executor(store, engine="pipelined")
        query = ConjunctiveQuery(
            [x, z], [TriplePattern(x, EX.p, y), TriplePattern(z, EX.q, w)]
        )
        reference = executor.run(query, engine="materialized").answer()
        assert executor.run(query).answer() == reference
        assert executor.run(query, engine="columnar").answer() == reference


class TestReferenceEvaluatorBudgets:
    """The satellite bugfix: budgets thread through evaluate_ucq (and
    evaluate) instead of being silently dropped."""

    def test_ucq_disjunct_blowup_refused(self):
        graph = Graph(
            [Triple(EX.term("a%d" % i), EX.p, EX.term("b%d" % i))
             for i in range(30)]
            + [Triple(EX.term("c%d" % i), EX.q, EX.term("d%d" % i))
               for i in range(30)]
        )
        cross = ConjunctiveQuery(
            [x, z], [TriplePattern(x, EX.p, y), TriplePattern(z, EX.q, w)]
        )
        union = UnionQuery([cross])
        with pytest.raises(BudgetExceeded):
            evaluate(graph, union, budget=ExecutionBudget(max_rows=100))
        # With room the same evaluation completes (900 product rows).
        answer = evaluate(graph, union, budget=ExecutionBudget(max_rows=10**6))
        assert len(answer) == 900

    def test_jucq_budget_threads_through_fragments(self, blowup):
        from repro.reformulation.atoms import database_graph
        from repro.reformulation.jucq import scq_reformulation

        graph, schema, query = blowup
        jucq = scq_reformulation(query, schema)
        db = database_graph(graph, schema)
        with pytest.raises(BudgetExceeded):
            evaluate(db, jucq, budget=ExecutionBudget(max_rows=100))
        roomy = evaluate(db, jucq, budget=ExecutionBudget(max_rows=10**7))
        assert roomy == evaluate(db, jucq)


class TestIntervalEncodingDifferential:
    """Interval-encoded answering is byte-identical to the classic
    unions on every engine: the hierarchy encoding changes plan shape
    (one range-scanned interval atom per covered union), never the
    answer set — including under budgets and degraded answers."""

    ENGINES = ALL_ENGINES + ["sqlite"]

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("strategy", STRATEGIES, ids=STRATEGY_IDS)
    def test_books_same_answers(self, books, engine, strategy):
        graph, schema, query = books
        classic = QueryAnswerer(graph, schema, engine=engine)
        encoded = QueryAnswerer(
            graph, schema, engine=engine, interval_encoding=True
        )
        cover = _cover_for(strategy, query)
        expected = classic.answer(query, strategy, cover=cover).answer
        report = encoded.answer(query, strategy, cover=cover)
        assert report.answer == expected, (engine, strategy)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_blowup_same_answer_with_collapsed_union(self, blowup, engine):
        graph, schema, query = blowup
        encoded = QueryAnswerer(
            graph, schema, engine=engine, interval_encoding=True
        )
        report = encoded.answer(query, Strategy.REF_SCQ)
        assert report.answer == frozenset({(EX.i1_0, EX.o0)})
        stats = report.details["interval"]
        assert stats["interval_atoms"] >= 1
        # The interval swallowed the strict-subclass enumeration (the
        # queried class itself stays in the identity alternative).
        assert stats["branches_collapsed"] >= SUBCLASSES - 1

    def test_blowup_reformulation_has_no_subclass_branches(self, blowup):
        from repro.encoding import HierarchyInterval
        from repro.reformulation import reformulate

        graph, schema, query = blowup
        encoded = QueryAnswerer(graph, schema, interval_encoding=True)
        union = reformulate(
            query, encoded.schema, encoded.policy, encoding=encoded.encoding
        )
        subclasses = {
            EX.term("C%d" % i) for i in range(1, SUBCLASSES + 1)
        }
        for disjunct in union.disjuncts:
            for atom in disjunct.atoms:
                assert atom.object not in subclasses
        assert any(
            isinstance(atom.object, HierarchyInterval)
            for disjunct in union.disjuncts
            for atom in disjunct.atoms
        )
        # The classic reformulation enumerates every subclass; the
        # interval one needs a single disjunct per atom choice set.
        classic = reformulate(query, encoded.schema, encoded.policy)
        assert len(union.disjuncts) < len(classic.disjuncts)

    @pytest.mark.parametrize("engine", ["pipelined", "columnar"])
    def test_budget_abort_and_allow_partial(self, blowup, engine):
        graph, schema, query = blowup
        encoded = QueryAnswerer(
            graph, schema, engine=engine, interval_encoding=True
        )
        complete = encoded.answer(query, Strategy.REF_SCQ).answer
        with pytest.raises(BudgetExceeded) as info:
            encoded.answer(
                query,
                Strategy.REF_SCQ,
                row_budget=TestScqBlowup.ROW_BUDGET,
                budget_fallbacks=0,
            )
        assert info.value.kind == "rows"
        assert info.value.partial_answer is not None
        report = encoded.answer(
            query,
            Strategy.REF_SCQ,
            row_budget=TestScqBlowup.ROW_BUDGET,
            budget_fallbacks=0,
            allow_partial=True,
        )
        assert report.details["partial"] is True
        assert report.answer <= complete

    def test_cache_keys_separate_encodings(self, blowup):
        graph, schema, query = blowup
        cache = QueryCache()
        classic = QueryAnswerer(
            graph, schema, engine="columnar", cache=cache
        )
        encoded = QueryAnswerer(
            graph,
            schema,
            engine="columnar",
            cache=cache,
            interval_encoding=True,
        )
        first = classic.answer(query, Strategy.REF_UCQ)
        assert first.details["cache"]["answer"] == "miss"
        # The interval-encoded answerer must not be served the classic
        # entry (its plans speak a different id layout).
        second = encoded.answer(query, Strategy.REF_UCQ)
        assert second.details["cache"]["answer"] == "miss"
        assert second.answer == first.answer
        assert encoded.answer(
            query, Strategy.REF_UCQ
        ).details["cache"]["answer"] == "hit"
