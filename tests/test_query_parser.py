"""Unit tests for the SPARQL-lite parser."""

import pytest

from repro.query import QueryParseError, Variable, parse_query
from repro.rdf import Literal, RDF_TYPE, URI


class TestSelect:
    def test_simple_select(self):
        query = parse_query(
            "SELECT ?x WHERE { ?x rdf:type <http://e/Book> }"
        )
        assert query.head == (Variable("x"),)
        assert query.atoms[0].property == RDF_TYPE
        assert query.atoms[0].object == URI("http://e/Book")

    def test_multiple_atoms_with_dots(self):
        query = parse_query(
            "SELECT ?x ?y WHERE { ?x <http://e/p> ?y . ?y <http://e/q> ?z }"
        )
        assert len(query.atoms) == 2

    def test_select_star_order_of_appearance(self):
        query = parse_query(
            "SELECT * WHERE { ?b <http://e/p> ?a . ?a <http://e/q> ?c }"
        )
        assert query.head == (Variable("b"), Variable("a"), Variable("c"))

    def test_prefix_declaration(self):
        query = parse_query(
            "PREFIX ub: <http://u/> SELECT ?x WHERE { ?x ub:memberOf ?y }"
        )
        assert query.atoms[0].property == URI("http://u/memberOf")

    def test_default_prefixes(self):
        query = parse_query(
            "SELECT ?x ?c WHERE { ?x rdf:type ?c . ?c rdfs:subClassOf ?d }"
        )
        assert query.atoms[1].property.value.endswith("subClassOf")

    def test_literal_object(self):
        query = parse_query(
            'SELECT ?x WHERE { ?x <http://e/publishedIn> "1949" }'
        )
        assert query.atoms[0].object == Literal("1949")

    def test_case_insensitive_keywords(self):
        query = parse_query("select ?x where { ?x rdf:type <http://e/C> }")
        assert query.arity == 1

    def test_paper_example_query(self):
        query = parse_query(
            """
            PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
            SELECT ?x ?u ?y ?v ?z
            WHERE {
              ?x rdf:type ?u .
              ?y rdf:type ?v .
              ?x ub:mastersDegreeFrom <http://www.Univ532.edu> .
              ?y ub:doctoralDegreeFrom <http://www.Univ532.edu> .
              ?x ub:memberOf ?z .
              ?y ub:memberOf ?z
            }
            """
        )
        assert query.arity == 5
        assert len(query.atoms) == 6


class TestAsk:
    def test_ask_is_boolean(self):
        query = parse_query("ASK WHERE { ?x rdf:type <http://e/C> }")
        assert query.is_boolean()


class TestErrors:
    def test_undeclared_prefix(self):
        with pytest.raises(QueryParseError):
            parse_query("SELECT ?x WHERE { ?x ub:p ?y }")

    def test_missing_where(self):
        with pytest.raises(QueryParseError):
            parse_query("SELECT ?x { ?x rdf:type <http://e/C> }")

    def test_empty_where(self):
        with pytest.raises(QueryParseError):
            parse_query("SELECT ?x WHERE { }")

    def test_select_without_variables(self):
        with pytest.raises(QueryParseError):
            parse_query("SELECT WHERE { ?x rdf:type <http://e/C> }")

    def test_trailing_tokens(self):
        with pytest.raises(QueryParseError):
            parse_query("SELECT ?x WHERE { ?x rdf:type <http://e/C> } junk")

    def test_head_variable_not_in_body(self):
        with pytest.raises(ValueError):
            parse_query("SELECT ?missing WHERE { ?x rdf:type <http://e/C> }")

    def test_truncated_pattern(self):
        with pytest.raises(QueryParseError):
            parse_query("SELECT ?x WHERE { ?x rdf:type }")
