"""Integration: every complete technique computes q(G∞), everywhere.

This is the paper's central correctness statement, checked across all
four datasets and all three backends — Sat, Ref-UCQ, Ref-SCQ,
Ref-JUCQ (several covers), Ref-GCov and Dat must agree row for row.
"""

import pytest

from repro import QueryAnswerer, Strategy
from repro.datalog import answer_query as datalog_answer
from repro.datasets import (
    GeneratorConfig,
    bib_queries,
    generate_bib,
    generate_geo,
    generate_lubm,
    geo_queries,
    lubm_queries,
)
from repro.query import Cover, evaluate_cq
from repro.saturation import saturate
from repro.schema import Schema
from repro.storage import DEFAULT_BACKENDS

#: Small but structurally complete LUBM instance for integration runs.
_TEST_CONFIG = GeneratorConfig(
    departments=2, undergraduate_students=12, graduate_students=6, courses=6,
    graduate_courses=4, publications_per_faculty=2,
)


def reference_answer(graph, query):
    return evaluate_cq(saturate(graph), query)


class TestLubmWorkload:
    @pytest.fixture(scope="class")
    def graph(self):
        return generate_lubm(universities=1, seed=4, config=_TEST_CONFIG)

    @pytest.fixture(scope="class")
    def saturated(self, graph):
        return saturate(graph)

    @pytest.fixture(scope="class")
    def answerer(self, graph):
        return QueryAnswerer(graph)

    @pytest.mark.parametrize(
        "name", ["Q%d" % index for index in range(1, 15)]
    )
    def test_strategies_agree_per_query(self, graph, saturated, answerer, name):
        query = lubm_queries()[name]
        expected = evaluate_cq(saturated, query)
        for strategy in (
            Strategy.SAT,
            Strategy.REF_UCQ,
            Strategy.REF_SCQ,
            Strategy.REF_GCOV,
        ):
            report = answerer.answer(query, strategy)
            assert report.answer == expected, (name, strategy)

    def test_datalog_agrees_on_selective_queries(self, graph, saturated):
        schema = Schema.from_graph(graph)
        for name in ("Q1", "Q3", "Q4", "Q12"):
            query = lubm_queries()[name]
            assert datalog_answer(graph, schema, query) == evaluate_cq(
                saturated, query
            )


class TestBackendsAgree:
    def test_same_answers_on_all_backends(self):
        graph = generate_lubm(universities=1, seed=8, config=_TEST_CONFIG)
        query = lubm_queries()["Q9"]
        expected = reference_answer(graph, query)
        for backend in DEFAULT_BACKENDS:
            answerer = QueryAnswerer(graph, backend=backend)
            for strategy in (Strategy.REF_SCQ, Strategy.REF_GCOV):
                assert answerer.answer(query, strategy).answer == expected


class TestGeoWorkload:
    def test_strategies_agree(self):
        graph = generate_geo(
            regions=2,
            departements_per_region=2,
            communes_per_departement=8,
            seed=3,
        )
        answerer = QueryAnswerer(graph)
        for name, query in geo_queries().items():
            expected = reference_answer(graph, query)
            for strategy in (Strategy.SAT, Strategy.REF_UCQ, Strategy.REF_SCQ):
                assert (
                    answerer.answer(query, strategy).answer == expected
                ), (name, strategy)


class TestBibWorkload:
    def test_strategies_agree(self):
        graph = generate_bib(authors=30, publications=80, venues=6, seed=3)
        answerer = QueryAnswerer(graph)
        for name, query in bib_queries().items():
            expected = reference_answer(graph, query)
            for strategy in (Strategy.SAT, Strategy.REF_SCQ, Strategy.REF_GCOV):
                assert (
                    answerer.answer(query, strategy).answer == expected
                ), (name, strategy)


class TestArbitraryCovers:
    def test_random_covers_agree(self):
        import random

        rng = random.Random(17)
        graph = generate_lubm(universities=1, seed=4, config=_TEST_CONFIG)
        answerer = QueryAnswerer(graph)
        query = lubm_queries()["Q9"]
        expected = reference_answer(graph, query)
        atom_count = len(query.atoms)
        for _ in range(8):
            # A random partition, possibly plus one overlap.
            assignment = [rng.randrange(3) for _ in range(atom_count)]
            fragments = {}
            for index, block in enumerate(assignment):
                fragments.setdefault(block, []).append(index)
            specs = list(fragments.values())
            if rng.random() < 0.5:
                specs.append([rng.randrange(atom_count)])
            cover = Cover(query, specs)
            report = answerer.answer(query, Strategy.REF_JUCQ, cover=cover)
            assert report.answer == expected, cover
