"""Unit and integration tests for federated query answering."""

import pytest

from repro.datasets import GeneratorConfig, generate_lubm, lubm_queries, lubm_schema
from repro.federation import (
    Endpoint,
    ExportForbidden,
    FederatedAnswerer,
)
from repro.query import ConjunctiveQuery, TriplePattern, Variable, evaluate_cq
from repro.rdf import Graph, Namespace, RDF_TYPE, RDFS_SUBCLASSOF, Triple
from repro.saturation import saturate
from repro.schema import Constraint, Schema

EX = Namespace("http://example.org/")
x, y, z = Variable("x"), Variable("y"), Variable("z")


def split_graph(graph, parts=3):
    """Deterministically shard a graph's data triples."""
    shards = [Graph() for _ in range(parts)]
    for index, triple in enumerate(sorted(graph.data_triples())):
        shards[index % parts].add(triple)
    return shards


@pytest.fixture(scope="module")
def lubm_setup():
    config = GeneratorConfig(departments=2, undergraduate_students=10,
                             graduate_students=5, courses=5, graduate_courses=3)
    graph = generate_lubm(universities=1, seed=6, config=config,
                          include_schema=False)
    schema = lubm_schema()
    shards = split_graph(graph, parts=3)
    endpoints = [
        Endpoint("shard%d" % index, shard)
        for index, shard in enumerate(shards)
    ]
    full = graph.copy()
    full.add_all(schema.to_triples())
    return graph, schema, endpoints, saturate(full)


class TestEndpoint:
    def test_no_reasoning(self):
        graph = Graph(
            [
                Triple(EX.a, RDF_TYPE, EX.Manager),
                Triple(EX.Manager, RDFS_SUBCLASSOF, EX.Employee),
            ]
        )
        endpoint = Endpoint("e", graph)
        query = ConjunctiveQuery([x], [TriplePattern(x, RDF_TYPE, EX.Employee)])
        assert len(endpoint.evaluate(query)) == 0  # explicit triples only

    def test_result_limit_truncates(self):
        graph = Graph(
            [Triple(EX.term("s%d" % index), EX.p, EX.o) for index in range(10)]
        )
        endpoint = Endpoint("e", graph, result_limit=3)
        query = ConjunctiveQuery([x], [TriplePattern(x, EX.p, EX.o)])
        result = endpoint.evaluate(query)
        assert len(result) == 3
        assert result.truncated

    def test_no_truncation_below_limit(self):
        endpoint = Endpoint("e", Graph([Triple(EX.a, EX.p, EX.o)]), result_limit=5)
        query = ConjunctiveQuery([x], [TriplePattern(x, EX.p, EX.o)])
        assert not endpoint.evaluate(query).truncated

    def test_export_forbidden(self):
        endpoint = Endpoint("e", Graph([Triple(EX.a, EX.p, EX.o)]))
        with pytest.raises(ExportForbidden):
            endpoint.export()

    def test_counters(self):
        endpoint = Endpoint("e", Graph([Triple(EX.a, EX.p, EX.o)]))
        query = ConjunctiveQuery([x], [TriplePattern(x, EX.p, EX.o)])
        endpoint.evaluate(query)
        endpoint.evaluate(query)
        assert endpoint.requests_served == 2
        assert endpoint.rows_returned == 2
        endpoint.reset_counters()
        assert endpoint.requests_served == 0

    def test_rejects_non_queries(self):
        endpoint = Endpoint("e", Graph([Triple(EX.a, EX.p, EX.o)]))
        with pytest.raises(TypeError):
            endpoint.evaluate("SELECT *")


class TestFederatedAnswering:
    def test_matches_centralized(self, lubm_setup):
        graph, schema, endpoints, saturated = lubm_setup
        federation = FederatedAnswerer(endpoints, schema)
        for name in ("Q1", "Q5", "Q6", "Q13", "Q14"):
            query = lubm_queries()[name]
            expected = evaluate_cq(saturated, query)
            answer = federation.answer(query)
            assert answer.rows == expected, name
            assert not answer.truncated

    def test_cross_endpoint_join(self):
        # The join's two triples live on different endpoints: only
        # client-side joining can find it.
        schema = Schema([Constraint.subproperty(EX.p, EX.q)])
        left = Endpoint("left", Graph([Triple(EX.a, EX.p, EX.b)]))
        right = Endpoint("right", Graph([Triple(EX.b, EX.p, EX.c)]))
        federation = FederatedAnswerer([left, right], schema)
        query = ConjunctiveQuery(
            [x, z], [TriplePattern(x, EX.q, y), TriplePattern(y, EX.q, z)]
        )
        answer = federation.answer(query)
        assert answer.rows == frozenset({(EX.a, EX.c)})

    def test_constraint_and_fact_in_different_places(self):
        # The constraint lives with the client, the fact at an
        # endpoint: implicit facts spanning sources (paper, §1).
        schema = Schema([Constraint.subclass(EX.Manager, EX.Employee)])
        endpoint = Endpoint("e", Graph([Triple(EX.a, RDF_TYPE, EX.Manager)]))
        federation = FederatedAnswerer([endpoint], schema)
        query = ConjunctiveQuery([x], [TriplePattern(x, RDF_TYPE, EX.Employee)])
        assert federation.answer(query).rows == frozenset({(EX.a,)})

    def test_schema_atoms_answered_locally(self, lubm_setup):
        _, schema, endpoints, _ = lubm_setup
        federation = FederatedAnswerer(endpoints, schema)
        federation.reset_counters()
        query = ConjunctiveQuery(
            [x, y], [TriplePattern(x, RDFS_SUBCLASSOF, y)]
        )
        answer = federation.answer(query)
        assert answer.requests == 0  # no endpoint was bothered
        assert len(answer.rows) == len(
            [c for c in schema.entailed_constraints()
             if c.kind.name == "SUBCLASS"]
        )

    def test_truncation_reported(self):
        schema = Schema()
        triples = [
            Triple(EX.term("s%d" % index), EX.p, EX.o) for index in range(20)
        ]
        endpoint = Endpoint("small", Graph(triples), result_limit=5)
        federation = FederatedAnswerer([endpoint], schema)
        query = ConjunctiveQuery([x], [TriplePattern(x, EX.p, EX.o)])
        answer = federation.answer(query)
        assert answer.truncated
        assert answer.cardinality == 5

    def test_request_accounting(self, lubm_setup):
        _, schema, endpoints, _ = lubm_setup
        federation = FederatedAnswerer(endpoints, schema)
        federation.reset_counters()
        query = lubm_queries()["Q1"]  # two atoms
        answer = federation.answer(query)
        # One request per (atom, endpoint) unless short-circuited.
        assert answer.requests <= len(query.atoms) * len(endpoints)
        assert answer.requests >= len(endpoints)

    def test_empty_federation_rejected(self):
        with pytest.raises(ValueError):
            FederatedAnswerer([], Schema())

    def test_boolean_query(self):
        schema = Schema()
        endpoint = Endpoint("e", Graph([Triple(EX.a, EX.p, EX.b)]))
        federation = FederatedAnswerer([endpoint], schema)
        query = ConjunctiveQuery([], [TriplePattern(x, EX.p, y)])
        assert federation.answer(query).rows == frozenset({()})
