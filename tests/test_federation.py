"""Unit and integration tests for federated query answering."""

import pytest

from repro.datasets import GeneratorConfig, generate_lubm, lubm_queries, lubm_schema
from repro.federation import (
    Endpoint,
    ExportForbidden,
    FederatedAnswerer,
)
from repro.query import ConjunctiveQuery, TriplePattern, Variable, evaluate_cq
from repro.rdf import Graph, Namespace, RDF_TYPE, RDFS_SUBCLASSOF, Triple
from repro.saturation import saturate
from repro.schema import Constraint, Schema

EX = Namespace("http://example.org/")
x, y, z = Variable("x"), Variable("y"), Variable("z")


def split_graph(graph, parts=3):
    """Deterministically shard a graph's data triples."""
    shards = [Graph() for _ in range(parts)]
    for index, triple in enumerate(sorted(graph.data_triples())):
        shards[index % parts].add(triple)
    return shards


@pytest.fixture(scope="module")
def lubm_setup():
    config = GeneratorConfig(departments=2, undergraduate_students=10,
                             graduate_students=5, courses=5, graduate_courses=3)
    graph = generate_lubm(universities=1, seed=6, config=config,
                          include_schema=False)
    schema = lubm_schema()
    shards = split_graph(graph, parts=3)
    endpoints = [
        Endpoint("shard%d" % index, shard)
        for index, shard in enumerate(shards)
    ]
    full = graph.copy()
    full.add_all(schema.to_triples())
    return graph, schema, endpoints, saturate(full)


class TestEndpoint:
    def test_no_reasoning(self):
        graph = Graph(
            [
                Triple(EX.a, RDF_TYPE, EX.Manager),
                Triple(EX.Manager, RDFS_SUBCLASSOF, EX.Employee),
            ]
        )
        endpoint = Endpoint("e", graph)
        query = ConjunctiveQuery([x], [TriplePattern(x, RDF_TYPE, EX.Employee)])
        assert len(endpoint.evaluate(query)) == 0  # explicit triples only

    def test_result_limit_truncates(self):
        graph = Graph(
            [Triple(EX.term("s%d" % index), EX.p, EX.o) for index in range(10)]
        )
        endpoint = Endpoint("e", graph, result_limit=3)
        query = ConjunctiveQuery([x], [TriplePattern(x, EX.p, EX.o)])
        result = endpoint.evaluate(query)
        assert len(result) == 3
        assert result.truncated

    def test_no_truncation_below_limit(self):
        endpoint = Endpoint("e", Graph([Triple(EX.a, EX.p, EX.o)]), result_limit=5)
        query = ConjunctiveQuery([x], [TriplePattern(x, EX.p, EX.o)])
        assert not endpoint.evaluate(query).truncated

    def test_export_forbidden(self):
        endpoint = Endpoint("e", Graph([Triple(EX.a, EX.p, EX.o)]))
        with pytest.raises(ExportForbidden):
            endpoint.export()

    def test_counters(self):
        endpoint = Endpoint("e", Graph([Triple(EX.a, EX.p, EX.o)]))
        query = ConjunctiveQuery([x], [TriplePattern(x, EX.p, EX.o)])
        endpoint.evaluate(query)
        endpoint.evaluate(query)
        assert endpoint.requests_served == 2
        assert endpoint.rows_returned == 2
        endpoint.reset_counters()
        assert endpoint.requests_served == 0

    def test_rejects_non_queries(self):
        endpoint = Endpoint("e", Graph([Triple(EX.a, EX.p, EX.o)]))
        with pytest.raises(TypeError):
            endpoint.evaluate("SELECT *")


class TestFederatedAnswering:
    def test_matches_centralized(self, lubm_setup):
        graph, schema, endpoints, saturated = lubm_setup
        federation = FederatedAnswerer(endpoints, schema)
        for name in ("Q1", "Q5", "Q6", "Q13", "Q14"):
            query = lubm_queries()[name]
            expected = evaluate_cq(saturated, query)
            answer = federation.answer(query)
            assert answer.rows == expected, name
            assert not answer.truncated

    def test_cross_endpoint_join(self):
        # The join's two triples live on different endpoints: only
        # client-side joining can find it.
        schema = Schema([Constraint.subproperty(EX.p, EX.q)])
        left = Endpoint("left", Graph([Triple(EX.a, EX.p, EX.b)]))
        right = Endpoint("right", Graph([Triple(EX.b, EX.p, EX.c)]))
        federation = FederatedAnswerer([left, right], schema)
        query = ConjunctiveQuery(
            [x, z], [TriplePattern(x, EX.q, y), TriplePattern(y, EX.q, z)]
        )
        answer = federation.answer(query)
        assert answer.rows == frozenset({(EX.a, EX.c)})

    def test_constraint_and_fact_in_different_places(self):
        # The constraint lives with the client, the fact at an
        # endpoint: implicit facts spanning sources (paper, §1).
        schema = Schema([Constraint.subclass(EX.Manager, EX.Employee)])
        endpoint = Endpoint("e", Graph([Triple(EX.a, RDF_TYPE, EX.Manager)]))
        federation = FederatedAnswerer([endpoint], schema)
        query = ConjunctiveQuery([x], [TriplePattern(x, RDF_TYPE, EX.Employee)])
        assert federation.answer(query).rows == frozenset({(EX.a,)})

    def test_schema_atoms_answered_locally(self, lubm_setup):
        _, schema, endpoints, _ = lubm_setup
        federation = FederatedAnswerer(endpoints, schema)
        federation.reset_counters()
        query = ConjunctiveQuery(
            [x, y], [TriplePattern(x, RDFS_SUBCLASSOF, y)]
        )
        answer = federation.answer(query)
        assert answer.requests == 0  # no endpoint was bothered
        assert len(answer.rows) == len(
            [c for c in schema.entailed_constraints()
             if c.kind.name == "SUBCLASS"]
        )

    def test_truncation_reported(self):
        schema = Schema()
        triples = [
            Triple(EX.term("s%d" % index), EX.p, EX.o) for index in range(20)
        ]
        endpoint = Endpoint("small", Graph(triples), result_limit=5)
        federation = FederatedAnswerer([endpoint], schema)
        query = ConjunctiveQuery([x], [TriplePattern(x, EX.p, EX.o)])
        answer = federation.answer(query)
        assert answer.truncated
        assert answer.cardinality == 5

    def test_request_accounting(self, lubm_setup):
        _, schema, endpoints, _ = lubm_setup
        federation = FederatedAnswerer(endpoints, schema)
        federation.reset_counters()
        query = lubm_queries()["Q1"]  # two atoms
        answer = federation.answer(query)
        # One request per (atom, endpoint) unless short-circuited.
        assert answer.requests <= len(query.atoms) * len(endpoints)
        assert answer.requests >= len(endpoints)

    def test_empty_federation_rejected(self):
        with pytest.raises(ValueError):
            FederatedAnswerer([], Schema())

    def test_boolean_query(self):
        schema = Schema()
        endpoint = Endpoint("e", Graph([Triple(EX.a, EX.p, EX.b)]))
        federation = FederatedAnswerer([endpoint], schema)
        query = ConjunctiveQuery([], [TriplePattern(x, EX.p, y)])
        assert federation.answer(query).rows == frozenset({()})


class TestErrorPaths:
    """Endpoints answering partially, emptily, or not usefully at all."""

    def test_empty_endpoint_does_not_poison_the_union(self):
        schema = Schema([Constraint.subclass(EX.Manager, EX.Employee)])
        populated = Endpoint("full", Graph([Triple(EX.a, RDF_TYPE, EX.Manager)]))
        empty = Endpoint("empty", Graph())
        federation = FederatedAnswerer([populated, empty], schema)
        query = ConjunctiveQuery([x], [TriplePattern(x, RDF_TYPE, EX.Employee)])
        answer = federation.answer(query)
        assert answer.rows == frozenset({(EX.a,)})
        assert not answer.truncated

    def test_all_endpoints_empty(self):
        federation = FederatedAnswerer(
            [Endpoint("a", Graph()), Endpoint("b", Graph())], Schema()
        )
        query = ConjunctiveQuery(
            [x, z], [TriplePattern(x, EX.p, y), TriplePattern(y, EX.q, z)]
        )
        answer = federation.answer(query)
        assert answer.rows == frozenset()
        assert not answer.truncated
        assert answer.rows_transferred == 0

    def test_empty_first_atom_short_circuits_the_join(self):
        # Once an atom with variables yields no rows the join is empty;
        # the client must not bother the endpoints about later atoms.
        endpoints = [
            Endpoint("e%d" % index, Graph([Triple(EX.a, EX.q, EX.b)]))
            for index in range(3)
        ]
        federation = FederatedAnswerer(endpoints, Schema())
        query = ConjunctiveQuery(
            [x], [TriplePattern(x, EX.nowhere, y), TriplePattern(x, EX.q, y)]
        )
        answer = federation.answer(query)
        assert answer.rows == frozenset()
        assert answer.requests == len(endpoints)  # first atom only
        for endpoint in endpoints:
            assert endpoint.requests_served == 1

    def test_truncation_mid_join_is_reported_and_sound(self):
        # One endpoint truncates the first atom's sub-answer: the final
        # answer may miss rows but must be a *subset* of the complete
        # one and carry the truncation flag.
        triples = [
            Triple(EX.term("s%d" % index), EX.p, EX.hub) for index in range(8)
        ]
        join = [Triple(EX.hub, EX.q, EX.target)]
        truncating = Endpoint("short", Graph(triples), result_limit=3)
        other = Endpoint("other", Graph(join))
        federation = FederatedAnswerer([truncating, other], Schema())
        query = ConjunctiveQuery(
            [x, z], [TriplePattern(x, EX.p, y), TriplePattern(y, EX.q, z)]
        )
        answer = federation.answer(query)
        complete = frozenset(
            {(triple.subject, EX.target) for triple in triples}
        )
        assert answer.truncated
        assert answer.rows <= complete
        assert answer.cardinality == 3

    def test_partial_overlap_across_endpoints_deduplicates(self):
        shared = Triple(EX.a, EX.p, EX.b)
        federation = FederatedAnswerer(
            [
                Endpoint("left", Graph([shared])),
                Endpoint("right", Graph([shared, Triple(EX.c, EX.p, EX.d)])),
            ],
            Schema(),
        )
        query = ConjunctiveQuery([x, y], [TriplePattern(x, EX.p, y)])
        answer = federation.answer(query)
        assert answer.rows == frozenset({(EX.a, EX.b), (EX.c, EX.d)})
        # Both endpoints shipped the shared row; the union deduplicates
        # but the transfer accounting records what actually moved.
        assert answer.rows_transferred == 3

    def test_ground_atom_failure_empties_a_boolean_answer(self):
        endpoint = Endpoint("e", Graph([Triple(EX.a, EX.p, EX.b)]))
        federation = FederatedAnswerer([endpoint], Schema())
        query = ConjunctiveQuery([], [TriplePattern(EX.a, EX.p, EX.missing)])
        assert federation.answer(query).rows == frozenset()


class TestCachedFederation:
    from repro.cache import QueryCache  # noqa: F401 — imported for use below

    def _setup(self, result_limit=None):
        from repro.cache import QueryCache

        schema = Schema([Constraint.subclass(EX.Manager, EX.Employee)])
        endpoints = [
            Endpoint(
                "left",
                Graph([Triple(EX.a, RDF_TYPE, EX.Manager)]),
                result_limit=result_limit,
            ),
            Endpoint("right", Graph([Triple(EX.b, RDF_TYPE, EX.Employee)])),
        ]
        cache = QueryCache()
        return FederatedAnswerer(endpoints, schema, cache=cache), cache

    def test_warm_answer_makes_no_requests(self):
        federation, _ = self._setup()
        query = ConjunctiveQuery([x], [TriplePattern(x, RDF_TYPE, EX.Employee)])
        cold = federation.answer(query)
        warm = federation.answer(query)
        assert cold.requests == 2
        assert warm.requests == 0
        assert warm.rows == cold.rows == frozenset({(EX.a,), (EX.b,)})

    def test_invalidate_restores_fetches(self):
        federation, _ = self._setup()
        query = ConjunctiveQuery([x], [TriplePattern(x, RDF_TYPE, EX.Employee)])
        federation.answer(query)
        federation.invalidate()
        assert federation.answer(query).requests == 2

    def test_truncation_flag_survives_the_cache(self):
        federation, _ = self._setup(result_limit=0)
        query = ConjunctiveQuery([x], [TriplePattern(x, RDF_TYPE, EX.Employee)])
        assert federation.answer(query).truncated
        warm = federation.answer(query)
        assert warm.requests == 0
        assert warm.truncated  # a cached partial answer stays partial

    def test_shared_atoms_hit_across_queries(self):
        federation, cache = self._setup()
        first = ConjunctiveQuery([x], [TriplePattern(x, RDF_TYPE, EX.Employee)])
        second = ConjunctiveQuery(
            [y], [TriplePattern(y, RDF_TYPE, EX.Employee)]
        )  # alpha-equivalent atom
        federation.answer(first)
        assert federation.answer(second).requests == 0

    def test_two_federations_sharing_a_cache_stay_apart(self):
        from repro.cache import QueryCache

        cache = QueryCache()
        schema = Schema()
        query = ConjunctiveQuery([x], [TriplePattern(x, EX.p, y)])
        first = FederatedAnswerer(
            [Endpoint("e", Graph([Triple(EX.a, EX.p, EX.b)]))],
            schema,
            cache=cache,
        )
        second = FederatedAnswerer(
            [Endpoint("e", Graph([Triple(EX.c, EX.p, EX.d)]))],
            schema,
            cache=cache,
        )
        assert first.answer(query).rows == frozenset({(EX.a,)})
        # Same endpoint name, same query — but a different federation:
        # the dataset token keeps the sub-answers apart.
        assert second.answer(query).rows == frozenset({(EX.c,)})
