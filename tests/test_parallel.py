"""The parallel subsystem: pool, scheduler, and thread-safety contracts.

Three layers of coverage:

* the primitives — :class:`~repro.parallel.pool.ExecutorPool` ordering,
  inline degradation, cancel-on-first-failure; :class:`TaskGraph`
  waves and validation;
* the shared mutable state parallel evaluation leans on — one
  :class:`~repro.resilience.budget.ExecutionBudget` charged from many
  threads trips exactly once, the cache's single-flight gate computes
  a missed key exactly once, the LRU survives concurrent hammering;
* the determinism contracts — saturation, cover search, and federation
  produce identical results with and without a pool.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro import BudgetExceeded, ExecutionBudget
from repro.cache import LRUCache, QueryCache
from repro.datasets import example1_query, lubm_queries, lubm_schema
from repro.federation import Endpoint, FederatedAnswerer
from repro.optimizer import beam_search, exhaustive_cover_search
from repro.parallel import ExecutorPool, TaskGraph, pool_for, primary_error
from repro.parallel.pool import shared_pool
from repro.rdf import Graph
from repro.saturation import saturate


@pytest.fixture
def pool():
    with ExecutorPool(workers=4) as pool:
        yield pool


# ---------------------------------------------------------------------------
# ExecutorPool


class TestExecutorPool:
    def test_map_preserves_item_order(self, pool):
        # Reverse sleeps so completion order inverts submission order;
        # results must still come back in item order.
        items = list(range(8))
        results = pool.map(
            lambda i: (time.sleep((7 - i) * 0.005), i * i)[1], items
        )
        assert results == [i * i for i in items]

    def test_serial_pool_runs_inline(self):
        pool = ExecutorPool(workers=1)
        assert pool.serial
        assert not pool.usable()
        calling_thread = threading.get_ident()
        idents = pool.map(lambda _: threading.get_ident(), range(4))
        assert set(idents) == {calling_thread}
        # submit() relays results and exceptions through the future
        # without ever touching a worker thread.
        assert pool.submit(lambda: 42).result() == 42
        failed = pool.submit(lambda: 1 / 0)
        with pytest.raises(ZeroDivisionError):
            failed.result()

    def test_workers_actually_fan_out(self, pool):
        idents = set(pool.map(lambda _: (time.sleep(0.02), threading.get_ident())[1], range(4)))
        assert threading.get_ident() not in idents
        assert len(idents) > 1

    def test_scatter_cancels_pending_on_first_failure(self):
        executed = []
        lock = threading.Lock()

        def record(i):
            time.sleep(0.03)
            with lock:
                executed.append(i)
            return i

        def fail():
            raise ValueError("first failure wins")

        with ExecutorPool(workers=2) as pool:
            tasks = [fail] + [lambda i=i: record(i) for i in range(20)]
            with pytest.raises(ValueError, match="first failure wins"):
                pool.scatter(tasks)
        # The failure cancelled the queue: at most the tasks already on
        # a worker (plus a scheduling-race straggler) ever ran.
        assert len(executed) < 10

    def test_nested_fanout_degrades_inline(self, pool):
        outer_thread = threading.get_ident()

        def nested():
            # Inside a worker the pool refuses to fan out again (a
            # bounded pool nesting into itself can deadlock); nested
            # map runs inline on the worker's own thread.
            assert not pool.usable()
            inner = pool.map(lambda _: threading.get_ident(), range(3))
            return threading.get_ident(), inner

        worker, inner = pool.submit(nested).result()
        assert worker != outer_thread
        assert set(inner) == {worker}

    def test_primary_error_prefers_non_sibling(self):
        sibling = ValueError("echo")
        sibling.sibling_abort = True
        primary = ValueError("the real one")
        assert primary_error([sibling, primary]) is primary
        assert primary_error([primary, sibling]) is primary
        # All-sibling fan-outs still surface something.
        assert primary_error([sibling]) is sibling

    def test_pool_for_and_shared_pool(self):
        assert pool_for(None) is None
        assert pool_for(1) is None
        with pytest.raises(ValueError):
            pool_for(0)
        with pytest.raises(ValueError):
            ExecutorPool(workers=0)
        two = pool_for(2)
        assert two is not None and two.workers >= 2
        # The shared pool is process-wide and only ever grows.
        assert shared_pool(2) is pool_for(2)
        assert shared_pool(2).workers >= 2


# ---------------------------------------------------------------------------
# TaskGraph


class TestTaskGraph:
    def test_dependencies_feed_results_forward(self, pool):
        graph = TaskGraph()
        graph.add("left", lambda done: 2)
        graph.add("right", lambda done: 3)
        graph.add("mul", lambda done: done["left"] * done["right"],
                  after=("left", "right"))
        graph.add("final", lambda done: done["mul"] + 1, after=("mul",))
        results = graph.run(pool)
        assert results == {"left": 2, "right": 3, "mul": 6, "final": 7}
        assert len(graph) == 4

    def test_serial_pool_same_results(self):
        graph = TaskGraph()
        order = []
        graph.add("a", lambda done: order.append("a"))
        graph.add("b", lambda done: order.append("b"), after=("a",))
        graph.run(ExecutorPool(1))
        assert order == ["a", "b"]

    def test_duplicate_name_rejected(self):
        graph = TaskGraph()
        graph.add("a", lambda done: 1)
        with pytest.raises(ValueError, match="duplicate"):
            graph.add("a", lambda done: 2)

    def test_unknown_dependency_rejected(self):
        graph = TaskGraph()
        with pytest.raises(ValueError, match="unknown task"):
            graph.add("b", lambda done: 1, after=("missing",))

    def test_cycle_detected_at_run_time(self, pool):
        # add() forbids forward references, so a cycle can only be
        # smuggled in below the public API — run() still refuses it
        # rather than spinning.
        graph = TaskGraph()
        graph._names.update({"a", "b"})
        graph._tasks = [
            ("a", lambda done: 1, ("b",)),
            ("b", lambda done: 2, ("a",)),
        ]
        with pytest.raises(ValueError, match="cycle"):
            graph.run(pool)

    def test_failure_abandons_later_waves(self, pool):
        graph = TaskGraph()
        ran = []
        graph.add("boom", lambda done: 1 / 0)
        graph.add("never", lambda done: ran.append("never"), after=("boom",))
        with pytest.raises(ZeroDivisionError):
            graph.run(pool)
        assert ran == []


# ---------------------------------------------------------------------------
# Shared budget under concurrency


class TestConcurrentBudget:
    def test_one_trip_many_sibling_aborts(self):
        budget = ExecutionBudget(max_rows=500)
        barrier = threading.Barrier(8)
        errors = []
        lock = threading.Lock()

        def worker():
            barrier.wait()
            try:
                while True:
                    budget.charge_rows(10, operator="Worker")
            except BudgetExceeded as exc:
                with lock:
                    errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        # Every worker eventually raised; exactly one raise carries the
        # genuine overrun, the rest are marked sibling echoes of it.
        assert len(errors) == 8
        primaries = [e for e in errors if not getattr(e, "sibling_abort", False)]
        assert len(primaries) == 1
        assert primaries[0].kind == "rows"
        assert budget.tripped
        # The shared total respects the serial semantics: the primary
        # tripped at the first charge past the limit.
        assert primaries[0].rows_produced <= 500 + 10

    def test_post_trip_charges_raise_immediately(self):
        budget = ExecutionBudget(max_rows=5)
        with pytest.raises(BudgetExceeded) as info:
            budget.charge_rows(6, operator="Scan")
        assert not getattr(info.value, "sibling_abort", False)
        for method in (budget.charge_rows, budget.probe_rows):
            with pytest.raises(BudgetExceeded) as info:
                method(1, operator="Later")
            assert info.value.sibling_abort is True
            assert info.value.kind == "rows"
        with pytest.raises(BudgetExceeded):
            budget.check_time()

    def test_probe_rows_trips_shared_budget(self):
        budget = ExecutionBudget(max_rows=100)
        budget.charge_rows(90)
        with pytest.raises(BudgetExceeded) as info:
            budget.probe_rows(20, operator="NestedLoop")
        assert info.value.kind == "rows"
        assert budget.tripped


# ---------------------------------------------------------------------------
# Cache concurrency: single-flight and the locked LRU


class TestSingleFlight:
    def _key(self, cache, tag="q"):
        return ("test", tag, cache.schema_epoch)

    def test_concurrent_misses_compute_once(self):
        cache = QueryCache()
        key = self._key(cache)
        calls = []
        lock = threading.Lock()
        barrier = threading.Barrier(6)

        def compute():
            with lock:
                calls.append(threading.get_ident())
            time.sleep(0.05)
            return "expensive"

        outcomes = []

        def caller():
            barrier.wait()
            outcomes.append(cache.get_or_compute("reformulation", key, compute))

        threads = [threading.Thread(target=caller) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert len(calls) == 1
        assert all(value == "expensive" for value, _hit in outcomes)
        # Exactly the leader reports a miss; every waiter re-read a hit.
        assert sorted(hit for _value, hit in outcomes) == [False] + [True] * 5

    def test_leader_failure_releases_flight(self):
        cache = QueryCache()
        key = self._key(cache, "failing")

        def explode():
            time.sleep(0.05)
            raise RuntimeError("reformulation failed")

        results = []
        failures = []

        def leader():
            try:
                cache.get_or_compute("reformulation", key, explode)
            except RuntimeError as exc:
                failures.append(exc)

        def waiter():
            results.append(
                cache.get_or_compute("reformulation", key, lambda: "recovered")
            )

        first = threading.Thread(target=leader)
        first.start()
        time.sleep(0.01)  # let the leader claim the flight
        rest = [threading.Thread(target=waiter) for _ in range(3)]
        for thread in rest:
            thread.start()
        first.join()
        for thread in rest:
            thread.join()

        # The leader's error reached the leader alone; a waiter was
        # re-elected and computed the value for everyone else.
        assert len(failures) == 1
        assert [value for value, _hit in results] == ["recovered"] * 3
        assert sum(1 for _value, hit in results if not hit) == 1
        # Nothing poisonous was cached along the way.
        value, hit = cache.get_or_compute(
            "reformulation", key, lambda: "unused"
        )
        assert (value, hit) == ("recovered", True)

    def test_leader_failure_reelection_scripted(self, monkeypatch):
        """The re-election path, deterministically: events script the
        exact interleaving (leader claims → waiter provably parks on
        the flight → leader fails → waiter is re-elected), with zero
        timing-dependent sleeps."""
        import repro.cache.cache as cache_module

        parked = threading.Event()

        class SignalingEvent(threading.Event):
            # A flight waiter entering wait() is *observable*, so the
            # test can order "waiter parked" before "leader fails".
            def wait(self, timeout=None):
                parked.set()
                return super().wait(timeout)

        monkeypatch.setattr(cache_module.threading, "Event", SignalingEvent)
        cache = QueryCache()
        key = self._key(cache, "scripted")
        claimed = threading.Event()
        release = threading.Event()

        def explode():
            claimed.set()
            assert release.wait(timeout=5)
            raise RuntimeError("reformulation failed")

        failures = []

        def leader():
            try:
                cache.get_or_compute("reformulation", key, explode)
            except RuntimeError as exc:
                failures.append(exc)

        results = []
        waiter_thread = threading.Thread(
            target=lambda: results.append(
                cache.get_or_compute("reformulation", key, lambda: "recovered")
            )
        )
        leader_thread = threading.Thread(target=leader)
        leader_thread.start()
        assert claimed.wait(timeout=5)  # 1. leader owns the flight
        waiter_thread.start()
        assert parked.wait(timeout=5)  # 2. waiter is parked on it
        release.set()  # 3. leader now fails
        leader_thread.join(timeout=5)
        waiter_thread.join(timeout=5)
        # 4. the parked waiter was re-elected: it computed (hit=False),
        # the failure stayed with the leader, the value is cached.
        assert len(failures) == 1
        assert results == [("recovered", False)]
        assert cache.get_or_compute("reformulation", key, lambda: "x") == (
            "recovered",
            True,
        )

    def test_distinct_keys_do_not_serialize(self):
        cache = QueryCache()
        started = threading.Barrier(2, timeout=5)

        def compute():
            # Both computations must be in flight at once to pass the
            # barrier: proof that single-flight is per-key.
            started.wait()
            return "v"

        outcomes = []
        threads = [
            threading.Thread(
                target=lambda k=k: outcomes.append(
                    cache.get_or_compute("reformulation", self._key(cache, k), compute)
                )
            )
            for k in ("left", "right")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert [hit for _value, hit in outcomes] == [False, False]


class TestConcurrentLRU:
    def test_hammer_stays_consistent(self):
        cache = LRUCache(capacity=32)
        errors = []

        def hammer(seed):
            try:
                for step in range(600):
                    key = (seed * 7 + step) % 64
                    if step % 29 == 0:
                        cache.invalidate()
                    elif step % 3 == 0:
                        cache.put(key, (seed, step))
                    else:
                        cache.get(key)
                        key in cache
            except Exception as exc:  # pragma: no cover - the assertion
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert errors == []
        assert len(cache) <= 32
        # Still a working cache afterwards.
        cache.put("k", "v")
        assert cache.get("k") == "v"


# ---------------------------------------------------------------------------
# Determinism contracts: parallel == serial


class TestParallelEqualsSerial:
    def test_saturation_fixpoint_identical(self, books, pool):
        graph, schema, _query = books
        serial = saturate(graph, schema)
        parallel = saturate(graph, schema, pool=pool)
        assert set(parallel) == set(serial)
        assert len(parallel) == len(serial)

    def test_saturation_lubm_identical(self, lubm_small, pool):
        serial = saturate(lubm_small)
        parallel = saturate(lubm_small, pool=pool)
        assert set(parallel) == set(serial)

    def test_exhaustive_search_identical(self, lubm_small_store, pool):
        query = example1_query()
        schema = lubm_schema()
        serial = exhaustive_cover_search(query, schema, lubm_small_store)
        parallel = exhaustive_cover_search(
            query, schema, lubm_small_store, pool=pool
        )
        assert parallel.cover.fragments == serial.cover.fragments
        assert parallel.cost == serial.cost
        # The entire priced space matches pairwise, in enumeration order.
        assert len(parallel.space) == len(serial.space)
        for (pc, pcost), (sc, scost) in zip(parallel.space, serial.space):
            assert pc.fragments == sc.fragments
            assert pcost == scost

    def test_beam_search_identical(self, lubm_small_store, pool):
        query = example1_query()
        schema = lubm_schema()
        serial = beam_search(query, schema, lubm_small_store)
        parallel = beam_search(query, schema, lubm_small_store, pool=pool)
        assert parallel.cover.fragments == serial.cover.fragments
        assert parallel.cost == serial.cost
        assert parallel.explored_count == serial.explored_count
        assert [cover.fragments for cover, _ in parallel.explored] == [
            cover.fragments for cover, _ in serial.explored
        ]

    def _federation(self, graph, parallelism):
        shards = [Graph() for _ in range(3)]
        for index, triple in enumerate(sorted(graph.data_triples())):
            shards[index % 3].add(triple)
        return FederatedAnswerer(
            [
                Endpoint("shard%d" % index, shard)
                for index, shard in enumerate(shards)
            ],
            lubm_schema(),
            parallelism=parallelism,
        )

    @pytest.mark.parametrize("name", ["Q2", "Q13"])
    def test_federation_identical(self, lubm_small, name):
        query = lubm_queries()[name]
        serial = self._federation(lubm_small, 1).answer(query)
        parallel = self._federation(lubm_small, 4).answer(query)
        assert parallel.rows == serial.rows
        assert parallel.complete and serial.complete
        # Request accounting is part of the contract: the fan-out must
        # issue exactly the serial sequence of endpoint calls.
        assert parallel.requests == serial.requests
