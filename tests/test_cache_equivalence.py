"""Property-based differential harness for the cache subsystem.

Extends the generators of :mod:`tests.test_property_based` to random
(schema, graph, query) triples and checks the cache's correctness
contract: a cached :class:`~repro.core.QueryAnswerer` returns exactly
the same answer as a cacheless one for every complete strategy —

* **cold** (first call populates both tiers),
* **warm** (second call must be an answer-tier hit), and
* **after an interleaved update** (insert and delete retire the
  answer tier via the data epoch; the recomputed answer must match a
  from-scratch evaluation of the updated graph).

The three ``@given`` blocks run 220 generated cases in total (80 + 80
+ 60), above the 200-case bar set by the issue.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cache import QueryCache
from repro.core import COMPLETE_STRATEGIES, QueryAnswerer, Strategy
from repro.query import evaluate_cq
from repro.rdf import Graph
from repro.saturation import saturate

from .test_property_based import (
    cover_st,
    data_triple_st,
    graph_st,
    query_st,
    schema_st,
)

#: Every complete strategy that needs no caller-supplied cover.
STRATEGIES = sorted(
    COMPLETE_STRATEGIES - {Strategy.REF_JUCQ}, key=lambda s: s.value
)


def reference_answer(graph, schema, query):
    """The contract's ground truth: q(G∞) by direct evaluation."""
    return evaluate_cq(saturate(Graph(graph.data_triples()), schema), query)


def assert_strategies_agree(answerer, query, expected, phase):
    for strategy in STRATEGIES:
        report = answerer.answer(query, strategy)
        assert report.answer == expected, (phase, strategy, report.answer)
    return [answerer.answer(query, strategy) for strategy in STRATEGIES]


harness_settings = settings(
    max_examples=80,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@harness_settings
@given(graph=graph_st, schema=schema_st, query=query_st())
def test_cold_and_warm_answers_match_reference(graph, schema, query):
    expected = reference_answer(graph, schema, query)
    answerer = QueryAnswerer(
        Graph(graph.data_triples()), schema, cache=QueryCache()
    )
    assert_strategies_agree(answerer, query, expected, "cold")
    warm = assert_strategies_agree(answerer, query, expected, "warm")
    for report in warm:
        assert report.details["cache"]["answer"] == "hit"


@harness_settings
@given(
    graph=graph_st,
    schema=schema_st,
    query=query_st(),
    extra=data_triple_st,
    delete_index=st.integers(0, 10_000),
)
def test_interleaved_update_keeps_strategies_equivalent(
    graph, schema, query, extra, delete_index
):
    answerer = QueryAnswerer(
        Graph(graph.data_triples()), schema, cache=QueryCache()
    )
    # Warm every tier on the pre-update instance.
    assert_strategies_agree(
        answerer, query, reference_answer(graph, schema, query), "pre-update"
    )

    answerer.insert(extra)
    expected = reference_answer(answerer.graph, schema, query)
    assert_strategies_agree(answerer, query, expected, "post-insert")

    triples = sorted(answerer.graph.data_triples())
    if triples:
        answerer.delete(triples[delete_index % len(triples)])
        expected = reference_answer(answerer.graph, schema, query)
        assert_strategies_agree(answerer, query, expected, "post-delete")
    # The survivors must still be served correctly (warm or re-derived).
    assert_strategies_agree(answerer, query, expected, "settled")


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(graph=graph_st, schema=schema_st, data=st.data())
def test_jucq_with_random_cover_matches_reference(graph, schema, data):
    """REF_JUCQ (caller-supplied random cover) through the cache: cold,
    warm, and after an update, against the cacheless reference."""
    query = data.draw(query_st())
    cover = data.draw(cover_st(query))
    answerer = QueryAnswerer(
        Graph(graph.data_triples()), schema, cache=QueryCache()
    )
    expected = reference_answer(graph, schema, query)
    cold = answerer.answer(query, Strategy.REF_JUCQ, cover=cover)
    warm = answerer.answer(query, Strategy.REF_JUCQ, cover=cover)
    assert cold.answer == expected
    assert warm.answer == expected
    assert warm.details["cache"]["answer"] == "hit"

    extra = data.draw(data_triple_st)
    answerer.insert(extra)
    updated = answerer.answer(query, Strategy.REF_JUCQ, cover=cover)
    assert updated.answer == reference_answer(answerer.graph, schema, query)
