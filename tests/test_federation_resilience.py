"""Integration tests: the federated client under injected faults.

The acceptance scenarios of the resilience layer: a permanent outage on
one of three endpoints leaves a correct answer over the remaining
sources (reported, not hidden); breakers open after the configured
threshold and skip the dead source; transient failures are retried to
success; deadlines degrade slow endpoints; and degraded sub-answers are
**never** written to the federation cache.  All time runs on a shared
FakeClock — the suite performs no wall-clock sleeps.
"""

import pytest

from repro.cache import QueryCache
from repro.federation import Endpoint, FederatedAnswerer, TruncatedResult
from repro.query import ConjunctiveQuery, TriplePattern, Variable
from repro.rdf import Graph, Namespace, RDF_TYPE, Triple
from repro.resilience import (
    ChaosEndpoint,
    FakeClock,
    FaultPlan,
    RetryPolicy,
    TransientEndpointError,
)
from repro.resilience.breaker import OPEN
from repro.resilience.report import (
    DEGRADED,
    SKIPPED_OPEN_CIRCUIT,
    TRUNCATED,
)
from repro.schema import Constraint, Schema

EX = Namespace("http://example.org/")
x, y = Variable("x"), Variable("y")

#: ?x a Employee . ?x worksFor ?y — two atoms, so one dead endpoint is
#: asked (and fails) twice per answer() call.
QUERY = ConjunctiveQuery(
    [x, y],
    [TriplePattern(x, RDF_TYPE, EX.Employee), TriplePattern(x, EX.worksFor, y)],
)

SCHEMA = Schema([Constraint.subclass(EX.Manager, EX.Employee)])


def _shards():
    """Three endpoint graphs; the join spans shards on purpose."""
    return [
        Graph([
            Triple(EX.m1, RDF_TYPE, EX.Manager),
            Triple(EX.m2, EX.worksFor, EX.d2),
        ]),
        Graph([
            Triple(EX.m2, RDF_TYPE, EX.Manager),
            Triple(EX.m3, EX.worksFor, EX.d3),
        ]),
        Graph([
            Triple(EX.m3, RDF_TYPE, EX.Manager),
            Triple(EX.m1, EX.worksFor, EX.d1),
        ]),
    ]


def _endpoints():
    return [
        Endpoint("shard%d" % index, shard)
        for index, shard in enumerate(_shards())
    ]


#: The complete fault-free answer.
FULL = frozenset({(EX.m1, EX.d1), (EX.m2, EX.d2), (EX.m3, EX.d3)})


class FailFirstEndpoint:
    """Delegates to a real endpoint, failing the first *failures*
    requests transiently — a deterministic flake for cache tests."""

    def __init__(self, endpoint, failures=1):
        self.inner = endpoint
        self.remaining_failures = failures
        self.requests_served = 0
        self.rows_returned = 0

    @property
    def name(self):
        return self.inner.name

    @property
    def triple_count(self):
        return self.inner.triple_count

    @property
    def result_limit(self):
        return self.inner.result_limit

    def evaluate(self, query) -> TruncatedResult:
        self.requests_served += 1
        if self.remaining_failures > 0:
            self.remaining_failures -= 1
            raise TransientEndpointError("warming up", endpoint_name=self.name)
        return self.inner.evaluate(query)

    def reset_counters(self):
        self.requests_served = 0
        self.inner.reset_counters()


class TestFaultFreeBaseline:
    def test_complete_answer_and_report(self):
        federation = FederatedAnswerer(_endpoints(), SCHEMA, clock=FakeClock())
        answer = federation.answer(QUERY)
        assert answer.rows == FULL
        assert answer.complete
        assert answer.report.complete
        assert answer.report.total_retries() == 0
        assert sorted(e.name for e in answer.report) == [
            "shard0", "shard1", "shard2"
        ]

    def test_duplicate_endpoint_names_get_distinct_reports(self):
        graphs = _shards()
        endpoints = [Endpoint("e", g) for g in graphs]
        federation = FederatedAnswerer(endpoints, SCHEMA, clock=FakeClock())
        answer = federation.answer(QUERY)
        assert answer.rows == FULL
        assert sorted(e.name for e in answer.report) == ["e", "e#1", "e#2"]


class TestPermanentOutage:
    def _federation(self, clock, breaker_threshold=2):
        endpoints = _endpoints()
        dead = ChaosEndpoint(
            endpoints[1], FaultPlan(seed=13, outage_after=0), clock=clock
        )
        federation = FederatedAnswerer(
            [endpoints[0], dead, endpoints[2]],
            SCHEMA,
            breaker_threshold=breaker_threshold,
            breaker_cooldown=60.0,
            clock=clock,
        )
        return federation

    def test_answer_over_remaining_sources(self):
        clock = FakeClock()
        federation = self._federation(clock)
        answer = federation.answer(QUERY)
        # The remaining sources hold m1/m3's types and m1's worksFor:
        # exactly the fault-free answer over shards 0 and 2.
        healthy = [e for i, e in enumerate(_endpoints()) if i != 1]
        expected = FederatedAnswerer(healthy, SCHEMA).answer(QUERY).rows
        assert answer.rows == expected
        assert answer.rows < FULL  # sound, strictly partial
        assert not answer.complete

    def test_degradation_reported_and_breaker_opens(self):
        clock = FakeClock()
        federation = self._federation(clock, breaker_threshold=2)
        answer = federation.answer(QUERY)
        entry = answer.report["shard1"]
        assert entry.status == DEGRADED
        assert entry.requests == 2  # one failure per atom
        assert entry.errors and "outage" in entry.errors[-1].lower()
        # Two consecutive failures met the threshold: circuit open.
        assert federation.breakers[1].state == OPEN
        assert answer.report.degraded_endpoints == ["shard1"]

    def test_open_breaker_skips_without_requests(self):
        clock = FakeClock()
        federation = self._federation(clock, breaker_threshold=2)
        federation.answer(QUERY)  # opens the breaker
        dead = federation.endpoints[1]
        served_before = dead.requests_served
        second = federation.answer(QUERY)
        entry = second.report["shard1"]
        assert entry.status == SKIPPED_OPEN_CIRCUIT
        assert entry.requests == 0
        assert dead.requests_served == served_before  # nothing sent
        assert second.report.skipped_endpoints == ["shard1"]
        assert not second.complete

    def test_half_open_probe_after_cooldown(self):
        clock = FakeClock()
        federation = self._federation(clock, breaker_threshold=2)
        federation.answer(QUERY)
        clock.advance(61.0)  # past the cooldown: half-open, probe allowed
        dead = federation.endpoints[1]
        served_before = dead.requests_served
        federation.answer(QUERY)
        assert dead.requests_served > served_before  # the probe went out

    def test_no_wall_clock_sleeps(self):
        clock = FakeClock()
        federation = self._federation(clock)
        federation.answer(QUERY)
        assert clock.sleeps == []  # outages fail fast; nothing slept


class TestTransientRecovery:
    def test_retry_reaches_complete_answer(self):
        clock = FakeClock()
        endpoints = _endpoints()
        flaky = FailFirstEndpoint(endpoints[1], failures=1)
        federation = FederatedAnswerer(
            [endpoints[0], flaky, endpoints[2]],
            SCHEMA,
            retry_policy=RetryPolicy(max_attempts=3, seed=5),
            clock=clock,
        )
        answer = federation.answer(QUERY)
        assert answer.rows == FULL
        assert answer.complete
        entry = answer.report["shard1"]
        assert entry.retries == 1
        assert entry.requests == 3  # 2 atoms + 1 retry
        assert len(clock.sleeps) == 1  # the backoff, on the fake clock

    def test_without_retries_the_flake_degrades(self):
        endpoints = _endpoints()
        flaky = FailFirstEndpoint(endpoints[1], failures=1)
        federation = FederatedAnswerer(
            [endpoints[0], flaky, endpoints[2]], SCHEMA, clock=FakeClock()
        )
        answer = federation.answer(QUERY)
        assert answer.report["shard1"].status == DEGRADED
        assert answer.rows <= FULL

    def test_exhausted_retries_degrade(self):
        clock = FakeClock()
        endpoints = _endpoints()
        flaky = FailFirstEndpoint(endpoints[1], failures=10)
        federation = FederatedAnswerer(
            [endpoints[0], flaky, endpoints[2]],
            SCHEMA,
            retry_policy=RetryPolicy(max_attempts=2, seed=5),
            clock=clock,
        )
        answer = federation.answer(QUERY)
        entry = answer.report["shard1"]
        assert entry.status == DEGRADED
        assert entry.retries == 2  # one retry per atom fetch
        assert not answer.complete


class TestDeadlines:
    def test_slow_endpoint_degrades(self):
        clock = FakeClock()
        endpoints = _endpoints()
        slow = ChaosEndpoint(
            endpoints[1],
            FaultPlan(seed=3, latency_rate=1.0, latency_seconds=0.5),
            clock=clock,
        )
        federation = FederatedAnswerer(
            [endpoints[0], slow, endpoints[2]],
            SCHEMA,
            request_deadline=0.2,
            clock=clock,
        )
        answer = federation.answer(QUERY)
        entry = answer.report["shard1"]
        assert entry.status == DEGRADED
        assert entry.errors and "deadline" in entry.errors[-1].lower()
        assert not answer.complete
        assert answer.rows <= FULL

    def test_fast_endpoints_meet_deadline(self):
        clock = FakeClock()
        federation = FederatedAnswerer(
            _endpoints(), SCHEMA, request_deadline=5.0, clock=clock
        )
        answer = federation.answer(QUERY)
        assert answer.complete
        assert answer.rows == FULL

    def test_deadline_validation(self):
        with pytest.raises(ValueError):
            FederatedAnswerer(_endpoints(), SCHEMA, request_deadline=0.0)


class TestTruncationReporting:
    def test_truncated_endpoint_reported(self):
        graph = Graph(
            [Triple(EX.term("m%d" % i), RDF_TYPE, EX.Manager) for i in range(8)]
        )
        endpoint = Endpoint("small", graph, result_limit=3)
        federation = FederatedAnswerer([endpoint], SCHEMA, clock=FakeClock())
        query = ConjunctiveQuery([x], [TriplePattern(x, RDF_TYPE, EX.Employee)])
        answer = federation.answer(query)
        assert answer.truncated
        assert answer.report["small"].status == TRUNCATED
        assert not answer.complete
        assert len(answer.rows) == 3

    def test_flaky_truncation_reported_like_real(self):
        graph = Graph(
            [Triple(EX.term("m%d" % i), RDF_TYPE, EX.Manager) for i in range(8)]
        )
        flaky = ChaosEndpoint(
            Endpoint("small", graph),
            FaultPlan(seed=1, truncation_rate=1.0, truncation_limit=3),
        )
        federation = FederatedAnswerer([flaky], SCHEMA, clock=FakeClock())
        query = ConjunctiveQuery([x], [TriplePattern(x, RDF_TYPE, EX.Employee)])
        answer = federation.answer(query)
        assert answer.truncated
        assert answer.report["small"].status == TRUNCATED
        genuine = FederatedAnswerer(
            [Endpoint("small", graph, result_limit=3)], SCHEMA
        ).answer(query)
        assert answer.rows == genuine.rows  # same truncation code path


class TestDegradedNeverCached:
    """Satellite regression: error/degraded endpoint responses must not
    be written to the federation cache — otherwise the flake's empty
    sub-answer would be replayed as authoritative once the endpoint
    recovered."""

    def test_degraded_sub_answer_not_cached(self):
        cache = QueryCache()
        endpoints = _endpoints()
        flaky = FailFirstEndpoint(endpoints[1], failures=2)  # both atoms fail
        federation = FederatedAnswerer(
            [endpoints[0], flaky, endpoints[2]],
            SCHEMA,
            cache=cache,
            clock=FakeClock(),
        )
        first = federation.answer(QUERY)
        assert first.report["shard1"].status == DEGRADED
        assert first.rows < FULL
        # The endpoint recovered; a second call must reach it again and
        # produce the complete answer.  Were the degraded (empty)
        # sub-answers cached, the rows would still be missing.
        second = federation.answer(QUERY)
        assert second.rows == FULL
        assert second.complete
        assert second.report["shard1"].cache_hits == 0

    def test_healthy_sub_answers_are_cached(self):
        cache = QueryCache()
        federation = FederatedAnswerer(
            _endpoints(), SCHEMA, cache=cache, clock=FakeClock()
        )
        federation.answer(QUERY)
        warm = federation.answer(QUERY)
        assert warm.rows == FULL
        assert all(entry.cache_hits == 2 for entry in warm.report)
        assert all(entry.requests == 0 for entry in warm.report)

    def test_skipped_endpoint_not_cached(self):
        cache = QueryCache()
        clock = FakeClock()
        endpoints = _endpoints()
        dead = ChaosEndpoint(
            endpoints[1], FaultPlan(seed=2, outage_after=0), clock=clock
        )
        federation = FederatedAnswerer(
            [endpoints[0], dead, endpoints[2]],
            SCHEMA,
            cache=cache,
            breaker_threshold=1,
            breaker_cooldown=3600.0,
            clock=clock,
        )
        federation.answer(QUERY)  # degrades + opens the breaker
        second = federation.answer(QUERY)
        entry = second.report["shard1"]
        assert entry.status == SKIPPED_OPEN_CIRCUIT
        assert entry.cache_hits == 0  # nothing was ever stored for it
