"""Unit tests for the Turtle-lite reader/writer."""

import pytest

from repro.rdf import (
    BlankNode,
    Graph,
    Literal,
    Namespace,
    ParseError,
    RDF_TYPE,
    Triple,
    URI,
)
from repro.rdf.turtle import read_turtle, turtle_to_string

EX = Namespace("http://example.org/")


class TestRead:
    def test_basic_statement(self):
        graph = read_turtle(
            "<http://e/a> <http://e/p> <http://e/b> ."
        )
        assert Triple(URI("http://e/a"), URI("http://e/p"), URI("http://e/b")) in graph

    def test_prefix_and_a_keyword(self):
        graph = read_turtle(
            "@prefix ex: <http://example.org/> .\n"
            "ex:doi1 a ex:Book ."
        )
        assert Triple(EX.doi1, RDF_TYPE, EX.Book) in graph

    def test_predicate_list(self):
        graph = read_turtle(
            "@prefix ex: <http://example.org/> .\n"
            'ex:doi1 a ex:Book ; ex:hasTitle "El Aleph" ; ex:publishedIn "1949" .'
        )
        assert len(graph) == 3

    def test_object_list(self):
        graph = read_turtle(
            "@prefix ex: <http://example.org/> .\n"
            "ex:a ex:p ex:b , ex:c , ex:d ."
        )
        assert len(graph) == 3
        assert {t.object for t in graph} == {EX.b, EX.c, EX.d}

    def test_blank_node(self):
        graph = read_turtle(
            "@prefix ex: <http://example.org/> .\n"
            "ex:doi1 ex:writtenBy _:b1 ."
        )
        assert Triple(EX.doi1, EX.writtenBy, BlankNode("b1")) in graph

    def test_typed_literal_prefixed_datatype(self):
        graph = read_turtle(
            "@prefix ex: <http://example.org/> .\n"
            'ex:a ex:p "1"^^xsd:integer .'
        )
        (triple,) = list(graph)
        assert triple.object.datatype.value.endswith("integer")

    def test_comments_stripped(self):
        graph = read_turtle(
            "# a comment\n"
            "@prefix ex: <http://example.org/> . # trailing\n"
            'ex:a ex:p "text with # inside" . # more\n'
        )
        (triple,) = list(graph)
        assert triple.object == Literal("text with # inside")

    def test_uri_with_hash_not_a_comment(self):
        graph = read_turtle("<http://e/ns#a> <http://e/ns#p> <http://e/ns#b> .")
        assert len(graph) == 1

    def test_default_prefixes_available(self):
        graph = read_turtle(
            "@prefix ex: <http://example.org/> .\n"
            "ex:A rdfs:subClassOf ex:B ."
        )
        (triple,) = list(graph)
        assert triple.property.value.endswith("subClassOf")

    def test_undeclared_prefix_rejected(self):
        with pytest.raises(ParseError):
            read_turtle("foo:a foo:p foo:b .")

    def test_base_rejected_loudly(self):
        with pytest.raises(ParseError):
            read_turtle("@base <http://e/> .")

    def test_missing_dot_rejected(self):
        with pytest.raises(ParseError):
            read_turtle("@prefix ex: <http://e/> .\nex:a ex:p ex:b")

    def test_trailing_semicolon_tolerated(self):
        graph = read_turtle(
            "@prefix ex: <http://example.org/> .\n"
            "ex:a ex:p ex:b ; ."
        )
        assert len(graph) == 1


class TestWriteRoundtrip:
    def test_roundtrip_books(self, books):
        graph, _, _ = books
        text = turtle_to_string(graph, {"bk": "http://example.org/books/"})
        assert read_turtle(text) == graph

    def test_roundtrip_lubm_sample(self, lubm_small):
        text = turtle_to_string(
            lubm_small,
            {"ub": "http://swat.cse.lehigh.edu/onto/univ-bench.owl#"},
        )
        assert read_turtle(text) == lubm_small

    def test_output_uses_prefixes_and_a(self, books):
        graph, _, _ = books
        text = turtle_to_string(graph, {"bk": "http://example.org/books/"})
        assert "a bk:Book" in text
        assert "bk:doi1 " in text
        assert "@prefix bk:" in text

    def test_deterministic(self, books):
        graph, _, _ = books
        assert turtle_to_string(graph) == turtle_to_string(graph)

    def test_literals_preserved(self):
        graph = Graph([Triple(EX.a, EX.p, Literal('with "quotes"\n'))])
        assert read_turtle(turtle_to_string(graph)) == graph
