"""Unit tests for cardinality estimation and plan costing."""

import pytest

from repro.cost import annotate_plan, cardinality
from repro.query import ConjunctiveQuery, TriplePattern, Variable
from repro.rdf import Graph, Namespace, RDF_TYPE, Triple
from repro.storage import (
    Executor,
    HASH_BACKEND,
    LOOP_BACKEND,
    Planner,
    ScanNode,
    TripleStore,
)

EX = Namespace("http://example.org/")
x, y, z = Variable("x"), Variable("y"), Variable("z")


def skewed_store():
    graph = Graph()
    # 100 instances of C, 5 of D; p fans out 2 objects per subject.
    for index in range(100):
        graph.add(Triple(EX.term("c%d" % index), RDF_TYPE, EX.C))
    for index in range(5):
        graph.add(Triple(EX.term("d%d" % index), RDF_TYPE, EX.D))
    for index in range(50):
        subject = EX.term("c%d" % index)
        graph.add(Triple(subject, EX.p, EX.term("o%d" % (index % 10))))
        graph.add(Triple(subject, EX.p, EX.term("o%d" % ((index + 1) % 10))))
    return TripleStore.from_graph(graph)


def scan_for(store, pattern):
    planner = Planner(store)
    scan = planner._scan_for_atom(pattern)
    assert scan is not None
    annotate_plan(scan, store.statistics, HASH_BACKEND, store.type_property_id)
    return scan


class TestScanEstimates:
    def test_type_scan_uses_exact_class_count(self):
        store = skewed_store()
        scan = scan_for(store, TriplePattern(x, RDF_TYPE, EX.C))
        assert scan.estimated_rows == 100.0
        scan = scan_for(store, TriplePattern(x, RDF_TYPE, EX.D))
        assert scan.estimated_rows == 5.0

    def test_property_extent(self):
        store = skewed_store()
        scan = scan_for(store, TriplePattern(x, EX.p, y))
        assert scan.estimated_rows == 100.0

    def test_bound_subject_uses_distincts(self):
        store = skewed_store()
        scan = scan_for(store, TriplePattern(EX.term("c0"), EX.p, y))
        # 100 triples / 50 distinct subjects = 2 per subject.
        assert scan.estimated_rows == pytest.approx(2.0)

    def test_bound_object_uses_distincts(self):
        store = skewed_store()
        scan = scan_for(store, TriplePattern(x, EX.p, EX.term("o0")))
        assert scan.estimated_rows == pytest.approx(10.0)

    def test_unbound_property_is_table_scan(self):
        store = skewed_store()
        scan = scan_for(store, TriplePattern(x, z, y))
        assert scan.estimated_rows == float(store.triple_count)

    def test_estimates_match_actuals_exactly_here(self):
        # On uniform data the estimates should be spot on.
        store = skewed_store()
        executor = Executor(store)
        query = ConjunctiveQuery([x, y], [TriplePattern(x, EX.p, y)])
        result = executor.run(query)
        scan = next(n for n in result.plan.walk() if isinstance(n, ScanNode))
        assert scan.actual_rows == int(scan.estimated_rows)


class TestJoinEstimates:
    def test_system_r_formula(self):
        rows = cardinality.estimate_join(
            100.0, 50.0, {x: 10.0}, {x: 25.0}, (x,)
        )
        assert rows == pytest.approx(100.0 * 50.0 / 25.0)

    def test_cross_product(self):
        assert cardinality.estimate_join(10.0, 7.0, {}, {}, ()) == 70.0

    def test_join_plan_estimate_close_to_actual(self):
        store = skewed_store()
        executor = Executor(store)
        query = ConjunctiveQuery(
            [x, y],
            [
                TriplePattern(x, RDF_TYPE, EX.C),
                TriplePattern(x, EX.p, y),
            ],
        )
        result = executor.run(query)
        root = result.plan
        # Estimated and actual within a small factor on uniform data.
        assert root.estimated_rows == pytest.approx(result.row_count, rel=0.5)


class TestCostOrdering:
    """Only relative costs matter; check the obvious dominances."""

    def test_larger_scan_costs_more(self):
        store = skewed_store()
        cheap = scan_for(store, TriplePattern(x, RDF_TYPE, EX.D))
        pricey = scan_for(store, TriplePattern(x, RDF_TYPE, EX.C))
        assert pricey.estimated_cost > cheap.estimated_cost

    def test_nested_loop_priciest_on_large_inputs(self):
        store = skewed_store()
        query = ConjunctiveQuery(
            [x, y],
            [
                TriplePattern(x, RDF_TYPE, EX.C),
                TriplePattern(x, EX.p, y),
            ],
        )
        costs = {
            backend.name: Planner(store, backend)
            .plan(query)
            .total_estimated_cost()
            for backend in (HASH_BACKEND, LOOP_BACKEND)
        }
        assert costs["loopdb"] > costs["hashdb"]

    def test_distinct_bounded_by_input(self):
        assert cardinality.distinct_output_rows(10.0, {x: 3.0}) == 3.0
        assert cardinality.distinct_output_rows(2.0, {x: 30.0}) == 2.0
        assert cardinality.distinct_output_rows(0.0, {}) == 0.0
