"""Tests for SQL generation and the SQLite backend.

The decisive assertions: a *real* SQL engine, fed the generated SQL
over the same dictionary-encoded triple table, returns exactly the
answers of the built-in executor for every reformulation strategy —
and rejects oversized unions with its own parser limit, just as the
paper's engines did.
"""

import sqlite3

import pytest

from repro.datasets import GeneratorConfig, books_dataset, generate_lubm, lubm_queries
from repro.query import ConjunctiveQuery, Cover, TriplePattern, Variable
from repro.reformulation import jucq_for_cover, reformulate, scq_reformulation
from repro.rdf import Graph, Literal, Namespace, RDF_TYPE, Triple
from repro.schema import Constraint, Schema
from repro.storage import Executor, TripleStore
from repro.storage.sql import (
    SQLITE_COMPOUND_SELECT_LIMIT,
    SqliteBackend,
    ucq_to_sql,
)

EX = Namespace("http://example.org/")
x, y, u = Variable("x"), Variable("y"), Variable("u")


@pytest.fixture(scope="module")
def library():
    graph = Graph(
        [
            Triple(EX.b1, RDF_TYPE, EX.Novel),
            Triple(EX.b2, RDF_TYPE, EX.Book),
            Triple(EX.b3, EX.writtenBy, EX.alice),
            Triple(EX.b1, EX.writtenBy, EX.bob),
            Triple(EX.b1, EX.hasTitle, Literal("T1")),
            Constraint.subclass(EX.Book, EX.Publication).to_triple(),
            Constraint.subclass(EX.Novel, EX.Book).to_triple(),
            Constraint.subproperty(EX.writtenBy, EX.hasAuthor).to_triple(),
            Constraint.domain(EX.writtenBy, EX.Book).to_triple(),
            Constraint.range(EX.writtenBy, EX.Person).to_triple(),
        ]
    )
    store = TripleStore.from_graph(graph)
    return store, Schema.from_graph(graph)


class TestSqlText:
    def test_cq_sql_shape(self, library):
        store, _ = library
        backend = SqliteBackend(store)
        query = ConjunctiveQuery(
            [x, y],
            [TriplePattern(x, RDF_TYPE, EX.Book), TriplePattern(x, EX.writtenBy, y)],
        )
        sql, params = backend.to_sql(query)
        assert "FROM t AS t0, t AS t1" in sql
        assert "t0.s = t1.s" in sql or "t1.s = t0.s" in sql
        assert len(params) == 3  # rdf:type, Book, writtenBy

    def test_guard_becomes_kind_filter(self, library):
        store, schema = library
        query = ConjunctiveQuery([x], [TriplePattern(x, RDF_TYPE, EX.Person)])
        union = reformulate(query, schema)
        sql, _ = ucq_to_sql(union, store)
        assert "kind = 'literal'" in sql

    def test_union_sql(self, library):
        store, schema = library
        query = ConjunctiveQuery([x], [TriplePattern(x, RDF_TYPE, EX.Publication)])
        sql, _ = ucq_to_sql(reformulate(query, schema), store)
        assert sql.count(" UNION ") >= 1

    def test_missing_constant_disjunct_dropped(self, library):
        store, _ = library
        union = reformulate(
            ConjunctiveQuery([x], [TriplePattern(x, RDF_TYPE, EX.NeverSeen)]),
            Schema(),
        )
        sql, params = ucq_to_sql(union, store)
        assert "WHERE 0" in sql


class TestSqliteAgreesWithExecutor:
    def queries(self, schema):
        return [
            ConjunctiveQuery([x], [TriplePattern(x, RDF_TYPE, EX.Publication)]),
            ConjunctiveQuery(
                [x, y],
                [
                    TriplePattern(x, RDF_TYPE, EX.Book),
                    TriplePattern(x, EX.hasAuthor, y),
                ],
            ),
            ConjunctiveQuery([x, u], [TriplePattern(x, RDF_TYPE, u)]),
            ConjunctiveQuery([], [TriplePattern(x, RDF_TYPE, EX.Novel)]),
        ]

    def test_plain_cq(self, library):
        store, schema = library
        executor = Executor(store)
        with SqliteBackend(store) as backend:
            for query in self.queries(schema):
                assert backend.run(query) == executor.run(query).answer()

    def test_ucq_reformulations(self, library):
        store, schema = library
        executor = Executor(store)
        with SqliteBackend(store) as backend:
            for query in self.queries(schema):
                union = reformulate(query, schema)
                assert backend.run(union) == executor.run(union).answer()

    def test_scq_and_jucq(self, library):
        store, schema = library
        executor = Executor(store)
        query = self.queries(schema)[1]
        with SqliteBackend(store) as backend:
            scq = scq_reformulation(query, schema)
            assert backend.run(scq) == executor.run(scq).answer()
            jucq = jucq_for_cover(Cover(query, [[0], [0, 1]]), schema)
            assert backend.run(jucq) == executor.run(jucq).answer()

    def test_lubm_workload(self):
        config = GeneratorConfig(departments=2, undergraduate_students=8,
                                 graduate_students=4, courses=4,
                                 graduate_courses=2)
        graph = generate_lubm(universities=1, seed=5, config=config)
        store = TripleStore.from_graph(graph)
        schema = store.schema
        executor = Executor(store)
        with SqliteBackend(store) as backend:
            for name in ("Q1", "Q4", "Q5", "Q6", "Q13"):
                union = reformulate(lubm_queries()[name], schema)
                assert backend.run(union) == executor.run(union).answer(), name

    def test_books_example(self):
        graph, schema, query = books_dataset()
        store = TripleStore.from_graph(graph)
        with SqliteBackend(store) as backend:
            answer = backend.run(reformulate(query, schema))
        assert answer == frozenset({(Literal("J. L. Borges"),)})


class TestRealParserLimit:
    def test_oversized_union_rejected_by_sqlite(self, library):
        """SQLite's own compound-SELECT limit rejects a big UCQ — the
        paper's parse failure, on a genuine SQL parser."""
        store, _ = library
        disjuncts = [
            ConjunctiveQuery([x], [TriplePattern(x, RDF_TYPE, EX.Book)])
            for _ in range(SQLITE_COMPOUND_SELECT_LIMIT + 1)
        ]
        from repro.query import UnionQuery

        union = UnionQuery(disjuncts)
        with SqliteBackend(store) as backend:
            with pytest.raises(sqlite3.OperationalError):
                backend.run(union)
