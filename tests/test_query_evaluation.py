"""Unit tests for the reference evaluator."""

import pytest

from repro.query import (
    ConjunctiveQuery,
    JoinOfUnions,
    TriplePattern,
    UnionQuery,
    Variable,
    evaluate,
    evaluate_cq,
    evaluate_jucq,
    evaluate_ucq,
)
from repro.rdf import Graph, Literal, Namespace, RDF_TYPE, Triple

EX = Namespace("http://example.org/")
x, y, z = Variable("x"), Variable("y"), Variable("z")


@pytest.fixture
def graph():
    return Graph(
        [
            Triple(EX.a, RDF_TYPE, EX.C),
            Triple(EX.b, RDF_TYPE, EX.C),
            Triple(EX.a, EX.p, EX.b),
            Triple(EX.b, EX.p, EX.c),
            Triple(EX.a, EX.q, Literal("v")),
        ]
    )


class TestCQ:
    def test_single_atom(self, graph):
        query = ConjunctiveQuery([x], [TriplePattern(x, RDF_TYPE, EX.C)])
        assert evaluate_cq(graph, query) == frozenset({(EX.a,), (EX.b,)})

    def test_join(self, graph):
        query = ConjunctiveQuery(
            [x, z], [TriplePattern(x, EX.p, y), TriplePattern(y, EX.p, z)]
        )
        assert evaluate_cq(graph, query) == frozenset({(EX.a, EX.c)})

    def test_no_match(self, graph):
        query = ConjunctiveQuery([x], [TriplePattern(x, EX.missing, y)])
        assert evaluate_cq(graph, query) == frozenset()

    def test_boolean_true(self, graph):
        query = ConjunctiveQuery([], [TriplePattern(x, EX.p, y)])
        assert evaluate_cq(graph, query) == frozenset({()})

    def test_boolean_false(self, graph):
        query = ConjunctiveQuery([], [TriplePattern(x, EX.missing, y)])
        assert evaluate_cq(graph, query) == frozenset()

    def test_constant_head(self, graph):
        query = ConjunctiveQuery(
            [x, EX.C], [TriplePattern(x, RDF_TYPE, EX.C)]
        )
        assert (EX.a, EX.C) in evaluate_cq(graph, query)

    def test_repeated_variable_in_atom(self, graph):
        loop_graph = graph.copy()
        loop_graph.add(Triple(EX.s, EX.p, EX.s))
        query = ConjunctiveQuery([x], [TriplePattern(x, EX.p, x)])
        assert evaluate_cq(loop_graph, query) == frozenset({(EX.s,)})

    def test_cross_product(self, graph):
        query = ConjunctiveQuery(
            [x, y],
            [TriplePattern(x, EX.q, Literal("v")), TriplePattern(y, RDF_TYPE, EX.C)],
        )
        assert len(evaluate_cq(graph, query)) == 2

    def test_set_semantics(self, graph):
        # Two p-edges from distinct objects project to the same subject.
        query = ConjunctiveQuery([y], [TriplePattern(y, EX.p, z)])
        assert evaluate_cq(graph, query) == frozenset({(EX.a,), (EX.b,)})


class TestUCQ:
    def test_union(self, graph):
        union = UnionQuery(
            [
                ConjunctiveQuery([x], [TriplePattern(x, RDF_TYPE, EX.C)]),
                ConjunctiveQuery([x], [TriplePattern(x, EX.p, EX.c)]),
            ]
        )
        assert evaluate_ucq(graph, union) == frozenset({(EX.a,), (EX.b,)})


class TestJUCQ:
    def test_join_of_unions(self, graph):
        left = UnionQuery(
            [ConjunctiveQuery([x], [TriplePattern(x, RDF_TYPE, EX.C)])]
        )
        right = UnionQuery(
            [ConjunctiveQuery([x, y], [TriplePattern(x, EX.p, y)])]
        )
        jucq = JoinOfUnions([x, y], [((x,), left), ((x, y), right)])
        assert evaluate_jucq(graph, jucq) == frozenset(
            {(EX.a, EX.b), (EX.b, EX.c)}
        )

    def test_empty_fragment_short_circuits(self, graph):
        left = UnionQuery(
            [ConjunctiveQuery([x], [TriplePattern(x, EX.missing, y)])]
        )
        right = UnionQuery(
            [ConjunctiveQuery([x, y], [TriplePattern(x, EX.p, y)])]
        )
        jucq = JoinOfUnions([x], [((x,), left), ((x, y), right)])
        assert evaluate_jucq(graph, jucq) == frozenset()

    def test_disconnected_fragments_cross_product(self, graph):
        left = UnionQuery(
            [ConjunctiveQuery([x], [TriplePattern(x, RDF_TYPE, EX.C)])]
        )
        right = UnionQuery(
            [ConjunctiveQuery([y], [TriplePattern(y, EX.q, Literal("v"))])]
        )
        jucq = JoinOfUnions([x, y], [((x,), left), ((y,), right)])
        assert len(evaluate_jucq(graph, jucq)) == 2

    def test_constant_in_fragment_head(self, graph):
        union = UnionQuery(
            [ConjunctiveQuery([x, EX.C], [TriplePattern(x, RDF_TYPE, EX.C)])]
        )
        jucq = JoinOfUnions([x, y], [((x, Variable("y")), union)])
        answer = evaluate_jucq(graph, jucq)
        assert (EX.a, EX.C) in answer


class TestDispatch:
    def test_evaluate_dispatches(self, graph):
        cq = ConjunctiveQuery([x], [TriplePattern(x, RDF_TYPE, EX.C)])
        assert evaluate(graph, cq) == evaluate_cq(graph, cq)
        union = UnionQuery([cq])
        assert evaluate(graph, union) == evaluate_ucq(graph, union)

    def test_evaluate_rejects_unknown(self, graph):
        with pytest.raises(TypeError):
            evaluate(graph, "not a query")
