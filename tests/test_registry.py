"""Tests for the experiment registry and its CLI subcommand."""

import os


from repro.bench import EXPERIMENTS, experiment_index
from repro.cli import main


class TestRegistry:
    def test_identifiers_unique(self):
        identifiers = [experiment.identifier for experiment in EXPERIMENTS]
        assert len(identifiers) == len(set(identifiers))

    def test_covers_all_experiments(self):
        identifiers = {experiment.identifier for experiment in EXPERIMENTS}
        for number in range(1, 13):
            assert "E%d" % number in identifiers
        for number in range(1, 5):
            assert "A%d" % number in identifiers

    def test_bench_files_exist(self):
        for experiment in EXPERIMENTS:
            assert os.path.exists(experiment.bench_file), experiment

    def test_index(self):
        index = experiment_index()
        assert index["E1"].claim.startswith("Example 1")

    def test_quick_runs_return_text(self):
        for experiment in EXPERIMENTS:
            if experiment.quick is None:
                continue
            if experiment.identifier == "E2":
                continue  # slower; covered by the CLI test below
            text = experiment.quick()
            assert isinstance(text, str) and text


class TestCliExperiments:
    def run(self, capsys, *argv):
        code = main(list(argv))
        return code, capsys.readouterr().out

    def test_list(self, capsys):
        code, out = self.run(capsys, "experiments")
        assert code == 0
        assert "E12" in out
        assert "bench target" in out

    def test_run_selected(self, capsys):
        code, out = self.run(capsys, "experiments", "--run", "E1")
        assert code == 0
        assert "186624" in out or "UCQ disjuncts" in out
