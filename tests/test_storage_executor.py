"""Unit and integration tests for the planner and executor.

The load-bearing assertion: the relational engine computes exactly
what the reference evaluator computes, for every query form and every
backend profile.
"""

import pytest

from repro.query import (
    ConjunctiveQuery,
    Cover,
    TriplePattern,
    Variable,
    evaluate,
)
from repro.rdf import Graph, Literal, Namespace, RDF_TYPE, Triple
from repro.reformulation import jucq_for_cover, reformulate, scq_reformulation
from repro.reformulation.atoms import database_graph
from repro.schema import Constraint, Schema
from repro.storage import (
    DEFAULT_BACKENDS,
    Executor,
    HASH_BACKEND,
    LOOP_BACKEND,
    MERGE_BACKEND,
    QueryTooLargeError,
    TripleStore,
    query_atom_total,
)
from repro.storage.backends import BackendProfile

EX = Namespace("http://example.org/")
x, y, z, u = Variable("x"), Variable("y"), Variable("z"), Variable("u")


def library_graph():
    return Graph(
        [
            Triple(EX.b1, RDF_TYPE, EX.Novel),
            Triple(EX.b2, RDF_TYPE, EX.Book),
            Triple(EX.b3, EX.writtenBy, EX.alice),
            Triple(EX.b1, EX.writtenBy, EX.bob),
            Triple(EX.alice, EX.knows, EX.bob),
            Triple(EX.b1, EX.hasTitle, Literal("T1")),
            Constraint.subclass(EX.Book, EX.Publication).to_triple(),
            Constraint.subclass(EX.Novel, EX.Book).to_triple(),
            Constraint.subproperty(EX.writtenBy, EX.hasAuthor).to_triple(),
            Constraint.domain(EX.writtenBy, EX.Book).to_triple(),
            Constraint.range(EX.writtenBy, EX.Person).to_triple(),
        ]
    )


@pytest.fixture
def setup():
    graph = library_graph()
    schema = Schema.from_graph(graph)
    store = TripleStore.from_graph(graph)
    db = database_graph(graph, schema)
    return graph, schema, store, db


def queries():
    return [
        ConjunctiveQuery([x], [TriplePattern(x, RDF_TYPE, EX.Publication)]),
        ConjunctiveQuery(
            [x, y],
            [
                TriplePattern(x, RDF_TYPE, EX.Book),
                TriplePattern(x, EX.hasAuthor, y),
            ],
        ),
        ConjunctiveQuery([x, u], [TriplePattern(x, RDF_TYPE, u)]),
        ConjunctiveQuery(
            [x],
            [
                TriplePattern(x, EX.writtenBy, y),
                TriplePattern(y, EX.knows, z),
            ],
        ),
        # Boolean query.
        ConjunctiveQuery([], [TriplePattern(x, RDF_TYPE, EX.Novel)]),
        # Repeated variable.
        ConjunctiveQuery([x], [TriplePattern(x, EX.knows, x)]),
        # Unbound property.
        ConjunctiveQuery([x, u, y], [TriplePattern(x, u, y)]),
    ]


class TestAgainstReference:
    @pytest.mark.parametrize("backend", DEFAULT_BACKENDS, ids=lambda b: b.name)
    def test_cq_matches_reference(self, setup, backend):
        graph, schema, store, db = setup
        executor = Executor(store, backend)
        for query in queries():
            assert executor.run(query).answer() == evaluate(db, query)

    @pytest.mark.parametrize("backend", DEFAULT_BACKENDS, ids=lambda b: b.name)
    def test_ucq_matches_reference(self, setup, backend):
        graph, schema, store, db = setup
        executor = Executor(store, backend)
        for query in queries()[:4]:
            union = reformulate(query, schema)
            assert executor.run(union).answer() == evaluate(db, union)

    @pytest.mark.parametrize("backend", DEFAULT_BACKENDS, ids=lambda b: b.name)
    def test_jucq_matches_reference(self, setup, backend):
        graph, schema, store, db = setup
        executor = Executor(store, backend)
        query = queries()[1]
        for cover_spec in ([[0], [1]], [[0, 1]], [[0], [0, 1]]):
            jucq = jucq_for_cover(Cover(query, cover_spec), schema)
            assert executor.run(jucq).answer() == evaluate(db, jucq)

    def test_scq_matches_reference(self, setup):
        graph, schema, store, db = setup
        executor = Executor(store)
        for query in queries()[:4]:
            scq = scq_reformulation(query, schema)
            assert executor.run(scq).answer() == evaluate(db, scq)


class TestPlannerBehaviour:
    def test_missing_constant_gives_empty(self, setup):
        _, _, store, _ = setup
        executor = Executor(store)
        query = ConjunctiveQuery([x], [TriplePattern(x, EX.nope, EX.alsonope)])
        result = executor.run(query)
        assert result.answer() == frozenset()

    def test_parse_limit_enforced(self, setup):
        graph, schema, store, _ = setup
        tiny = BackendProfile("tiny", max_query_atoms=2)
        executor = Executor(store, tiny)
        query = queries()[1]
        union = reformulate(query, schema)
        assert query_atom_total(union) > 2
        with pytest.raises(QueryTooLargeError):
            executor.run(union)

    def test_atom_total(self, setup):
        graph, schema, _, _ = setup
        query = queries()[1]
        assert query_atom_total(query) == 2
        union = reformulate(query, schema)
        assert query_atom_total(union) == union.atom_count()

    def test_estimated_cost_positive(self, setup):
        _, schema, store, _ = setup
        executor = Executor(store)
        assert executor.estimated_cost(queries()[1]) > 0

    def test_cardinalities_recorded(self, setup):
        _, _, store, _ = setup
        executor = Executor(store)
        result = executor.run(queries()[0])
        cards = result.node_cardinalities()
        assert all(actual is not None for _, _, actual in cards)
        assert result.max_intermediate_rows() >= result.row_count

    def test_projection_emits_constants(self, setup):
        _, _, store, _ = setup
        executor = Executor(store)
        query = ConjunctiveQuery(
            [x, EX.Book], [TriplePattern(x, RDF_TYPE, EX.Book)]
        )
        answer = executor.run(query).answer()
        assert all(row[1] == EX.Book for row in answer)

    def test_empty_store(self):
        executor = Executor(TripleStore())
        query = ConjunctiveQuery([x], [TriplePattern(x, EX.p, y)])
        assert executor.run(query).answer() == frozenset()


class TestJoinAlgorithms:
    """All three join implementations must agree row-for-row."""

    def test_join_algorithms_agree(self, setup):
        _, schema, store, _ = setup
        query = queries()[3]
        answers = {
            backend.name: Executor(store, backend).run(query).answer()
            for backend in (HASH_BACKEND, MERGE_BACKEND, LOOP_BACKEND)
        }
        assert len(set(answers.values())) == 1

    def test_cross_product_join(self, setup):
        _, _, store, _ = setup
        query = ConjunctiveQuery(
            [x, y],
            [
                TriplePattern(x, RDF_TYPE, EX.Novel),
                TriplePattern(y, EX.knows, z),
            ],
        )
        for backend in DEFAULT_BACKENDS:
            result = Executor(store, backend).run(query)
            assert result.answer() == frozenset({(EX.b1, EX.alice)})
