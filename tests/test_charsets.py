"""Unit and property tests for characteristic sets."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.query import ConjunctiveQuery, TriplePattern, Variable
from repro.rdf import Graph, Namespace, Triple
from repro.storage import TripleStore
from repro.storage.charsets import CharacteristicSets

EX = Namespace("http://example.org/")
s, o1, o2 = Variable("s"), Variable("o1"), Variable("o2")


def store_of(triples):
    return TripleStore.from_graph(Graph(triples))


class TestConstruction:
    def test_grouping(self):
        store = store_of(
            [
                Triple(EX.a, EX.p, EX.x),
                Triple(EX.a, EX.q, EX.y),
                Triple(EX.b, EX.p, EX.z),
                Triple(EX.c, EX.p, EX.w),
            ]
        )
        charsets = CharacteristicSets(store)
        assert charsets.set_count == 2
        p, q = store.term_id(EX.p), store.term_id(EX.q)
        assert charsets.counts[frozenset({p, q})] == 1
        assert charsets.counts[frozenset({p})] == 2

    def test_multiplicity(self):
        store = store_of(
            [
                Triple(EX.a, EX.p, EX.x),
                Triple(EX.a, EX.p, EX.y),
                Triple(EX.b, EX.p, EX.z),
            ]
        )
        charsets = CharacteristicSets(store)
        p = store.term_id(EX.p)
        # One subject has 2 p-objects, the other has 1 → per-set means.
        sets = sorted(charsets.counts)
        assert charsets.multiplicity(frozenset({p}), p) == pytest.approx(1.5)


class TestStarEstimation:
    def triples(self):
        return [
            Triple(EX.a, EX.p, EX.x),
            Triple(EX.a, EX.p, EX.y),
            Triple(EX.a, EX.q, EX.z),
            Triple(EX.b, EX.p, EX.w),
            Triple(EX.b, EX.q, EX.v),
            Triple(EX.c, EX.p, EX.u),
        ]

    def test_subject_count_exact(self):
        store = store_of(self.triples())
        charsets = CharacteristicSets(store)
        p, q = store.term_id(EX.p), store.term_id(EX.q)
        assert charsets.star_subject_count([p, q]) == 2
        assert charsets.star_subject_count([p]) == 3

    def test_star_rows_exact(self):
        from repro.query import evaluate_cq

        store = store_of(self.triples())
        graph = Graph(self.triples())
        charsets = CharacteristicSets(store)
        p, q = store.term_id(EX.p), store.term_id(EX.q)
        query = ConjunctiveQuery(
            [s, o1, o2],
            [TriplePattern(s, EX.p, o1), TriplePattern(s, EX.q, o2)],
        )
        actual = len(evaluate_cq(graph, query))
        assert charsets.estimate_star_rows([p, q]) == pytest.approx(actual)

    def test_star_detection(self):
        store = store_of(self.triples())
        charsets = CharacteristicSets(store)
        star = ConjunctiveQuery(
            [s], [TriplePattern(s, EX.p, o1), TriplePattern(s, EX.q, o2)]
        )
        assert charsets.star_properties(star) is not None
        chain = ConjunctiveQuery(
            [s], [TriplePattern(s, EX.p, o1), TriplePattern(o1, EX.q, o2)]
        )
        assert charsets.star_properties(chain) is None
        shared_object = ConjunctiveQuery(
            [s], [TriplePattern(s, EX.p, o1), TriplePattern(s, EX.q, o1)]
        )
        assert charsets.star_properties(shared_object) is None

    def test_missing_property(self):
        store = store_of(self.triples())
        charsets = CharacteristicSets(store)
        star = ConjunctiveQuery(
            [s], [TriplePattern(s, EX.nope, o1)]
        )
        assert charsets.star_properties(star) is None


def _star_query_and_actual(graph, store, star_props):
    from repro.query import evaluate_cq

    ids = [store.term_id(prop) for prop in star_props]
    if any(term_id is None for term_id in ids):
        return None, None
    object_vars = [Variable("v%d" % index) for index in range(len(star_props))]
    query = ConjunctiveQuery(
        [s] + object_vars,
        [
            TriplePattern(s, prop, var)
            for prop, var in zip(star_props, object_vars)
        ],
    )
    return ids, len(evaluate_cq(graph, query))


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data())
def test_star_count_exact_and_estimate_exact_without_repeats(data):
    """The subject count is always exact; the row estimate is exact
    when every property occurs at most once per subject (here: unique
    (subject, property) pairs by construction)."""
    subjects = [EX.term("s%d" % index) for index in range(4)]
    objects = [EX.term("o%d" % index) for index in range(3)]
    properties = [EX.term("p%d" % index) for index in range(3)]
    pairs = data.draw(
        st.lists(
            st.tuples(st.sampled_from(subjects), st.sampled_from(properties)),
            max_size=10,
            unique=True,
        )
    )
    triples = [
        Triple(subject, prop, data.draw(st.sampled_from(objects)))
        for subject, prop in pairs
    ]
    graph = Graph(triples)
    store = TripleStore.from_graph(graph)
    charsets = CharacteristicSets(store)
    star_props = data.draw(
        st.lists(st.sampled_from(properties), min_size=1, max_size=3,
                 unique=True)
    )
    ids, actual = _star_query_and_actual(graph, store, star_props)
    if ids is None:
        return
    assert charsets.estimate_star_rows(ids) == pytest.approx(actual)
    # Subject count: compare against brute force.
    wanted = set(star_props)
    brute = sum(
        1
        for subject in subjects
        if wanted <= {t.property for t in graph.match(subject=subject)}
    )
    assert charsets.star_subject_count(ids) == brute


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data())
def test_star_estimate_bounded_with_repeats(data):
    """With repeated (subject, property) pairs the estimate may deviate
    (mean-multiplicity aggregation), but never by more than the spread
    of multiplicities: it stays positive iff the actual is, and within
    a small factor on these tiny instances."""
    subjects = [EX.term("s%d" % index) for index in range(3)]
    objects = [EX.term("o%d" % index) for index in range(3)]
    properties = [EX.term("p%d" % index) for index in range(2)]
    triples = data.draw(
        st.lists(
            st.builds(
                Triple,
                st.sampled_from(subjects),
                st.sampled_from(properties),
                st.sampled_from(objects),
            ),
            max_size=12,
        )
    )
    graph = Graph(triples)
    store = TripleStore.from_graph(graph)
    charsets = CharacteristicSets(store)
    star_props = data.draw(
        st.lists(st.sampled_from(properties), min_size=1, max_size=2,
                 unique=True)
    )
    ids, actual = _star_query_and_actual(graph, store, star_props)
    if ids is None:
        return
    estimate = charsets.estimate_star_rows(ids)
    assert (estimate > 0) == (actual > 0)
    if actual:
        assert actual / 4 <= estimate <= actual * 4