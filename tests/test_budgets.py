"""Execution budgets end to end: executor guards, structured
BudgetExceeded diagnostics, and the optimizer's cover fallback.

The adversarial scenario mirrors the paper's Example 1 in miniature: a
query ``?x a C0 . ?x p ?y`` over a schema where C0 has many subclasses
and the data holds many typed instances but almost no ``p`` edges.  The
SCQ (per-atom cover) materializes the full union of type alternatives
before joining — thousands of intermediate rows for a one-row answer —
while a merged cover pushes the selective ``p`` atom into each disjunct
and stays tiny.  A row budget between the two separates them
deterministically: REF_SCQ alone trips the budget, and the fallback
path answers completely through a cheaper cover.
"""

import pytest

from repro import BudgetExceeded, ExecutionBudget, QueryAnswerer, Strategy
from repro.cache import QueryCache
from repro.federation import Endpoint, FederatedAnswerer
from repro.query import ConjunctiveQuery, TriplePattern, Variable, evaluate_cq
from repro.rdf import Graph, Namespace, RDF_TYPE, Triple
from repro.resilience import FakeClock
from repro.saturation import saturate
from repro.schema import Constraint, Schema
from repro.storage import TripleStore
from repro.storage.executor import Executor

EX = Namespace("http://example.org/")
x, y, z, w = Variable("x"), Variable("y"), Variable("z"), Variable("w")

SUBCLASSES = 20
PER_CLASS = 50


@pytest.fixture(scope="module")
def adversarial():
    """The blowup dataset: 20 subclasses of C0 with 50 instances each
    (1000 type facts), and a single selective ``p`` edge."""
    schema = Schema(
        [
            Constraint.subclass(EX.term("C%d" % i), EX.C0)
            for i in range(1, SUBCLASSES + 1)
        ]
    )
    graph = Graph()
    for class_index in range(1, SUBCLASSES + 1):
        for instance in range(PER_CLASS):
            graph.add(
                Triple(
                    EX.term("i%d_%d" % (class_index, instance)),
                    RDF_TYPE,
                    EX.term("C%d" % class_index),
                )
            )
    graph.add(Triple(EX.i1_0, EX.p, EX.o0))
    query = ConjunctiveQuery(
        [x, y], [TriplePattern(x, RDF_TYPE, EX.C0), TriplePattern(x, EX.p, y)]
    )
    return graph, schema, query


class TestAdversarialScqBudget:
    ROW_BUDGET = 1500  # between the merged cover's cost and the SCQ's

    def test_scq_without_budget_answers(self, adversarial):
        graph, schema, query = adversarial
        answerer = QueryAnswerer(graph, schema)
        report = answerer.answer(query, Strategy.REF_SCQ)
        assert report.answer == frozenset({(EX.i1_0, EX.o0)})
        # The blowup is real: the type-atom fragment materializes the
        # full union of alternatives (1000 rows) for a one-row answer,
        # so the *cumulative* rows cross the budget used below.
        assert (
            report.execution.max_intermediate_rows()
            >= SUBCLASSES * PER_CLASS
        )

    def test_scq_trips_budget_with_diagnostics(self, adversarial):
        graph, schema, query = adversarial
        answerer = QueryAnswerer(graph, schema)
        with pytest.raises(BudgetExceeded) as info:
            answerer.answer(
                query,
                Strategy.REF_SCQ,
                row_budget=self.ROW_BUDGET,
                budget_fallbacks=0,
            )
        exc = info.value
        assert exc.kind == "rows"
        assert exc.rows_produced > self.ROW_BUDGET
        assert exc.row_budget == self.ROW_BUDGET
        assert exc.operator  # the diagnostics name the tripping operator
        assert exc.diagnostics()["row_budget"] == self.ROW_BUDGET

    def test_fallback_cover_answers_completely(self, adversarial):
        graph, schema, query = adversarial
        answerer = QueryAnswerer(graph, schema)
        report = answerer.answer(
            query,
            Strategy.REF_SCQ,
            row_budget=self.ROW_BUDGET,
            budget_fallbacks=3,
        )
        # The optimizer's next-best cover fit the budget AND produced
        # the complete answer — budgets refuse, they never truncate.
        assert report.answer == frozenset({(EX.i1_0, EX.o0)})
        assert report.details["budget_exceeded"]["kind"] == "rows"
        assert "budget_fallback_cover" in report.details
        assert report.details["budget_fallback_attempts"] >= 1

    def test_gcov_fits_the_budget_directly(self, adversarial):
        graph, schema, query = adversarial
        answerer = QueryAnswerer(graph, schema)
        report = answerer.answer(
            query, Strategy.REF_GCOV, row_budget=self.ROW_BUDGET
        )
        assert report.answer == frozenset({(EX.i1_0, EX.o0)})
        # The cost-chosen cover never needed the fallback machinery.
        assert "budget_fallback_cover" not in report.details

    def test_budget_exceeded_answers_never_cached(self, adversarial):
        graph, schema, query = adversarial
        cache = QueryCache()
        answerer = QueryAnswerer(graph, schema, cache=cache)
        with pytest.raises(BudgetExceeded):
            answerer.answer(
                query,
                Strategy.REF_SCQ,
                row_budget=self.ROW_BUDGET,
                budget_fallbacks=0,
            )
        # The failed run stored nothing in the answer tier: the next
        # call is a miss that recomputes the (correct) answer.
        report = answerer.answer(query, Strategy.REF_SCQ)
        assert report.details["cache"]["answer"] == "miss"
        assert report.answer == frozenset({(EX.i1_0, EX.o0)})


class TestAnswererBudgetValidation:
    def test_sqlite_engine_refuses_budgets(self, adversarial):
        graph, schema, query = adversarial
        answerer = QueryAnswerer(graph, schema, engine="sqlite")
        with pytest.raises(ValueError):
            answerer.answer(query, Strategy.REF_SCQ, row_budget=10)

    def test_datalog_refuses_budgets(self, adversarial):
        graph, schema, query = adversarial
        answerer = QueryAnswerer(graph, schema)
        with pytest.raises(ValueError):
            answerer.answer(query, Strategy.DATALOG, row_budget=10)

    def test_invalid_budget_values(self, adversarial):
        graph, schema, query = adversarial
        answerer = QueryAnswerer(graph, schema)
        with pytest.raises(ValueError):
            answerer.answer(query, Strategy.REF_SCQ, row_budget=0)
        with pytest.raises(ValueError):
            answerer.answer(query, Strategy.REF_SCQ, time_budget=-1.0)
        with pytest.raises(ValueError):
            answerer.answer(
                query, Strategy.REF_SCQ, row_budget=5, budget_fallbacks=-1
            )

    def test_budgeted_run_matches_unbudgeted(self, adversarial):
        graph, schema, query = adversarial
        answerer = QueryAnswerer(graph, schema)
        plain = answerer.answer(query, Strategy.REF_UCQ).answer
        roomy = answerer.answer(
            query, Strategy.REF_UCQ, row_budget=10 ** 9
        ).answer
        assert roomy == plain


class TestExecutorBudget:
    def _executor(self):
        graph = Graph(
            [Triple(EX.term("s%d" % i), EX.p, EX.term("o%d" % i))
             for i in range(30)]
            + [Triple(EX.term("s%d" % i), EX.q, EX.term("t%d" % i))
               for i in range(30)]
        )
        store = TripleStore.from_graph(graph)
        return Executor(store)

    def test_within_budget_runs_normally(self):
        executor = self._executor()
        query = ConjunctiveQuery([x, y], [TriplePattern(x, EX.p, y)])
        result = executor.run(query, budget=ExecutionBudget(max_rows=1000))
        assert result.row_count == 30

    def test_cross_product_trips_row_budget(self):
        executor = self._executor()
        # Disconnected atoms: a 30×30 cross product the budget refuses.
        query = ConjunctiveQuery(
            [x, z], [TriplePattern(x, EX.p, y), TriplePattern(z, EX.q, w)]
        )
        with pytest.raises(BudgetExceeded) as info:
            executor.run(query, budget=ExecutionBudget(max_rows=200))
        assert info.value.kind == "rows"

    def test_time_budget_on_injected_clock(self):
        executor = self._executor()
        # Every monotonic() read advances the fake clock: evaluation
        # "takes time" without any wall-clock sleep.
        clock = FakeClock(auto_advance=1.0)
        budget = ExecutionBudget(max_seconds=2.0, clock=clock)
        query = ConjunctiveQuery([x, y], [TriplePattern(x, EX.p, y)])
        with pytest.raises(BudgetExceeded) as info:
            executor.run(query, budget=budget)
        assert info.value.kind == "time"

    def test_budget_unused_when_none(self):
        executor = self._executor()
        query = ConjunctiveQuery([x, y], [TriplePattern(x, EX.p, y)])
        assert executor.run(query).row_count == 30


class TestFederatedBudget:
    def test_client_side_join_blowup_refused(self):
        left = Graph(
            [Triple(EX.term("a%d" % i), EX.p, EX.term("b%d" % i))
             for i in range(25)]
        )
        right = Graph(
            [Triple(EX.term("c%d" % i), EX.q, EX.term("d%d" % i))
             for i in range(25)]
        )
        federation = FederatedAnswerer(
            [Endpoint("l", left), Endpoint("r", right)],
            Schema([]),
            clock=FakeClock(),
        )
        query = ConjunctiveQuery(
            [x, z], [TriplePattern(x, EX.p, y), TriplePattern(z, EX.q, w)]
        )
        with pytest.raises(BudgetExceeded):
            federation.answer(query, budget=ExecutionBudget(max_rows=100))
        # With room, the same query completes (625 product rows).
        answer = federation.answer(
            query, budget=ExecutionBudget(max_rows=10 ** 6)
        )
        assert len(answer.rows) == 625

    def test_budgeted_federated_answer_matches_unbudgeted(self, adversarial):
        graph, schema, query = adversarial
        shards = [Graph() for _ in range(3)]
        for index, triple in enumerate(sorted(graph.data_triples())):
            shards[index % 3].add(triple)
        endpoints = [
            Endpoint("s%d" % i, shard) for i, shard in enumerate(shards)
        ]
        merged = Schema.from_graph(graph)
        for constraint in schema.direct_constraints():
            merged.add(constraint)
        federation = FederatedAnswerer(endpoints, merged, clock=FakeClock())
        plain = federation.answer(query).rows
        budgeted = federation.answer(
            query, budget=ExecutionBudget(max_rows=10 ** 9)
        ).rows
        assert budgeted == plain
        full = graph.copy()
        full.add_all(merged.to_triples())
        assert plain == evaluate_cq(saturate(full), query)
