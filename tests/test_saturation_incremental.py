"""Unit tests for incremental saturation maintenance (E7's machinery)."""

import pytest

from repro.rdf import Graph, Namespace, RDF_TYPE, Triple
from repro.saturation import IncrementalSaturator, saturate
from repro.schema import Constraint, Schema

EX = Namespace("http://example.org/")


def employee_schema():
    return Schema(
        [
            Constraint.subclass(EX.Manager, EX.Employee),
            Constraint.subclass(EX.Employee, EX.Person),
            Constraint.subproperty(EX.manages, EX.worksWith),
            Constraint.domain(EX.manages, EX.Manager),
            Constraint.range(EX.manages, EX.Employee),
        ]
    )


class TestInsert:
    def test_insert_derives(self):
        sat = IncrementalSaturator(employee_schema())
        sat.insert(Triple(EX.ann, EX.manages, EX.bob))
        graph = sat.saturated()
        assert Triple(EX.ann, EX.worksWith, EX.bob) in graph
        assert Triple(EX.ann, RDF_TYPE, EX.Manager) in graph
        assert Triple(EX.ann, RDF_TYPE, EX.Person) in graph
        assert Triple(EX.bob, RDF_TYPE, EX.Employee) in graph

    def test_insert_matches_full_saturation(self):
        schema = employee_schema()
        data = [
            Triple(EX.ann, EX.manages, EX.bob),
            Triple(EX.bob, RDF_TYPE, EX.Manager),
            Triple(EX.carol, EX.worksWith, EX.ann),
        ]
        incremental = IncrementalSaturator(schema, data)
        full = saturate(Graph(data), schema)
        assert set(incremental.saturated()) == set(full)

    def test_duplicate_insert_noop(self):
        sat = IncrementalSaturator(employee_schema())
        triple = Triple(EX.ann, EX.manages, EX.bob)
        sat.insert(triple)
        size = len(sat)
        sat.insert(triple)
        assert len(sat) == size

    def test_schema_triple_insert_rejected(self):
        sat = IncrementalSaturator(employee_schema())
        with pytest.raises(ValueError):
            sat.insert(Constraint.subclass(EX.A, EX.B).to_triple())


class TestDelete:
    def test_delete_evicts_unsupported(self):
        sat = IncrementalSaturator(employee_schema())
        triple = Triple(EX.ann, EX.manages, EX.bob)
        sat.insert(triple)
        sat.delete(triple)
        assert Triple(EX.ann, RDF_TYPE, EX.Manager) not in sat.saturated()
        assert len(sat.saturated()) == len(
            list(employee_schema().entailed_triples())
        )

    def test_delete_keeps_multiply_supported(self):
        sat = IncrementalSaturator(employee_schema())
        first = Triple(EX.ann, EX.manages, EX.bob)
        second = Triple(EX.ann, EX.manages, EX.carol)
        sat.insert(first)
        sat.insert(second)
        sat.delete(first)
        # ann is still a Manager thanks to the second triple.
        assert Triple(EX.ann, RDF_TYPE, EX.Manager) in sat.saturated()

    def test_delete_keeps_explicit_derived_duplicates(self):
        sat = IncrementalSaturator(employee_schema())
        sat.insert(Triple(EX.ann, EX.manages, EX.bob))
        # worksWith is both derivable and explicitly inserted.
        explicit = Triple(EX.ann, EX.worksWith, EX.bob)
        sat.insert(explicit)
        sat.delete(Triple(EX.ann, EX.manages, EX.bob))
        assert explicit in sat.saturated()
        sat.delete(explicit)
        assert explicit not in sat.saturated()

    def test_delete_absent_noop(self):
        sat = IncrementalSaturator(employee_schema())
        sat.delete(Triple(EX.ann, EX.manages, EX.bob))
        assert len(sat.explicit_triples()) == 0

    def test_random_insert_delete_matches_full(self):
        import random

        rng = random.Random(5)
        schema = employee_schema()
        people = [EX.term("p%d" % index) for index in range(6)]
        pool = [
            Triple(rng.choice(people), EX.manages, rng.choice(people))
            for _ in range(20)
        ] + [
            Triple(rng.choice(people), RDF_TYPE, EX.Manager) for _ in range(5)
        ]
        sat = IncrementalSaturator(schema)
        live = set()
        for _ in range(60):
            triple = rng.choice(pool)
            if triple in live and rng.random() < 0.5:
                sat.delete(triple)
                live.discard(triple)
            else:
                sat.insert(triple)
                live.add(triple)
            expected = saturate(Graph(live), schema)
            assert set(sat.saturated()) == set(expected)


class TestSchemaUpdates:
    def test_add_constraint_resaturates(self):
        sat = IncrementalSaturator(Schema())
        sat.insert(Triple(EX.ann, RDF_TYPE, EX.Manager))
        assert Triple(EX.ann, RDF_TYPE, EX.Employee) not in sat.saturated()
        sat.add_constraint(Constraint.subclass(EX.Manager, EX.Employee))
        assert Triple(EX.ann, RDF_TYPE, EX.Employee) in sat.saturated()

    def test_remove_constraint_resaturates(self):
        schema = Schema([Constraint.subclass(EX.Manager, EX.Employee)])
        sat = IncrementalSaturator(schema)
        sat.insert(Triple(EX.ann, RDF_TYPE, EX.Manager))
        sat.remove_constraint(Constraint.subclass(EX.Manager, EX.Employee))
        assert Triple(EX.ann, RDF_TYPE, EX.Employee) not in sat.saturated()

    def test_derived_count(self):
        sat = IncrementalSaturator(employee_schema())
        sat.insert(Triple(EX.ann, EX.manages, EX.bob))
        # worksWith, Manager, Employee(ann), Person(ann), Employee(bob),
        # Person(bob)
        assert sat.derived_count == 6
