"""Property-based tests (hypothesis): the library's core invariants on
randomly generated graphs, schemas and queries in the DB fragment.

The headline property is the paper's correctness contract,

    q(G∞) = UCQ_ref(db) = SCQ_ref(db) = JUCQ_ref(db, any cover)
          = Dat(q, G)    = relational executor on any backend,

plus the algebraic laws of saturation (idempotence, monotonicity,
naive/fast agreement) and incremental-maintenance exactness.
"""

from __future__ import annotations

import random as random_module

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.datalog import answer_query as datalog_answer
from repro.query import (
    ConjunctiveQuery,
    Cover,
    TriplePattern,
    Variable,
    evaluate,
    evaluate_cq,
)
from repro.rdf import Graph, Literal, Namespace, RDF_TYPE, Triple
from repro.reformulation import reformulate, scq_reformulation, jucq_for_cover
from repro.reformulation.atoms import database_graph
from repro.saturation import IncrementalSaturator, saturate, saturate_naive
from repro.schema import Constraint, Schema
from repro.storage import DEFAULT_BACKENDS, Executor, TripleStore

EX = Namespace("http://example.org/")

CLASSES = [EX.term("C%d" % index) for index in range(5)]
PROPERTIES = [EX.term("p%d" % index) for index in range(4)]
INDIVIDUALS = [EX.term("i%d" % index) for index in range(6)]
LITERALS = [Literal("l%d" % index) for index in range(2)]


# ---------------------------------------------------------------------------
# Strategies

constraint_st = st.one_of(
    st.builds(
        Constraint.subclass,
        st.sampled_from(CLASSES),
        st.sampled_from(CLASSES),
    ),
    st.builds(
        Constraint.subproperty,
        st.sampled_from(PROPERTIES),
        st.sampled_from(PROPERTIES),
    ),
    st.builds(
        Constraint.domain,
        st.sampled_from(PROPERTIES),
        st.sampled_from(CLASSES),
    ),
    st.builds(
        Constraint.range,
        st.sampled_from(PROPERTIES),
        st.sampled_from(CLASSES),
    ),
)

schema_st = st.lists(constraint_st, max_size=8).map(Schema)

data_triple_st = st.one_of(
    st.builds(
        Triple,
        st.sampled_from(INDIVIDUALS),
        st.just(RDF_TYPE),
        st.sampled_from(CLASSES),
    ),
    st.builds(
        Triple,
        st.sampled_from(INDIVIDUALS),
        st.sampled_from(PROPERTIES),
        st.sampled_from(INDIVIDUALS + LITERALS),
    ),
)

graph_st = st.lists(data_triple_st, max_size=12).map(Graph)

_VARS = [Variable(name) for name in "abcd"]


@st.composite
def query_st(draw):
    """A 1–3 atom CQ over the fixed vocabulary, possibly with variables
    in class/property position, head = all its variables."""
    atom_count = draw(st.integers(1, 3))
    atoms = []
    for _ in range(atom_count):
        subject = draw(st.sampled_from(_VARS + INDIVIDUALS[:2]))
        form = draw(st.integers(0, 3))
        if form == 0:
            atoms.append(
                TriplePattern(
                    subject, RDF_TYPE, draw(st.sampled_from(CLASSES))
                )
            )
        elif form == 1:
            atoms.append(
                TriplePattern(subject, RDF_TYPE, draw(st.sampled_from(_VARS)))
            )
        elif form == 2:
            atoms.append(
                TriplePattern(
                    subject,
                    draw(st.sampled_from(PROPERTIES)),
                    draw(st.sampled_from(_VARS + INDIVIDUALS[:2] + LITERALS[:1])),
                )
            )
        else:
            atoms.append(
                TriplePattern(
                    subject,
                    draw(st.sampled_from(_VARS)),
                    draw(st.sampled_from(_VARS + INDIVIDUALS[:2])),
                )
            )
    variables = sorted(
        {v for atom in atoms for v in atom.variables()},
        key=lambda v: v.name,
    )
    if not variables:
        # Keep at least a boolean query meaningful.
        return ConjunctiveQuery([], atoms)
    return ConjunctiveQuery(variables, atoms)


@st.composite
def cover_st(draw, query):
    atom_count = len(query.atoms)
    assignment = [draw(st.integers(0, 2)) for _ in range(atom_count)]
    fragments = {}
    for index, block in enumerate(assignment):
        fragments.setdefault(block, []).append(index)
    specs = list(fragments.values())
    if draw(st.booleans()):
        specs.append([draw(st.integers(0, atom_count - 1))])
    return Cover(query, specs)


common_settings = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# ---------------------------------------------------------------------------
# Saturation laws


@common_settings
@given(graph=graph_st, schema=schema_st)
def test_fast_saturation_equals_naive(graph, schema):
    combined = graph.copy()
    combined.add_all(schema.to_triples())
    assert set(saturate(combined)) == set(saturate_naive(combined))


@common_settings
@given(graph=graph_st, schema=schema_st)
def test_saturation_idempotent(graph, schema):
    once = saturate(graph, schema)
    assert set(saturate(once)) == set(once)


@common_settings
@given(graph=graph_st, schema=schema_st, extra=data_triple_st)
def test_saturation_monotone(graph, schema, extra):
    bigger = graph.copy()
    bigger.add(extra)
    assert set(saturate(graph, schema)) <= set(saturate(bigger, schema))


@common_settings
@given(graph=graph_st, schema=schema_st)
def test_incremental_insert_matches_batch(graph, schema):
    incremental = IncrementalSaturator(schema)
    for triple in graph.data_triples():
        incremental.insert(triple)
    expected = saturate(Graph(graph.data_triples()), schema)
    assert set(incremental.saturated()) == set(expected)


@common_settings
@given(
    graph=graph_st,
    schema=schema_st,
    seed=st.integers(0, 1000),
)
def test_incremental_delete_matches_batch(graph, schema, seed):
    triples = list(graph.data_triples())
    incremental = IncrementalSaturator(schema, triples)
    rng = random_module.Random(seed)
    rng.shuffle(triples)
    removed = triples[: len(triples) // 2]
    for triple in removed:
        incremental.delete(triple)
    remaining = [t for t in triples if t not in removed]
    expected = saturate(Graph(remaining), schema)
    assert set(incremental.saturated()) == set(expected)


# ---------------------------------------------------------------------------
# The correctness contract


@common_settings
@given(graph=graph_st, schema=schema_st, query=query_st())
def test_ucq_reformulation_equals_saturation(graph, schema, query):
    saturated = saturate(graph, schema)
    expected = evaluate_cq(saturated, query)
    db = database_graph(graph, schema)
    union = reformulate(query, schema)
    assert evaluate(db, union) == expected


@common_settings
@given(graph=graph_st, schema=schema_st, query=query_st())
def test_scq_reformulation_equals_saturation(graph, schema, query):
    saturated = saturate(graph, schema)
    expected = evaluate_cq(saturated, query)
    db = database_graph(graph, schema)
    assert evaluate(db, scq_reformulation(query, schema)) == expected


@common_settings
@given(graph=graph_st, schema=schema_st, data=st.data())
def test_arbitrary_cover_equals_saturation(graph, schema, data):
    query = data.draw(query_st())
    cover = data.draw(cover_st(query))
    saturated = saturate(graph, schema)
    expected = evaluate_cq(saturated, query)
    db = database_graph(graph, schema)
    assert evaluate(db, jucq_for_cover(cover, schema)) == expected


@common_settings
@given(graph=graph_st, schema=schema_st, query=query_st())
def test_datalog_equals_saturation(graph, schema, query):
    saturated = saturate(graph, schema)
    expected = evaluate_cq(saturated, query)
    assert datalog_answer(graph, schema, query) == expected


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(graph=graph_st, schema=schema_st, query=query_st())
def test_executor_matches_reference_on_all_backends(graph, schema, query):
    db = database_graph(graph, schema)
    store = TripleStore.from_graph(graph, schema)
    union = reformulate(query, schema)
    expected = evaluate(db, union)
    for backend in DEFAULT_BACKENDS:
        assert Executor(store, backend).run(union).answer() == expected


# ---------------------------------------------------------------------------
# Reformulation size accounting


@common_settings
@given(schema=schema_st, query=query_st())
def test_ucq_size_matches_materialization(schema, query):
    from repro.reformulation import ucq_size

    assert ucq_size(query, schema) == len(reformulate(query, schema))


# ---------------------------------------------------------------------------
# Incomplete strategies are sound (never invent answers)


@common_settings
@given(graph=graph_st, schema=schema_st, query=query_st())
def test_incomplete_policies_are_sound(graph, schema, query):
    from repro.reformulation import ALLEGROGRAPH_STYLE, VIRTUOSO_STYLE

    db = database_graph(graph, schema)
    complete = evaluate(db, reformulate(query, schema))
    for policy in (VIRTUOSO_STYLE, ALLEGROGRAPH_STYLE):
        partial = evaluate(db, reformulate(query, schema, policy))
        assert partial <= complete


# ---------------------------------------------------------------------------
# Federation equals centralized answering


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    graph=graph_st,
    schema=schema_st,
    query=query_st(),
    parts=st.integers(1, 3),
)
def test_federation_matches_centralized(graph, schema, query, parts):
    from repro.federation import Endpoint, FederatedAnswerer
    from repro.rdf.namespaces import SCHEMA_PROPERTIES

    # The federated client handles data-level queries; patterns with an
    # unbound property can match endpoint-local schema triples the
    # client would answer from its own (possibly richer) closure, so
    # restrict the property positions this test exercises.
    for atom in query.atoms:
        prop = atom.property
        from repro.query import Variable as V

        if isinstance(prop, V):
            return
    shards = [Graph() for _ in range(parts)]
    for index, triple in enumerate(sorted(graph.data_triples())):
        shards[index % parts].add(triple)
    endpoints = [
        Endpoint("s%d" % index, shard) for index, shard in enumerate(shards)
    ]
    merged_schema = Schema.from_graph(graph)
    for constraint in schema.direct_constraints():
        merged_schema.add(constraint)
    federation = FederatedAnswerer(endpoints, merged_schema)

    full = Graph(graph.data_triples())
    expected = evaluate_cq(saturate(full, merged_schema), query)
    assert federation.answer(query).rows == expected
