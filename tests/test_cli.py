"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


class TestStats:
    def test_books_stats(self, capsys):
        code, out = run_cli(capsys, "stats", "--dataset", "books")
        assert code == 0
        assert "triples" in out
        assert "property" in out

    def test_lubm_stats(self, capsys):
        code, out = run_cli(
            capsys, "stats", "--dataset", "lubm", "--universities", "1",
            "--seed", "3",
        )
        assert code == 0
        assert "takesCourse" in out


class TestAnswer:
    def test_single_strategy(self, capsys):
        code, out = run_cli(
            capsys, "answer", "--dataset", "lubm", "--query", "Q1",
            "--strategy", "ref-scq", "--seed", "3",
        )
        assert code == 0
        assert "ref-scq" in out

    def test_all_strategies_books(self, capsys):
        code, out = run_cli(capsys, "answer", "--dataset", "books")
        assert code == 0
        assert "sat" in out
        assert "ref-gcov" in out
        assert "datalog" in out

    def test_inline_sparql(self, capsys):
        code, out = run_cli(
            capsys, "answer", "--dataset", "lubm", "--seed", "3",
            "--strategy", "sat", "--show-answers",
            "--sparql",
            "PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#> "
            "SELECT ?x WHERE { ?x rdf:type ub:Student }",
        )
        assert code == 0
        assert "sat" in out

    def test_ucq_failure_reported_not_raised(self, capsys):
        code, out = run_cli(
            capsys, "answer", "--dataset", "lubm", "--query", "Ex1",
            "--strategy", "ref-ucq", "--seed", "3",
        )
        assert code == 0
        assert "FAIL" in out

    def test_unknown_query_errors(self, capsys):
        with pytest.raises(SystemExit):
            run_cli(capsys, "answer", "--dataset", "lubm", "--query", "Q99")


class TestExplain:
    def test_explain_plan(self, capsys):
        code, out = run_cli(
            capsys, "explain", "--dataset", "lubm", "--query", "Q1",
            "--strategy", "ref-scq", "--seed", "3",
        )
        assert code == 0
        assert "Scan(" in out
        assert "actual=" in out

    def test_explain_interval_encoding(self, capsys):
        code, out = run_cli(
            capsys, "explain", "--dataset", "books", "--query", "B1",
            "--strategy", "ref-gcov", "--interval-encoding",
        )
        assert code == 0
        assert "interval atoms:" in out
        assert "collapsed" in out
        # The plan shows the range scan with its interval annotation.
        assert "[#" in out
        assert "collapses" in out


class TestIntervalAnswer:
    def test_answer_interval_metrics(self, capsys):
        code, out = run_cli(
            capsys, "answer", "--dataset", "books", "--query", "B1",
            "--strategy", "ref-scq", "--engine", "columnar",
            "--interval-encoding", "--show-metrics",
        )
        assert code == 0
        assert "interval atoms:" in out
        assert "union branch" in out

    def test_answer_interval_matches_classic(self, capsys):
        code, classic = run_cli(
            capsys, "answer", "--dataset", "books", "--query", "B1",
            "--strategy", "ref-ucq", "--show-answers",
        )
        assert code == 0
        code, encoded = run_cli(
            capsys, "answer", "--dataset", "books", "--query", "B1",
            "--strategy", "ref-ucq", "--show-answers",
            "--interval-encoding",
        )
        assert code == 0
        assert "J. L. Borges" in encoded
        # Identical answer rows, interval encoding or not.
        extract = lambda out: [
            line for line in out.splitlines() if line.startswith("    (")
        ]
        assert extract(encoded) == extract(classic)


class TestCovers:
    def test_cover_exploration(self, capsys):
        code, out = run_cli(
            capsys, "covers", "--dataset", "lubm", "--query", "Q1",
            "--seed", "3",
        )
        assert code == 0
        assert "GCov chose" in out
        assert "estimated cost" in out


class TestFileDataset:
    def test_ntriples_file(self, capsys, tmp_path):
        from repro.datasets import books_graph
        from repro.rdf import save_file

        path = str(tmp_path / "books.nt")
        save_file(books_graph(), path)
        code, out = run_cli(
            capsys, "stats", "--dataset", "file", "--file", path
        )
        assert code == 0
        assert "triples" in out

    def test_missing_file_argument(self, capsys):
        with pytest.raises(SystemExit):
            run_cli(capsys, "stats", "--dataset", "file")


class TestResilienceFlags:
    """The --timeout/--max-retries/--row-budget knobs and the federate
    subcommand (resilience layer satellites)."""

    def test_budgeted_answer_fails_cleanly(self, capsys):
        code, out = run_cli(
            capsys, "answer", "--dataset", "books",
            "--strategy", "ref-scq", "--row-budget", "2",
            "--max-retries", "1",
        )
        assert code == 0
        assert "FAIL" in out
        assert "budget" in out

    def test_roomy_budget_answers(self, capsys):
        code, out = run_cli(
            capsys, "answer", "--dataset", "books",
            "--strategy", "ref-gcov", "--row-budget", "100000",
            "--timeout", "60",
        )
        assert code == 0
        assert "ref-gcov" in out
        assert "FAIL" not in out

    @pytest.mark.parametrize("flag,value", [
        ("--row-budget", "0"),
        ("--row-budget", "-5"),
        ("--timeout", "0"),
        ("--timeout", "-1.5"),
        ("--max-retries", "0"),
        ("--max-retries", "-2"),
    ])
    def test_non_positive_values_rejected(self, capsys, flag, value):
        with pytest.raises(SystemExit):
            run_cli(
                capsys, "answer", "--dataset", "books", flag, value
            )
        err = capsys.readouterr().err
        assert "must be a positive" in err

    def test_federate_complete(self, capsys):
        code, out = run_cli(
            capsys, "federate", "--dataset", "books", "--endpoints", "3",
        )
        assert code == 0
        assert "COMPLETE" in out
        assert "shard-0" in out

    def test_federate_outage_partial_exit_code(self, capsys):
        code, out = run_cli(
            capsys, "federate", "--dataset", "books", "--outage", "1",
            "--breaker-threshold", "2",
        )
        assert code == 3  # partial answers are visible in the exit code
        assert "PARTIAL" in out
        assert "degraded" in out

    def test_federate_transient_chaos_recovers(self, capsys):
        code, out = run_cli(
            capsys, "federate", "--dataset", "books",
            "--transient-rate", "0.3", "--chaos-seed", "7",
            "--max-retries", "3",
        )
        assert code == 0
        assert "COMPLETE" in out

    def test_federate_rate_validation(self, capsys):
        with pytest.raises(SystemExit):
            run_cli(
                capsys, "federate", "--dataset", "books",
                "--transient-rate", "1.5",
            )
        assert "probability" in capsys.readouterr().err

    def test_federate_outage_index_validation(self, capsys):
        with pytest.raises(SystemExit):
            run_cli(
                capsys, "federate", "--dataset", "books",
                "--outage", "9",
            )


class TestDurabilityCommands:
    """The load / checkpoint / recover subcommands and their exit
    codes (0 ok, 4 recovered-truncated, 5 nothing-to-recover)."""

    def test_load_then_recover_verified(self, capsys, tmp_path):
        directory = str(tmp_path / "wal")
        code, out = run_cli(
            capsys, "load", "--dataset", "books", "--wal", directory,
            "--sync", "never",
        )
        assert code == 0
        assert "loaded" in out and "record(s)" in out
        code, out = run_cli(capsys, "recover", "--wal", directory, "--verify")
        assert code == 0
        assert "verified" in out

    def test_load_with_checkpoint_then_json_recover(self, capsys, tmp_path):
        import json

        directory = str(tmp_path / "wal")
        code, out = run_cli(
            capsys, "load", "--dataset", "books", "--wal", directory,
            "--sync", "never", "--checkpoint",
        )
        assert code == 0 and "checkpoint" in out
        code, out = run_cli(capsys, "recover", "--wal", directory, "--json")
        assert code == 0
        summary = json.loads(out)
        assert summary["checkpoint_sequence"] == 1
        assert summary["records_replayed"] == 0
        assert not summary["truncated"]

    def test_checkpoint_command(self, capsys, tmp_path):
        directory = str(tmp_path / "wal")
        run_cli(
            capsys, "load", "--dataset", "books", "--wal", directory,
            "--sync", "never",
        )
        code, out = run_cli(capsys, "checkpoint", "--wal", directory)
        assert code == 0
        assert "WAL rotated" in out

    def test_checkpoint_empty_directory_exit_5(self, capsys, tmp_path):
        code, out = run_cli(
            capsys, "checkpoint", "--wal", str(tmp_path / "nothing")
        )
        assert code == 5
        assert "nothing to checkpoint" in out

    def test_recover_empty_directory_exit_5(self, capsys, tmp_path):
        code, out = run_cli(
            capsys, "recover", "--wal", str(tmp_path / "nothing")
        )
        assert code == 5

    def test_recover_truncated_tail_exit_4_then_0(self, capsys, tmp_path):
        from repro.durability import FileSystem, recover, wal_path

        directory = str(tmp_path / "wal")
        run_cli(
            capsys, "load", "--dataset", "books", "--wal", directory,
            "--sync", "never",
        )
        probe = recover(directory)
        io = FileSystem()
        io.append(wal_path(directory, probe.wal_segment), b"\xff\xfegarbage")
        io.close_all()
        code, out = run_cli(capsys, "recover", "--wal", directory)
        assert code == 4
        assert "True" in out  # truncated flag in the report
        # The truncation is persisted: a second recovery is clean.
        code, _ = run_cli(capsys, "recover", "--wal", directory, "--verify")
        assert code == 0

    def test_read_only_recover_leaves_tail(self, capsys, tmp_path):
        from repro.durability import FileSystem, recover, wal_path

        directory = str(tmp_path / "wal")
        run_cli(
            capsys, "load", "--dataset", "books", "--wal", directory,
            "--sync", "never",
        )
        probe = recover(directory, truncate=False)
        io = FileSystem()
        io.append(wal_path(directory, probe.wal_segment), b"\xff\xfegarbage")
        io.close_all()
        code, _ = run_cli(
            capsys, "recover", "--wal", directory, "--read-only"
        )
        assert code == 4
        # Tail untouched: recovering again still sees the garbage.
        code, _ = run_cli(
            capsys, "recover", "--wal", directory, "--read-only"
        )
        assert code == 4

    def test_lenient_file_load(self, capsys, tmp_path):
        from repro.datasets import books_dataset
        from repro.rdf import save_file

        graph, _, _ = books_dataset()
        path = str(tmp_path / "messy.nt")
        save_file(graph, path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("this line is junk !\n")
        directory = str(tmp_path / "wal")
        code, out = run_cli(
            capsys, "load", "--dataset", "file", "--file", path,
            "--lenient", "--wal", directory, "--sync", "never",
        )
        assert code == 0
        assert "loaded" in out


class TestServe:
    def test_serve_completes_synthetic_workload(self, capsys):
        code, out = run_cli(
            capsys, "serve", "--dataset", "books",
            "--tenants", "alpha:3", "beta:1", "--requests", "6",
            "--queue-depth", "4",
        )
        assert code == 0
        assert "6 submitted, 6 completed" in out
        assert "alpha" in out and "beta" in out

    def test_serve_sheds_past_saturation(self, capsys):
        code, out = run_cli(
            capsys, "serve", "--dataset", "books", "--requests", "9",
            "--queue-depth", "1", "--capacity", "1",
        )
        assert code == 3
        assert "queue-full" in out
        assert "retry after" in out
        # The exit-3 table carries the back-off hint per tenant.
        assert "backoff s" in out

    def test_serve_json_rejections_carry_retry_after(self, capsys):
        import json

        code, out = run_cli(
            capsys, "serve", "--dataset", "books", "--requests", "9",
            "--queue-depth", "1", "--capacity", "1", "--json",
        )
        assert code == 3
        summary = json.loads(out)
        assert summary["rejections"]
        assert all("retry_after" in r for r in summary["rejections"])
        assert all(r["retry_after"] >= 0 for r in summary["rejections"])

    def test_serve_script_with_snapshot_pin(self, capsys, tmp_path):
        script = tmp_path / "session.txt"
        script.write_text(
            "pin s1\n"
            "submit alpha default\n"
            "drain\n"
            "insert <http://example.org/x> rdf:type <http://example.org/T>\n"
            "submit beta default snapshot=s1  # pinned read\n"
            "drain\n"
            "release s1\n"
        )
        code, out = run_cli(
            capsys, "serve", "--dataset", "books",
            "--script", str(script), "--json",
        )
        assert code == 0
        import json

        summary = json.loads(out)
        assert summary["completed"] == 2
        assert summary["snapshots"]["active_pins"] == 0

    def test_serve_is_deterministic(self, capsys):
        argv = [
            "serve", "--dataset", "books", "--requests", "7",
            "--queue-depth", "2", "--capacity", "1", "--json",
        ]
        first = run_cli(capsys, *argv)
        second = run_cli(capsys, *argv)
        assert first == second

    def test_serve_bad_tenant_spec_is_usage_error(self, capsys):
        code, _ = run_cli(
            capsys, "serve", "--dataset", "books",
            "--tenants", "a:1:2:3:4",
        )
        assert code == 2

    def test_serve_four_part_tenant_spec_sets_replica_bound(self, capsys):
        code, _ = run_cli(
            capsys, "serve", "--dataset", "books", "--requests", "2",
            "--tenants", "a:2:4:3",
        )
        assert code == 0


    def test_serve_json_includes_health_section(self, capsys):
        import json

        code, out = run_cli(
            capsys, "serve", "--dataset", "books", "--requests", "4",
            "--brownout", "--watchdog", "2.5", "--json",
        )
        assert code == 0
        health = json.loads(out)["health"]
        assert health["brownout"]["level_name"] == "normal"
        assert health["watchdog_seconds"] == 2.5
        assert health["monitor"]["stale_serves"] == 0
        for breaker in health["breakers"].values():
            assert breaker["state"] == "closed"
            assert breaker["cooldown_remaining"] == 0.0

    def test_serve_json_surfaces_rejections(self, capsys):
        import json

        code, out = run_cli(
            capsys, "serve", "--dataset", "books", "--requests", "9",
            "--queue-depth", "1", "--capacity", "1", "--json",
        )
        assert code == 3
        rejections = json.loads(out)["rejections"]
        assert rejections
        for rejection in rejections:
            assert rejection["reason"] == "queue-full"
            assert rejection["retry_after"] is not None
            assert rejection["tenant"]
            assert rejection["query"]

    def test_serve_stale_script_exits_degraded(self, capsys, tmp_path):
        script = tmp_path / "brownout.txt"
        script.write_text(
            "submit alpha default\n"
            "drain\n"
            "insert <http://example.org/noise> rdf:type "
            "<http://example.org/Noise>\n"
            "chaos arm\n"
            "degrade stale-serving\n"
            "submit alpha default\n"
            "drain\n"
            "chaos disarm\n"
        )
        code, out = run_cli(
            capsys, "serve", "--dataset", "books", "--script", str(script),
            "--brownout", "--chaos-transient", "1.0",
        )
        assert code == 6  # every request answered, one of them stale
        assert "health: level" in out
        assert "1 stale serve(s)" in out

    def test_serve_degrade_verb_requires_brownout(self, capsys, tmp_path):
        script = tmp_path / "degrade.txt"
        script.write_text("degrade stale-serving\n")
        code, _ = run_cli(
            capsys, "serve", "--dataset", "books", "--script", str(script),
        )
        assert code == 2

    def test_serve_script_deadline_expiry_all_expired(self, capsys, tmp_path):
        script = tmp_path / "expire.txt"
        script.write_text(
            "submit alpha default deadline=0.01\n"
            "advance 5\n"
            "drain\n"
        )
        code, out = run_cli(
            capsys, "serve", "--dataset", "books", "--script", str(script),
        )
        assert code == 1  # nothing completed at all
        assert "0 completed" in out


class TestReplicate:
    def test_default_workload_converges(self, capsys):
        code, out = run_cli(capsys, "replicate", "--writes", "6")
        assert code == 0
        assert "replication session" in out
        assert "n1" in out and "n3" in out

    def test_faulty_links_still_converge(self, capsys):
        code, out = run_cli(
            capsys, "replicate", "--writes", "10", "--drop-rate", "0.3",
            "--tear-rate", "0.2", "--duplicate-rate", "0.1",
            "--seed", "11",
        )
        assert code == 0
        assert "dropped" in out

    def test_script_failover_and_replstatus(self, capsys, tmp_path):
        import json

        script = tmp_path / "chaos.txt"
        script.write_text(
            "write 6\n"
            "kill-primary\n"
            "pump 5  # lease expires, a follower takes over\n"
            "write 3\n"
            "heal\n"
            "converge\n"
        )
        directory = str(tmp_path / "cluster")
        code, out = run_cli(
            capsys, "replicate", "--script", str(script),
            "--dir", directory, "--json",
        )
        assert code == 0
        status = json.loads(out)
        assert status["coordinator"]["epoch"] == 2
        assert status["consistency_problems"] == []
        code, out = run_cli(capsys, "replstatus", "--dir", directory)
        assert code == 0
        saved = json.loads(out)
        assert set(saved["nodes"]) == {"n1", "n2", "n3"}
        assert saved["links"]["n2"]["shipped"] >= 0

    def test_unconverged_cluster_exits_7(self, capsys, tmp_path):
        script = tmp_path / "bad.txt"
        script.write_text("write 4\npartition n3\nwrite 2\n")
        code, out = run_cli(
            capsys, "replicate", "--script", str(script),
            "--max-rounds", "5",
        )
        assert code == 7

    def test_replstatus_without_state_fails(self, capsys, tmp_path):
        code, _ = run_cli(capsys, "replstatus",
                          "--dir", str(tmp_path / "void"))
        assert code == 1

    def test_replicate_run_is_deterministic(self, capsys):
        argv = ["replicate", "--writes", "8", "--drop-rate", "0.2",
                "--seed", "3", "--json"]
        import json

        first = json.loads(run_cli(capsys, *argv)[1])
        second = json.loads(run_cli(capsys, *argv)[1])
        assert first["nodes"] == second["nodes"]
        assert first["links"] == second["links"]


class TestExitCodeTable:
    """The README's exit-code contract, one row per code per command
    family — the single place that pins all six codes at once."""

    @staticmethod
    def _stage_wal(capsys, tmp_path, torn=False):
        from repro.durability import FileSystem, recover, wal_path

        directory = str(tmp_path / "wal")
        code, _ = run_cli(
            capsys, "load", "--dataset", "books", "--wal", directory,
            "--sync", "never",
        )
        assert code == 0
        if torn:
            probe = recover(directory, truncate=False)
            io = FileSystem()
            io.append(wal_path(directory, probe.wal_segment), b"\xff\xfebad")
            io.close_all()
        return directory

    @staticmethod
    def _write_expiring_script(tmp_path):
        script = tmp_path / "all-expire.txt"
        script.write_text("submit alpha default deadline=0.01\nadvance 9\n")
        return str(script)

    @pytest.mark.parametrize(
        "expected,command,argv_builder",
        [
            # -- 0: success ------------------------------------------------
            (0, "answer", lambda c, t: [
                "answer", "--dataset", "books", "--strategy", "ref-gcov"]),
            (0, "federate", lambda c, t: [
                "federate", "--dataset", "books", "--endpoints", "2"]),
            (0, "recover", lambda c, t: [
                "recover", "--wal", TestExitCodeTable._stage_wal(c, t)]),
            (0, "serve", lambda c, t: [
                "serve", "--dataset", "books", "--requests", "4",
                "--queue-depth", "4"]),
            # -- 1: failure ------------------------------------------------
            (1, "why", lambda c, t: [
                "why", "--dataset", "books", "--triple",
                "<http://nowhere/x> rdf:type <http://nowhere/Y>"]),
            (1, "serve", lambda c, t: [
                "serve", "--dataset", "books", "--script",
                TestExitCodeTable._write_expiring_script(t)]),
            # -- 2: usage --------------------------------------------------
            (2, "answer", lambda c, t: [
                "answer", "--dataset", "books", "--strategy", "ref-jucq"]),
            (2, "serve", lambda c, t: [
                "serve", "--dataset", "books", "--tenants", "a:b:c:d"]),
            # -- 3: partial ------------------------------------------------
            (3, "federate", lambda c, t: [
                "federate", "--dataset", "books", "--endpoints", "2",
                "--outage", "0", "--max-retries", "1"]),
            (3, "serve", lambda c, t: [
                "serve", "--dataset", "books", "--requests", "9",
                "--queue-depth", "1", "--capacity", "1"]),
            # -- 4: recovered after truncation ------------------------------
            (4, "recover", lambda c, t: [
                "recover", "--wal",
                TestExitCodeTable._stage_wal(c, t, torn=True)]),
            # -- 5: nothing to recover --------------------------------------
            (5, "recover", lambda c, t: [
                "recover", "--wal", str(t / "empty")]),
            (5, "checkpoint", lambda c, t: [
                "checkpoint", "--wal", str(t / "empty")]),
        ],
    )
    def test_exit_code(self, capsys, tmp_path, expected, command, argv_builder):
        code, _ = run_cli(capsys, *argv_builder(capsys, tmp_path))
        assert code == expected
