"""The columnar engine's own legs: chunk algebra, sortedness
metadata, operator behavior, and budget/metric parity.

The three-engine answer equality lives in
``tests/test_engine_equivalence.py``; this file covers what is
specific to the columnar execution path — the places where it takes a
different physical route (merge unions, sorted distinct, index-range
scans) and must still behave like the other engines.
"""

from __future__ import annotations

import pytest

from repro import BudgetExceeded, ExecutionBudget
from repro.columnar.chunks import ColumnChunk, ColumnStream
from repro.columnar.engine import run_columnar
from repro.engine.ir import DistinctNode, ScanNode, UnionNode
from repro.query import ConjunctiveQuery, TriplePattern, Variable
from repro.rdf import Graph, Literal, Namespace, RDF_TYPE, Triple
from repro.storage import TripleStore
from repro.storage.executor import Executor

EX = Namespace("http://example.org/")
x, y, z = Variable("x"), Variable("y"), Variable("z")


def small_store() -> TripleStore:
    graph = Graph(
        [Triple(EX.term("s%d" % i), EX.p, EX.term("o%d" % (i % 4)))
         for i in range(12)]
        + [Triple(EX.term("s%d" % i), EX.q, Literal("l%d" % i))
           for i in range(6)]
        + [Triple(EX.term("s%d" % i), RDF_TYPE, EX.C) for i in range(8)]
        + [Triple(EX.loop, EX.p, EX.loop)]
    )
    return TripleStore.from_graph(graph)


# ---------------------------------------------------------------------------
# Chunk algebra


class TestChunks:
    def test_from_rows_round_trip(self):
        chunk = ColumnChunk.from_rows([(1, 2), (3, 4), (5, 6)], 2)
        assert chunk.arity == 2
        assert len(chunk) == 3
        assert list(chunk.rows()) == [(1, 2), (3, 4), (5, 6)]
        assert chunk.row(1) == (3, 4)

    def test_zero_arity_chunks_carry_row_count(self):
        chunk = ColumnChunk.from_rows([(), ()], 0)
        assert chunk.arity == 0
        assert len(chunk) == 2
        assert list(chunk.rows()) == [(), ()]

    def test_take_is_a_mask_selection(self):
        chunk = ColumnChunk.from_rows([(1, 10), (2, 20), (3, 30)], 2)
        taken = chunk.take([0, 2])
        assert list(taken.rows()) == [(1, 10), (3, 30)]

    def test_non_integer_values_fall_back_to_lists(self):
        chunk = ColumnChunk.from_rows([(EX.a,), (EX.b,)], 1)
        assert list(chunk.rows()) == [(EX.a,), (EX.b,)]


class TestSortednessMetadata:
    def test_prefix_orders(self):
        stream = ColumnStream(iter(()), order=(0, 1))
        assert stream.sorted_by(())
        assert stream.sorted_by((0,))
        assert stream.sorted_by((0, 1))
        assert not stream.sorted_by((1,))
        assert not stream.sorted_by((0, 2))

    def test_constants_are_transparent(self):
        stream = ColumnStream(iter(()), order=(0,), constants=frozenset({1}))
        assert stream.sorted_by((1, 0))
        assert stream.sorted_by((0, 1))
        assert stream.fully_sorted(2)
        assert not stream.fully_sorted(3)


# ---------------------------------------------------------------------------
# Operator behavior


class TestColumnarOperators:
    def test_scan_emits_sorted_runs(self):
        store = small_store()
        node = ScanNode(
            [("var", x), ("const", store.term_id(EX.p)), ("var", y)]
        )
        rows, _ = run_columnar(node, store)
        # POS run: rows arrive ordered by (object, subject).
        assert rows == sorted(rows, key=lambda r: (r[1], r[0]))

    def test_repeated_variable_scan_filters(self):
        store = small_store()
        node = ScanNode(
            [("var", x), ("const", store.term_id(EX.p)), ("var", x)]
        )
        rows, _ = run_columnar(node, store)
        loop = store.term_id(EX.loop)
        assert rows == [(loop,)]

    def test_all_constant_scan_yields_empty_row(self):
        store = small_store()
        node = ScanNode(
            [
                ("const", store.term_id(EX.loop)),
                ("const", store.term_id(EX.p)),
                ("const", store.term_id(EX.loop)),
            ]
        )
        rows, _ = run_columnar(node, store)
        assert rows == [()]

    def test_sorted_union_merges_and_dedups_streaming(self):
        store = small_store()
        p_id = store.term_id(EX.p)
        type_id = store.term_id(RDF_TYPE)
        scans = [
            ScanNode([("var", x), ("const", p_id), ("var", y)]),
            ScanNode([("var", x), ("const", p_id), ("var", y)]),
            ScanNode([("var", x), ("const", type_id), ("var", y)]),
        ]
        union = UnionNode(scans, scans[0].columns)
        rows, metrics = run_columnar(union, store)
        # Set semantics computed in the merge: output already distinct
        # and globally sorted (by the scans' shared (o, s) run order),
        # with zero buffered union state.
        assert len(rows) == len(set(rows))
        assert rows == sorted(rows, key=lambda r: (r[1], r[0]))
        union_entry = next(
            e for e in metrics.per_operator() if e.label.startswith("Union")
        )
        assert union_entry.peak_buffered_rows == 0

    def test_sorted_distinct_buffers_nothing(self):
        store = small_store()
        p_id = store.term_id(EX.p)
        scan = ScanNode([("var", x), ("const", p_id), ("var", y)])
        distinct = DistinctNode(scan)
        rows, metrics = run_columnar(distinct, store)
        assert len(rows) == len(set(rows))
        entry = next(
            e for e in metrics.per_operator() if e.label == "Distinct"
        )
        assert entry.peak_buffered_rows == 0
        assert entry.rows_out == len(rows)

    def test_unbound_property_patterns_agree_with_materialized(self):
        store = small_store()
        executor = Executor(store)
        for query in (
            ConjunctiveQuery([x, y, z], [TriplePattern(x, y, z)]),
            ConjunctiveQuery([y], [TriplePattern(EX.s1, y, z)]),
            ConjunctiveQuery([y], [TriplePattern(x, y, EX.o1)]),
            ConjunctiveQuery([y], [TriplePattern(EX.loop, y, EX.loop)]),
        ):
            rm = executor.run(query, engine="materialized")
            rc = executor.run(query, engine="columnar")
            assert rc.answer() == rm.answer(), query

    def test_literal_guard_matches_materialized(self):
        store = small_store()
        executor = Executor(store)
        query = ConjunctiveQuery([x, y], [TriplePattern(x, EX.q, y)])
        rm = executor.run(query, engine="materialized")
        rc = executor.run(query, engine="columnar")
        assert rc.answer() == rm.answer()
        assert all(isinstance(row[1], Literal) for row in rc.answer())


# ---------------------------------------------------------------------------
# Budgets, metrics, and result plumbing


class TestColumnarAccounting:
    def test_budget_charges_per_chunk(self):
        store = small_store()
        node = ScanNode(
            [("var", x), ("var", y), ("var", z)]
        )
        budget = ExecutionBudget(max_rows=4)
        with pytest.raises(BudgetExceeded) as info:
            run_columnar(node, store, budget=budget, batch_size=4)
        exc = info.value
        assert exc.kind == "rows"
        # The structured partial state travels like the pipelined
        # engine's: metrics snapshot plus the rows collected so far.
        assert exc.partial["operators"]
        assert isinstance(exc.partial_rows, list)

    def test_metrics_count_rows_represented(self):
        store = small_store()
        node = ScanNode([("var", x), ("var", y), ("var", z)])
        rows, metrics = run_columnar(node, store, batch_size=5)
        scan_entry = metrics.per_operator()[0]
        assert scan_entry.rows_out == store.triple_count
        assert scan_entry.batches == -(-store.triple_count // 5)
        assert len(rows) == store.triple_count

    def test_execution_result_reports_columnar_peak(self):
        store = small_store()
        executor = Executor(store, engine="columnar")
        query = ConjunctiveQuery(
            [x, y], [TriplePattern(x, EX.p, y), TriplePattern(x, RDF_TYPE, EX.C)]
        )
        result = executor.run(query)
        assert result.engine == "columnar"
        assert result.metrics is not None
        assert result.peak_buffered_rows == result.metrics.peak_buffered_rows

    def test_explain_cardinalities_populated(self):
        store = small_store()
        executor = Executor(store, engine="columnar")
        query = ConjunctiveQuery([x, y], [TriplePattern(x, EX.p, y)])
        result = executor.run(query)
        assert any(
            actual is not None and actual > 0
            for _repr, _est, actual in result.node_cardinalities()
        )

    def test_mutation_between_runs_is_visible(self):
        store = small_store()
        executor = Executor(store, engine="columnar")
        query = ConjunctiveQuery([x, y], [TriplePattern(x, EX.p, y)])
        before = executor.run(query).answer()
        store.insert(Triple(EX.fresh, EX.p, EX.fresh_o))
        after = executor.run(query).answer()
        assert len(after) == len(before) + 1
