"""Shared fixtures: the paper's running example and small workloads."""

from __future__ import annotations

import pytest

from repro.datasets import (
    books_example_query,
    books_graph,
    books_schema,
    generate_lubm,
    lubm_schema,
)
from repro.rdf import Namespace
from repro.saturation import saturate
from repro.storage import TripleStore


EX = Namespace("http://example.org/")


@pytest.fixture
def books():
    """(graph, schema, query) — the Figure 2 running example."""
    return books_graph(), books_schema(), books_example_query()


@pytest.fixture
def books_saturated(books):
    graph, schema, _ = books
    return saturate(graph, schema)


@pytest.fixture(scope="session")
def lubm_small():
    """One-university LUBM-style graph (schema embedded), ~2k triples."""
    return generate_lubm(universities=1, seed=3)


@pytest.fixture(scope="session")
def lubm_small_store(lubm_small):
    return TripleStore.from_graph(lubm_small)


@pytest.fixture(scope="session")
def lubm_schema_fixture():
    return lubm_schema()
