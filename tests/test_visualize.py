"""Unit tests for query/cover visualization and the new CLI commands."""


from repro.cli import main
from repro.datasets import example1_best_cover, example1_query
from repro.query import (
    ConjunctiveQuery,
    Cover,
    TriplePattern,
    Variable,
    join_graph,
    render_cover,
    render_query,
    render_strategy,
)
from repro.rdf import Namespace, RDF_TYPE

EX = Namespace("http://example.org/")
x, y, z = Variable("x"), Variable("y"), Variable("z")


class TestJoinGraph:
    def test_edges_on_shared_variables(self):
        query = ConjunctiveQuery(
            [x],
            [
                TriplePattern(x, EX.p, y),
                TriplePattern(y, EX.q, z),
                TriplePattern(x, RDF_TYPE, EX.C),
            ],
        )
        edges = join_graph(query)
        assert edges[(0, 1)] == {y}
        assert edges[(0, 2)] == {x}
        assert (1, 2) not in edges

    def test_example1_graph(self):
        edges = join_graph(example1_query())
        assert edges[(0, 2)]  # t1 -- t3 on x
        assert edges[(4, 5)]  # t5 -- t6 on z


class TestRendering:
    def test_render_query_lists_atoms_and_edges(self):
        text = render_query(example1_query())
        assert "t1: (?x rdf:type ?u)" in text
        assert "t5 -- t6" in text

    def test_cartesian_noted(self):
        query = ConjunctiveQuery(
            [x, y], [TriplePattern(x, EX.p, EX.a), TriplePattern(y, EX.q, EX.b)]
        )
        assert "cartesian" in render_query(query)

    def test_render_cover_matrix(self):
        text = render_cover(example1_best_cover())
        assert text.count("F") >= 4
        assert "overlapping atoms: t3, t4" in text

    def test_partition_has_no_overlap_note(self):
        query = example1_query()
        text = render_cover(Cover.per_atom(query))
        assert "overlapping" not in text

    def test_strategy_labels(self):
        query = example1_query()
        assert "SCQ" in render_strategy(Cover.per_atom(query))
        assert "UCQ" in render_strategy(Cover.single_fragment(query))
        assert "JUCQ" in render_strategy(example1_best_cover(query))


class TestCliAdditions:
    def run(self, capsys, *argv):
        code = main(list(argv))
        return code, capsys.readouterr().out

    def test_why_entailed(self, capsys):
        code, out = self.run(
            capsys, "why", "--dataset", "books", "--triple",
            "<http://example.org/books/doi1> rdf:type "
            "<http://example.org/books/Publication>",
        )
        assert code == 0
        assert "type-propagation" in out
        assert "[explicit]" in out

    def test_why_not_entailed(self, capsys):
        code, out = self.run(
            capsys, "why", "--dataset", "books", "--triple",
            "<http://example.org/books/doi1> rdf:type "
            "<http://example.org/books/Unrelated>",
        )
        assert code == 1
        assert "not entailed" in out

    def test_answer_sqlite_engine(self, capsys):
        code, out = self.run(
            capsys, "answer", "--dataset", "books", "--strategy", "ref-gcov",
            "--engine", "sqlite",
        )
        assert code == 0
        assert "ref-gcov" in out

    def test_covers_renders_matrix(self, capsys):
        code, out = self.run(
            capsys, "covers", "--dataset", "lubm", "--query", "Q1",
            "--seed", "3",
        )
        assert code == 0
        assert "fragment" in out
        assert "join edges" in out
