"""Unit tests for the cache subsystem: LRU bounds, key
canonicalization, epoch invalidation, and the invalidation hooks'
schema/data granularity."""

import pytest

from repro.cache import LRUCache, QueryCache, cover_key, policy_key, query_key
from repro.core import QueryAnswerer, Strategy
from repro.datasets import books_dataset
from repro.query import ConjunctiveQuery, Cover, TriplePattern, Variable
from repro.rdf import Graph, Namespace, RDF_TYPE, RDFS_SUBCLASSOF, Triple
from repro.reformulation import COMPLETE, VIRTUOSO_STYLE, ReformulationPolicy
from repro.saturation import IncrementalSaturator
from repro.schema import Constraint, Schema
from repro.storage import TripleStore

EX = Namespace("http://example.org/")
x, y, z = Variable("x"), Variable("y"), Variable("z")


class TestLRUCache:
    def test_bound_is_enforced(self):
        cache = LRUCache(capacity=3)
        for index in range(10):
            cache.put(index, index)
        assert len(cache) == 3
        assert cache.stats.evictions == 7

    def test_least_recently_used_goes_first(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a"
        cache.put("c", 3)  # evicts "b"
        assert "b" not in cache
        assert "a" in cache and "c" in cache

    def test_put_refreshes_recency(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh, not grow
        cache.put("c", 3)  # evicts "b"
        assert cache.get("a") == 10
        assert "b" not in cache

    def test_hit_miss_counters(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("missing") is None
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_invalidate_counts_dropped_entries(self):
        cache = LRUCache(capacity=4)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.invalidate() == 2
        assert len(cache) == 0
        assert cache.stats.invalidations == 2
        assert cache.stats.evictions == 0  # distinct counters

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            LRUCache(capacity=0)


class TestKeyCanonicalization:
    def test_alpha_equivalent_queries_share_a_key(self):
        a = ConjunctiveQuery(
            [x], [TriplePattern(x, EX.p, y), TriplePattern(y, RDF_TYPE, EX.C)]
        )
        renamed = ConjunctiveQuery(
            [x], [TriplePattern(x, EX.p, z), TriplePattern(z, RDF_TYPE, EX.C)]
        )
        reordered = ConjunctiveQuery(
            [x], [TriplePattern(y, RDF_TYPE, EX.C), TriplePattern(x, EX.p, y)]
        )
        assert query_key(a) == query_key(renamed) == query_key(reordered)

    def test_different_queries_differ(self):
        a = ConjunctiveQuery([x], [TriplePattern(x, EX.p, y)])
        b = ConjunctiveQuery([x], [TriplePattern(x, EX.q, y)])
        head_differs = ConjunctiveQuery([y], [TriplePattern(x, EX.p, y)])
        assert query_key(a) != query_key(b)
        assert query_key(a) != query_key(head_differs)

    def test_policy_key_is_semantic_not_nominal(self):
        renamed = ReformulationPolicy(name="renamed-complete")
        assert policy_key(renamed) == policy_key(COMPLETE)
        assert policy_key(VIRTUOSO_STYLE) != policy_key(COMPLETE)

    def test_cover_key_ignores_variable_names(self):
        def make(var):
            query = ConjunctiveQuery(
                [x], [TriplePattern(x, EX.p, var), TriplePattern(var, EX.q, x)]
            )
            return Cover(query, [[0], [0, 1]])

        assert cover_key(make(y)) == cover_key(make(z))

    def test_cover_key_separates_fragmentations(self):
        query = ConjunctiveQuery(
            [x], [TriplePattern(x, EX.p, y), TriplePattern(y, EX.q, x)]
        )
        assert cover_key(Cover(query, [[0], [1]])) != cover_key(
            Cover(query, [[0, 1]])
        )

    def test_ucq_key_ignores_disjunct_order(self):
        a = ConjunctiveQuery([x], [TriplePattern(x, EX.p, y)])
        b = ConjunctiveQuery([x], [TriplePattern(x, EX.q, y)])
        from repro.query import UnionQuery

        assert query_key(UnionQuery([a, b])) == query_key(UnionQuery([b, a]))

    def test_schema_fingerprint_tracks_constraints(self):
        schema = Schema([Constraint.subclass(EX.B, EX.A)])
        original = schema.fingerprint()
        assert original == schema.fingerprint()  # stable
        schema.add(Constraint.subclass(EX.C, EX.A))
        changed = schema.fingerprint()
        assert changed != original
        schema.remove(Constraint.subclass(EX.C, EX.A))
        assert schema.fingerprint() == original  # content-derived

    def test_fingerprint_independent_of_insertion_order(self):
        first = Schema([Constraint.subclass(EX.B, EX.A),
                        Constraint.domain(EX.p, EX.A)])
        second = Schema([Constraint.domain(EX.p, EX.A),
                         Constraint.subclass(EX.B, EX.A)])
        assert first.fingerprint() == second.fingerprint()


class TestEpochInvalidation:
    def _answerer(self):
        graph, schema, query = books_dataset()
        cache = QueryCache()
        return QueryAnswerer(graph, schema, cache=cache), query, cache

    def test_warm_answer_is_a_hit(self):
        answerer, query, cache = self._answerer()
        cold = answerer.answer(query, Strategy.REF_GCOV)
        warm = answerer.answer(query, Strategy.REF_GCOV)
        assert cold.details["cache"]["answer"] == "miss"
        assert warm.details["cache"]["answer"] == "hit"
        assert warm.answer == cold.answer

    def test_alpha_equivalent_query_hits(self):
        graph, schema, _ = books_dataset()
        cache = QueryCache()
        answerer = QueryAnswerer(graph, schema, cache=cache)
        AUTHOR = Namespace("http://example.org/books/").hasAuthor
        first = ConjunctiveQuery([x], [TriplePattern(y, AUTHOR, x)])
        renamed = ConjunctiveQuery([x], [TriplePattern(z, AUTHOR, x)])
        cold = answerer.answer(first, Strategy.REF_UCQ)
        warm = answerer.answer(renamed, Strategy.REF_UCQ)
        assert warm.details["cache"]["answer"] == "hit"
        assert warm.answer == cold.answer

    def test_insert_bumps_epoch_and_retires_answers(self):
        answerer, query, cache = self._answerer()
        answerer.answer(query, Strategy.REF_GCOV)
        epoch = cache.data_epoch
        assert answerer.insert(
            Triple(EX.fresh, RDF_TYPE, Namespace("http://example.org/books/").Book)
        )
        assert cache.data_epoch == epoch + 1
        after = answerer.answer(query, Strategy.REF_GCOV)
        assert after.details["cache"]["answer"] == "miss"
        # ... but the reformulation survived the data change.
        assert after.details["cache"]["reformulation"] == "hit"

    def test_delete_bumps_epoch(self):
        answerer, query, cache = self._answerer()
        triple = next(iter(answerer.graph.data_triples()))
        answerer.answer(query, Strategy.SAT)
        epoch = cache.data_epoch
        assert answerer.delete(triple)
        assert cache.data_epoch == epoch + 1
        assert (
            answerer.answer(query, Strategy.SAT).details["cache"]["answer"]
            == "miss"
        )

    def test_noop_mutations_do_not_invalidate(self):
        answerer, query, cache = self._answerer()
        answerer.answer(query, Strategy.REF_GCOV)
        epoch = cache.data_epoch
        triple = next(iter(answerer.graph.data_triples()))
        assert not answerer.insert(triple)  # already present
        assert not answerer.delete(
            Triple(EX.absent, RDF_TYPE, EX.Nothing)
        )
        assert cache.data_epoch == epoch
        assert (
            answerer.answer(query, Strategy.REF_GCOV).details["cache"]["answer"]
            == "hit"
        )

    def test_answers_computed_after_update_reflect_it(self):
        graph, schema, query = books_dataset()
        cache = QueryCache()
        answerer = QueryAnswerer(graph, schema, cache=cache)
        baseline = answerer.answer(query, Strategy.REF_UCQ).answer
        from repro.rdf import Literal

        BOOKS = Namespace("http://example.org/books/")
        answerer.insert(Triple(BOOKS.doi9, BOOKS.hasAuthor, BOOKS.author9))
        answerer.insert(Triple(BOOKS.author9, BOOKS.hasName, Literal("A. New")))
        answerer.insert(Triple(BOOKS.doi9, BOOKS.publishedIn, Literal("1949")))
        updated = answerer.answer(query, Strategy.REF_UCQ).answer
        assert updated != baseline
        assert answerer.answer(query, Strategy.REF_UCQ).answer == updated


class TestInvalidationGranularity:
    def test_schema_triple_purges_reformulations(self):
        cache = QueryCache()
        graph = Graph([Triple(EX.a, RDF_TYPE, EX.B)])
        cache.watch_graph(graph)
        cache.store_reformulation(("k",), "value")
        cache.store_answer(("a",), "value")
        graph.add(Triple(EX.B, RDFS_SUBCLASSOF, EX.A))
        assert cache.schema_invalidations == 1
        assert len(cache.reformulations) == 0
        assert len(cache.answers) == 0

    def test_data_triple_keeps_reformulations(self):
        cache = QueryCache()
        graph = Graph()
        cache.watch_graph(graph)
        cache.store_reformulation(("k",), "value")
        graph.add(Triple(EX.a, RDF_TYPE, EX.B))
        assert cache.data_invalidations == 1
        assert cache.schema_invalidations == 0
        assert len(cache.reformulations) == 1  # still there
        assert cache.data_epoch == 1  # answers keyed out lazily

    def test_store_hook(self):
        cache = QueryCache()
        store = TripleStore()
        cache.watch_store(store)
        store.insert(Triple(EX.a, EX.p, EX.b))
        assert cache.data_epoch == 1
        store.insert(Triple(EX.a, EX.p, EX.b))  # duplicate: no event
        assert cache.data_epoch == 1
        store.delete(Triple(EX.a, EX.p, EX.b))
        assert cache.data_epoch == 2
        store.insert(Triple(EX.B, RDFS_SUBCLASSOF, EX.A))
        assert cache.schema_epoch == 1

    def test_saturator_hook_distinguishes_constraint_changes(self):
        cache = QueryCache()
        saturator = IncrementalSaturator(
            Schema([Constraint.subclass(EX.Manager, EX.Employee)])
        )
        cache.watch_saturator(saturator)
        saturator.insert(Triple(EX.ann, RDF_TYPE, EX.Manager))
        assert cache.data_epoch == 1
        assert cache.schema_epoch == 0
        saturator.add_constraint(Constraint.subclass(EX.Employee, EX.Person))
        assert cache.schema_epoch == 1
        # Resaturation's internal re-inserts are not data events.
        assert cache.data_epoch == 1
        saturator.delete(Triple(EX.ann, RDF_TYPE, EX.Manager))
        assert cache.data_epoch == 2

    def test_shared_cache_keeps_datasets_apart(self):
        cache = QueryCache()
        graph_a, schema, query = books_dataset()
        graph_b = Graph(graph_a)  # same triples minus one author link
        removed = next(iter(graph_b.match(property=Namespace(
            "http://example.org/books/").writtenBy)))
        graph_b.discard(removed)
        first = QueryAnswerer(graph_a, schema, cache=cache)
        second = QueryAnswerer(graph_b, schema, cache=cache)
        answer_a = first.answer(query, Strategy.REF_UCQ)
        answer_b = second.answer(query, Strategy.REF_UCQ)
        # Same query + schema, different datasets: both must miss the
        # answer tier and disagree, while sharing the reformulation.
        assert answer_b.details["cache"]["answer"] == "miss"
        assert answer_b.details["cache"]["reformulation"] == "hit"
        assert answer_a.answer != answer_b.answer

    def test_stats_snapshot_shape(self):
        cache = QueryCache(reformulation_capacity=7, answer_capacity=9)
        stats = cache.stats()
        assert stats["reformulation"]["capacity"] == 7
        assert stats["answer"]["capacity"] == 9
        for tier in ("reformulation", "answer"):
            for counter in ("hits", "misses", "evictions", "invalidations"):
                assert stats[tier][counter] == 0


class TestExecutionResultMemoization:
    def test_answer_is_memoized(self):
        from repro.storage import Executor

        graph, schema, query = books_dataset()
        store = TripleStore.from_graph(graph, schema)
        execution = Executor(store).run(
            ConjunctiveQuery([x], [TriplePattern(x, RDF_TYPE, y)])
        )
        first = execution.answer()
        assert execution.answer() is first  # same frozenset object

    def test_memoized_answer_matches_rows(self):
        from repro.storage import Executor

        graph, schema, _ = books_dataset()
        store = TripleStore.from_graph(graph, schema)
        execution = Executor(store).run(
            ConjunctiveQuery([x], [TriplePattern(x, RDF_TYPE, y)])
        )
        assert len(execution.answer()) <= execution.row_count
