"""Unit tests for the CQ-to-UCQ engine: sizes, guards, equivalence."""

import pytest

from repro.query import ConjunctiveQuery, Cover, TriplePattern, Variable, evaluate
from repro.query.evaluation import evaluate_cq
from repro.rdf import Graph, Namespace, RDF_TYPE, Triple
from repro.reformulation import (
    ReformulationTooLarge,
    iterate_reformulations,
    jucq_for_cover,
    jucq_fragment_sizes,
    reformulate,
    scq_reformulation,
    ucq_size,
)
from repro.reformulation.atoms import database_graph
from repro.saturation import saturate
from repro.schema import Constraint, Schema

EX = Namespace("http://example.org/")
x, y, u, v = Variable("x"), Variable("y"), Variable("u"), Variable("v")


def library_schema():
    return Schema(
        [
            Constraint.subclass(EX.Book, EX.Publication),
            Constraint.subclass(EX.Novel, EX.Book),
            Constraint.subproperty(EX.writtenBy, EX.hasAuthor),
            Constraint.domain(EX.writtenBy, EX.Book),
            Constraint.range(EX.writtenBy, EX.Person),
        ]
    )


class TestSizes:
    def test_size_is_product_when_independent(self):
        schema = library_schema()
        query = ConjunctiveQuery(
            [x],
            [
                TriplePattern(x, RDF_TYPE, EX.Publication),
                TriplePattern(x, EX.hasAuthor, y),
            ],
        )
        per_atom = [
            len(list(iterate_reformulations(
                ConjunctiveQuery(sorted(atom.variables()), [atom]), schema
            )))
            for atom in query.atoms
        ]
        assert ucq_size(query, schema) == per_atom[0] * per_atom[1]

    def test_size_matches_materialization(self):
        schema = library_schema()
        query = ConjunctiveQuery(
            [x, u],
            [
                TriplePattern(x, RDF_TYPE, u),
                TriplePattern(x, EX.hasAuthor, y),
            ],
        )
        union = reformulate(query, schema)
        assert len(union) == ucq_size(query, schema)

    def test_shared_class_variable_counts_conflicts(self):
        schema = library_schema()
        # u is the class of both x and y: bindings must agree.
        query = ConjunctiveQuery(
            [x, y, u],
            [
                TriplePattern(x, RDF_TYPE, u),
                TriplePattern(y, RDF_TYPE, u),
            ],
        )
        size = ucq_size(query, schema)
        union = reformulate(query, schema)
        assert len(union) == size
        # Conflicting bindings must have been dropped: fewer than the
        # independent product.
        single = ucq_size(
            ConjunctiveQuery([x, u], [TriplePattern(x, RDF_TYPE, u)]), schema
        )
        assert size < single * single

    def test_guard_raises_without_materializing(self):
        schema = library_schema()
        query = ConjunctiveQuery(
            [x, u],
            [TriplePattern(x, RDF_TYPE, u)],
        )
        with pytest.raises(ReformulationTooLarge) as info:
            reformulate(query, schema, max_disjuncts=1)
        assert info.value.size == ucq_size(query, schema)

    def test_deduplicate_flag(self):
        schema = Schema(
            [
                Constraint.subclass(EX.A, EX.C),
                Constraint.subclass(EX.B, EX.C),
            ]
        )
        query = ConjunctiveQuery([x], [TriplePattern(x, RDF_TYPE, EX.C)])
        union = reformulate(query, schema)
        assert len(union.deduplicated()) == len(union)


class TestEquivalence:
    """The correctness contract: q(G∞) = q_ref(db) for every strategy."""

    def graph(self):
        return Graph(
            [
                Triple(EX.b1, RDF_TYPE, EX.Novel),
                Triple(EX.b2, RDF_TYPE, EX.Book),
                Triple(EX.b3, EX.writtenBy, EX.alice),
                Triple(EX.b3, EX.hasTitle, EX.t1),
                Triple(EX.alice, EX.knows, EX.bob),
            ]
        )

    def queries(self):
        return [
            ConjunctiveQuery([x], [TriplePattern(x, RDF_TYPE, EX.Publication)]),
            ConjunctiveQuery([x, y], [TriplePattern(x, EX.hasAuthor, y)]),
            ConjunctiveQuery(
                [x, u],
                [
                    TriplePattern(x, RDF_TYPE, u),
                    TriplePattern(x, EX.writtenBy, y),
                ],
            ),
            ConjunctiveQuery(
                [x, y],
                [
                    TriplePattern(x, RDF_TYPE, EX.Book),
                    TriplePattern(x, EX.hasAuthor, y),
                ],
            ),
            ConjunctiveQuery(
                [x, v, y],
                [TriplePattern(x, v, y)],
            ),
        ]

    def test_ucq_equals_saturation(self):
        schema = library_schema()
        graph = self.graph()
        db = database_graph(graph, schema)
        saturated = saturate(graph, schema)
        for query in self.queries():
            expected = evaluate_cq(saturated, query)
            assert evaluate(db, reformulate(query, schema)) == expected

    def test_scq_equals_saturation(self):
        schema = library_schema()
        graph = self.graph()
        db = database_graph(graph, schema)
        saturated = saturate(graph, schema)
        for query in self.queries():
            expected = evaluate_cq(saturated, query)
            assert evaluate(db, scq_reformulation(query, schema)) == expected

    def test_every_partition_cover_equals_saturation(self):
        from repro.query import enumerate_partition_covers

        schema = library_schema()
        graph = self.graph()
        db = database_graph(graph, schema)
        saturated = saturate(graph, schema)
        query = self.queries()[3]
        expected = evaluate_cq(saturated, query)
        for cover in enumerate_partition_covers(query):
            jucq = jucq_for_cover(cover, schema)
            assert evaluate(db, jucq) == expected

    def test_overlapping_cover_equals_saturation(self):
        schema = library_schema()
        graph = self.graph()
        db = database_graph(graph, schema)
        query = ConjunctiveQuery(
            [x, y],
            [
                TriplePattern(x, RDF_TYPE, EX.Book),
                TriplePattern(x, EX.hasAuthor, y),
                TriplePattern(x, EX.hasTitle, Variable("t")),
            ],
        )
        expected = evaluate_cq(saturate(graph, schema), query)
        cover = Cover(query, [[0, 1], [1, 2]])
        assert evaluate(db, jucq_for_cover(cover, schema)) == expected


class TestJucqHelpers:
    def test_fragment_sizes(self):
        schema = library_schema()
        query = ConjunctiveQuery(
            [x, u],
            [
                TriplePattern(x, RDF_TYPE, u),
                TriplePattern(x, EX.hasAuthor, y),
            ],
        )
        sizes = jucq_fragment_sizes(Cover.per_atom(query), schema)
        assert sizes == [
            ucq_size(ConjunctiveQuery([x, u], [query.atoms[0]]), schema),
            ucq_size(ConjunctiveQuery([x], [query.atoms[1]]), schema),
        ]

    def test_scq_is_per_atom(self):
        schema = library_schema()
        query = ConjunctiveQuery(
            [x],
            [
                TriplePattern(x, RDF_TYPE, EX.Book),
                TriplePattern(x, EX.hasAuthor, y),
            ],
        )
        scq = scq_reformulation(query, schema)
        assert scq.fragment_count() == 2
        # Each fragment is a union of atomic (1-atom) CQs.
        for union in scq.fragments:
            assert all(len(cq.atoms) == 1 for cq in union)

    def test_scq_rejects_other_inputs(self):
        with pytest.raises(TypeError):
            scq_reformulation("nope", library_schema())
