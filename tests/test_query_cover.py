"""Unit tests for query covers and their induced fragment queries."""

import pytest

from repro.query import (
    ConjunctiveQuery,
    Cover,
    CoverError,
    TriplePattern,
    Variable,
    enumerate_partition_covers,
    partition_cover_count,
)
from repro.rdf import Namespace, RDF_TYPE

EX = Namespace("http://example.org/")
x, y, z = Variable("x"), Variable("y"), Variable("z")


def three_atom_query():
    return ConjunctiveQuery(
        [x, z],
        [
            TriplePattern(x, RDF_TYPE, EX.C),      # t1
            TriplePattern(x, EX.p, y),             # t2
            TriplePattern(y, EX.q, z),             # t3
        ],
    )


class TestValidation:
    def test_all_atoms_must_be_covered(self):
        with pytest.raises(CoverError):
            Cover(three_atom_query(), [[0, 1]])

    def test_empty_fragment_rejected(self):
        with pytest.raises(CoverError):
            Cover(three_atom_query(), [[0, 1, 2], []])

    def test_out_of_range_index_rejected(self):
        with pytest.raises(CoverError):
            Cover(three_atom_query(), [[0, 1, 2, 3]])

    def test_overlap_allowed(self):
        cover = Cover(three_atom_query(), [[0, 1], [1, 2]])
        assert len(cover) == 2
        assert not cover.is_partition()

    def test_duplicate_fragments_collapse(self):
        cover = Cover(three_atom_query(), [[0, 1, 2], [0, 1, 2]])
        assert len(cover) == 1

    def test_deterministic_order(self):
        first = Cover(three_atom_query(), [[2], [0, 1]])
        second = Cover(three_atom_query(), [[0, 1], [2]])
        assert first.fragments == second.fragments


class TestClassicalCovers:
    def test_single_fragment(self):
        cover = Cover.single_fragment(three_atom_query())
        assert len(cover) == 1
        assert cover.is_partition()

    def test_per_atom(self):
        cover = Cover.per_atom(three_atom_query())
        assert len(cover) == 3
        assert all(len(f) == 1 for f in cover.fragments)


class TestFragmentQueries:
    def test_fragment_head_shared_and_distinguished(self):
        cover = Cover(three_atom_query(), [[0, 1], [2]])
        first, second = cover.fragments
        # {t1,t2}: x distinguished, y shared with {t3}.
        assert set(cover.fragment_head(first)) == {x, y}
        # {t3}: y shared, z distinguished.
        assert set(cover.fragment_head(second)) == {y, z}

    def test_private_variable_projected_away(self):
        query = ConjunctiveQuery(
            [x],
            [TriplePattern(x, EX.p, y), TriplePattern(x, EX.q, z)],
        )
        cover = Cover(query, [[0], [1]])
        heads = [set(cover.fragment_head(f)) for f in cover.fragments]
        # y and z are private to their fragments and not distinguished.
        assert heads == [{x}, {x}]

    def test_fragment_query_atoms(self):
        cover = Cover(three_atom_query(), [[0, 2], [1]])
        fragment = cover.fragments[0]
        atoms = cover.fragment_atoms(fragment)
        assert len(atoms) == 2

    def test_single_fragment_head_is_all_distinguished(self):
        query = three_atom_query()
        cover = Cover.single_fragment(query)
        head = cover.fragment_head(cover.fragments[0])
        assert set(head) == {x, z}


class TestMoves:
    def test_merge(self):
        cover = Cover.per_atom(three_atom_query())
        merged = cover.merge_fragments(cover.fragments[0], cover.fragments[1])
        assert len(merged) == 2

    def test_merge_requires_membership(self):
        cover = Cover.per_atom(three_atom_query())
        with pytest.raises(CoverError):
            cover.merge_fragments(frozenset({0, 1}), cover.fragments[0])

    def test_add_atom_creates_overlap(self):
        cover = Cover.per_atom(three_atom_query())
        grown = cover.add_atom_to_fragment(0, cover.fragments[1])
        assert not grown.is_partition()

    def test_add_present_atom_rejected(self):
        cover = Cover.per_atom(three_atom_query())
        with pytest.raises(CoverError):
            cover.add_atom_to_fragment(0, cover.fragments[0])

    def test_redundant_fragment_removal(self):
        cover = Cover(three_atom_query(), [[0, 1], [0], [2]])
        cleaned = cover.without_redundant_fragments()
        assert frozenset({0}) not in cleaned.fragments
        assert len(cleaned) == 2


class TestEnumeration:
    def test_partition_counts_match_bell(self):
        for atoms in range(1, 6):
            variables = [Variable("v%d" % index) for index in range(atoms + 1)]
            query = ConjunctiveQuery(
                [variables[0]],
                [
                    TriplePattern(variables[i], EX.p, variables[i + 1])
                    for i in range(atoms)
                ],
            )
            covers = list(enumerate_partition_covers(query))
            assert len(covers) == partition_cover_count(atoms)
            assert all(cover.is_partition() for cover in covers)

    def test_bell_numbers(self):
        assert [partition_cover_count(n) for n in range(7)] == [
            1, 1, 2, 5, 15, 52, 203,
        ]

    def test_all_partitions_distinct(self):
        query = three_atom_query()
        covers = list(enumerate_partition_covers(query))
        assert len({cover.fragments for cover in covers}) == len(covers)
