"""Unit tests for the indexed graph."""

import pytest

from repro.rdf import (
    Graph,
    Literal,
    Namespace,
    RDF_TYPE,
    RDFS_SUBCLASSOF,
    Triple,
)

EX = Namespace("http://example.org/")


def sample_graph():
    return Graph(
        [
            Triple(EX.a, RDF_TYPE, EX.C),
            Triple(EX.b, RDF_TYPE, EX.C),
            Triple(EX.a, EX.p, EX.b),
            Triple(EX.a, EX.p, Literal("v")),
            Triple(EX.C, RDFS_SUBCLASSOF, EX.D),
        ]
    )


class TestMutation:
    def test_add_reports_novelty(self):
        graph = Graph()
        triple = Triple(EX.a, EX.p, EX.b)
        assert graph.add(triple) is True
        assert graph.add(triple) is False
        assert len(graph) == 1

    def test_add_all_counts_new(self):
        graph = Graph()
        triple = Triple(EX.a, EX.p, EX.b)
        assert graph.add_all([triple, triple]) == 1

    def test_add_rejects_non_triple(self):
        with pytest.raises(TypeError):
            Graph().add((EX.a, EX.p, EX.b))

    def test_discard(self):
        graph = sample_graph()
        triple = Triple(EX.a, EX.p, EX.b)
        assert graph.discard(triple) is True
        assert triple not in graph
        assert graph.discard(triple) is False

    def test_discard_cleans_indexes(self):
        graph = Graph([Triple(EX.a, EX.p, EX.b)])
        graph.discard(Triple(EX.a, EX.p, EX.b))
        assert list(graph.match(subject=EX.a)) == []
        assert list(graph.match(property=EX.p)) == []
        assert list(graph.match(object=EX.b)) == []


class TestMatch:
    def test_match_by_property(self):
        graph = sample_graph()
        assert len(list(graph.match(property=RDF_TYPE))) == 2

    def test_match_by_subject_and_property(self):
        graph = sample_graph()
        matches = list(graph.match(subject=EX.a, property=EX.p))
        assert len(matches) == 2

    def test_match_fully_bound(self):
        graph = sample_graph()
        assert len(list(graph.match(EX.a, EX.p, EX.b))) == 1

    def test_match_absent_key_is_empty(self):
        graph = sample_graph()
        assert list(graph.match(subject=EX.missing)) == []

    def test_match_all(self):
        assert len(list(sample_graph().match())) == 5

    def test_subjects_of_type(self):
        assert sample_graph().subjects_of_type(EX.C) == {EX.a, EX.b}


class TestViews:
    def test_schema_data_split(self):
        graph = sample_graph()
        assert len(list(graph.schema_triples())) == 1
        assert len(list(graph.data_triples())) == 4

    def test_values(self):
        graph = Graph([Triple(EX.a, EX.p, Literal("v"))])
        assert graph.values() == {EX.a, EX.p, Literal("v")}

    def test_properties(self):
        assert sample_graph().properties() == {RDF_TYPE, EX.p, RDFS_SUBCLASSOF}

    def test_copy_is_independent(self):
        graph = sample_graph()
        clone = graph.copy()
        clone.add(Triple(EX.z, EX.p, EX.z2))
        assert len(clone) == len(graph) + 1

    def test_union(self):
        left = Graph([Triple(EX.a, EX.p, EX.b)])
        right = Graph([Triple(EX.c, EX.p, EX.d)])
        assert len(left.union(right)) == 2

    def test_difference(self):
        graph = sample_graph()
        empty = Graph()
        assert graph.difference(empty) == set(graph)

    def test_equality_is_set_equality(self):
        assert sample_graph() == sample_graph()
