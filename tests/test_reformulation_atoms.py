"""Unit tests for per-atom reformulation (the rules of [9])."""


from repro.query import TriplePattern, Variable
from repro.rdf import Namespace, RDF_TYPE, RDFS_SUBCLASSOF
from repro.reformulation import (
    ALLEGROGRAPH_STYLE,
    VIRTUOSO_STYLE,
    atom_reformulation_size,
    reformulate_atom,
)
from repro.schema import Constraint, Schema

EX = Namespace("http://example.org/")
x, y, v = Variable("x"), Variable("y"), Variable("v")


def library_schema():
    return Schema(
        [
            Constraint.subclass(EX.Book, EX.Publication),
            Constraint.subclass(EX.Novel, EX.Book),
            Constraint.subproperty(EX.writtenBy, EX.hasAuthor),
            Constraint.domain(EX.writtenBy, EX.Book),
            Constraint.range(EX.writtenBy, EX.Person),
        ]
    )


def atoms_of(alternatives):
    return {alternative.atom for alternative in alternatives}


class TestTypeAtom:
    def test_identity_always_first(self):
        atom = TriplePattern(x, RDF_TYPE, EX.Publication)
        alternatives = reformulate_atom(atom, library_schema())
        assert alternatives[0].atom == atom
        assert alternatives[0].substitution == {}

    def test_subclass_unfolding(self):
        atom = TriplePattern(x, RDF_TYPE, EX.Publication)
        produced = atoms_of(reformulate_atom(atom, library_schema()))
        assert TriplePattern(x, RDF_TYPE, EX.Book) in produced
        assert TriplePattern(x, RDF_TYPE, EX.Novel) in produced

    def test_domain_unfolding(self):
        atom = TriplePattern(x, RDF_TYPE, EX.Book)
        produced = atoms_of(reformulate_atom(atom, library_schema()))
        domain_atoms = [
            a for a in produced if a.property == EX.writtenBy and a.subject == x
        ]
        assert len(domain_atoms) == 1

    def test_domain_unfolding_through_widening(self):
        # writtenBy's domain Book ⊑ Publication, so Publication-typing
        # also unfolds into a writtenBy atom.
        atom = TriplePattern(x, RDF_TYPE, EX.Publication)
        produced = atoms_of(reformulate_atom(atom, library_schema()))
        assert any(
            a.property == EX.writtenBy and a.subject == x for a in produced
        )

    def test_range_unfolding(self):
        atom = TriplePattern(x, RDF_TYPE, EX.Person)
        produced = atoms_of(reformulate_atom(atom, library_schema()))
        assert any(
            a.property == EX.writtenBy and a.object == x for a in produced
        )

    def test_fresh_variables_distinct(self):
        atom = TriplePattern(x, RDF_TYPE, EX.Book)
        first = reformulate_atom(atom, library_schema())
        second = reformulate_atom(atom, library_schema())
        fresh_first = {
            alt.atom.object for alt in first if alt.atom.property == EX.writtenBy
        }
        fresh_second = {
            alt.atom.object for alt in second if alt.atom.property == EX.writtenBy
        }
        assert fresh_first.isdisjoint(fresh_second)

    def test_size_matches_enumeration(self):
        schema = library_schema()
        for klass in (EX.Publication, EX.Book, EX.Person, EX.Unknown):
            atom = TriplePattern(x, RDF_TYPE, klass)
            assert atom_reformulation_size(atom, schema) == len(
                reformulate_atom(atom, schema)
            )


class TestOpenClassVariable:
    def test_binds_variable_per_class(self):
        atom = TriplePattern(x, RDF_TYPE, v)
        alternatives = reformulate_atom(atom, library_schema())
        bound_classes = {
            alt.substitution.get(v) for alt in alternatives if alt.substitution
        }
        assert EX.Publication in bound_classes
        assert EX.Book in bound_classes

    def test_identity_kept_unbound(self):
        atom = TriplePattern(x, RDF_TYPE, v)
        alternatives = reformulate_atom(atom, library_schema())
        assert alternatives[0].atom == atom
        assert alternatives[0].substitution == {}

    def test_size_matches_enumeration(self):
        atom = TriplePattern(x, RDF_TYPE, v)
        schema = library_schema()
        assert atom_reformulation_size(atom, schema) == len(
            reformulate_atom(atom, schema)
        )


class TestPropertyAtom:
    def test_subproperty_unfolding(self):
        atom = TriplePattern(x, EX.hasAuthor, y)
        produced = atoms_of(reformulate_atom(atom, library_schema()))
        assert TriplePattern(x, EX.writtenBy, y) in produced

    def test_leaf_property_identity_only(self):
        atom = TriplePattern(x, EX.writtenBy, y)
        assert len(reformulate_atom(atom, library_schema())) == 1

    def test_unknown_property_identity_only(self):
        atom = TriplePattern(x, EX.unknown, y)
        assert len(reformulate_atom(atom, library_schema())) == 1

    def test_size_matches_enumeration(self):
        schema = library_schema()
        atom = TriplePattern(x, EX.hasAuthor, y)
        assert atom_reformulation_size(atom, schema) == 2


class TestOpenPropertyVariable:
    def test_binds_superproperty(self):
        atom = TriplePattern(x, v, y)
        alternatives = reformulate_atom(atom, library_schema())
        assert any(
            alt.atom == TriplePattern(x, EX.writtenBy, y)
            and alt.substitution == {v: EX.hasAuthor}
            for alt in alternatives
        )

    def test_includes_type_unfoldings(self):
        atom = TriplePattern(x, v, y)
        alternatives = reformulate_atom(atom, library_schema())
        assert any(
            alt.substitution.get(v) == RDF_TYPE for alt in alternatives
        )

    def test_size_matches_enumeration(self):
        atom = TriplePattern(x, v, y)
        schema = library_schema()
        assert atom_reformulation_size(atom, schema) == len(
            reformulate_atom(atom, schema)
        )


class TestSchemaAtom:
    def test_identity_only(self):
        atom = TriplePattern(x, RDFS_SUBCLASSOF, y)
        alternatives = reformulate_atom(atom, library_schema())
        assert len(alternatives) == 1
        assert alternatives[0].atom == atom

    def test_size(self):
        atom = TriplePattern(EX.Novel, RDFS_SUBCLASSOF, EX.Publication)
        assert atom_reformulation_size(atom, library_schema()) == 1


class TestTypeSubproperty:
    def test_tau_subproperty_unfolds_type_atoms(self):
        schema = Schema(
            [
                Constraint.subproperty(EX.isA, RDF_TYPE),
                Constraint.subclass(EX.Book, EX.Publication),
            ]
        )
        atom = TriplePattern(x, RDF_TYPE, EX.Publication)
        produced = atoms_of(reformulate_atom(atom, schema))
        assert TriplePattern(x, EX.isA, EX.Publication) in produced
        assert TriplePattern(x, EX.isA, EX.Book) in produced


class TestPolicies:
    def test_virtuoso_ignores_domain_range(self):
        atom = TriplePattern(x, RDF_TYPE, EX.Book)
        produced = atoms_of(
            reformulate_atom(atom, library_schema(), VIRTUOSO_STYLE)
        )
        assert all(a.property == RDF_TYPE for a in produced)

    def test_virtuoso_keeps_hierarchies(self):
        atom = TriplePattern(x, EX.hasAuthor, y)
        produced = atoms_of(
            reformulate_atom(atom, library_schema(), VIRTUOSO_STYLE)
        )
        assert TriplePattern(x, EX.writtenBy, y) in produced

    def test_allegrograph_subclass_only(self):
        schema = library_schema()
        type_atom = TriplePattern(x, RDF_TYPE, EX.Publication)
        produced = atoms_of(
            reformulate_atom(type_atom, schema, ALLEGROGRAPH_STYLE)
        )
        assert TriplePattern(x, RDF_TYPE, EX.Book) in produced
        property_atom = TriplePattern(x, EX.hasAuthor, y)
        assert len(reformulate_atom(property_atom, schema, ALLEGROGRAPH_STYLE)) == 1

    def test_allegrograph_ignores_open_variables(self):
        atom = TriplePattern(x, RDF_TYPE, v)
        assert len(
            reformulate_atom(atom, library_schema(), ALLEGROGRAPH_STYLE)
        ) == 1
