"""Unit tests for the benchmark harness and table rendering."""

import pytest

from repro import QueryAnswerer, Strategy
from repro.bench import (
    StrategyOutcome,
    compare_strategies,
    format_speedup,
    format_table,
    run_strategy,
    timed,
)
from repro.datasets import example1_query, generate_lubm


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "bb"], [[1, "x"], [22, "yy"]])
        lines = text.splitlines()
        assert lines[0].startswith("a ")
        assert all("|" in line for line in lines if "-" not in line)

    def test_title(self):
        text = format_table(["h"], [["v"]], title="My Table")
        assert text.splitlines()[0] == "My Table"
        assert text.splitlines()[1] == "========"

    def test_empty_rows(self):
        text = format_table(["col"], [])
        assert "col" in text

    def test_wide_values_stretch_columns(self):
        text = format_table(["c"], [["wide value here"]])
        assert "wide value here" in text


class TestFormatSpeedup:
    def test_ratio(self):
        assert format_speedup(4.3, 0.01) == "430.0x"

    def test_zero_denominator(self):
        assert format_speedup(1.0, 0.0) == "inf"


class TestTimed:
    def test_returns_best(self):
        import time

        def work():
            time.sleep(0.001)

        best = timed(work, repeat=2)
        assert best >= 0.001


class TestStrategyOutcome:
    def test_requires_exactly_one(self):
        with pytest.raises(ValueError):
            StrategyOutcome(Strategy.SAT)
        with pytest.raises(ValueError):
            StrategyOutcome(Strategy.SAT, report="r", failure="f")

    def test_failure_cell(self):
        outcome = StrategyOutcome(Strategy.REF_UCQ, failure="too large")
        assert not outcome.ok
        assert outcome.milliseconds is None
        assert "FAIL" in outcome.cell()


class TestRunStrategy:
    def test_success(self, books):
        graph, schema, query = books
        answerer = QueryAnswerer(graph, schema)
        outcome = run_strategy(answerer, query, Strategy.SAT)
        assert outcome.ok
        assert outcome.cardinality == 1
        assert "rows" in outcome.cell()

    def test_failure_captured(self):
        answerer = QueryAnswerer(generate_lubm(universities=1, seed=2))
        outcome = run_strategy(answerer, example1_query(), Strategy.REF_UCQ)
        assert not outcome.ok
        assert "unparseable" in outcome.failure

    def test_compare_strategies(self, books):
        graph, schema, query = books
        answerer = QueryAnswerer(graph, schema)
        outcomes = compare_strategies(
            answerer, query, (Strategy.SAT, Strategy.REF_SCQ)
        )
        assert set(outcomes) == {Strategy.SAT, Strategy.REF_SCQ}
        assert all(outcome.ok for outcome in outcomes.values())
