"""Unit and property tests for CQ containment, minimization and UCQ
subsumption pruning."""

from hypothesis import HealthCheck, given, settings

from repro.query import ConjunctiveQuery, TriplePattern, UnionQuery, Variable, evaluate
from repro.rdf import Namespace, RDF_TYPE
from repro.reformulation import (
    find_homomorphism,
    is_contained,
    minimize,
    prune_subsumed,
    reformulate,
)
from repro.reformulation.atoms import database_graph

EX = Namespace("http://example.org/")
x, y, z, w = Variable("x"), Variable("y"), Variable("z"), Variable("w")


class TestHomomorphism:
    def test_identity(self):
        query = ConjunctiveQuery([x], [TriplePattern(x, EX.p, y)])
        assert find_homomorphism(query, query) is not None

    def test_variable_to_constant(self):
        general = ConjunctiveQuery([x], [TriplePattern(x, EX.p, y)])
        specific = ConjunctiveQuery([x], [TriplePattern(x, EX.p, EX.b)])
        assert find_homomorphism(general, specific) is not None
        assert find_homomorphism(specific, general) is None

    def test_head_must_map(self):
        first = ConjunctiveQuery([x], [TriplePattern(x, EX.p, y)])
        second = ConjunctiveQuery([y], [TriplePattern(x, EX.p, y)])
        # Mapping head x ↦ y forces (y, p, ?) which only unifies with
        # the body atom if y maps consistently — possible here: x↦y is
        # frozen-target... the heads project different positions, so
        # containment must fail in at least one direction.
        assert (
            is_contained(first, second) and is_contained(second, first)
        ) is False

    def test_arity_mismatch(self):
        first = ConjunctiveQuery([x], [TriplePattern(x, EX.p, y)])
        second = ConjunctiveQuery([x, y], [TriplePattern(x, EX.p, y)])
        assert find_homomorphism(first, second) is None

    def test_longer_into_shorter(self):
        # (x p y), (y p z) maps into (x p x') when x' self-loops? No:
        # target (x p y) alone cannot absorb a 2-chain unless variables
        # collapse; with the loop atom it can.
        chain = ConjunctiveQuery(
            [x], [TriplePattern(x, EX.p, y), TriplePattern(y, EX.p, z)]
        )
        loop = ConjunctiveQuery([x], [TriplePattern(x, EX.p, x)])
        assert find_homomorphism(chain, loop) is not None
        assert is_contained(loop, chain)


class TestContainment:
    def test_more_atoms_more_specific(self):
        broad = ConjunctiveQuery([x], [TriplePattern(x, RDF_TYPE, EX.C)])
        narrow = ConjunctiveQuery(
            [x],
            [TriplePattern(x, RDF_TYPE, EX.C), TriplePattern(x, EX.p, y)],
        )
        assert is_contained(narrow, broad)
        assert not is_contained(broad, narrow)

    def test_guard_blocks_containment(self):
        guarded = ConjunctiveQuery(
            [x], [TriplePattern(y, EX.p, x)], nonliteral_variables=[x]
        )
        unguarded = ConjunctiveQuery([x], [TriplePattern(y, EX.p, x)])
        # The guarded query returns fewer rows: contained, not container.
        assert is_contained(guarded, unguarded)
        assert not is_contained(unguarded, guarded)

    def test_equal_guards_contain(self):
        first = ConjunctiveQuery(
            [x], [TriplePattern(y, EX.p, x)], nonliteral_variables=[x]
        )
        assert is_contained(first, first)


class TestMinimize:
    def test_duplicate_pattern_removed(self):
        query = ConjunctiveQuery(
            [x], [TriplePattern(x, EX.p, y), TriplePattern(x, EX.p, z)]
        )
        assert len(minimize(query).atoms) == 1

    def test_distinguished_variables_protected(self):
        query = ConjunctiveQuery(
            [x, y, z],
            [TriplePattern(x, EX.p, y), TriplePattern(x, EX.p, z)],
        )
        assert len(minimize(query).atoms) == 2

    def test_already_minimal(self):
        query = ConjunctiveQuery(
            [x], [TriplePattern(x, EX.p, y), TriplePattern(y, EX.q, z)]
        )
        assert minimize(query) == query

    def test_minimized_equivalent(self, books):
        graph, schema, _ = books
        db = database_graph(graph, schema)
        query = ConjunctiveQuery(
            [x],
            [
                TriplePattern(x, EX.p, y),
                TriplePattern(x, EX.p, z),
                TriplePattern(x, RDF_TYPE, EX.C),
            ],
        )
        reduced = minimize(query)
        assert evaluate(db, reduced) == evaluate(db, query)


class TestPruneSubsumed:
    def test_subsumed_disjunct_dropped(self):
        broad = ConjunctiveQuery([x], [TriplePattern(x, RDF_TYPE, EX.C)])
        narrow = ConjunctiveQuery(
            [x],
            [TriplePattern(x, RDF_TYPE, EX.C), TriplePattern(x, EX.p, y)],
        )
        pruned = prune_subsumed(UnionQuery([broad, narrow]))
        assert list(pruned) == [broad]

    def test_equivalent_pair_keeps_one(self):
        first = ConjunctiveQuery([x], [TriplePattern(x, EX.p, y)])
        renamed = ConjunctiveQuery([x], [TriplePattern(x, EX.p, w)])
        pruned = prune_subsumed(UnionQuery([first, renamed]))
        assert len(pruned) == 1

    def test_incomparable_kept(self):
        first = ConjunctiveQuery([x], [TriplePattern(x, EX.p, y)])
        second = ConjunctiveQuery([x], [TriplePattern(x, EX.q, y)])
        assert len(prune_subsumed(UnionQuery([first, second]))) == 2

    def test_pruned_reformulation_equivalent(self, books):
        graph, schema, query = books
        db = database_graph(graph, schema)
        union = reformulate(query, schema)
        pruned = prune_subsumed(union)
        assert len(pruned) <= len(union)
        assert evaluate(db, pruned) == evaluate(db, union)


from tests.test_property_based import graph_st, query_st, schema_st  # noqa: E402


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(graph=graph_st, schema=schema_st, query=query_st())
def test_pruning_preserves_answers_property(graph, schema, query):
    """prune_subsumed and minimize never change any answer."""
    db = database_graph(graph, schema)
    union = reformulate(query, schema)
    pruned = prune_subsumed(union)
    assert evaluate(db, pruned) == evaluate(db, union)
    minimized = UnionQuery([minimize(cq) for cq in union])
    assert evaluate(db, minimized) == evaluate(db, union)