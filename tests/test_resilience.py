"""Unit tests for the resilience primitives: clocks, deadlines, retry
backoff, circuit breakers, execution budgets and the seeded chaos
harness.  Every time-dependent test runs on a FakeClock — no wall-clock
sleeps anywhere."""

import pytest

from repro.federation import Endpoint, truncate_rows
from repro.query import ConjunctiveQuery, TriplePattern, Variable
from repro.rdf import Graph, Namespace, Triple
from repro.resilience import (
    BudgetExceeded,
    ChaosEndpoint,
    CircuitBreaker,
    CircuitOpen,
    Deadline,
    DeadlineExceeded,
    EndpointOutage,
    ExecutionBudget,
    FakeClock,
    FaultPlan,
    RetryPolicy,
    TransientEndpointError,
)
from repro.resilience.breaker import CLOSED, HALF_OPEN, OPEN

EX = Namespace("http://example.org/")
x = Variable("x")


class TestFakeClock:
    def test_sleep_advances_and_records(self):
        clock = FakeClock()
        clock.sleep(1.5)
        clock.sleep(0.5)
        assert clock.monotonic() == 2.0
        assert clock.sleeps == [1.5, 0.5]

    def test_advance_does_not_record(self):
        clock = FakeClock(start=10.0)
        clock.advance(5.0)
        assert clock.monotonic() == 15.0
        assert clock.sleeps == []

    def test_auto_advance_simulates_work(self):
        clock = FakeClock(auto_advance=1.0)
        first, second = clock.monotonic(), clock.monotonic()
        assert second - first == 1.0

    def test_negative_sleep_rejected(self):
        with pytest.raises(ValueError):
            FakeClock().sleep(-1.0)


class TestDeadline:
    def test_lifecycle(self):
        clock = FakeClock()
        deadline = Deadline(5.0, clock)
        assert not deadline.expired()
        assert deadline.remaining() == 5.0
        clock.advance(3.0)
        assert deadline.remaining() == 2.0
        deadline.check("work")  # still fine
        clock.advance(3.0)
        assert deadline.expired()
        with pytest.raises(DeadlineExceeded) as info:
            deadline.check("work")
        assert info.value.elapsed_seconds == 6.0

    def test_positive_horizon_required(self):
        with pytest.raises(ValueError):
            Deadline(0.0, FakeClock())


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(max_attempts=8, base_delay=1.0, max_delay=4.0,
                             multiplier=2.0, seed=3)
        for failures, ceiling in ((1, 1.0), (2, 2.0), (3, 4.0), (4, 4.0)):
            delay = policy.backoff(failures)
            assert 0.0 <= delay <= ceiling

    def test_seeded_schedule_replays(self):
        schedule = [RetryPolicy(seed=11).backoff(n) for n in (1, 2, 1, 3)]
        replay = [RetryPolicy(seed=11).backoff(n) for n in (1, 2, 1, 3)]
        assert schedule == replay

    def test_retries_transient_until_success(self):
        clock = FakeClock()
        calls = []

        def attempt():
            calls.append(len(calls))
            if len(calls) < 3:
                raise TransientEndpointError("flaky")
            return "ok"

        result, attempts = RetryPolicy(max_attempts=5, seed=1).run(
            attempt, clock=clock
        )
        assert (result, attempts) == ("ok", 3)
        assert len(clock.sleeps) == 2  # one backoff per failure

    def test_exhaustion_reraises(self):
        def attempt():
            raise TransientEndpointError("always")

        with pytest.raises(TransientEndpointError):
            RetryPolicy(max_attempts=3, seed=2).run(attempt, clock=FakeClock())

    def test_non_retryable_escapes_immediately(self):
        calls = []

        def attempt():
            calls.append(1)
            raise EndpointOutage("dead")

        with pytest.raises(EndpointOutage):
            RetryPolicy(max_attempts=5).run(attempt, clock=FakeClock())
        assert len(calls) == 1

    def test_no_sleep_past_deadline(self):
        clock = FakeClock()
        deadline = Deadline(0.001, clock)

        def attempt():
            raise TransientEndpointError("flaky")

        with pytest.raises(TransientEndpointError):
            RetryPolicy(max_attempts=5, base_delay=1.0, seed=4).run(
                attempt, clock=clock, deadline=deadline
            )
        # Backing off would overshoot the deadline, so no sleep happened
        # beyond possibly zero-length jitter draws.
        assert all(s <= 0.001 for s in clock.sleeps)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)


class TestCircuitBreaker:
    def test_opens_at_threshold(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, cooldown_seconds=10,
                                 clock=clock)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.times_opened == 1

    def test_open_refuses_and_counts(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown_seconds=10,
                                 clock=clock)
        breaker.record_failure()
        assert not breaker.allow()
        assert not breaker.allow()
        assert breaker.rejected_requests == 2
        with pytest.raises(CircuitOpen):
            breaker.check("shard-1")

    def test_half_open_probe_success_closes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown_seconds=10,
                                 clock=clock)
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.state == HALF_OPEN
        assert breaker.allow()  # the probe goes through
        breaker.record_success()
        assert breaker.state == CLOSED

    def test_half_open_probe_failure_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown_seconds=10,
                                 clock=clock)
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.state == HALF_OPEN
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.times_opened == 2
        clock.advance(9.0)
        assert breaker.state == OPEN  # fresh cooldown, not the old one
        clock.advance(1.0)
        assert breaker.state == HALF_OPEN

    def test_success_resets_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=2, clock=FakeClock())
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown_seconds=-1.0)


class TestExecutionBudget:
    def test_rows_within_budget(self):
        budget = ExecutionBudget(max_rows=10)
        budget.charge_rows(4, operator="Scan")
        budget.charge_rows(6, operator="Join")
        assert budget.rows_charged == 10

    def test_cumulative_overrun_raises_with_diagnostics(self):
        budget = ExecutionBudget(max_rows=10)
        budget.charge_rows(8, operator="Scan")
        with pytest.raises(BudgetExceeded) as info:
            budget.charge_rows(5, operator="Join")
        exc = info.value
        assert exc.kind == "rows"
        assert exc.rows_produced == 13
        assert exc.row_budget == 10
        assert exc.operator == "Join"
        assert exc.diagnostics()["kind"] == "rows"

    def test_probe_counts_in_flight_rows(self):
        budget = ExecutionBudget(max_rows=10)
        budget.charge_rows(8)
        budget.probe_rows(2)  # 8 committed + 2 in flight == 10: fine
        with pytest.raises(BudgetExceeded):
            budget.probe_rows(3)
        assert budget.rows_charged == 8  # probes never commit

    def test_time_budget_on_fake_clock(self):
        clock = FakeClock()
        budget = ExecutionBudget(max_seconds=5.0, clock=clock)
        budget.start()
        clock.advance(4.0)
        budget.check_time("Scan")
        clock.advance(2.0)
        with pytest.raises(BudgetExceeded) as info:
            budget.check_time("Join")
        assert info.value.kind == "time"
        assert info.value.elapsed_seconds == 6.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ExecutionBudget(max_rows=0)
        with pytest.raises(ValueError):
            ExecutionBudget(max_seconds=0.0)


class TestFaultPlan:
    def test_seed_determinism(self):
        kwargs = dict(transient_rate=0.4, latency_rate=0.3,
                      latency_seconds=0.1, truncation_rate=0.2,
                      truncation_limit=5)
        first = FaultPlan(seed=9, **kwargs)
        replay = FaultPlan(seed=9, **kwargs)
        for _ in range(32):
            a, b = first.decide(), replay.decide()
            assert (a.transient, a.latency_seconds, a.truncate_to) == (
                b.transient, b.latency_seconds, b.truncate_to
            )

    def test_order_stable_across_unrelated_rates(self):
        # Turning latency on must not change *which* requests fail
        # transiently: each axis consumes its own draw every request.
        plain = FaultPlan(seed=5, transient_rate=0.5)
        with_latency = FaultPlan(seed=5, transient_rate=0.5,
                                 latency_rate=1.0, latency_seconds=0.2)
        for _ in range(32):
            assert plain.decide().transient == with_latency.decide().transient

    def test_outage_after(self):
        plan = FaultPlan(seed=0, outage_after=2)
        decisions = [plan.decide() for _ in range(4)]
        assert [d.outage for d in decisions] == [False, False, True, True]

    def test_outage_from_start(self):
        plan = FaultPlan(seed=0, outage_after=0)
        assert plan.decide().outage

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(transient_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(truncation_rate=0.5)  # needs a limit
        with pytest.raises(ValueError):
            FaultPlan(outage_after=-1)
        with pytest.raises(ValueError):
            FaultPlan(latency_seconds=-0.1)


def _ten_row_endpoint(name="e", **kwargs):
    graph = Graph(
        [Triple(EX.term("s%d" % index), EX.p, EX.o) for index in range(10)]
    )
    return Endpoint(name, graph, **kwargs)


QUERY = ConjunctiveQuery([x], [TriplePattern(x, EX.p, EX.o)])


class TestChaosEndpoint:
    def test_transparent_without_faults(self):
        chaos = ChaosEndpoint(_ten_row_endpoint(), FaultPlan(seed=0))
        result = chaos.evaluate(QUERY)
        assert len(result) == 10
        assert not result.truncated
        assert chaos.name == "e"
        assert chaos.triple_count == 10

    def test_outage_raises(self):
        chaos = ChaosEndpoint(
            _ten_row_endpoint(), FaultPlan(seed=0, outage_after=0)
        )
        with pytest.raises(EndpointOutage):
            chaos.evaluate(QUERY)
        assert chaos.faults_injected["outage"] == 1
        # The wrapped endpoint never saw the request.
        assert chaos.inner.requests_served == 0

    def test_transient_raises(self):
        chaos = ChaosEndpoint(
            _ten_row_endpoint(), FaultPlan(seed=0, transient_rate=1.0)
        )
        with pytest.raises(TransientEndpointError):
            chaos.evaluate(QUERY)
        assert chaos.faults_injected["transient"] == 1

    def test_latency_charged_to_injected_clock(self):
        clock = FakeClock()
        chaos = ChaosEndpoint(
            _ten_row_endpoint(),
            FaultPlan(seed=0, latency_rate=1.0, latency_seconds=0.25),
            clock=clock,
        )
        chaos.evaluate(QUERY)
        assert clock.sleeps == [0.25]
        assert chaos.faults_injected["latency"] == 1

    def test_flaky_truncation_matches_real_truncation(self):
        # Satellite check: injected truncation must produce the *same
        # rows* as an endpoint whose genuine result_limit is the same —
        # both go through truncate_rows.
        chaos = ChaosEndpoint(
            _ten_row_endpoint(),
            FaultPlan(seed=0, truncation_rate=1.0, truncation_limit=3),
        )
        genuine = _ten_row_endpoint(result_limit=3)
        flaky = chaos.evaluate(QUERY)
        real = genuine.evaluate(QUERY)
        assert flaky.truncated and real.truncated
        assert flaky.rows == real.rows
        assert chaos.faults_injected["truncation"] == 1

    def test_reset_counters(self):
        chaos = ChaosEndpoint(_ten_row_endpoint(), FaultPlan(seed=0))
        chaos.evaluate(QUERY)
        chaos.reset_counters()
        assert chaos.requests_served == 0
        assert chaos.inner.requests_served == 0
        assert all(v == 0 for v in chaos.faults_injected.values())


class TestTruncateRows:
    def test_sorted_prefix(self):
        rows, truncated = truncate_rows({(3,), (1,), (2,)}, 2)
        assert (sorted(rows), truncated) == ([(1,), (2,)], True)

    def test_no_limit(self):
        rows, truncated = truncate_rows({(1,), (2,)}, None)
        assert (len(rows), truncated) == (2, False)

    def test_under_limit(self):
        rows, truncated = truncate_rows({(1,)}, 5)
        assert (len(rows), truncated) == (1, False)
