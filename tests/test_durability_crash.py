"""The crash-recovery property harness (the tentpole's contract).

For seeded random operation sequences (triple inserts/deletes,
constraint adds/removes, checkpoints), the harness:

1. runs a *trace* pass through a counting
   :class:`~repro.resilience.faults.CrashingFileSystem` to learn the
   cumulative byte boundary each operation ends at;
2. picks crash offsets — every operation boundary (clean-crash states)
   plus seeded interior bytes (torn records) via
   :class:`~repro.resilience.faults.CrashPlan`;
3. re-runs the same sequence with a write budget of each offset, lets
   the filesystem "die", recovers with a fresh one, and asserts the
   recovered store **equals replaying the operation prefix** whose
   boundary fits the budget: triples, schema closure, per-property
   statistics (keyed by decoded term), incremental saturation, and
   query answers.

The rename windows of checkpoint publication get their own leg
(``crash_on_replace`` before/after), where both sides of the atomic
rename must land on the same logical state.

The base seed derives from ``REPRO_CHAOS_SEED`` (the CI crash-recovery
matrix sets three fixed values), so each leg replays a distinct
deterministic crash schedule.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.durability import (
    DurableStore,
    FileSystem,
    apply_op,
    OP_DELETE,
    OP_INSERT,
    recover,
    verify_recovery,
    wal_path,
)
from repro.durability.ops import apply_constraint_add, apply_constraint_remove
from repro.query import TriplePattern, ConjunctiveQuery, Variable, evaluate
from repro.rdf import Namespace, RDF_TYPE, Triple
from repro.resilience import CrashPlan, CrashingFileSystem, SimulatedCrash
from repro.saturation import IncrementalSaturator
from repro.schema import Constraint
from repro.storage import TripleStore

#: CI sets this per matrix leg; locally the default keeps runs stable.
CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))

EX = Namespace("http://example.org/")

CLASSES = [EX.term("C%d" % index) for index in range(4)]
PROPERTIES = [EX.term("p%d" % index) for index in range(3)]
INDIVIDUALS = [EX.term("i%d" % index) for index in range(5)]

#: A small closed pool so random deletes hit existing triples and
#: random re-inserts exercise the no-op (not-logged) path.
TRIPLE_POOL = [
    Triple(individual, RDF_TYPE, cls)
    for individual in INDIVIDUALS[:3]
    for cls in CLASSES[:3]
] + [
    Triple(INDIVIDUALS[index], prop, INDIVIDUALS[(index + 1) % 5])
    for index in range(5)
    for prop in PROPERTIES
]

CONSTRAINT_POOL = [
    Constraint.subclass(CLASSES[0], CLASSES[1]),
    Constraint.subclass(CLASSES[1], CLASSES[2]),
    Constraint.subclass(CLASSES[2], CLASSES[3]),
    Constraint.subproperty(PROPERTIES[0], PROPERTIES[1]),
    Constraint.domain(PROPERTIES[1], CLASSES[0]),
    Constraint.range(PROPERTIES[2], CLASSES[3]),
]

#: The query whose answers must survive every crash: all members of
#: the deepest superclass, via one property — exercises both class and
#: property entailment over the recovered saturation.
PROBE_QUERY = ConjunctiveQuery(
    [Variable("x")],
    [TriplePattern(Variable("x"), RDF_TYPE, CLASSES[2])],
)


def random_ops(rng: random.Random, count: int = 26):
    """A seeded operation sequence over the closed pools."""
    ops = []
    for _ in range(count):
        roll = rng.random()
        if roll < 0.45:
            ops.append(("insert", rng.choice(TRIPLE_POOL)))
        elif roll < 0.65:
            ops.append(("delete", rng.choice(TRIPLE_POOL)))
        elif roll < 0.80:
            ops.append(("constraint-add", rng.choice(CONSTRAINT_POOL)))
        elif roll < 0.90:
            ops.append(("constraint-remove", rng.choice(CONSTRAINT_POOL)))
        else:
            ops.append(("checkpoint", None))
    return ops


def run_op(durable: DurableStore, kind: str, argument) -> None:
    if kind == "insert":
        durable.insert(argument)
    elif kind == "delete":
        durable.delete(argument)
    elif kind == "constraint-add":
        durable.add_constraint(argument)
    elif kind == "constraint-remove":
        durable.remove_constraint(argument)
    else:
        durable.checkpoint()


def expected_state(ops):
    """Replay an operation prefix in memory through the *same* shared
    apply functions the live path and recovery use — the definition of
    the prefix-equality contract."""
    store = TripleStore()
    saturator = IncrementalSaturator()
    for kind, argument in ops:
        if kind == "insert":
            apply_op(store, saturator, OP_INSERT, argument)
        elif kind == "delete":
            apply_op(store, saturator, OP_DELETE, argument)
        elif kind == "constraint-add":
            apply_constraint_add(store, saturator, argument)
        elif kind == "constraint-remove":
            apply_constraint_remove(store, saturator, argument)
        # checkpoints change no logical state
    return store, saturator


def per_property_stats(store: TripleStore):
    """Per-property statistics keyed by decoded term (id assignment
    differs between recovery and a fresh build)."""
    return {
        store.dictionary.decode(property_id): (
            stats.triples,
            stats.distinct_subjects,
            stats.distinct_objects,
        )
        for property_id, stats in store.statistics.per_property.items()
    }


def assert_equals_prefix(result, prefix, context: str) -> None:
    """The full prefix-equality contract for one recovery."""
    expected_store, expected_saturator = expected_state(prefix)
    assert set(result.store.to_graph()) == set(expected_store.to_graph()), context
    assert set(result.store.schema.entailed_triples()) == set(
        expected_store.schema.entailed_triples()), context
    assert per_property_stats(result.store) == per_property_stats(
        expected_store), context
    assert set(result.saturator.saturated()) == set(
        expected_saturator.saturated()), context
    # Query-answer equality over the recovered saturation (the Sat
    # strategy's answering path).
    assert evaluate(result.saturator.saturated(), PROBE_QUERY) == evaluate(
        expected_saturator.saturated(), PROBE_QUERY), context
    assert verify_recovery(result) == [], context


def trace_boundaries(directory: str, ops):
    """Pass 1: run the full sequence, recording the cumulative byte
    count after each operation."""
    filesystem = CrashingFileSystem(FileSystem())
    durable = DurableStore.open(directory, io=filesystem, sync="never")
    boundaries = []
    for kind, argument in ops:
        run_op(durable, kind, argument)
        boundaries.append(filesystem.bytes_written)
    durable.close()
    return boundaries


@pytest.mark.parametrize("case", range(3))
def test_recovery_equals_operation_prefix_at_every_crash_point(
    case, tmp_path
):
    rng = random.Random(CHAOS_SEED * 1000 + case)
    ops = random_ops(rng)
    boundaries = trace_boundaries(str(tmp_path / "trace"), ops)
    total_bytes = boundaries[-1]
    plan = CrashPlan(seed=CHAOS_SEED * 1000 + case, interior_samples=6)
    offsets = plan.pick_offsets(total_bytes, boundaries=[0] + boundaries)

    for offset in offsets:
        directory = str(tmp_path / ("crash-%d" % offset))
        filesystem = CrashingFileSystem(FileSystem(), write_budget=offset)
        durable = DurableStore.open(directory, io=filesystem, sync="never")
        crashed = False
        try:
            for kind, argument in ops:
                run_op(durable, kind, argument)
            durable.close()
        except SimulatedCrash:
            crashed = True
        assert crashed == (offset < total_bytes)

        # "Restart the process": a fresh filesystem, then recover.
        result = recover(directory, io=FileSystem(), with_saturator=True)
        survivors = sum(1 for boundary in boundaries if boundary <= offset)
        assert_equals_prefix(
            result,
            ops[:survivors],
            "case %d crash at byte %d/%d (%d of %d ops survive)"
            % (case, offset, total_bytes, survivors, len(ops)),
        )


@pytest.mark.parametrize("case", range(3))
@pytest.mark.parametrize("when", ["before", "after"])
def test_checkpoint_rename_windows_are_atomic(case, when, tmp_path):
    """Both sides of the checkpoint's atomic rename recover to the
    identical logical state: everything up to the checkpoint call."""
    rng = random.Random(CHAOS_SEED * 2000 + case)
    ops = random_ops(rng)
    try:
        first_checkpoint = next(
            index for index, (kind, _) in enumerate(ops)
            if kind == "checkpoint")
    except StopIteration:
        ops = ops + [("checkpoint", None)]
        first_checkpoint = len(ops) - 1

    directory = str(tmp_path / ("rename-%s" % when))
    filesystem = CrashingFileSystem(FileSystem(), crash_on_replace=when)
    durable = DurableStore.open(directory, io=filesystem, sync="never")
    with pytest.raises(SimulatedCrash):
        for kind, argument in ops:
            run_op(durable, kind, argument)

    result = recover(directory, io=FileSystem(), with_saturator=True)
    if when == "after":
        # Published: recovery must come from the new checkpoint.
        assert result.checkpoint_sequence == 1
    assert_equals_prefix(
        result,
        ops[:first_checkpoint],
        "case %d crash %s rename at op %d" % (case, when, first_checkpoint),
    )


def test_recovery_is_idempotent(tmp_path):
    """Recovering twice (crash during/after recovery's truncation)
    yields the same state — recovery itself is crash-safe."""
    rng = random.Random(CHAOS_SEED + 77)
    ops = random_ops(rng)
    directory = str(tmp_path / "idem")
    trace_boundaries(directory, ops)
    # Tear the tail by hand: append garbage to the *live* segment (the
    # one recovery resumes from — after a trailing checkpoint that is
    # a not-yet-created segment, so create-and-tear it).
    probe = recover(directory, io=FileSystem())
    io = FileSystem()
    io.append(wal_path(directory, probe.wal_segment), b"\x00\x01garbage")
    io.close_all()

    first = recover(directory, io=FileSystem(), with_saturator=True)
    second = recover(directory, io=FileSystem(), with_saturator=True)
    assert first.truncated and not second.truncated
    assert set(first.store.to_graph()) == set(second.store.to_graph())
    assert set(first.saturator.saturated()) == set(
        second.saturator.saturated())
    assert per_property_stats(first.store) == per_property_stats(second.store)
