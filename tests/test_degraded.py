"""Degraded-mode serving: the brownout ladder, health-gated admission,
stale-while-revalidate, the watchdog, and the service-level chaos
adapter.

Everything here is seeded and :class:`~repro.resilience.clock.FakeClock`
driven — the chaos-serving CI matrix replays this file under several
``REPRO_CHAOS_SEED`` × ``PYTHONHASHSEED`` pairs.  Covered:

* the ladder: one level per round under pressure, hysteresis band
  holds, de-escalation needs ``recovery_rounds`` consecutive clear
  rounds, the refresh-failure canary blocks recovery, budgets tighten
  at partial-answers and above;
* health-gated admission: shed-new-work refuses with a retry hint,
  per-tenant breakers quarantine a pathological tenant without
  escalating the ladder for everyone else, breaker sheds carry the
  cooldown as ``retry_after``;
* stale-while-revalidate: expired entries served flagged and
  subset-correct, single-flight refreshes, the freshness window bound;
* the watchdog: a hard wall-clock ceiling min'd into every budget;
* the chaos adapter: seeded determinism, disarmed draws not consumed,
  injected latency on the service clock;
* hypothesis properties: degraded/stale answers are never cached as
  fresh entries, and a stale serve never outlives the policy's epoch
  window;
* an availability mini-scenario (E19 in miniature).
"""

import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import QueryAnswerer
from repro.query import parse_query
from repro.rdf import Graph, Namespace, RDF_TYPE, RDFS_SUBCLASSOF, Triple
from repro.resilience.breaker import CLOSED, OPEN
from repro.resilience.clock import FakeClock
from repro.resilience.errors import (
    BudgetExceeded,
    EndpointOutage,
    TransientEndpointError,
)
from repro.resilience.faults import FaultPlan
from repro.service import (
    AdmissionRejected,
    BrownoutController,
    BrownoutPolicy,
    DONE,
    FAILED,
    HealthMonitor,
    HealthSignals,
    NORMAL,
    NO_PARALLELISM,
    PARTIAL_ANSWERS,
    QueryRequest,
    QueryService,
    REASON_BROWNOUT,
    REASON_TENANT_BREAKER,
    SHED_NEW_WORK,
    STALE_SERVING,
    ServiceChaos,
    TenantConfig,
)

#: The CI chaos-matrix seed convention (same as the resilience tests).
CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))

EX = Namespace("http://example.org/degraded/")

STUDENT_QUERY = (
    "SELECT ?x WHERE { ?x rdf:type <http://example.org/degraded/Student> }"
)


def tiny_dataset():
    """Two students (one via subclass entailment) and a student query."""
    graph = Graph()
    graph.add(Triple(EX.Grad, RDFS_SUBCLASSOF, EX.Student))
    graph.add(Triple(EX.alice, RDF_TYPE, EX.Grad))
    graph.add(Triple(EX.bob, RDF_TYPE, EX.Student))
    return graph, parse_query(STUDENT_QUERY)


def signals(**overrides):
    return HealthSignals(**overrides)


def make_service(graph, *, clock=None, **kwargs):
    clock = clock if clock is not None else FakeClock(auto_advance=0.001)
    kwargs.setdefault("tenants", ["solo"])
    kwargs.setdefault("capacity", 2)
    return QueryService(graph, clock=clock, **kwargs)


def round_trip(service, tenant, query, **kwargs):
    """Submit one request and run one scheduling round."""
    ticket = service.submit(QueryRequest(tenant, query, **kwargs))
    service.step()
    return ticket


def bump_epoch(service, label):
    """One irrelevant insert: expires cached answers, changes no
    query's result."""
    assert service.insert(Triple(EX[label], RDF_TYPE, EX.Noise))


# ---------------------------------------------------------------------------
# The ladder itself (synthetic signals, no service)


class TestBrownoutLadder:
    def test_escalates_one_level_per_round_and_saturates(self):
        ladder = BrownoutController(clock=FakeClock())
        pressured = signals(failure_fraction=1.0)
        levels = [ladder.observe(pressured) for _ in range(7)]
        assert levels == [1, 2, 3, 4, 5, 5, 5]
        assert ladder.level == SHED_NEW_WORK
        assert all(t[2] - t[1] == 1 for t in ladder.transitions)

    def test_each_signal_escalates_and_is_named_in_the_reason(self):
        for kwargs, needle in [
            (dict(queue_fraction=0.9), "queue"),
            (dict(latency_ewma=1.0), "latency"),
            (dict(shed_fraction=0.9), "shed"),
            (dict(failure_fraction=0.9), "failures"),
        ]:
            ladder = BrownoutController(clock=FakeClock())
            assert ladder.observe(signals(**kwargs)) == NO_PARALLELISM
            assert needle in ladder.transitions[-1][3]

    def test_recovery_needs_consecutive_clear_rounds(self):
        ladder = BrownoutController(
            BrownoutPolicy(recovery_rounds=3), clock=FakeClock()
        )
        ladder.force(PARTIAL_ANSWERS)
        clear = signals()
        assert ladder.observe(clear) == PARTIAL_ANSWERS
        assert ladder.observe(clear) == PARTIAL_ANSWERS
        assert ladder.observe(clear) == NO_PARALLELISM  # 3rd clear round
        # The streak restarts per level: two more clears hold.
        assert ladder.observe(clear) == NO_PARALLELISM
        assert ladder.observe(clear) == NO_PARALLELISM
        assert ladder.observe(clear) == NORMAL

    def test_hysteresis_band_holds_level_and_resets_streak(self):
        policy = BrownoutPolicy(
            failure_high=0.5, clear_factor=0.5, recovery_rounds=2
        )
        ladder = BrownoutController(policy, clock=FakeClock())
        ladder.force(STALE_SERVING)
        # 0.3 is under failure_high (no escalation) but over
        # clear_factor * failure_high = 0.25 (not clear): the band.
        band = signals(failure_fraction=0.3)
        clear = signals()
        assert ladder.observe(clear) == STALE_SERVING  # streak 1
        assert ladder.observe(band) == STALE_SERVING  # streak reset
        assert ladder.observe(clear) == STALE_SERVING  # streak 1 again
        assert ladder.observe(clear) == PARTIAL_ANSWERS

    def test_refresh_canary_blocks_recovery_without_escalating(self):
        ladder = BrownoutController(
            BrownoutPolicy(recovery_rounds=1), clock=FakeClock()
        )
        ladder.force(STALE_SERVING)
        # Every user-visible signal is clear, but refreshes still fail:
        # the fault is merely masked, so the ladder must hold.
        canary = signals(refresh_failure_fraction=1.0)
        for _ in range(5):
            assert ladder.observe(canary) == STALE_SERVING
        assert ladder.observe(signals()) == PARTIAL_ANSWERS

    def test_effective_budgets_tighten_only_at_partial_answers(self):
        ladder = BrownoutController(
            BrownoutPolicy(budget_factor=0.5), clock=FakeClock()
        )
        ladder.force(NO_PARALLELISM)
        assert ladder.effective_budgets(100, 2.0) == (100, 2.0)
        ladder.force(PARTIAL_ANSWERS)
        assert ladder.effective_budgets(100, 2.0) == (50, 1.0)
        assert ladder.effective_budgets(1, None) == (1, None)  # floor at 1
        explicit = BrownoutController(
            BrownoutPolicy(degraded_row_budget=7, degraded_time_budget=0.25),
            clock=FakeClock(),
        )
        explicit.force(STALE_SERVING)
        assert explicit.effective_budgets(100, 2.0) == (7, 0.25)

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            BrownoutPolicy(clear_factor=0.0)
        with pytest.raises(ValueError):
            BrownoutPolicy(recovery_rounds=0)
        with pytest.raises(ValueError):
            BrownoutPolicy(stale_max_epochs=0)

    def test_force_is_audited(self):
        ladder = BrownoutController(clock=FakeClock())
        ladder.force(SHED_NEW_WORK, "operator drill")
        assert ladder.shed_new_work
        payload = ladder.as_dict()
        assert payload["transitions"][-1]["reason"] == "operator drill"
        assert payload["level_name"] == "shed-new-work"


# ---------------------------------------------------------------------------
# Health monitor (unit)


class TestHealthMonitor:
    def test_round_counters_fold_and_reset(self):
        monitor = HealthMonitor(
            ["a"], total_queue_depth=4, clock=FakeClock()
        )
        monitor.note_submitted()
        monitor.note_submitted()
        monitor.note_shed()
        monitor.note_completed("a", 0.1)
        monitor.note_failure("a")
        first = monitor.end_round(backlog=2)
        assert first.attempts == 2
        assert first.failure_fraction == pytest.approx(0.5)
        assert first.shed_fraction == pytest.approx(0.5)
        assert first.queue_fraction == pytest.approx(0.5)
        assert first.failure_rounds == 1
        # A quiet round decays the EWMAs and clears the failure streak.
        second = monitor.end_round(backlog=0)
        assert second.attempts == 0
        assert second.failure_fraction == 0.0
        assert second.failure_rounds == 0
        assert second.shed_fraction < first.shed_fraction

    def test_stale_completions_do_not_reset_the_breaker(self):
        monitor = HealthMonitor(
            ["a"], clock=FakeClock(), breaker_threshold=3
        )
        monitor.note_failure("a")
        monitor.note_failure("a")
        # A stale serve answers the tenant without touching the
        # backend — it must not be evidence the backend recovered.
        monitor.note_completed("a", 0.01, stale=True)
        monitor.note_failure("a")
        assert monitor.breaker_for("a").state == OPEN
        # A genuine completion does reset.
        fresh = HealthMonitor(["b"], clock=FakeClock(), breaker_threshold=3)
        fresh.note_failure("b")
        fresh.note_failure("b")
        fresh.note_completed("b", 0.01)
        fresh.note_failure("b")
        assert fresh.breaker_for("b").state == CLOSED

    def test_refresh_failures_feed_the_canary_not_the_breakers(self):
        monitor = HealthMonitor(
            ["a"], clock=FakeClock(), breaker_threshold=1
        )
        monitor.note_refresh(ok=False)
        assert monitor.breaker_for("a").state == CLOSED
        round_signals = monitor.end_round(backlog=0)
        assert round_signals.refresh_failure_fraction == 1.0
        assert round_signals.failure_fraction == 0.0


# ---------------------------------------------------------------------------
# The serving loop under the ladder


class TestDegradedService:
    def test_ladder_climbs_serves_stale_then_recovers(self):
        graph, query = tiny_dataset()
        clock = FakeClock(auto_advance=0.001)
        chaos = ServiceChaos(
            FaultPlan(seed=CHAOS_SEED, transient_rate=1.0),
            clock=clock,
            armed=False,
        )
        service = make_service(
            graph,
            clock=clock,
            brownout=BrownoutPolicy(recovery_rounds=1),
            chaos=chaos,
            breaker_threshold=0,
        )
        truth = sorted(QueryAnswerer(graph).answer(query).answer)
        warm = round_trip(service, "solo", query)
        assert warm.status == DONE and warm.cache == "miss"
        bump_epoch(service, "noise-1")
        chaos.arm()
        # Three failing rounds climb NORMAL → STALE_SERVING...
        failures = [round_trip(service, "solo", query) for _ in range(3)]
        assert [t.status for t in failures] == [FAILED] * 3
        assert all(
            isinstance(t.error, TransientEndpointError) for t in failures
        )
        assert service.brownout.level == STALE_SERVING
        # ...then the expired warm entry answers, flagged, subset-true,
        # while the (failing) refresh canary holds the level.
        stale = round_trip(service, "solo", query)
        assert stale.status == DONE and stale.cache == "stale"
        assert stale.stale and not stale.degraded
        assert stale.report.details["stale"]["age_epochs"] == 1
        assert sorted(stale.answer) == truth
        assert service.brownout.level == STALE_SERVING
        assert service.health.refresh_failures >= 1
        # Fault clears: the refresh succeeds and stores a fresh entry,
        # and the ladder walks all the way back down.
        chaos.disarm()
        recovered = round_trip(service, "solo", query)
        assert recovered.status == DONE
        for _ in range(6):
            service.step()
        assert service.brownout.level == NORMAL
        fresh = round_trip(service, "solo", query)
        assert fresh.cache == "hit" and not fresh.stale
        assert sorted(fresh.answer) == truth
        # The audit trail shows the full round trip.
        trail = [(t["from"], t["to"]) for t in service.brownout.as_dict()["transitions"]]
        assert (2, 3) in trail and (1, 0) in trail

    def test_shed_new_work_refuses_with_retry_hint(self):
        graph, query = tiny_dataset()
        service = make_service(graph, brownout=True)
        service.brownout.force(SHED_NEW_WORK, "test")
        with pytest.raises(AdmissionRejected) as caught:
            service.submit(QueryRequest("solo", query))
        exc = caught.value
        assert exc.reason == REASON_BROWNOUT
        assert exc.retry_after is not None
        assert exc.diagnostics()["reason"] == REASON_BROWNOUT
        assert service.metrics.tenants["solo"].shed[REASON_BROWNOUT] == 1
        # Brownout sheds are the remedy, not overload evidence: they
        # must not feed the shed signal that escalates the ladder.
        round_signals = service.health.end_round(backlog=0)
        assert round_signals.shed_fraction == 0.0

    def test_breaker_quarantines_one_tenant_without_degrading_others(self):
        graph, query = tiny_dataset()
        clock = FakeClock(auto_advance=0.001)
        service = make_service(
            graph,
            clock=clock,
            tenants=[
                TenantConfig("good"),
                # A row budget the 2-row answer always exceeds: every
                # request of this tenant fails deterministically.
                TenantConfig("bad", request_rows=1),
            ],
            brownout=True,
            breaker_threshold=3,
            breaker_cooldown=5.0,
        )
        for _ in range(3):
            good = service.submit(QueryRequest("good", query))
            bad = service.submit(QueryRequest("bad", query))
            service.step()
            assert good.status == DONE
            assert bad.status == FAILED
            assert isinstance(bad.error, BudgetExceeded)
        assert service.health.breaker_for("bad").state == OPEN
        assert service.health.breaker_for("good").state == CLOSED
        # The pathological tenant is shed at the door, cooldown as the
        # retry hint...
        with pytest.raises(AdmissionRejected) as caught:
            service.submit(QueryRequest("bad", query))
        assert caught.value.reason == REASON_TENANT_BREAKER
        assert 0 < caught.value.retry_after <= 5.0
        # ...while the other tenant still gets NORMAL service: the bad
        # tenant's failures never exceeded the global failure_high.
        assert service.brownout.level == NORMAL
        assert round_trip(service, "good", query).status == DONE
        # After the cooldown the breaker re-admits (half-open probe).
        clock.sleep(5.0)
        probe = service.submit(QueryRequest("bad", query))
        assert probe is not None
        # Budget attribution survived the quarantine: the overruns name
        # the bad tenant's own requests.
        bucket = service.metrics.tenants["bad"]
        assert bucket.failures_by_reason == {"BudgetExceeded": 3}
        assert bucket.aborted.get("rows") == 3
        assert all(owner.startswith("bad/req-") for owner in bucket.aborted_requests)

    def test_degraded_partials_are_flagged_subsets_and_never_cached(self):
        graph, query = tiny_dataset()
        truth = sorted(QueryAnswerer(graph, engine="pipelined").answer(query).answer)
        service = make_service(
            graph,
            engine="pipelined",
            brownout=BrownoutPolicy(degraded_row_budget=1),
            breaker_threshold=0,
        )
        service.brownout.force(PARTIAL_ANSWERS, "test")
        partial = round_trip(service, "solo", query)
        assert partial.status == DONE and partial.degraded
        assert partial.report.details["partial"]
        # The 1-row degraded budget trips mid-evaluation; the flagged
        # answer is whatever emitted before the trip — always a strict
        # subset, possibly empty.
        assert len(partial.answer) < len(truth)
        assert set(partial.answer) < set(truth)
        assert service.metrics.tenants["solo"].degraded == 1
        # Back at NORMAL the same query must recompute in full — the
        # truncated answer was never written into the cache.
        service.brownout.force(NORMAL, "test")
        full = round_trip(service, "solo", query)
        assert full.cache == "miss" and not full.degraded
        assert sorted(full.answer) == truth

    def test_stale_window_is_bounded_by_policy(self):
        graph, query = tiny_dataset()
        clock = FakeClock(auto_advance=0.001)
        chaos = ServiceChaos(
            FaultPlan(seed=CHAOS_SEED, transient_rate=1.0),
            clock=clock,
            armed=False,
        )
        service = make_service(
            graph,
            clock=clock,
            brownout=BrownoutPolicy(stale_max_epochs=1),
            chaos=chaos,
            breaker_threshold=0,
        )
        round_trip(service, "solo", query)
        bump_epoch(service, "noise-1")
        bump_epoch(service, "noise-2")
        service.brownout.force(STALE_SERVING, "test")
        chaos.arm()
        # The warm entry is now 2 epochs old — outside the window, so
        # the service must fail rather than serve it.
        too_old = round_trip(service, "solo", query)
        assert too_old.status == FAILED

    def test_stale_refresh_is_single_flight(self):
        graph, query = tiny_dataset()
        clock = FakeClock(auto_advance=0.001)
        chaos = ServiceChaos(
            FaultPlan(seed=CHAOS_SEED, transient_rate=1.0),
            clock=clock,
            armed=False,
        )
        # refreshes_per_round=0: scheduled refreshes stay pending, so
        # the single-flight guard is observable across rounds.
        service = make_service(
            graph,
            clock=clock,
            tenants=[TenantConfig("solo", queue_depth=8)],
            brownout=BrownoutPolicy(refreshes_per_round=0),
            chaos=chaos,
            breaker_threshold=0,
        )
        round_trip(service, "solo", query)
        bump_epoch(service, "noise-1")
        service.brownout.force(STALE_SERVING, "test")
        chaos.arm()
        first = round_trip(service, "solo", query)
        second = round_trip(service, "solo", query)
        assert first.cache == second.cache == "stale"
        assert first.report.details["stale"]["refresh_scheduled"] is True
        assert second.report.details["stale"]["refresh_scheduled"] is False
        assert service.health_report()["pending_refreshes"] == 1

    def test_watchdog_caps_every_time_budget(self):
        graph, query = tiny_dataset()
        service = make_service(
            graph,
            tenants=[
                TenantConfig("capped", request_seconds=10.0),
                TenantConfig("unbounded"),
            ],
            watchdog_seconds=0.5,
        )
        capped = service._budget_kwargs(
            service.admission.tenants["capped"], "capped/req-1", degrade=False
        )
        assert capped["time_budget"] == 0.5  # min(10.0, watchdog)
        unbounded = service._budget_kwargs(
            service.admission.tenants["unbounded"], "unbounded/req-2", degrade=False
        )
        assert unbounded["time_budget"] == 0.5  # watchdog alone
        assert unbounded["budget_owner"] == "unbounded/req-2"
        # A tighter tenant budget wins over a looser watchdog.
        service.watchdog_seconds = 60.0
        loose = service._budget_kwargs(
            service.admission.tenants["capped"], "capped/req-3", degrade=False
        )
        assert loose["time_budget"] == 10.0

    def test_watchdog_rejects_nonpositive_and_skips_sqlite(self):
        graph, query = tiny_dataset()
        with pytest.raises(ValueError):
            make_service(graph, watchdog_seconds=0.0)
        sqlite_service = make_service(
            graph, engine="sqlite", watchdog_seconds=0.5
        )
        # SQLite evaluations cannot carry execution budgets; the
        # watchdog must not smuggle one in.
        kwargs = sqlite_service._budget_kwargs(
            sqlite_service.admission.tenants["solo"], "solo/req-1", degrade=False
        )
        assert kwargs == {}
        assert round_trip(sqlite_service, "solo", query).status == DONE

    def test_health_report_shape(self):
        graph, query = tiny_dataset()
        service = make_service(graph, brownout=True, watchdog_seconds=2.0)
        round_trip(service, "solo", query)
        report = service.describe()["health"]
        assert report["watchdog_seconds"] == 2.0
        assert report["pending_refreshes"] == 0
        assert report["monitor"]["rounds"] == 1
        assert report["brownout"]["level_name"] == "normal"
        breaker = report["breakers"]["solo"]
        assert breaker["state"] == CLOSED
        assert breaker["cooldown_remaining"] == 0.0


# ---------------------------------------------------------------------------
# The chaos adapter


class TestServiceChaos:
    def test_same_seed_replays_the_same_fault_schedule(self):
        def run():
            chaos = ServiceChaos(
                FaultPlan(seed=CHAOS_SEED + 1, transient_rate=0.5),
                clock=FakeClock(),
            )
            outcomes = []
            for _ in range(20):
                try:
                    chaos.maybe_fail()
                except TransientEndpointError:
                    outcomes.append("fault")
                else:
                    outcomes.append("ok")
            return outcomes, chaos.as_dict()["injected"]

        assert run() == run()

    def test_disarmed_calls_consume_no_draws(self):
        chaos = ServiceChaos(
            FaultPlan(seed=CHAOS_SEED, transient_rate=1.0),
            clock=FakeClock(),
            armed=False,
        )
        for _ in range(5):
            chaos.maybe_fail()  # no-ops: the fault window is closed
        assert chaos.plan.requests_seen == 0
        chaos.arm()
        with pytest.raises(TransientEndpointError):
            chaos.maybe_fail()
        assert chaos.plan.requests_seen == 1
        assert chaos.as_dict()["injected"]["transient"] == 1

    def test_outage_injection(self):
        chaos = ServiceChaos(
            FaultPlan(seed=CHAOS_SEED, outage_after=0), clock=FakeClock()
        )
        with pytest.raises(EndpointOutage):
            chaos.maybe_fail()
        assert chaos.as_dict()["injected"]["outage"] == 1

    def test_latency_is_slept_on_the_service_clock(self):
        clock = FakeClock()
        chaos = ServiceChaos(
            FaultPlan(seed=CHAOS_SEED, latency_rate=1.0, latency_seconds=0.25),
            clock=clock,
        )
        before = clock.monotonic()
        chaos.maybe_fail()  # latency only: the request still succeeds
        assert clock.monotonic() - before == pytest.approx(0.25)
        assert chaos.as_dict()["injected"]["latency"] == 1


# ---------------------------------------------------------------------------
# Freshness-contract properties


class TestFreshnessProperties:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        bumps=st.integers(min_value=1, max_value=3),
        window=st.integers(min_value=1, max_value=2),
    )
    def test_stale_serves_never_outlive_the_epoch_window(self, bumps, window):
        """A stale serve happens iff the entry's age fits the policy
        window — and afterwards, the entry is never promoted to fresh:
        once the fault clears, the same query recomputes exactly."""
        graph, query = tiny_dataset()
        clock = FakeClock(auto_advance=0.001)
        chaos = ServiceChaos(
            FaultPlan(seed=CHAOS_SEED, transient_rate=1.0),
            clock=clock,
            armed=False,
        )
        service = make_service(
            graph,
            clock=clock,
            brownout=BrownoutPolicy(
                stale_max_epochs=window, refreshes_per_round=0
            ),
            chaos=chaos,
            breaker_threshold=0,
        )
        truth = sorted(QueryAnswerer(graph).answer(query).answer)
        warm = round_trip(service, "solo", query)
        assert warm.status == DONE
        for bump in range(bumps):
            bump_epoch(service, "noise-%d" % bump)
        service.brownout.force(STALE_SERVING, "property")
        chaos.arm()
        probe = round_trip(service, "solo", query)
        if bumps <= window:
            assert probe.status == DONE and probe.stale
            assert probe.report.details["stale"]["age_epochs"] == bumps
            assert set(probe.answer) <= set(truth)
        else:
            # Outside the window: failing honestly beats serving an
            # answer of unbounded age.
            assert probe.status == FAILED
        # Fault over: the stale entry must not satisfy a fresh lookup.
        chaos.disarm()
        service.brownout.force(NORMAL, "property")
        fresh = round_trip(service, "solo", query)
        assert fresh.status == DONE
        assert not fresh.stale and not fresh.degraded
        assert fresh.cache == "miss"  # recomputed, not served stale
        assert sorted(fresh.answer) == truth

    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        row_budget=st.integers(min_value=1, max_value=2),
        repeats=st.integers(min_value=1, max_value=3),
    )
    def test_degraded_partials_never_become_cache_entries(
        self, row_budget, repeats
    ):
        """However many truncated answers go out under partial-answers
        mode, the cache never holds one: the first NORMAL-level request
        recomputes the exact answer."""
        graph, query = tiny_dataset()
        service = make_service(
            graph,
            engine="pipelined",
            tenants=[TenantConfig("solo", queue_depth=8)],
            brownout=BrownoutPolicy(degraded_row_budget=row_budget),
            breaker_threshold=0,
        )
        truth = sorted(
            QueryAnswerer(graph, engine="pipelined").answer(query).answer
        )
        service.brownout.force(PARTIAL_ANSWERS, "property")
        any_degraded = False
        for _ in range(repeats):
            ticket = round_trip(service, "solo", query)
            assert ticket.status == DONE
            if ticket.degraded:
                any_degraded = True
                assert set(ticket.answer) < set(truth)
            else:
                # The degraded budget happened to fit the full answer —
                # an unflagged (and cacheable) exact response.
                assert sorted(ticket.answer) == truth
        service.brownout.force(NORMAL, "property")
        full = round_trip(service, "solo", query)
        assert full.status == DONE and not full.degraded
        assert sorted(full.answer) == truth
        if any_degraded:
            # Identical requests under the same budget degrade
            # identically, so nothing was cached: the NORMAL-level
            # request had to recompute.
            assert full.cache == "miss"
        # And the exact answer *is* cached thereafter.
        assert round_trip(service, "solo", query).cache == "hit"


# ---------------------------------------------------------------------------
# Availability (E19 in miniature)


class TestAvailabilityScenario:
    def _run(self, ladder):
        graph, query = tiny_dataset()
        clock = FakeClock(auto_advance=0.001)
        chaos = ServiceChaos(
            FaultPlan(seed=CHAOS_SEED, transient_rate=1.0),
            clock=clock,
            armed=False,
        )
        service = make_service(
            graph,
            clock=clock,
            tenants=[TenantConfig("solo", queue_depth=8)],
            brownout=BrownoutPolicy(recovery_rounds=1) if ladder else None,
            chaos=chaos,
            breaker_threshold=0,
        )
        round_trip(service, "solo", query)
        bump_epoch(service, "noise")
        chaos.arm()
        for _ in range(6):
            round_trip(service, "solo", query)
        chaos.disarm()
        for _ in range(5):
            round_trip(service, "solo", query)
        service.drain()
        totals = service.metrics.totals()
        return service, totals["completed"] / totals["submitted"]

    def test_ladder_strictly_improves_availability(self):
        with_ladder, ladder_availability = self._run(ladder=True)
        bare, bare_availability = self._run(ladder=False)
        assert ladder_availability > bare_availability
        assert with_ladder.metrics.totals()["stale_serves"] > 0
        assert with_ladder.brownout.level == NORMAL  # recovered
