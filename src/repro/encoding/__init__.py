"""Hierarchy-aware dictionary encoding (LiteMat-style interval IDs).

The paper's central bottleneck is reformulation *size*: ``x rdf:type C``
unfolds into a union over every subclass of ``C`` (564 alternatives on
Example 1), and every cover strategy pays that blowup downstream.
LiteMat's observation is that the fix can live in the *storage* layer:
assign dictionary ids so that each class (and property) subtree of the
schema's subclass/subproperty lattice occupies one contiguous id
interval.  Then the whole union collapses to a single range predicate
``type(x) ∈ [lo, hi)`` — one index probe instead of an N-way union.

:func:`preencode_hierarchy` lays the lattice out in DFS preorder with
spare hole ids per region (bounded incremental inserts), returning a
:class:`HierarchyEncoding`; :class:`HierarchyInterval` is the term-level
carrier reformulation places in a pattern position; the rebuild path
(:func:`rebuild_with_hierarchy`) re-encodes a live store when a
hierarchy update exhausts the slack.
"""

from .hierarchy import (
    HierarchyEncoding,
    HierarchyInterval,
    preencode_hierarchy,
    rebuild_with_hierarchy,
)

__all__ = [
    "HierarchyEncoding",
    "HierarchyInterval",
    "preencode_hierarchy",
    "rebuild_with_hierarchy",
]
