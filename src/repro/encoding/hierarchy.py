"""Interval labeling of the subclass/subproperty lattice.

Layout: a spanning tree of the (strict, entailed) hierarchy is walked
in DFS preorder; each node's id starts its region, its children's
regions follow, and ``spare`` reserved hole ids end it.  A node whose
entailed subtree lies entirely inside its region is *covered*: the
reformulator may replace its subtree union by one
:class:`HierarchyInterval`.  Multi-parent nodes live in exactly one
parent's region, so the other parents simply come out uncovered and
keep their classic unions — coverage is an optimization, never a
correctness requirement.

Incremental hierarchy growth lands a new leaf in an ancestor's spare
hole (:meth:`HierarchyEncoding.extend`); when the slack is exhausted —
or the insert is not expressible as a leaf under one covered chain —
``extend`` refuses and the caller re-encodes via
:func:`rebuild_with_hierarchy`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..rdf.namespaces import RDF_TYPE
from ..rdf.terms import Term
from ..schema.schema import Schema
from ..storage.dictionary import Dictionary

#: Default spare hole ids reserved per laid-out node.
DEFAULT_SPARE = 2


class HierarchyInterval(Term):
    """A half-open dictionary-id interval standing in for a subtree.

    Placed in a triple-pattern position by the reformulator, it means
    "any term whose id lies in ``[lo, hi)``" — by construction exactly
    the members of ``anchor``'s entailed subtree (holes carry no term,
    so they never match a triple).  ``branches`` records how many
    classic union alternatives the interval replaced, for explain/
    metrics output.  Equality and hashing use the bounds only, so
    deduplication treats equal ranges as one atom.
    """

    __slots__ = ("lo", "hi", "anchor", "branches")

    _sort_group = 3

    def __init__(self, lo: int, hi: int, anchor: Term, branches: int = 0):
        if not (isinstance(lo, int) and isinstance(hi, int) and lo < hi):
            raise ValueError("interval bounds must be ints with lo < hi")
        object.__setattr__(self, "lo", lo)
        object.__setattr__(self, "hi", hi)
        object.__setattr__(self, "anchor", anchor)
        object.__setattr__(self, "branches", branches)

    def __setattr__(self, name, value):
        raise AttributeError("HierarchyInterval is immutable")

    def with_branches(self, branches: int) -> "HierarchyInterval":
        """The same interval reporting a different collapsed-branch
        count (the count depends on the emission site)."""
        return HierarchyInterval(self.lo, self.hi, self.anchor, branches)

    def strict(self) -> Optional["HierarchyInterval"]:
        """The interval minus the anchor's own id: exactly the strict
        subtree, for emission sites where a separate identity atom
        already matches the anchor (scanning the anchor's instances
        twice would only feed the union dedup).  Valid because the
        layout is preorder — the anchor's id *is* ``lo``.  None when
        the strict subtree is empty."""
        if self.lo + 1 >= self.hi:
            return None
        return HierarchyInterval(
            self.lo + 1, self.hi, self.anchor, max(0, self.branches - 1)
        )

    def lexical(self) -> str:
        return "interval:%d:%d" % (self.lo, self.hi)

    def n3(self) -> str:
        # Never serialized to storage; a synthetic token keeps display
        # and canonicalization working.
        return "«[%d,%d)»" % (self.lo, self.hi)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, HierarchyInterval)
            and other.lo == self.lo
            and other.hi == self.hi
        )

    def __hash__(self) -> int:
        return hash(("HierarchyInterval", self.lo, self.hi))

    def __repr__(self) -> str:
        return "HierarchyInterval(%d, %d, %r)" % (self.lo, self.hi, self.anchor)


class HierarchyEncoding:
    """The interval map a hierarchy-aware dictionary layout produced.

    ``class_intervals`` / ``property_intervals`` hold one
    :class:`HierarchyInterval` per *covered* node with a non-empty
    subtree; uncovered nodes are simply absent and keep their classic
    unions.  ``spare_holes`` maps each laid-out node to the hole ids it
    directly owns (its incremental-insert slack).
    """

    def __init__(
        self,
        class_intervals: Dict[Term, HierarchyInterval],
        property_intervals: Dict[Term, HierarchyInterval],
        spare_holes: Optional[Dict[Term, List[int]]] = None,
        schema_fingerprint: Optional[str] = None,
    ):
        self.class_intervals = dict(class_intervals)
        self.property_intervals = dict(property_intervals)
        self.spare_holes = {
            node: list(holes) for node, holes in (spare_holes or {}).items()
        }
        self.schema_fingerprint = schema_fingerprint
        self._version = 0

    # ------------------------------------------------------------------
    # Query-side lookups (never mutate anything)

    def type_interval(self, klass: Term) -> Optional[HierarchyInterval]:
        """The interval covering ``{klass} ∪ subclasses(klass)``, or
        None when the layout does not cover *klass*."""
        return self.class_intervals.get(klass)

    def property_interval(self, prop: Term) -> Optional[HierarchyInterval]:
        """The interval covering ``{prop} ∪ subproperties(prop)``."""
        return self.property_intervals.get(prop)

    @property
    def interval_count(self) -> int:
        return len(self.class_intervals) + len(self.property_intervals)

    def token(self) -> Tuple:
        """A cache-key component distinguishing encoding states."""
        return ("interval", self.schema_fingerprint, self._version)

    # ------------------------------------------------------------------
    # Incremental growth

    def extend(
        self,
        dictionary: Dictionary,
        schema: Schema,
        node: Term,
        parent: Term,
        kind: str = "class",
    ) -> bool:
        """Place *node*, a freshly declared direct child of *parent*,
        into one of *parent*'s spare holes.

        Call **after** adding the constraint to *schema*.  Returns True
        when the insert fit inside the existing intervals (all covering
        ancestors still cover their grown subtrees); False when the
        slack is exhausted or the insert is not a simple leaf under
        *parent*'s chain — the caller must then re-encode
        (:func:`rebuild_with_hierarchy`).
        """
        if kind not in ("class", "property"):
            raise ValueError("kind must be 'class' or 'property'")
        if dictionary.lookup(node) is not None:
            return False  # already encoded somewhere arbitrary
        supers = (
            schema.superclasses(node)
            if kind == "class"
            else schema.superproperties(node)
        )
        parent_supers = (
            schema.superclasses(parent)
            if kind == "class"
            else schema.superproperties(parent)
        )
        # The new node must be a leaf whose ancestors are exactly
        # parent's chain: any extra parent would need the id inside a
        # region it cannot also occupy.
        if supers != ({parent} | parent_supers):
            return False
        subs = (
            schema.subclasses(node) if kind == "class" else schema.subproperties(node)
        )
        if subs:
            return False  # not a leaf: its own subtree has no region
        holes = self.spare_holes.get(parent)
        if not holes:
            return False
        intervals = (
            self.class_intervals if kind == "class" else self.property_intervals
        )
        hole = holes.pop(0)
        # The hole lies inside parent's region, hence inside every
        # covering ancestor's interval — verify rather than trust.
        for ancestor in {parent} | parent_supers:
            interval = intervals.get(ancestor)
            if interval is not None and not (interval.lo <= hole < interval.hi):
                holes.insert(0, hole)
                return False
        dictionary.assign(hole, node)
        self._version += 1
        return True


def _spanning_children(
    nodes: Iterable[Term], supers_of: Dict[Term, Set[Term]]
) -> Tuple[List[Term], Dict[Term, List[Term]]]:
    """(roots, children) of a spanning tree over the strict hierarchy.

    Each node hangs under one *primary* parent — the sort-smallest of
    its minimal strict ancestors — so regions nest without overlap.
    Cycle members (nodes reaching themselves) become roots with no tree
    children; the coverage check later rejects their intervals.
    """
    primary: Dict[Term, Optional[Term]] = {}
    for node in nodes:
        supers = supers_of.get(node, set())
        if node in supers:  # cycle member
            primary[node] = None
            continue
        candidates = [p for p in supers if node not in supers_of.get(p, set())]
        minimal = [
            p
            for p in candidates
            if not any(
                p in supers_of.get(q, set()) for q in candidates if q != p
            )
        ]
        primary[node] = (
            min(minimal, key=lambda t: t.sort_key()) if minimal else None
        )
    children: Dict[Term, List[Term]] = {}
    roots: List[Term] = []
    for node, parent in primary.items():
        if parent is None:
            roots.append(node)
        else:
            children.setdefault(parent, []).append(node)
    roots.sort(key=lambda t: t.sort_key())
    for siblings in children.values():
        siblings.sort(key=lambda t: t.sort_key())
    return roots, children


def _layout(
    dictionary: Dictionary,
    roots: List[Term],
    children: Dict[Term, List[Term]],
    spare: int,
    regions: Dict[Term, Tuple[int, int]],
    spare_holes: Dict[Term, List[int]],
) -> None:
    """DFS-preorder id assignment; records each placed node's region
    (own id, children regions, then its spare holes, half-open)."""

    def place(node: Term) -> None:
        if dictionary.lookup(node) is not None:
            return  # encoded earlier (e.g. doubles as a class AND a
            #         property): no region, ancestors come out uncovered
        start = dictionary.encode(node)
        for child in children.get(node, ()):  # sorted already
            place(child)
        if spare:
            spare_holes[node] = dictionary.reserve(spare)
        regions[node] = (start, len(dictionary))

    for root in roots:
        place(root)


def _intervals_from_regions(
    dictionary: Dictionary,
    nodes: Iterable[Term],
    subs_of: Dict[Term, Set[Term]],
    regions: Dict[Term, Tuple[int, int]],
) -> Dict[Term, HierarchyInterval]:
    """The covered subset: nodes whose entailed subtree (plus holes)
    fills their region exactly."""
    intervals: Dict[Term, HierarchyInterval] = {}
    for node in nodes:
        subs = subs_of.get(node, set())
        if not subs or node not in regions:
            continue  # no union to collapse / no region of its own
        lo, hi = regions[node]
        member_ids = set()
        complete = True
        for member in {node} | subs:
            member_id = dictionary.lookup(member)
            if member_id is None or not (lo <= member_id < hi):
                complete = False
                break
            member_ids.add(member_id)
        if not complete:
            continue
        if all(
            term_id in member_ids or dictionary.is_hole(term_id)
            for term_id in range(lo, hi)
        ):
            intervals[node] = HierarchyInterval(
                lo, hi, node, branches=1 + len(subs)
            )
    return intervals


def preencode_hierarchy(
    store, schema: Schema, spare: int = DEFAULT_SPARE
) -> HierarchyEncoding:
    """Encode *schema*'s class and property lattices into *store*'s
    (fresh or hierarchy-free) dictionary, in interval order.

    Call before loading data, so every schema term claims its laid-out
    id and data terms fill in afterwards.  Returns the resulting
    :class:`HierarchyEncoding`; nodes the layout could not cover (cycle
    members, extra parents of multi-parent nodes, class/property
    homonyms) are simply absent from it.
    """
    dictionary = store.dictionary
    classes = sorted(schema.classes(), key=lambda t: t.sort_key())
    properties = sorted(
        (p for p in schema.properties() if p != RDF_TYPE),
        key=lambda t: t.sort_key(),
    )
    class_supers = {c: schema.superclasses(c) for c in classes}
    property_supers = {p: schema.superproperties(p) for p in properties}

    regions: Dict[Term, Tuple[int, int]] = {}
    spare_holes: Dict[Term, List[int]] = {}
    roots, children = _spanning_children(classes, class_supers)
    _layout(dictionary, roots, children, spare, regions, spare_holes)
    roots, children = _spanning_children(properties, property_supers)
    _layout(dictionary, roots, children, spare, regions, spare_holes)

    class_subs = {c: schema.subclasses(c) for c in classes}
    property_subs = {p: schema.subproperties(p) for p in properties}
    return HierarchyEncoding(
        _intervals_from_regions(dictionary, classes, class_subs, regions),
        _intervals_from_regions(dictionary, properties, property_subs, regions),
        spare_holes,
        schema.fingerprint(),
    )


def detect_encoding(dictionary: Dictionary, schema: Schema) -> HierarchyEncoding:
    """Derive interval coverage from an *existing* dictionary.

    An independent reconstruction (used by the differential tests): a
    node is covered when its entailed subtree's ids are contiguous
    modulo holes.  Windows exclude trailing slack — matching semantics
    are identical (holes never match), only :meth:`extend` headroom is
    lost — so ``detect`` over a just-pre-encoded dictionary agrees with
    :func:`preencode_hierarchy` on membership semantics.
    """

    def derive(nodes, subs_of) -> Dict[Term, HierarchyInterval]:
        intervals: Dict[Term, HierarchyInterval] = {}
        for node in nodes:
            subs = subs_of(node)
            if not subs:
                continue
            member_ids = set()
            complete = True
            for member in {node} | subs:
                member_id = dictionary.lookup(member)
                if member_id is None:
                    complete = False
                    break
                member_ids.add(member_id)
            if not complete:
                continue
            lo, hi = min(member_ids), max(member_ids) + 1
            if dictionary.lookup(node) != lo:
                # Preorder contract: the anchor's id must start the
                # window (``strict()`` relies on it); a subtree that is
                # contiguous but anchored mid-window stays uncovered.
                continue
            if all(
                term_id in member_ids or dictionary.is_hole(term_id)
                for term_id in range(lo, hi)
            ):
                intervals[node] = HierarchyInterval(
                    lo, hi, node, branches=1 + len(subs)
                )
        return intervals

    return HierarchyEncoding(
        derive(schema.classes(), schema.subclasses),
        derive(schema.properties(), schema.subproperties),
        None,
        schema.fingerprint(),
    )


def rebuild_with_hierarchy(
    store, schema: Optional[Schema] = None, spare: int = DEFAULT_SPARE
):
    """The re-encode path: build a fresh pre-encoded store holding the
    same triples as *store* (decoded and re-encoded under the new
    layout).  Returns ``(new_store, encoding)``; the caller swaps the
    store in.  Used when a hierarchy update exhausts the spare slack.
    """
    from ..storage.store import TripleStore

    if schema is None:
        schema = store.schema
    rebuilt = TripleStore()
    encoding = preencode_hierarchy(rebuilt, schema, spare)
    rebuilt.load(store.to_graph(), schema)
    return rebuilt, encoding
