"""The in-process wire between a primary and one follower.

A :class:`ReplicationLink` models a lossy, reordering byte stream with
a bounded in-flight window.  The primary pushes whole encoded frames;
the follower drains *chunks* (whole frames, duplicated frames, or torn
frame prefixes) and concatenates them into its stream buffer — exactly
the byte-level contract ``decode_records`` was built for.  Faults come
from a seeded :class:`~repro.resilience.faults.ReplicationFaultPlan`,
so every schedule replays bit-identically from its seed:

* **drop** — the frame never arrives; the follower sees an LSN gap and
  requests a resync.
* **duplicate** — the frame arrives twice; the follower skips the
  replayed LSN.
* **delay** — the frame is held for N rounds and lands *after* later
  traffic (reordering: first a gap, then a stale duplicate).
* **tear** — only a prefix of the frame's bytes arrive; the follower's
  decode truncates at the torn frame and resyncs.

The bounded window (``capacity`` chunks) is the backpressure point:
:meth:`send` refuses when the window is full and the primary keeps the
overflow in its own bounded catch-up log instead.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from ..resilience.faults import ReplicationFaultPlan

#: Counter names, fixed so ``repro replstatus`` output is stable.
COUNTER_NAMES = (
    "shipped", "delivered", "dropped", "duplicated", "delayed", "torn",
    "refused", "lost_in_flight",
)


class ReplicationLink:
    """One direction of wire: current primary → one follower."""

    def __init__(
        self,
        name: str,
        plan: Optional[ReplicationFaultPlan] = None,
        capacity: int = 16,
    ):
        if capacity < 1:
            raise ValueError("link capacity must be >= 1, got %r" % capacity)
        self.name = name
        self.plan = plan
        self.capacity = capacity
        self.up = True
        #: Chunks awaiting delivery to the follower, in arrival order.
        self._queue: Deque[bytes] = deque()
        #: ``[rounds_remaining, chunk]`` pairs held back by delay faults.
        self._delayed: List[List] = []
        self.counters: Dict[str, int] = {c: 0 for c in COUNTER_NAMES}

    # ------------------------------------------------------------------

    @property
    def queued(self) -> int:
        return len(self._queue) + len(self._delayed)

    @property
    def free_slots(self) -> int:
        return max(0, self.capacity - self.queued)

    def set_up(self, up: bool) -> None:
        """Raise or cut the link.  Cutting it loses everything in
        flight — a partition is not a pause."""
        if self.up and not up:
            self.counters["lost_in_flight"] += self.queued
            self._queue.clear()
            self._delayed = []
        self.up = up

    # ------------------------------------------------------------------

    def send(self, frame: bytes) -> bool:
        """Offer one frame to the wire.

        Returns False when the link is down or the window is full
        (backpressure) — the caller must retry later.  Returns True
        when the wire *accepted* the frame, which — as on a real
        network — says nothing about delivery: the fault plan may
        still drop, tear, delay or duplicate it in flight.
        """
        if not self.up:
            self.counters["refused"] += 1
            return False
        if self.free_slots == 0:
            self.counters["refused"] += 1
            return False
        decision = self.plan.decide(len(frame)) if self.plan else None
        self.counters["shipped"] += 1
        if decision is not None and decision.drop:
            self.counters["dropped"] += 1
            return True
        if decision is not None and decision.tear_at is not None:
            self.counters["torn"] += 1
            self._queue.append(frame[:decision.tear_at])
            return True
        if decision is not None and decision.delay_rounds > 0:
            self.counters["delayed"] += 1
            self._delayed.append([decision.delay_rounds, frame])
            return True
        self._queue.append(frame)
        if decision is not None and decision.duplicate:
            self.counters["duplicated"] += 1
            self._queue.append(frame)
        return True

    def tick(self) -> None:
        """Advance one round: delayed frames age, expired ones land
        (after anything already queued — that is the reorder)."""
        still_delayed: List[List] = []
        for entry in self._delayed:
            entry[0] -= 1
            if entry[0] <= 0:
                self._queue.append(entry[1])
            else:
                still_delayed.append(entry)
        self._delayed = still_delayed

    def deliver(self) -> List[bytes]:
        """Drain every queued chunk to the follower (empty if down)."""
        if not self.up:
            return []
        chunks = list(self._queue)
        self._queue.clear()
        self.counters["delivered"] += len(chunks)
        return chunks

    def snapshot(self) -> Dict[str, object]:
        """Counters + live window state for ``repro replstatus``."""
        state: Dict[str, object] = dict(self.counters)
        state["up"] = self.up
        state["queued"] = self.queued
        state["capacity"] = self.capacity
        return state

    def __repr__(self) -> str:
        return "ReplicationLink(%r, %s, %d queued)" % (
            self.name, "up" if self.up else "down", self.queued)
