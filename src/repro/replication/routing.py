"""Replica-aware routing for the query service.

A :class:`ReplicaRouter` stands between one
:class:`~repro.service.service.QueryService` and one
:class:`~repro.replication.cluster.ReplicationCluster`:

* **writes** go to the current primary (and raise
  :class:`~repro.replication.errors.PrimaryFenced` during an
  availability gap — the service surfaces that instead of silently
  writing to a deposed node);
* **reads** may be offloaded to a follower when the tenant's
  bounded-staleness contract allows it (``TenantConfig.replica_max_lag``
  — the follower's LSN lag must be within the bound) or when the
  brownout ladder has reached *replica-reads-only*, in which case the
  least-lagged follower serves regardless of bound and the answer is
  flagged stale with its lag.

Routing is deterministic: among qualifying followers the least-lagged
wins, name order breaking ties — the same schedule replays under the
test clock.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from .cluster import ReplicationCluster
from .node import ReplicaNode

#: Router counter names, fixed for stable status output.
ROUTER_COUNTER_NAMES = (
    "writes", "fenced_writes", "primary_reads", "replica_reads",
    "stale_replica_reads", "no_replica_available",
)


class ReplicaRouter:
    """Route reads to followers within a staleness bound, writes to
    the primary."""

    def __init__(
        self,
        cluster: ReplicationCluster,
        pump_per_step: int = 1,
    ):
        self.cluster = cluster
        #: Replication rounds advanced per service scheduling round
        #: (keeps catch-up deterministic relative to serving).
        self.pump_per_step = pump_per_step
        self.counters: Dict[str, int] = {c: 0 for c in ROUTER_COUNTER_NAMES}

    # ------------------------------------------------------------------

    @property
    def primary(self) -> ReplicaNode:
        return self.cluster.primary_node

    def tick(self) -> None:
        """One service round elapsed: advance replication with it."""
        if self.pump_per_step > 0:
            self.cluster.pump(self.pump_per_step)

    # ------------------------------------------------------------------
    # Reads

    def route_read(
        self,
        max_lag: Optional[int],
        forced: bool = False,
    ) -> Optional[Tuple[ReplicaNode, int]]:
        """Pick a follower for one read, or None to stay on the
        primary.

        ``max_lag`` is the tenant's staleness bound in LSNs (None means
        the tenant did not opt in).  ``forced`` is the brownout rung:
        route to the least-lagged live follower even without an opt-in,
        ignoring the bound — availability over freshness.  Returns
        ``(node, lag)``; lag counts how many ops behind the primary the
        chosen follower is (0 = fresh read).
        """
        if not forced and max_lag is None:
            self.counters["primary_reads"] += 1
            return None
        primary = self.cluster.primary_node
        primary_lsn = primary.lsn if primary.alive else None
        candidates = []
        for node in self.cluster.followers():
            if not node.alive or node.needs_sync:
                continue
            lag = 0 if primary_lsn is None else max(0, primary_lsn - node.lsn)
            candidates.append((lag, node.name, node))
        if forced:
            eligible = candidates
        else:
            eligible = [c for c in candidates if c[0] <= max_lag]
        if not eligible:
            self.counters["no_replica_available"] += 1
            return None
        lag, _, node = min(eligible)
        self.counters["replica_reads"] += 1
        if lag > 0:
            self.counters["stale_replica_reads"] += 1
        return node, lag

    # ------------------------------------------------------------------
    # Writes

    def insert(self, triple) -> bool:
        return self._write("insert", triple)

    def delete(self, triple) -> bool:
        return self._write("delete", triple)

    def load(self, graph) -> int:
        self.counters["writes"] += 1
        try:
            count = 0
            for triple in graph.data_triples():
                if self.cluster.primary_node.insert(triple):
                    count += 1
            return count
        except Exception:
            self.counters["fenced_writes"] += 1
            raise

    def _write(self, op: str, triple) -> bool:
        self.counters["writes"] += 1
        try:
            return getattr(self.cluster.primary_node, op)(triple)
        except Exception:
            self.counters["fenced_writes"] += 1
            raise

    # ------------------------------------------------------------------

    def status(self) -> Dict[str, object]:
        primary = self.cluster.primary_node
        return {
            "primary": self.cluster.primary_name,
            "primary_alive": primary.alive,
            "epoch": self.cluster.coordinator.epoch,
            "counters": dict(self.counters),
            "follower_lags": {
                node.name: (max(0, primary.lsn - node.lsn)
                            if primary.alive and node.alive else None)
                for node in self.cluster.followers()
            },
        }

    def __repr__(self) -> str:
        return "ReplicaRouter(%r)" % (self.cluster,)
