"""Replica nodes: the primary's shipping tap and the follower's apply loop.

One :class:`ReplicaNode` wraps one :class:`DurableStore` directory and
plays either role:

* As **primary** it taps the store's WAL stream (every logged payload,
  in log order) and frames each record for shipping: an outer
  CRC32-framed WAL record whose payload is ``(repl_epoch, lsn)`` —
  little-endian u64 pair — followed by the inner op payload verbatim.
  The last ``retain`` frames stay in a bounded catch-up log; a
  follower that falls below its floor is re-seeded from a snapshot
  instead of replaying history the primary no longer holds.

* As **follower** it concatenates delivered chunks into a stream
  buffer, decodes the valid prefix (``decode_records`` — torn tails
  truncate, never corrupt), and applies each op *through its own
  DurableStore mutation methods*, so every applied record is re-logged
  locally and the follower's epochs/LSN advance exactly as the
  primary's did.  LSN sequencing makes delivery faults explicit:
  ``lsn < expected`` is a duplicate (skipped), ``lsn > expected`` is a
  gap (buffer dropped, resync requested), a frame from a different
  replication epoch is a stale primary's write (discarded — fencing at
  the stream level).

The node's replication epoch is persisted in a ``replica.meta``
sidecar so a restarted node can present its lineage at the reconnect
handshake.
"""

from __future__ import annotations

import json
import os
import struct
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from ..durability.checkpoint import build_snapshot, encode_checkpoint
from ..durability.io import FileSystem
from ..durability.manager import DurableStore
from ..durability.ops import (
    OP_CONSTRAINT_ADD,
    OP_DELETE,
    OP_INSERT,
    WALFormatError,
    decode_op,
)
from ..durability.recovery import checkpoint_path
from ..durability.wal import decode_records, encode_record
from ..rdf.graph import Graph
from ..rdf.triples import Triple
from ..schema.constraints import Constraint
from ..schema.schema import Schema
from .errors import PrimaryFenced

#: Outer frame payload prefix: ``(replication epoch, record LSN)``.
SHIP_HEADER = struct.Struct("<QQ")

#: Node-local sidecar persisting the replication epoch across restarts.
META_NAME = "replica.meta"

ROLE_PRIMARY = "primary"
ROLE_FOLLOWER = "follower"

#: Per-node counter names, fixed for stable ``replstatus`` output.
NODE_COUNTER_NAMES = (
    "applied", "dups_skipped", "gaps", "torn_streams",
    "stale_epoch_frames", "resyncs", "reseeds", "fenced_writes",
)


class ReplicaNode:
    """One durable store directory participating in a cluster."""

    def __init__(
        self,
        name: str,
        directory: str,
        io: Optional[FileSystem] = None,
        sync: str = "never",
        with_saturator: bool = False,
        retain: int = 512,
    ):
        self.name = name
        self.directory = directory
        self.io = io if io is not None else FileSystem()
        self.sync_policy = sync
        self.with_saturator = with_saturator
        self.retain = retain
        self.durable = DurableStore.open(
            directory, io=self.io, sync=sync, with_saturator=with_saturator)
        self.role = ROLE_FOLLOWER
        self.alive = True
        self.partitioned = False
        self.fenced = False
        self.fenced_at_epoch: Optional[int] = None
        self.repl_epoch = self._load_meta()
        #: Follower stream state.
        self._buffer = b""
        self.needs_sync = True
        #: Primary catch-up log: ``(lsn, encoded outer frame)``.
        self._ship_log: Deque[Tuple[int, bytes]] = deque()
        self.counters: Dict[str, int] = {c: 0 for c in NODE_COUNTER_NAMES}
        self._reader = None
        self._reader_key = None

    # ------------------------------------------------------------------
    # Identity

    @property
    def lsn(self) -> int:
        return self.durable.lsn

    def state_crc(self) -> int:
        return self.durable.state_crc()

    @property
    def reachable(self) -> bool:
        return self.alive and not self.partitioned

    def _meta_path(self) -> str:
        return os.path.join(self.directory, META_NAME)

    def _load_meta(self) -> int:
        path = self._meta_path()
        if not self.io.exists(path):
            return 0
        try:
            meta = json.loads(self.io.read(path).decode("utf-8"))
            return int(meta.get("repl_epoch", 0))
        except (ValueError, UnicodeDecodeError):
            return 0

    def _save_meta(self) -> None:
        payload = json.dumps({"repl_epoch": self.repl_epoch}).encode("utf-8")
        self.io.write(self._meta_path(), payload)

    # ------------------------------------------------------------------
    # Lifecycle

    def kill(self) -> None:
        """Process death: the store freezes; the directory survives."""
        self.alive = False
        self.durable.close()

    def restart(self) -> None:
        """Reopen the directory through recovery; the node comes back
        as an unsynced follower presenting its persisted lineage."""
        self.durable = DurableStore.open(
            self.directory, io=self.io, sync=self.sync_policy,
            with_saturator=self.with_saturator)
        self.alive = True
        self.role = ROLE_FOLLOWER
        self.fenced = False
        self.fenced_at_epoch = None
        self.repl_epoch = self._load_meta()
        self._buffer = b""
        self.needs_sync = True
        self._ship_log.clear()
        self._reader = None

    # ------------------------------------------------------------------
    # Primary role

    def promote(self, epoch: int) -> None:
        """Become the primary for *epoch*: install the WAL shipping
        tap and start a fresh catch-up log (history from before the
        promotion is only reachable via reseed)."""
        self.role = ROLE_PRIMARY
        self.fenced = False
        self.fenced_at_epoch = None
        self.repl_epoch = epoch
        self._save_meta()
        self.needs_sync = False
        self._buffer = b""
        self._ship_log.clear()
        self.durable.remove_wal_listener(self._on_wal)
        self.durable.add_wal_listener(self._on_wal)

    def fence(self, epoch: int) -> None:
        """The fencing invariant: once the coordinator moved to
        *epoch*, this node may never accept another write (its tap is
        detached so nothing it half-wrote ships either)."""
        self.fenced = True
        self.fenced_at_epoch = epoch
        self.durable.remove_wal_listener(self._on_wal)

    def demote(self) -> None:
        """Step down to follower (after fencing + heal, pending
        handshake — which will reseed if it wrote past the promotion
        point)."""
        self.durable.remove_wal_listener(self._on_wal)
        self.role = ROLE_FOLLOWER
        self._ship_log.clear()
        self._buffer = b""
        self.needs_sync = True

    def _on_wal(self, lsn: int, payload: bytes) -> None:
        if self.role != ROLE_PRIMARY or self.fenced:
            return
        frame = encode_record(
            SHIP_HEADER.pack(self.repl_epoch, lsn) + payload)
        self._ship_log.append((lsn, frame))
        while len(self._ship_log) > self.retain:
            self._ship_log.popleft()

    @property
    def ship_floor(self) -> int:
        """The lowest LSN still in the catch-up log (followers behind
        it must reseed)."""
        if self._ship_log:
            return self._ship_log[0][0]
        return self.lsn + 1

    def can_ship_from(self, start_lsn: int) -> bool:
        if start_lsn > self.lsn:
            return True  # already caught up; nothing to ship
        return bool(self._ship_log) and start_lsn >= self.ship_floor

    def frames_from(self, start_lsn: int, limit: int) -> List[Tuple[int, bytes]]:
        """Up to *limit* catch-up frames with LSN >= *start_lsn*."""
        out: List[Tuple[int, bytes]] = []
        for lsn, frame in self._ship_log:
            if lsn >= start_lsn:
                out.append((lsn, frame))
                if len(out) >= limit:
                    break
        return out

    def handshake(
        self,
        follower_epoch: int,
        follower_lsn: int,
        follower_crc: int,
        epoch_starts: Dict[int, int],
    ) -> Tuple[str, Optional[str]]:
        """Decide how a reconnecting follower catches up.

        Returns ``("resume", None)`` when the follower's history is a
        verified prefix of ours and the catch-up log still covers its
        position, else ``("reseed", reason)`` with a reason prefixed
        ``"diverged:"`` (the lineages split) or ``"lagged:"`` (prefix
        fine, but history has been pruned past it).

        Divergence evidence, in order: an epoch outside our lineage; an
        LSN past the point where the follower's epoch ended on our
        timeline (an unfenced primary that kept writing); a state-CRC
        mismatch at an LSN we hold a fingerprint for (equal-LSN live
        compare, else the checkpoint-CRC history).  A same-length
        divergent history with no fingerprint on file is undetectable
        by construction — fingerprints exist exactly where checkpoints
        were cut.
        """
        if follower_epoch == 0 and follower_lsn == 0:
            # A brand-new follower: nothing to diverge from.
            if self.lsn == 0 or self.can_ship_from(1):
                return "resume", None
            return "reseed", "bootstrap: empty follower joins at lsn %d" % self.lsn
        if follower_epoch not in epoch_starts:
            return "reseed", (
                "diverged: epoch %d is not in the primary lineage"
                % follower_epoch)
        later = [e for e in epoch_starts if e > follower_epoch]
        end = epoch_starts[min(later)] if later else self.lsn
        if follower_lsn > end:
            return "reseed", (
                "diverged: epoch %d ended at lsn %d but follower is at %d"
                % (follower_epoch, end, follower_lsn))
        if follower_lsn == self.lsn and follower_crc != self.state_crc():
            return "reseed", (
                "diverged: state fingerprint mismatch at lsn %d"
                % follower_lsn)
        recorded = self.durable.checkpoint_crcs.get(follower_lsn)
        if recorded is not None and follower_crc != recorded:
            return "reseed", (
                "diverged: checkpoint fingerprint mismatch at lsn %d"
                % follower_lsn)
        if not self.can_ship_from(follower_lsn + 1):
            return "reseed", (
                "lagged: catch-up log floor is lsn %d, follower needs %d"
                % (self.ship_floor, follower_lsn + 1))
        return "resume", None

    def seed_snapshot(self) -> bytes:
        """Encode the current state as a checkpoint a wiped follower
        directory recovers from (sequence 1, pointing at an empty
        segment-1 WAL)."""
        body = build_snapshot(
            self.durable.store, self.durable.saturator, 1, 1, 0,
            self.durable.data_epoch, self.durable.schema_epoch)
        return encode_checkpoint(body)

    # ------------------------------------------------------------------
    # Writes (primary only — the fencing invariant lives here)

    def _writable(self) -> None:
        if self.role != ROLE_PRIMARY or self.fenced or not self.alive:
            self.counters["fenced_writes"] += 1
            raise PrimaryFenced(
                "node %r refuses writes (%s)" % (
                    self.name,
                    "fenced at epoch %s" % self.fenced_at_epoch
                    if self.fenced else self.role),
                node=self.name,
                epoch=self.fenced_at_epoch or self.repl_epoch,
            )

    def insert(self, triple: Triple) -> bool:
        self._writable()
        self._reader = None
        return self.durable.insert(triple)

    def delete(self, triple: Triple) -> bool:
        self._writable()
        self._reader = None
        return self.durable.delete(triple)

    def add_constraint(self, constraint: Constraint) -> bool:
        self._writable()
        self._reader = None
        return self.durable.add_constraint(constraint)

    def remove_constraint(self, constraint: Constraint) -> bool:
        self._writable()
        self._reader = None
        return self.durable.remove_constraint(constraint)

    def load(self, graph: Graph, schema: Optional[Schema] = None) -> int:
        self._writable()
        self._reader = None
        return self.durable.load(graph, schema)

    def checkpoint(self) -> str:
        return self.durable.checkpoint()

    # ------------------------------------------------------------------
    # Follower role

    def adopt(self, epoch: int) -> None:
        """Accept a resume handshake: join *epoch* with a clean stream.
        A previously fenced node is a legitimate follower again — the
        handshake verified its history is a prefix of the new
        timeline."""
        self.repl_epoch = epoch
        self._save_meta()
        self._buffer = b""
        self.needs_sync = False
        self.fenced = False
        self.fenced_at_epoch = None

    def install_seed(self, snapshot_bytes: bytes, epoch: int) -> None:
        """Re-seed from the primary's snapshot: wipe the directory,
        plant the checkpoint, and reopen through the recovery path —
        the exact code ``recovery.py`` proves correct — then join
        *epoch* with a clean stream."""
        self.durable.close()
        for name in self.io.listdir(self.directory):
            self.io.remove(os.path.join(self.directory, name))
        seed_path = checkpoint_path(self.directory, 1)
        self.io.write(seed_path, snapshot_bytes)
        self.io.sync(seed_path)
        self.io.sync_dir(self.directory)
        self.durable = DurableStore.open(
            self.directory, io=self.io, sync=self.sync_policy,
            with_saturator=self.with_saturator)
        self.repl_epoch = epoch
        self._save_meta()
        self._buffer = b""
        self.needs_sync = False
        self.fenced = False
        self.fenced_at_epoch = None
        self.counters["reseeds"] += 1
        self._reader = None

    def receive(self, chunks: List[bytes]) -> None:
        """Append delivered wire chunks to the stream buffer."""
        for chunk in chunks:
            self._buffer += chunk

    def apply_available(self) -> int:
        """Decode and apply every applicable buffered frame; returns
        how many ops were applied.  Faults downgrade to resync
        requests, never exceptions — the stream heals by re-shipping."""
        if self.needs_sync or not self._buffer:
            return 0
        decoded = decode_records(self._buffer)
        applied = 0
        for frame_payload in decoded.records:
            if len(frame_payload) < SHIP_HEADER.size:
                self.request_sync()
                return applied
            epoch, lsn = SHIP_HEADER.unpack_from(frame_payload)
            if epoch != self.repl_epoch:
                # A deposed primary's in-flight write: discard — the
                # stream-level half of the fencing invariant.
                self.counters["stale_epoch_frames"] += 1
                continue
            expected = self.lsn + 1
            if lsn < expected:
                self.counters["dups_skipped"] += 1
                continue
            if lsn > expected:
                self.counters["gaps"] += 1
                self.request_sync()
                return applied
            try:
                op, triple = decode_op(frame_payload[SHIP_HEADER.size:])
            except (WALFormatError, ValueError):
                self.request_sync()
                return applied
            self._apply(op, triple)
            applied += 1
            self.counters["applied"] += 1
            self._reader = None
        if decoded.truncated:
            # A torn frame prefix whose tail was cut on the wire: it
            # will never complete, so drop the buffer and resync.
            self.counters["torn_streams"] += 1
            self.request_sync()
        else:
            self._buffer = self._buffer[decoded.valid_length:]
        return applied

    def request_sync(self) -> None:
        """Drop the stream buffer and ask the control plane for a
        fresh handshake (gap, torn stream, or pruned catch-up log)."""
        self._buffer = b""
        if not self.needs_sync:
            self.counters["resyncs"] += 1
        self.needs_sync = True

    def _apply(self, op: str, triple: Triple) -> None:
        # Through the follower's own DurableStore methods, so the op is
        # re-logged locally and epochs/LSN advance exactly as on the
        # primary (C± stays one record; derived triples stay quiet).
        if op == OP_INSERT:
            self.durable.insert(triple)
        elif op == OP_DELETE:
            self.durable.delete(triple)
        elif op == OP_CONSTRAINT_ADD:
            self.durable.add_constraint(Constraint.from_triple(triple))
        else:
            self.durable.remove_constraint(Constraint.from_triple(triple))

    # ------------------------------------------------------------------
    # Reads

    def reader(self, engine: str = "builtin"):
        """A query answerer over this node's current state, rebuilt
        lazily when the LSN moves (replica-read serving path)."""
        key = (self.lsn, engine)
        if self._reader is None or self._reader_key != key:
            from ..core.answerer import QueryAnswerer

            store = self.durable.store
            self._reader = QueryAnswerer(
                store.to_graph(), store.schema, engine=engine)
            self._reader_key = key
        return self._reader

    # ------------------------------------------------------------------

    def status(self, primary_lsn: Optional[int] = None) -> Dict[str, object]:
        """Structured state for ``repro replstatus``."""
        state: Dict[str, object] = {
            "role": "fenced" if self.fenced else self.role,
            "alive": self.alive,
            "partitioned": self.partitioned,
            "repl_epoch": self.repl_epoch,
            "lsn": self.lsn if self.alive else None,
            "needs_sync": self.needs_sync,
            "triples": self.durable.store.triple_count if self.alive else None,
        }
        if primary_lsn is not None and self.alive:
            state["lag"] = max(0, primary_lsn - self.lsn)
        state.update(self.counters)
        return state

    def __repr__(self) -> str:
        return "ReplicaNode(%r, %s, epoch %d, lsn %d)" % (
            self.name, self.role, self.repl_epoch,
            self.lsn if self.alive else -1)
