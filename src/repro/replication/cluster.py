"""The cluster control plane: nodes, links, sessions, elections.

:class:`ReplicationCluster` wires N :class:`ReplicaNode` directories
under one root, one :class:`ReplicationLink` per node (used while it
follows), and one :class:`FailoverCoordinator`.  Everything advances
through :meth:`pump`, one deterministic round at a time:

1. link windows tick (delayed frames land, partitions cut queues);
2. the reachable primary heartbeats its lease;
3. an expired lease triggers an election — the most-caught-up
   reachable follower is promoted, the old primary is fenced (now, if
   reachable; at heal otherwise);
4. each connected follower without a session handshakes (divergence
   check → resume, or reseed through the recovery path), then the
   primary ships catch-up frames into the link's free window
   (backpressure: overflow stays in the primary's bounded catch-up
   log), the follower drains and applies, and its ack advances.

The *data plane* (frames) is lossy and fault-injected; the *control
plane* (handshakes, seeds, acks) is modeled as a reliable RPC that
only works while the link is up — the standard split in real WAL
shipping, where the replication stream rides a session protocol.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence

from ..durability.io import FileSystem
from ..resilience.clock import Clock, FakeClock
from ..resilience.faults import ReplicationFaultPlan
from .failover import FailoverCoordinator
from .link import ReplicationLink
from .node import ReplicaNode

#: Default node names (name order breaks election ties).
DEFAULT_NODES = ("n1", "n2", "n3")


class ReplicationCluster:
    """A primary and its followers under one root directory."""

    def __init__(
        self,
        directory: str,
        node_names: Sequence[str] = DEFAULT_NODES,
        io: Optional[FileSystem] = None,
        clock: Optional[Clock] = None,
        lease_seconds: float = 3.0,
        link_capacity: int = 16,
        retain: int = 512,
        seed: int = 0,
        link_faults: Optional[Dict[str, float]] = None,
        sync: str = "never",
        with_saturator: bool = False,
    ):
        if len(node_names) < 2:
            raise ValueError("a cluster needs at least two nodes, got %r"
                             % (list(node_names),))
        if len(set(node_names)) != len(node_names):
            raise ValueError("duplicate node names: %r" % (list(node_names),))
        self.directory = directory
        self.io = io if io is not None else FileSystem()
        self.clock = clock if clock is not None else FakeClock()
        self.nodes: Dict[str, ReplicaNode] = {}
        self.links: Dict[str, ReplicationLink] = {}
        faults = dict(link_faults or {})
        for index, name in enumerate(node_names):
            self.nodes[name] = ReplicaNode(
                name,
                os.path.join(directory, name),
                io=self.io,
                sync=sync,
                with_saturator=with_saturator,
                retain=retain,
            )
            # Per-link seeds stay deterministic but independent, so one
            # follower's faults never shift another's schedule.
            plan = (ReplicationFaultPlan(seed=seed + index, **faults)
                    if faults else None)
            self.links[name] = ReplicationLink(
                name, plan=plan, capacity=link_capacity)
        self.coordinator = FailoverCoordinator(
            self.clock, lease_seconds=lease_seconds)
        self.primary_name = node_names[0]
        primary = self.nodes[self.primary_name]
        primary.promote(self.coordinator.epoch)
        self.coordinator.record_epoch_start(self.coordinator.epoch,
                                            primary.lsn)
        #: Per-follower ship sessions: ``{"next_lsn": int, "acked": int}``.
        self.sessions: Dict[str, Dict[str, int]] = {}
        #: Old primaries awaiting fencing (they were unreachable when
        #: the epoch moved past them).
        self._deposed: set = set()
        self.reseed_log: List[Dict[str, str]] = []
        self.divergences = 0
        self.rounds = 0

    # ------------------------------------------------------------------
    # Topology accessors

    @property
    def primary_node(self) -> ReplicaNode:
        return self.nodes[self.primary_name]

    def followers(self) -> List[ReplicaNode]:
        return [node for name, node in self.nodes.items()
                if name != self.primary_name]

    # ------------------------------------------------------------------
    # Chaos verbs (the CLI script surface)

    def kill(self, name: str) -> None:
        node = self.nodes[name]
        if node.alive:
            node.kill()
        self.sessions.pop(name, None)

    def kill_primary(self) -> str:
        name = self.primary_name
        self.kill(name)
        return name

    def restart(self, name: str) -> None:
        node = self.nodes[name]
        if not node.alive:
            node.restart()
        self.sessions.pop(name, None)

    def partition(self, name: str) -> None:
        self.nodes[name].partitioned = True
        self.sessions.pop(name, None)

    def heal(self, name: Optional[str] = None) -> None:
        """Mend partitions (and restart dead nodes) — for *name*, or
        for the whole cluster when omitted."""
        targets = [name] if name is not None else list(self.nodes)
        for target in targets:
            node = self.nodes[target]
            if not node.alive:
                node.restart()
            node.partitioned = False
            self.sessions.pop(target, None)

    # ------------------------------------------------------------------
    # The round loop

    def pump(self, rounds: int = 1, dt: float = 1.0) -> None:
        """Advance *rounds* deterministic replication rounds, moving
        the injected clock *dt* seconds per round."""
        for _ in range(rounds):
            self.rounds += 1
            if isinstance(self.clock, FakeClock):
                self.clock.advance(dt)
            primary = self.primary_node
            for name, link in self.links.items():
                node = self.nodes[name]
                link.set_up(
                    name != self.primary_name
                    and primary.alive
                    and primary.reachable
                    and node.reachable
                )
                link.tick()
            if primary.reachable and not primary.fenced and primary.alive:
                self.coordinator.heartbeat()
            if self.coordinator.lease_expired:
                self._run_election()
                primary = self.primary_node
            self._fence_deposed()
            if not primary.alive or primary.fenced:
                continue
            for name, node in self.nodes.items():
                if name == self.primary_name or not node.alive:
                    continue
                link = self.links[name]
                if not link.up:
                    continue
                self._serve_follower(primary, node, link)

    def _run_election(self) -> None:
        old_name = self.primary_name
        old = self.nodes[old_name]
        winner = self.coordinator.elect(
            [node for name, node in self.nodes.items() if name != old_name])
        if winner is None:
            return
        epoch = self.coordinator.promote(winner)
        self.primary_name = winner.name
        self.sessions.clear()
        if old.reachable and old.alive:
            old.fence(epoch)
            old.demote()
        else:
            # Unreachable: it cannot be told now — remember to fence it
            # the moment it comes back (before it can serve or ship).
            self._deposed.add(old_name)

    def _fence_deposed(self) -> None:
        for name in sorted(self._deposed):
            node = self.nodes[name]
            if node.alive and node.reachable:
                node.fence(self.coordinator.epoch)
                node.demote()
                self._deposed.discard(name)

    def _serve_follower(
        self,
        primary: ReplicaNode,
        node: ReplicaNode,
        link: ReplicationLink,
    ) -> None:
        session = self.sessions.get(node.name)
        if node.needs_sync or session is None:
            action, reason = primary.handshake(
                node.repl_epoch, node.lsn, node.state_crc(),
                self.coordinator.epoch_starts)
            if action == "reseed":
                self.reseed_log.append({"node": node.name,
                                        "reason": reason or ""})
                if reason is not None and reason.startswith("diverged"):
                    self.divergences += 1
                node.install_seed(primary.seed_snapshot(),
                                  self.coordinator.epoch)
            else:
                node.adopt(self.coordinator.epoch)
            session = {"next_lsn": node.lsn + 1, "acked": node.lsn}
            self.sessions[node.name] = session
        if session["next_lsn"] <= primary.lsn:
            if not primary.can_ship_from(session["next_lsn"]):
                # Fell past the catch-up floor mid-session: reseed via
                # a fresh handshake next round.
                node.request_sync()
                self.sessions.pop(node.name, None)
                return
            budget = link.free_slots
            for lsn, frame in primary.frames_from(session["next_lsn"],
                                                  budget):
                if not link.send(frame):
                    break
                session["next_lsn"] = lsn + 1
        node.receive(link.deliver())
        node.apply_available()
        session["acked"] = node.lsn
        if link.queued == 0 and session["acked"] < session["next_lsn"] - 1:
            # Everything outstanding was lost in flight (dropped or
            # torn, with no later frame to expose the gap): rewind the
            # ship cursor to the ack and re-send — followers skip
            # duplicates, so over-sending is always safe.
            session["next_lsn"] = session["acked"] + 1

    # ------------------------------------------------------------------
    # Convergence

    def pump_until_converged(self, max_rounds: int = 200,
                             dt: float = 1.0) -> int:
        """Pump until every live node matches the primary (or the
        round budget runs out); returns the rounds spent."""
        spent = 0
        while spent < max_rounds and self.verify_consistency():
            self.pump(1, dt=dt)
            spent += 1
        return spent

    def verify_consistency(self) -> List[str]:
        """The differential invariant: every live follower's state —
        triples, dictionary, schema, epochs — must be byte-identical to
        the primary's (compared through the canonical checkpoint
        encoding).  Returns human-readable problems; empty = converged."""
        problems: List[str] = []
        primary = self.primary_node
        if not primary.alive:
            return ["primary %r is dead" % self.primary_name]
        crc = primary.state_crc()
        for node in self.followers():
            if not node.alive:
                problems.append("follower %r is dead" % node.name)
                continue
            if node.lsn != primary.lsn:
                problems.append(
                    "follower %r at lsn %d, primary at %d"
                    % (node.name, node.lsn, primary.lsn))
            elif node.state_crc() != crc:
                problems.append(
                    "follower %r state fingerprint differs at lsn %d"
                    % (node.name, node.lsn))
            if node.alive and (
                node.durable.data_epoch != primary.durable.data_epoch
                or node.durable.schema_epoch != primary.durable.schema_epoch
            ) and node.lsn == primary.lsn:
                problems.append(
                    "follower %r epochs (%d, %d) != primary (%d, %d)"
                    % (node.name, node.durable.data_epoch,
                       node.durable.schema_epoch,
                       primary.durable.data_epoch,
                       primary.durable.schema_epoch))
        return problems

    # ------------------------------------------------------------------

    def status(self) -> Dict[str, object]:
        """The ``repro replstatus`` payload."""
        primary = self.primary_node
        primary_lsn = primary.lsn if primary.alive else None
        return {
            "primary": self.primary_name,
            "rounds": self.rounds,
            "coordinator": self.coordinator.status(),
            "nodes": {name: node.status(primary_lsn)
                      for name, node in self.nodes.items()},
            "links": {name: link.snapshot()
                      for name, link in self.links.items()
                      if name != self.primary_name},
            "reseeds": list(self.reseed_log),
            "divergences": self.divergences,
            "consistency_problems": self.verify_consistency(),
        }

    def close(self) -> None:
        for node in self.nodes.values():
            if node.alive:
                node.durable.close()

    def __repr__(self) -> str:
        return "ReplicationCluster(%r, primary=%r, epoch %d, %d nodes)" % (
            self.directory, self.primary_name, self.coordinator.epoch,
            len(self.nodes))
