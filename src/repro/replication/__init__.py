"""WAL-shipping replication: primary/follower clusters with failover.

The subsystem ships the durable store's CRC32-framed WAL records over
lossy in-process links, replays them on followers through the same op
codec recovery uses, detects divergence at reconnect (epochs +
checkpoint CRCs), re-seeds through the proven recovery path, elects a
new primary on lease expiry, fences the old one, and routes service
reads to bounded-staleness replicas.  See ``DESIGN.md`` §15.
"""

from .cluster import DEFAULT_NODES, ReplicationCluster
from .errors import PrimaryFenced, ReplicaDiverged, ReplicationError
from .failover import FailoverCoordinator
from .link import ReplicationLink
from .node import ReplicaNode, ROLE_FOLLOWER, ROLE_PRIMARY, SHIP_HEADER
from .routing import ReplicaRouter

__all__ = [
    "DEFAULT_NODES",
    "FailoverCoordinator",
    "PrimaryFenced",
    "ReplicaDiverged",
    "ReplicaNode",
    "ReplicaRouter",
    "ReplicationCluster",
    "ReplicationError",
    "ReplicationLink",
    "ROLE_FOLLOWER",
    "ROLE_PRIMARY",
    "SHIP_HEADER",
]
