"""Lease-based primary election.

The :class:`FailoverCoordinator` models the external consensus
authority (an etcd/ZooKeeper stand-in) every real failover design
leans on: the primary holds a time-bounded lease and renews it with
heartbeats; when the lease expires — the primary died or is
partitioned away from the coordinator — the coordinator bumps the
replication epoch and promotes the most-caught-up reachable follower.
Time is an injected :class:`~repro.resilience.clock.Clock`, never wall
time, so every election schedule replays deterministically under the
test clock.

Election rule: among reachable live candidates — sync-clean ones
preferred, mid-resync ones only as a last resort — pick the maximum
``(lsn, name)``: most-caught-up wins, name order breaks ties
deterministically.  The promotion epoch fences the old primary (see
:meth:`ReplicaNode.fence`): any write it accepts after the epoch moved
raises, and any frame it had in flight is discarded by followers as
stale-epoch — the two halves of the fencing invariant.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..resilience.clock import Clock
from .node import ReplicaNode


class FailoverCoordinator:
    """Lease bookkeeping plus the election decision."""

    def __init__(self, clock: Clock, lease_seconds: float = 3.0):
        if lease_seconds <= 0:
            raise ValueError(
                "lease_seconds must be positive, got %r" % lease_seconds)
        self.clock = clock
        self.lease_seconds = lease_seconds
        self.epoch = 1
        self.lease_until = clock.monotonic() + lease_seconds
        self.elections = 0
        #: epoch -> LSN at which that epoch began: the lineage map the
        #: reconnect handshake judges follower histories against.
        self.epoch_starts: Dict[int, int] = {}

    def heartbeat(self) -> None:
        """The reachable primary renews its lease."""
        self.lease_until = self.clock.monotonic() + self.lease_seconds

    @property
    def lease_expired(self) -> bool:
        return self.clock.monotonic() > self.lease_until

    def remaining(self) -> float:
        return max(0.0, self.lease_until - self.clock.monotonic())

    def record_epoch_start(self, epoch: int, lsn: int) -> None:
        self.epoch_starts[epoch] = lsn

    def elect(self, candidates: List[ReplicaNode]) -> Optional[ReplicaNode]:
        """Pick the promotion winner, or None when no candidate is
        reachable and live.  Sync-clean candidates are preferred, but a
        follower mid-resync is still electable when no clean one exists:
        its *applied* prefix is consistent (frames apply in LSN order),
        only its in-flight stream was broken — refusing it entirely
        would deadlock a cluster whose primary died mid-fault-burst."""
        reachable = [node for node in candidates if node.reachable]
        if not reachable:
            return None
        clean = [node for node in reachable if not node.needs_sync]
        pool = clean or reachable
        return max(pool, key=lambda node: (node.lsn, node.name))

    def promote(self, winner: ReplicaNode) -> int:
        """Advance the epoch and install *winner* as its primary.
        Returns the new epoch; the caller fences the old primary."""
        self.epoch += 1
        self.elections += 1
        winner.promote(self.epoch)
        self.record_epoch_start(self.epoch, winner.lsn)
        self.heartbeat()
        return self.epoch

    def status(self) -> Dict[str, object]:
        return {
            "epoch": self.epoch,
            "elections": self.elections,
            "lease_remaining": self.remaining(),
            "lease_expired": self.lease_expired,
            "epoch_starts": {str(e): lsn
                             for e, lsn in sorted(self.epoch_starts.items())},
        }
