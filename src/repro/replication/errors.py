"""Typed failures of the replication layer.

Same philosophy as :mod:`repro.resilience.errors`: policy code
(failover, routing, the CLI) dispatches on types, never on message
strings.  Dependency-free so every replication module can import it
without cycles.
"""

from __future__ import annotations

from typing import Optional


class ReplicationError(RuntimeError):
    """Base class for replication faults."""


class PrimaryFenced(ReplicationError):
    """A write reached a node that is not the current primary.

    Raised both by a deposed primary after fencing (the fencing
    invariant: once the coordinator promotes epoch *e*, no node with a
    lower epoch may accept another write) and by plain followers, which
    never accept writes.  ``node`` and ``epoch`` identify who refused
    and the highest epoch that node has seen.
    """

    def __init__(self, message: str, node: Optional[str] = None,
                 epoch: Optional[int] = None):
        super().__init__(message)
        self.node = node
        self.epoch = epoch


class ReplicaDiverged(ReplicationError):
    """A follower's history is not a prefix of the primary's.

    Carries the evidence the handshake compared, so the CLI and tests
    can report *why* the lineages split (an unfenced old primary that
    kept writing, a corrupt replay, an alien directory).
    """

    def __init__(
        self,
        message: str,
        node: Optional[str] = None,
        follower_epoch: Optional[int] = None,
        follower_lsn: Optional[int] = None,
        primary_epoch: Optional[int] = None,
        primary_lsn: Optional[int] = None,
    ):
        super().__init__(message)
        self.node = node
        self.follower_epoch = follower_epoch
        self.follower_lsn = follower_lsn
        self.primary_epoch = primary_epoch
        self.primary_lsn = primary_lsn
