"""Cache key canonicalization.

A cache hit must be *sound*: two keys may only collide when the cached
artifact is guaranteed identical.  The pieces:

* **queries** — keyed by :meth:`ConjunctiveQuery.canonical`, so
  alpha-equivalent queries (same query up to non-distinguished
  variable renaming and atom order) share one entry.  Equal canonical
  keys imply isomorphic queries, whose answers agree positionally, so
  sharing the answer (and the reformulation, up to variable names) is
  sound;
* **schemas** — keyed by :meth:`repro.schema.schema.Schema.fingerprint`,
  a digest of the direct constraint set; any constraint change yields
  a fresh fingerprint, so reformulations computed under the old schema
  can never be served under the new one;
* **policies** — keyed by their feature switches (not their display
  name: two differently-named policies with equal switches produce
  identical reformulations and may share entries);
* **covers** — keyed by the fragment contents encoded under the
  query's canonical variable numbering, so the key is independent of
  atom order and variable names.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..query.algebra import ConjunctiveQuery, UnionQuery, Variable
from ..query.cover import Cover
from ..reformulation.policy import ReformulationPolicy


def policy_key(policy: ReformulationPolicy) -> Tuple[bool, bool, bool, bool]:
    """The policy's honoured-feature switches (its semantic identity)."""
    return (
        policy.subclass,
        policy.subproperty,
        policy.domain_range,
        policy.open_variables,
    )


def query_key(query) -> Tuple:
    """A canonical key for a CQ or UCQ.

    UCQs are keyed by the *set* of disjunct canonical forms: disjunct
    order never affects a union's answer.
    """
    if isinstance(query, ConjunctiveQuery):
        return ("cq", query.canonical())
    if isinstance(query, UnionQuery):
        return (
            "ucq",
            query.arity,
            frozenset(cq.canonical() for cq in query.disjuncts),
        )
    raise TypeError("cannot key %r for caching" % (query,))


def _canonical_numbering(query: ConjunctiveQuery) -> Dict[Variable, int]:
    """The variable numbering :meth:`ConjunctiveQuery.canonical` uses
    (head first, then atoms in skeleton order)."""

    def skeleton(atom) -> Tuple:
        return tuple(
            ("var",) if isinstance(t, Variable) else ("term", t.sort_key())
            for t in atom.as_tuple()
        )

    numbering: Dict[Variable, int] = {}
    for item in query.head:
        if isinstance(item, Variable) and item not in numbering:
            numbering[item] = len(numbering)
    for atom in sorted(query.atoms, key=skeleton):
        for term in atom.as_tuple():
            if isinstance(term, Variable) and term not in numbering:
                numbering[term] = len(numbering)
    return numbering


def cover_key(cover: Cover) -> Tuple:
    """A key for (query, cover) independent of atom order and variable
    names: each fragment becomes the set of its atoms' canonical
    encodings."""
    numbering = _canonical_numbering(cover.query)

    def encode(term) -> Tuple:
        if isinstance(term, Variable):
            return ("var", numbering[term])
        return ("term", term.sort_key())

    fragments = frozenset(
        frozenset(
            tuple(encode(t) for t in cover.query.atoms[index].as_tuple())
            for index in fragment
        )
        for fragment in cover.fragments
    )
    return (cover.query.canonical(), fragments)
