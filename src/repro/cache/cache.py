"""The query cache: reformulations, answers, and their invalidation.

Reformulation cost dominates repeated query answering — the UCQ
blow-up, the SCQ intermediate results and the GCov cover search are
all recomputed per call in a cache-less answerer, even for identical
queries.  Ontop's ``QuestQueryProcessor`` makes a query cache a
first-class collaborator of the reformulator for this reason; this
module is that layer for every strategy in the repository.

Three tiers:

1. **Reformulation tier** — UCQ/SCQ/JUCQ reformulations, GCov covers
   and UCQ size estimates, keyed on ``(query canonical form, schema
   fingerprint, policy switches, kind)``.  Valid as long as the schema
   is unchanged: reformulation is a function of query and schema only.
   (GCov entries additionally carry the dataset token — the chosen
   cover is cost-based, hence data-dependent; a stale cover would
   still be answer-correct, but its diagnostics would mislead.)
2. **Answer tier** — computed answers, keyed on the reformulation key
   *plus* a dataset token, the evaluation engine/backend, and the
   **data epoch**: a counter bumped on every data mutation, so any
   update retires all previously cached answers without scanning them.
3. **Invalidation hooks** — ``watch_graph`` / ``watch_store`` /
   ``watch_saturator`` subscribe the cache to live updates: data-triple
   changes bump the data epoch (answers stale, reformulations kept);
   schema-triple/constraint changes additionally purge the
   reformulation tier (reformulations are schema-derived).

Epoch semantics: invalidation by epoch is *lazy* — stale answer
entries are not eagerly removed, they simply become unreachable (their
key embeds an old epoch) and age out of the LRU.  Schema changes, by
contrast, purge eagerly, because a schema change is rare and frees the
whole reformulation tier at once.
"""

from __future__ import annotations

import itertools
import threading
from typing import Any, Callable, Dict, Hashable, Optional, Tuple

from ..rdf.triples import Triple
from ..schema.schema import Schema
from .keys import cover_key, policy_key, query_key
from .lru import LRUCache

#: Distinguishes datasets sharing one cache (keys embed it so answers
#: computed over one graph are never served for another).
_dataset_counter = itertools.count(1)


def dataset_token() -> int:
    """A fresh token identifying one dataset/answerer within a process."""
    return next(_dataset_counter)


class QueryCache:
    """A keyed, size-bounded reformulation + answer cache (see module doc).

    One instance may back several answerers (each contributes its own
    dataset token to answer keys); pass it to
    :class:`~repro.core.answerer.QueryAnswerer` and
    :class:`~repro.federation.client.FederatedAnswerer` as ``cache=``.

    >>> cache = QueryCache()
    >>> cache.data_epoch
    0
    >>> cache.note_data_change()
    >>> cache.data_epoch
    1
    """

    def __init__(
        self,
        reformulation_capacity: int = 256,
        answer_capacity: int = 2048,
    ):
        self.reformulations = LRUCache(reformulation_capacity)
        self.answers = LRUCache(answer_capacity)
        # Single-flight bookkeeping: key -> Event of the in-progress
        # computation (see :meth:`get_or_compute`).
        self._flights: Dict[Tuple[str, Tuple], threading.Event] = {}
        self._flights_lock = threading.Lock()
        #: Bumped on every data mutation; embedded in answer keys.
        self.data_epoch = 0
        #: Bumped on every schema mutation; embedded in every key.
        self.schema_epoch = 0
        #: How often each invalidation class fired.
        self.data_invalidations = 0
        self.schema_invalidations = 0

    # ------------------------------------------------------------------
    # Tier 3: invalidation

    def note_data_change(self) -> None:
        """A data triple changed: retire cached answers (lazily)."""
        self.data_epoch += 1
        self.data_invalidations += 1

    def note_schema_change(self) -> None:
        """A constraint changed: retire reformulations and answers."""
        self.schema_epoch += 1
        self.schema_invalidations += 1
        self.reformulations.invalidate()
        self.answers.invalidate()

    def note_triple_change(self, triple: Triple, operation: str = "change") -> None:
        """Classify one mutated triple: schema triples invalidate
        reformulations too, data triples only answers."""
        if triple.is_schema_triple():
            self.note_schema_change()
        else:
            self.note_data_change()

    def restore_epochs(self, data_epoch: int, schema_epoch: int) -> None:
        """Fast-forward the epoch counters to persisted values (never
        backwards).  A process recovering a durable store calls this so
        epoch monotonicity survives the restart: any key minted before
        the crash embeds an epoch ≤ the restored one, so a recovered
        cache either revalidates warm entries correctly or leaves them
        unreachable — it can never serve a pre-crash answer for
        post-crash data."""
        self.data_epoch = max(self.data_epoch, data_epoch)
        self.schema_epoch = max(self.schema_epoch, schema_epoch)

    def invalidate_all(self) -> None:
        """Drop everything (both tiers), without touching the epochs."""
        self.reformulations.invalidate()
        self.answers.invalidate()

    # ------------------------------------------------------------------
    # Watch hooks (wired into the mutable containers' listener lists)

    def watch_graph(self, graph) -> None:
        """Subscribe to a :class:`~repro.rdf.graph.Graph`'s mutations."""
        graph.add_listener(self.note_triple_change)

    def watch_store(self, store) -> None:
        """Subscribe to a :class:`~repro.storage.store.TripleStore`."""
        store.add_listener(self.note_triple_change)

    def watch_saturator(self, saturator) -> None:
        """Subscribe to an
        :class:`~repro.saturation.incremental.IncrementalSaturator`:
        data deltas bump the epoch, constraint changes purge."""
        saturator.add_listener(self._on_saturator_event)

    def _on_saturator_event(self, subject, operation: str) -> None:
        if operation.startswith("constraint"):
            self.note_schema_change()
        else:
            self.note_data_change()

    # ------------------------------------------------------------------
    # Tier 1: reformulations

    def reformulation_key(
        self,
        kind: str,
        query,
        schema: Schema,
        policy,
        extra: Hashable = None,
    ) -> Tuple:
        """The canonical reformulation-tier key (see module doc)."""
        return (
            kind,
            query_key(query),
            schema.fingerprint(),
            policy_key(policy),
            self.schema_epoch,
            extra,
        )

    def lookup_reformulation(self, key: Tuple) -> Optional[Any]:
        return self.reformulations.get(key)

    def store_reformulation(self, key: Tuple, value: Any) -> None:
        self.reformulations.put(key, value)

    # ------------------------------------------------------------------
    # Tier 2: answers

    def answer_key(
        self,
        token: int,
        query,
        schema: Schema,
        policy,
        strategy: str,
        cover=None,
        extra: Hashable = None,
        data_epoch: Optional[int] = None,
    ) -> Tuple:
        """The answer-tier key: reformulation identity plus dataset
        token and the current epochs.  ``data_epoch`` overrides the
        cache's current data epoch — epoch invalidation is *lazy*
        (superseded entries linger in the LRU until aged out), so a
        caller may deliberately probe an older epoch's key to find a
        stale-but-servable answer (the stale-while-revalidate path)."""
        return (
            "answer",
            token,
            strategy,
            query_key(query),
            None if cover is None else cover_key(cover),
            schema.fingerprint(),
            policy_key(policy),
            self.data_epoch if data_epoch is None else data_epoch,
            self.schema_epoch,
            extra,
        )

    def endpoint_key(
        self,
        token: int,
        endpoint_name: str,
        query,
        schema: Schema,
        policy,
    ) -> Tuple:
        """An answer-tier key for one endpoint's sub-answer in a
        federation (per-endpoint caching: each source's contribution is
        reusable independently of the others)."""
        return (
            "endpoint",
            token,
            endpoint_name,
            query_key(query),
            schema.fingerprint(),
            policy_key(policy),
            self.data_epoch,
            self.schema_epoch,
        )

    def lookup_answer(self, key: Tuple) -> Optional[Any]:
        return self.answers.get(key)

    def store_answer(self, key: Tuple, value: Any) -> None:
        self.answers.put(key, value)

    # ------------------------------------------------------------------
    # Single-flight computation

    def get_or_compute(
        self, tier: str, key: Tuple, compute: Callable[[], Any]
    ) -> Tuple[Any, bool]:
        """The cached value for *key*, computing (and storing) it at
        most once across concurrent callers; returns ``(value, hit)``.

        Without this, N pool workers missing on the same key would all
        run *compute* — for a reformulation that can be the entire UCQ
        blow-up, N times.  The first caller to miss becomes the
        *leader*: it computes, stores, and wakes the others, who then
        re-read the tier.  A leader that raises releases the flight
        (nothing is cached), and each waiter falls back to its own
        compute — correctness never depends on another thread's
        success.

        ``tier`` is ``"reformulation"`` or ``"answer"``.
        """
        store = {"reformulation": self.reformulations, "answer": self.answers}[tier]
        flight_key = (tier, key)
        while True:
            value = store.get(key)
            if value is not None:
                return value, True
            with self._flights_lock:
                event = self._flights.get(flight_key)
                if event is None:
                    event = threading.Event()
                    self._flights[flight_key] = event
                    leader = True
                else:
                    leader = False
            if leader:
                try:
                    value = compute()
                    store.put(key, value)
                    return value, False
                finally:
                    with self._flights_lock:
                        self._flights.pop(flight_key, None)
                    event.set()
            event.wait()
            # Re-read; on a leader failure (or an eviction racing the
            # wake-up) loop around — one waiter becomes the new leader.

    # ------------------------------------------------------------------
    # Introspection

    def stats(self) -> Dict[str, Any]:
        """A nested counter snapshot (attached to answer diagnostics
        and printed by ``repro cache-stats``)."""
        return {
            "reformulation": dict(
                self.reformulations.stats.as_dict(),
                entries=len(self.reformulations),
                capacity=self.reformulations.capacity,
            ),
            "answer": dict(
                self.answers.stats.as_dict(),
                entries=len(self.answers),
                capacity=self.answers.capacity,
            ),
            "data_epoch": self.data_epoch,
            "schema_epoch": self.schema_epoch,
            "data_invalidations": self.data_invalidations,
            "schema_invalidations": self.schema_invalidations,
        }

    def __repr__(self) -> str:
        return "QueryCache(<%d reformulations, %d answers, epoch %d>)" % (
            len(self.reformulations),
            len(self.answers),
            self.data_epoch,
        )
