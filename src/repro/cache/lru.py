"""A size-bounded LRU map with hit/miss/eviction accounting.

The cache subsystem (see :mod:`repro.cache.cache`) is two of these —
one per tier — plus the keying and invalidation logic around them.
Kept deliberately dependency-free: keys are opaque hashables, values
are opaque objects, and the counters are plain integers so snapshots
are cheap enough to attach to every answer report.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Hashable, Optional


class TierStats:
    """Counters for one cache tier (monotonic, never reset by eviction)."""

    __slots__ = ("hits", "misses", "evictions", "invalidations")

    def __init__(self):
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 when the tier was never consulted)."""
        total = self.lookups
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }

    def __repr__(self) -> str:
        return "TierStats(hits=%d, misses=%d, evictions=%d, invalidations=%d)" % (
            self.hits,
            self.misses,
            self.evictions,
            self.invalidations,
        )


class LRUCache:
    """An ordered dict bounded to ``capacity`` entries, LRU-evicted.

    ``get`` counts a hit or a miss and refreshes recency; ``put``
    inserts (or refreshes) and evicts the least recently used entry
    when over capacity; ``invalidate`` empties the tier, counting the
    dropped entries as invalidations (distinct from evictions, which
    are capacity pressure).

    >>> cache = LRUCache(capacity=2)
    >>> cache.put("a", 1); cache.put("b", 2); cache.put("c", 3)
    >>> "a" in cache  # evicted as least recently used
    False
    >>> cache.stats.evictions
    1

    Thread-safe: a ``get`` *mutates* (``move_to_end`` refreshes
    recency), so concurrent readers — pool workers sharing one cache —
    would corrupt the order without the lock.
    """

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError("cache capacity must be positive, got %r" % (capacity,))
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.stats = TierStats()
        self._lock = threading.RLock()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        """Membership probe; does not affect recency or counters."""
        with self._lock:
            return key in self._entries

    def get(self, key: Hashable) -> Optional[Any]:
        """The cached value, refreshed as most recent; None on a miss.

        (Values are never None by construction: every tier stores
        tuples or objects.)
        """
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert or refresh ``key``; evict the LRU entry when full."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def invalidate(self) -> int:
        """Drop every entry; returns how many were dropped."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self.stats.invalidations += dropped
            return dropped

    def keys(self):
        with self._lock:
            return list(self._entries.keys())

    def __repr__(self) -> str:
        return "LRUCache(<%d/%d entries>)" % (len(self._entries), self.capacity)
