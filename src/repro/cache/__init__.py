"""Caching & invalidation: the amortization layer for repeated-query
workloads (S13).

See :mod:`repro.cache.cache` for the tier/epoch design and DESIGN.md
§"Caching & invalidation" for how answerers thread it through.
"""

from .cache import QueryCache, dataset_token
from .keys import cover_key, policy_key, query_key
from .lru import LRUCache, TierStats

__all__ = [
    "LRUCache",
    "QueryCache",
    "TierStats",
    "cover_key",
    "dataset_token",
    "policy_key",
    "query_key",
]
