"""Query algebra: BGP/conjunctive queries, UCQs and JUCQs.

The paper works with the conjunctive (BGP) dialect of SPARQL:
``q(x̄) :- t1, …, tα`` where each ``ti`` is a triple pattern and the
head variables ``x̄`` are the distinguished variables (Section 3).
Reformulation enlarges the language:

* **UCQ** — a union of CQs, the classical reformulation target
  ([7, 8, 9, 12, 16] in the paper);
* **SCQ** — a join of unions of *atomic* queries ([15]);
* **JUCQ** — a join of unions of CQs, the paper's enlarged space; UCQs
  and SCQs are the two extreme points.

Reformulation binds head variables to schema constants (e.g. the class
a type variable ranges over), so heads are tuples of variables *or*
terms; a constant head column simply echoes the constant in every
answer row.  CQs support canonical renaming so that the reformulation
engine can deduplicate rewritings that differ only in the names of
their non-distinguished variables.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Union

from ..rdf.namespaces import RDF_TYPE, shorten
from ..rdf.terms import Literal, Term, URI
from ..rdf.triples import Triple


class Variable:
    """A query variable, written ``?name`` in the SPARQL-style syntax."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        if not isinstance(name, str) or not name:
            raise ValueError("variable name must be a non-empty string")
        object.__setattr__(self, "name", name)

    def __setattr__(self, name, value):
        raise AttributeError("Variable is immutable")

    def __eq__(self, other) -> bool:
        return isinstance(other, Variable) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("Variable", self.name))

    def __repr__(self) -> str:
        return "?%s" % self.name

    def __lt__(self, other: "Variable") -> bool:
        if not isinstance(other, Variable):
            return NotImplemented
        return self.name < other.name


#: Anything that may appear in a triple pattern position.
PatternTerm = Union[Term, Variable]
#: Anything that may appear in a query head.
HeadTerm = Union[Term, Variable]
#: A variable-to-value substitution.
Substitution = Dict[Variable, PatternTerm]

_fresh_counter = itertools.count(1)


def fresh_variable(prefix: str = "f") -> Variable:
    """Return a variable with a globally unused name (for the
    existential positions reformulation introduces)."""
    return Variable("_%s%d" % (prefix, next(_fresh_counter)))


def is_variable(term: PatternTerm) -> bool:
    return isinstance(term, Variable)


class TriplePattern:
    """A triple pattern (query atom): ``s p o`` with variables allowed
    in any position.

    >>> x = Variable("x")
    >>> TriplePattern(x, RDF_TYPE, URI("http://e/Book")).is_type_atom()
    True
    """

    __slots__ = ("subject", "property", "object")

    def __init__(self, subject: PatternTerm, property: PatternTerm, object: PatternTerm):
        for position, value in (("subject", subject), ("property", property), ("object", object)):
            if not isinstance(value, (Term, Variable)):
                raise ValueError(
                    "pattern %s must be a Term or Variable, got %r" % (position, value)
                )
        object_ = object
        super(TriplePattern, self).__setattr__("subject", subject)
        super(TriplePattern, self).__setattr__("property", property)
        super(TriplePattern, self).__setattr__("object", object_)

    def __setattr__(self, name, value):
        raise AttributeError("TriplePattern is immutable")

    def as_tuple(self) -> Tuple[PatternTerm, PatternTerm, PatternTerm]:
        return (self.subject, self.property, self.object)

    def variables(self) -> Set[Variable]:
        return {t for t in self.as_tuple() if isinstance(t, Variable)}

    def is_type_atom(self) -> bool:
        """True for ``s rdf:type o`` atoms (the class-assertion form)."""
        return self.property == RDF_TYPE

    def is_ground(self) -> bool:
        return not self.variables()

    def substitute(self, substitution: Substitution) -> "TriplePattern":
        """Apply *substitution* to every variable position."""
        def apply(term: PatternTerm) -> PatternTerm:
            if isinstance(term, Variable):
                return substitution.get(term, term)
            return term

        return TriplePattern(
            apply(self.subject), apply(self.property), apply(self.object)
        )

    def to_triple(self) -> Triple:
        """Convert a ground pattern to a triple (raises if non-ground)."""
        if not self.is_ground():
            raise ValueError("cannot convert non-ground pattern %r" % (self,))
        return Triple(self.subject, self.property, self.object)

    def matches(self, triple: Triple) -> Optional[Substitution]:
        """Return the unifying substitution against a concrete triple,
        or None when the pattern does not match."""
        binding: Substitution = {}
        for pattern_term, value in zip(self.as_tuple(), triple.as_tuple()):
            if isinstance(pattern_term, Variable):
                bound = binding.get(pattern_term)
                if bound is None:
                    binding[pattern_term] = value
                elif bound != value:
                    return None
            elif pattern_term != value:
                return None
        return binding

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, TriplePattern)
            and other.subject == self.subject
            and other.property == self.property
            and other.object == self.object
        )

    def __hash__(self) -> int:
        return hash(("TriplePattern",) + self.as_tuple())

    def __repr__(self) -> str:
        return "(%s %s %s)" % tuple(_display(t) for t in self.as_tuple())


def _display(term: PatternTerm) -> str:
    if isinstance(term, Variable):
        return repr(term)
    if isinstance(term, URI):
        return shorten(term)
    return term.n3()


class ConjunctiveQuery:
    """A CQ ``q(x̄) :- t1, …, tα``.

    ``head`` may mix variables and constants (see module doc).  Every
    head *variable* must occur in the body; a head *constant* is legal
    anywhere (it arises from reformulation binding a distinguished
    variable).

    ``nonliteral_variables`` is a (normally empty) guard produced by
    reformulation: those variables must bind to URIs or blank nodes.
    The range-typing rule needs it — a triple object may be a literal,
    but literals are never typed, so the rewritten atom must not match
    them (see :class:`repro.reformulation.atoms.Alternative`).
    """

    __slots__ = ("head", "atoms", "nonliteral_variables")

    def __init__(
        self,
        head: Sequence[HeadTerm],
        atoms: Sequence[TriplePattern],
        nonliteral_variables: Iterable[Variable] = (),
    ):
        head = tuple(head)
        atoms = tuple(atoms)
        if not atoms:
            raise ValueError("a conjunctive query needs at least one atom")
        body_variables: Set[Variable] = set()
        for atom in atoms:
            if not isinstance(atom, TriplePattern):
                raise ValueError("CQ atoms must be TriplePatterns, got %r" % (atom,))
            body_variables.update(atom.variables())
        for item in head:
            if isinstance(item, Variable):
                if item not in body_variables:
                    raise ValueError(
                        "head variable %r does not occur in the body" % (item,)
                    )
            elif not isinstance(item, Term):
                raise ValueError("head items must be variables or terms")
        guard = frozenset(nonliteral_variables)
        for item in guard:
            if item not in body_variables:
                raise ValueError(
                    "guarded variable %r does not occur in the body" % (item,)
                )
        super(ConjunctiveQuery, self).__setattr__("head", head)
        super(ConjunctiveQuery, self).__setattr__("atoms", atoms)
        super(ConjunctiveQuery, self).__setattr__("nonliteral_variables", guard)

    def __setattr__(self, name, value):
        raise AttributeError("ConjunctiveQuery is immutable")

    # ------------------------------------------------------------------

    @property
    def arity(self) -> int:
        return len(self.head)

    def head_variables(self) -> List[Variable]:
        return [item for item in self.head if isinstance(item, Variable)]

    def variables(self) -> Set[Variable]:
        collected: Set[Variable] = set()
        for atom in self.atoms:
            collected.update(atom.variables())
        return collected

    def is_boolean(self) -> bool:
        return not self.head

    def substitute(self, substitution: Substitution) -> "ConjunctiveQuery":
        """Apply a substitution to head and body simultaneously.

        A guarded variable bound to a URI or blank node has its guard
        discharged; binding one to a literal is a caller error (the
        reformulation engine drops such disjuncts before reaching
        here).
        """
        new_head: List[HeadTerm] = []
        for item in self.head:
            if isinstance(item, Variable) and item in substitution:
                new_head.append(substitution[item])
            else:
                new_head.append(item)
        new_atoms = [atom.substitute(substitution) for atom in self.atoms]
        remaining_guard = []
        for variable in self.nonliteral_variables:
            bound = substitution.get(variable)
            if bound is None:
                remaining_guard.append(variable)
            elif isinstance(bound, Literal):
                raise ValueError(
                    "guarded variable %r bound to literal %r" % (variable, bound)
                )
        return ConjunctiveQuery(new_head, new_atoms, remaining_guard)

    def with_atoms(self, atoms: Sequence[TriplePattern]) -> "ConjunctiveQuery":
        return ConjunctiveQuery(self.head, atoms, self.nonliteral_variables)

    # ------------------------------------------------------------------
    # Canonical form

    def canonical(self) -> Tuple:
        """A hashable key identifying this CQ up to (a) renaming of
        non-head variables and (b) atom order.

        Reformulation engines use this to deduplicate rewritings.  The
        canonicalization sorts atoms by their variable-blind skeleton,
        then numbers variables in order of first appearance (head
        first); this is a sound over-approximation of CQ isomorphism —
        two CQs with equal keys are isomorphic, while isomorphic CQs
        with genuinely ambiguous skeletons may receive distinct keys,
        which only costs a missed dedup, never an incorrect one.
        """
        def skeleton(atom: TriplePattern) -> Tuple:
            return tuple(
                ("var",) if isinstance(t, Variable) else ("term", t.sort_key())
                for t in atom.as_tuple()
            )

        ordered_atoms = sorted(self.atoms, key=skeleton)
        numbering: Dict[Variable, int] = {}
        for item in self.head:
            if isinstance(item, Variable) and item not in numbering:
                numbering[item] = len(numbering)
        for atom in ordered_atoms:
            for term in atom.as_tuple():
                if isinstance(term, Variable) and term not in numbering:
                    numbering[term] = len(numbering)

        def encode(term: PatternTerm) -> Tuple:
            if isinstance(term, Variable):
                return ("var", numbering[term])
            return ("term", term.sort_key())

        head_key = tuple(encode(item) for item in self.head)
        body_key = tuple(
            tuple(encode(t) for t in atom.as_tuple()) for atom in ordered_atoms
        )
        guard_key = frozenset(
            numbering[variable] for variable in self.nonliteral_variables
        )
        return (head_key, frozenset(body_key), guard_key)

    # ------------------------------------------------------------------

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, ConjunctiveQuery)
            and other.head == self.head
            and other.atoms == self.atoms
            and other.nonliteral_variables == self.nonliteral_variables
        )

    def __hash__(self) -> int:
        return hash((self.head, self.atoms, self.nonliteral_variables))

    def __repr__(self) -> str:
        head = ", ".join(_display(item) for item in self.head)
        body = ", ".join(repr(atom) for atom in self.atoms)
        return "q(%s) :- %s" % (head, body)


class UnionQuery:
    """A UCQ: a union of CQs sharing one head arity.

    The disjuncts' heads may differ in *content* (constants vs
    variables) but must agree in arity; the union's answer is the set
    union of the disjuncts' answers.
    """

    __slots__ = ("arity", "disjuncts")

    def __init__(self, disjuncts: Sequence[ConjunctiveQuery]):
        disjuncts = tuple(disjuncts)
        if not disjuncts:
            raise ValueError("a union query needs at least one disjunct")
        arity = disjuncts[0].arity
        for cq in disjuncts:
            if not isinstance(cq, ConjunctiveQuery):
                raise ValueError("UCQ disjuncts must be CQs, got %r" % (cq,))
            if cq.arity != arity:
                raise ValueError(
                    "UCQ disjuncts must share arity: %d vs %d" % (arity, cq.arity)
                )
        super(UnionQuery, self).__setattr__("arity", arity)
        super(UnionQuery, self).__setattr__("disjuncts", disjuncts)

    def __setattr__(self, name, value):
        raise AttributeError("UnionQuery is immutable")

    def __len__(self) -> int:
        return len(self.disjuncts)

    def __iter__(self) -> Iterator[ConjunctiveQuery]:
        return iter(self.disjuncts)

    def atom_count(self) -> int:
        """Total number of atoms — the syntactic size that makes huge
        UCQ reformulations unparseable (Example 1)."""
        return sum(len(cq.atoms) for cq in self.disjuncts)

    def deduplicated(self) -> "UnionQuery":
        """Drop disjuncts that are equal up to canonical renaming."""
        seen = set()
        kept: List[ConjunctiveQuery] = []
        for cq in self.disjuncts:
            key = cq.canonical()
            if key not in seen:
                seen.add(key)
                kept.append(cq)
        return UnionQuery(kept)

    def __eq__(self, other) -> bool:
        return isinstance(other, UnionQuery) and other.disjuncts == self.disjuncts

    def __hash__(self) -> int:
        return hash(self.disjuncts)

    def __repr__(self) -> str:
        if len(self.disjuncts) <= 3:
            return " UNION ".join(repr(cq) for cq in self.disjuncts)
        return "UnionQuery(<%d CQs, %d atoms>)" % (len(self), self.atom_count())


class JoinOfUnions:
    """A JUCQ: the natural join of fragment UCQs, projected on a head.

    Each fragment UCQ exposes a *fragment head* — the variables of its
    cover fragment that are distinguished or shared with another
    fragment (plus any constants bound by reformulation).  Fragments
    are joined on equal variable names, then the join is projected on
    ``head``.  Every head variable must be exposed by some fragment.
    """

    __slots__ = ("head", "fragment_heads", "fragments")

    def __init__(
        self,
        head: Sequence[HeadTerm],
        fragments: Sequence[Tuple[Sequence[HeadTerm], UnionQuery]],
    ):
        head = tuple(head)
        if not fragments:
            raise ValueError("a JUCQ needs at least one fragment")
        fragment_heads: List[Tuple[HeadTerm, ...]] = []
        unions: List[UnionQuery] = []
        exposed: Set[Variable] = set()
        for fragment_head, union in fragments:
            fragment_head = tuple(fragment_head)
            if not isinstance(union, UnionQuery):
                raise ValueError("JUCQ fragments must be UnionQuery instances")
            if len(fragment_head) != union.arity:
                raise ValueError(
                    "fragment head arity %d does not match UCQ arity %d"
                    % (len(fragment_head), union.arity)
                )
            fragment_heads.append(fragment_head)
            unions.append(union)
            exposed.update(
                item for item in fragment_head if isinstance(item, Variable)
            )
        for item in head:
            if isinstance(item, Variable) and item not in exposed:
                raise ValueError(
                    "head variable %r is not exposed by any fragment" % (item,)
                )
        super(JoinOfUnions, self).__setattr__("head", head)
        super(JoinOfUnions, self).__setattr__("fragment_heads", tuple(fragment_heads))
        super(JoinOfUnions, self).__setattr__("fragments", tuple(unions))

    def __setattr__(self, name, value):
        raise AttributeError("JoinOfUnions is immutable")

    @property
    def arity(self) -> int:
        return len(self.head)

    def fragment_count(self) -> int:
        return len(self.fragments)

    def atom_count(self) -> int:
        return sum(union.atom_count() for union in self.fragments)

    def shared_variables(self) -> Set[Variable]:
        """Variables exposed by two or more fragments (the join keys)."""
        counts: Dict[Variable, int] = {}
        for fragment_head in self.fragment_heads:
            for item in set(
                term for term in fragment_head if isinstance(term, Variable)
            ):
                counts[item] = counts.get(item, 0) + 1
        return {variable for variable, count in counts.items() if count > 1}

    def __repr__(self) -> str:
        parts = ", ".join(
            "U%d(<%d CQs>)" % (index, len(union))
            for index, union in enumerate(self.fragments, start=1)
        )
        return "JoinOfUnions(head=%s, %s)" % (list(self.head), parts)
