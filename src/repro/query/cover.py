"""Query covers: the paper's device for exploring JUCQ reformulations.

A *cover* of a CQ ``q`` is a set of (possibly overlapping) non-empty
fragments whose union is the atom set of ``q`` (Section 4).  Each cover
induces a query answering strategy: reformulate each fragment with a
CQ-to-UCQ algorithm, evaluate the fragment UCQs, join their results.
Two covers are distinguished points of the space:

* the **one-fragment cover** — yields the classical UCQ reformulation;
* the **one-atom-per-fragment cover** — yields the SCQ of [15].

The cover of Example 1 with the shortest evaluation time,
``{{t1,t3}, {t3,t5}, {t2,t4}, {t4,t6}}``, overlaps on t3 and t4.
"""

from __future__ import annotations

from typing import FrozenSet, Iterator, List, Sequence, Set, Tuple

from .algebra import ConjunctiveQuery, TriplePattern, Variable

#: A fragment is a set of atom indices into the covered query's body.
Fragment = FrozenSet[int]


class CoverError(ValueError):
    """Raised when a fragment set is not a valid cover of the query."""


class Cover:
    """A validated cover of a conjunctive query.

    Fragments are kept in a deterministic order (sorted by their sorted
    index tuples) so that strategies built from equal covers compare
    equal and benchmarks are reproducible.

    >>> from repro.query.algebra import Variable, TriplePattern
    >>> from repro.rdf.namespaces import RDF_TYPE
    >>> from repro.rdf.terms import URI
    >>> x = Variable("x")
    >>> q = ConjunctiveQuery([x], [TriplePattern(x, RDF_TYPE, URI("http://e/C")),
    ...                            TriplePattern(x, URI("http://e/p"), Variable("y"))])
    >>> Cover.per_atom(q).fragments
    (frozenset({0}), frozenset({1}))
    """

    __slots__ = ("query", "fragments")

    def __init__(self, query: ConjunctiveQuery, fragments: Sequence[Sequence[int]]):
        atom_count = len(query.atoms)
        normalized: Set[Fragment] = set()
        for fragment in fragments:
            frozen = frozenset(fragment)
            if not frozen:
                raise CoverError("fragments must be non-empty")
            for index in frozen:
                if not (0 <= index < atom_count):
                    raise CoverError(
                        "atom index %r out of range for a %d-atom query"
                        % (index, atom_count)
                    )
            normalized.add(frozen)
        covered: Set[int] = set()
        for fragment in normalized:
            covered.update(fragment)
        if covered != set(range(atom_count)):
            missing = sorted(set(range(atom_count)) - covered)
            raise CoverError("atoms %s are not covered" % missing)
        ordered = tuple(sorted(normalized, key=lambda f: tuple(sorted(f))))
        super(Cover, self).__setattr__("query", query)
        super(Cover, self).__setattr__("fragments", ordered)

    def __setattr__(self, name, value):
        raise AttributeError("Cover is immutable")

    # ------------------------------------------------------------------
    # The two classical covers

    @classmethod
    def single_fragment(cls, query: ConjunctiveQuery) -> "Cover":
        """The cover inducing the UCQ reformulation."""
        return cls(query, [range(len(query.atoms))])

    @classmethod
    def per_atom(cls, query: ConjunctiveQuery) -> "Cover":
        """The cover inducing the SCQ reformulation of [15]."""
        return cls(query, [[index] for index in range(len(query.atoms))])

    # ------------------------------------------------------------------

    def fragment_atoms(self, fragment: Fragment) -> List[TriplePattern]:
        return [self.query.atoms[index] for index in sorted(fragment)]

    def fragment_head(self, fragment: Fragment) -> Tuple[Variable, ...]:
        """The variables a fragment must expose: those that are
        distinguished in the covered query or shared with another
        fragment.  Order follows first appearance in the fragment."""
        own: Set[Variable] = set()
        for index in fragment:
            own.update(self.query.atoms[index].variables())
        needed: Set[Variable] = {
            item for item in self.query.head if isinstance(item, Variable)
        }
        for other in self.fragments:
            if other == fragment:
                continue
            for index in other:
                needed.update(self.query.atoms[index].variables())
        exposed: List[Variable] = []
        for index in sorted(fragment):
            for term in self.query.atoms[index].as_tuple():
                if (
                    isinstance(term, Variable)
                    and term in needed
                    and term not in exposed
                ):
                    exposed.append(term)
        return tuple(variable for variable in exposed if variable in own)

    def fragment_query(self, fragment: Fragment) -> ConjunctiveQuery:
        """The CQ a fragment contributes to the JUCQ."""
        return ConjunctiveQuery(self.fragment_head(fragment), self.fragment_atoms(fragment))

    def fragment_queries(self) -> List[ConjunctiveQuery]:
        return [self.fragment_query(fragment) for fragment in self.fragments]

    # ------------------------------------------------------------------
    # Neighbourhood moves used by the greedy search

    def merge_fragments(self, first: Fragment, second: Fragment) -> "Cover":
        """The cover with *first* and *second* replaced by their union."""
        if first not in self.fragments or second not in self.fragments:
            raise CoverError("both fragments must belong to this cover")
        if first == second:
            raise CoverError("cannot merge a fragment with itself")
        remaining = [f for f in self.fragments if f not in (first, second)]
        remaining.append(first | second)
        return Cover(self.query, remaining)

    def add_atom_to_fragment(self, atom_index: int, fragment: Fragment) -> "Cover":
        """The cover with *atom_index* additionally placed in
        *fragment* (creating overlap, as in Example 1's best cover)."""
        if fragment not in self.fragments:
            raise CoverError("fragment must belong to this cover")
        if atom_index in fragment:
            raise CoverError("atom %d already in fragment" % atom_index)
        updated = [f for f in self.fragments if f != fragment]
        updated.append(fragment | {atom_index})
        return Cover(self.query, updated)

    def without_redundant_fragments(self) -> "Cover":
        """Drop fragments strictly contained in another fragment: their
        join contribution is implied, so they only add cost."""
        kept = [
            fragment
            for fragment in self.fragments
            if not any(
                fragment < other for other in self.fragments if other != fragment
            )
        ]
        return Cover(self.query, kept)

    # ------------------------------------------------------------------

    def is_partition(self) -> bool:
        """True when no two fragments overlap."""
        seen: Set[int] = set()
        for fragment in self.fragments:
            if seen & fragment:
                return False
            seen.update(fragment)
        return True

    def __len__(self) -> int:
        return len(self.fragments)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Cover)
            and other.query == self.query
            and other.fragments == self.fragments
        )

    def __hash__(self) -> int:
        return hash((self.query, self.fragments))

    def __repr__(self) -> str:
        shown = ", ".join(
            "{%s}" % ",".join("t%d" % (index + 1) for index in sorted(fragment))
            for fragment in self.fragments
        )
        return "Cover(%s)" % shown


def enumerate_partition_covers(query: ConjunctiveQuery) -> Iterator[Cover]:
    """Yield every partition cover of *query* (Bell(n) of them).

    Used by the exhaustive optimizer as ground truth on small queries;
    overlapping covers are reachable through the greedy moves instead.
    """
    atom_count = len(query.atoms)
    if atom_count == 0:
        return
    # Standard restricted-growth-string enumeration of set partitions.
    def recurse(index: int, blocks: List[List[int]]) -> Iterator[Cover]:
        if index == atom_count:
            yield Cover(query, [list(block) for block in blocks])
            return
        for block in blocks:
            block.append(index)
            yield from recurse(index + 1, blocks)
            block.pop()
        blocks.append([index])
        yield from recurse(index + 1, blocks)
        blocks.pop()

    yield from recurse(1, [[0]])


def partition_cover_count(atom_count: int) -> int:
    """Bell number: how many partition covers an *atom_count*-atom CQ has.

    >>> [partition_cover_count(n) for n in range(6)]
    [1, 1, 2, 5, 15, 52]
    """
    if atom_count == 0:
        return 1
    # Bell triangle: each row starts with the previous row's last entry;
    # after k extensions the row's last entry is Bell(k+1).
    row = [1]
    for _ in range(atom_count - 1):
        next_row = [row[-1]]
        for value in row:
            next_row.append(next_row[-1] + value)
        row = next_row
    return row[-1]
