"""Text visualization of queries and covers.

"Our demo represents [UCQ and SCQ strategies] by the corresponding
covers, which are well suited to a graphical visualization"
(Section 5).  This module renders the two panels of that visualization
in plain text: the query's *join graph* (atoms as nodes, shared
variables as edges) and a cover's fragment grouping over it.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Set, Tuple

from .algebra import ConjunctiveQuery, Variable
from .cover import Cover


def join_graph(query: ConjunctiveQuery) -> Dict[Tuple[int, int], Set[Variable]]:
    """The query's join graph: (atom index pair) → shared variables."""
    edges: Dict[Tuple[int, int], Set[Variable]] = {}
    for first in range(len(query.atoms)):
        for second in range(first + 1, len(query.atoms)):
            shared = (
                query.atoms[first].variables()
                & query.atoms[second].variables()
            )
            if shared:
                edges[(first, second)] = shared
    return edges


def render_query(query: ConjunctiveQuery) -> str:
    """The atom list plus the join edges.

    >>> # print(render_query(example1_query()))
    """
    lines: List[str] = ["atoms:"]
    for index, atom in enumerate(query.atoms, start=1):
        lines.append("  t%d: %s" % (index, atom))
    edges = join_graph(query)
    if edges:
        lines.append("join edges:")
        for (first, second), shared in sorted(edges.items()):
            names = ", ".join(sorted("?%s" % v.name for v in shared))
            lines.append("  t%d -- t%d   on %s" % (first + 1, second + 1, names))
    else:
        lines.append("join edges: (none — cartesian)")
    return "\n".join(lines)


def render_cover(cover: Cover) -> str:
    """The cover as a fragment/atom matrix — the demo's grouping panel.

    Columns are atoms, rows are fragments; ``■`` marks membership, so
    overlaps (the paper's best cover shares t3 and t4) show up as
    columns with several marks.
    """
    atom_count = len(cover.query.atoms)
    header = "fragment " + " ".join(
        "t%-2d" % (index + 1) for index in range(atom_count)
    )
    lines = [header, "-" * len(header)]
    for number, fragment in enumerate(cover.fragments, start=1):
        cells = " ".join(
            " ■ " if index in fragment else " · "
            for index in range(atom_count)
        )
        lines.append("F%-7d %s" % (number, cells))
    overlap = defaultdict(int)
    for fragment in cover.fragments:
        for index in fragment:
            overlap[index] += 1
    shared = [index + 1 for index, count in sorted(overlap.items()) if count > 1]
    if shared:
        lines.append(
            "overlapping atoms: %s" % ", ".join("t%d" % i for i in shared)
        )
    return "\n".join(lines)


def render_strategy(cover: Cover) -> str:
    """Both panels plus the classical-strategy labels."""
    label = "JUCQ cover"
    if len(cover.fragments) == 1:
        label = "UCQ (single-fragment cover)"
    elif all(len(fragment) == 1 for fragment in cover.fragments):
        label = "SCQ (one-atom-per-fragment cover)"
    return "%s\n\n%s\n\n%s" % (
        render_query(cover.query),
        render_cover(cover),
        "strategy: %s" % label,
    )
