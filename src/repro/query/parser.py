"""A SPARQL-lite parser for the conjunctive (BGP) dialect.

The demo lets attendees type queries; this parser accepts the
conjunctive subset of SPARQL the paper considers (Section 3):

    PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
    SELECT ?x ?z
    WHERE {
      ?x rdf:type ub:Student .
      ?x ub:memberOf ?z
    }

Supported: ``PREFIX`` declarations, ``SELECT`` with a variable list or
``*`` (all variables, in order of appearance), ``ASK`` (boolean
queries), and a ``WHERE`` block of dot-separated triple patterns whose
terms are variables (``?x``), URIs (``<...>``), prefixed names
(``ub:Student``, with ``rdf:``/``rdfs:``/``xsd:`` predeclared) and
literals (``"1949"``).  Anything beyond BGPs (OPTIONAL, FILTER, paths)
is out of scope — exactly as in the paper.
"""

from __future__ import annotations

import re
from typing import Dict, List, Sequence

from ..rdf.namespaces import RDF_NS, RDFS_NS, XSD_NS
from ..rdf.terms import URI
from .algebra import ConjunctiveQuery, PatternTerm, TriplePattern, Variable


class QueryParseError(ValueError):
    """Raised when a query string is not valid SPARQL-lite."""


_DEFAULT_PREFIXES = {
    "rdf": RDF_NS.prefix,
    "rdfs": RDFS_NS.prefix,
    "xsd": XSD_NS.prefix,
}

_TOKEN_RE = re.compile(
    r"""
    \s*(
      PREFIX | SELECT | ASK | WHERE          # keywords (case handled below)
      | \?[A-Za-z_][A-Za-z0-9_]*             # variable
      | <[^>]*>                              # URI
      | "(?:[^"\\]|\\.)*"(?:\^\^<[^>]*>)?    # literal
      | [A-Za-z_][A-Za-z0-9_.-]*:[A-Za-z_][A-Za-z0-9_.-]*   # prefixed name
      | [A-Za-z_][A-Za-z0-9_.-]*:            # bare prefix (in PREFIX decl)
      | [{}.*]                               # punctuation
    )
    """,
    re.VERBOSE | re.IGNORECASE,
)


def _tokenize(text: str) -> List[str]:
    tokens: List[str] = []
    position = 0
    stripped = text.strip()
    while position < len(stripped):
        match = _TOKEN_RE.match(stripped, position)
        if match is None:
            raise QueryParseError(
                "cannot tokenize query at offset %d: %r"
                % (position, stripped[position:position + 40])
            )
        tokens.append(match.group(1))
        position = match.end()
    return tokens


class _TokenStream:
    def __init__(self, tokens: Sequence[str]):
        self._tokens = list(tokens)
        self._index = 0

    def peek(self) -> str:
        if self._index >= len(self._tokens):
            raise QueryParseError("unexpected end of query")
        return self._tokens[self._index]

    def next(self) -> str:
        token = self.peek()
        self._index += 1
        return token

    def expect_keyword(self, keyword: str) -> None:
        token = self.next()
        if token.upper() != keyword:
            raise QueryParseError("expected %s, found %r" % (keyword, token))

    def expect(self, token: str) -> None:
        found = self.next()
        if found != token:
            raise QueryParseError("expected %r, found %r" % (token, found))

    def at_end(self) -> bool:
        return self._index >= len(self._tokens)


def _parse_term(token: str, prefixes: Dict[str, str]) -> PatternTerm:
    if token.startswith("?"):
        return Variable(token[1:])
    if token.startswith("<") and token.endswith(">"):
        return URI(token[1:-1])
    if token.startswith('"'):
        from ..rdf.io import parse_term as parse_rdf_term

        return parse_rdf_term(token)
    if ":" in token:
        prefix, _, local = token.partition(":")
        base = prefixes.get(prefix)
        if base is None:
            raise QueryParseError("undeclared prefix %r" % prefix)
        return URI(base + local)
    raise QueryParseError("unrecognized term %r" % token)


def parse_query(text: str) -> ConjunctiveQuery:
    """Parse a SPARQL-lite string into a :class:`ConjunctiveQuery`.

    >>> q = parse_query('SELECT ?x WHERE { ?x rdf:type <http://e/Book> }')
    >>> q.arity
    1
    """
    stream = _TokenStream(_tokenize(text))
    prefixes = dict(_DEFAULT_PREFIXES)

    while not stream.at_end() and stream.peek().upper() == "PREFIX":
        stream.next()
        prefix_token = stream.next()
        if not prefix_token.endswith(":"):
            raise QueryParseError("malformed PREFIX declaration: %r" % prefix_token)
        uri_token = stream.next()
        if not (uri_token.startswith("<") and uri_token.endswith(">")):
            raise QueryParseError("PREFIX needs a <URI>, found %r" % uri_token)
        prefixes[prefix_token[:-1]] = uri_token[1:-1]

    form = stream.next().upper()
    select_all = False
    head_variables: List[Variable] = []
    if form == "SELECT":
        while stream.peek().upper() != "WHERE":
            token = stream.next()
            if token == "*":
                select_all = True
            elif token.startswith("?"):
                head_variables.append(Variable(token[1:]))
            else:
                raise QueryParseError("bad SELECT item %r" % token)
        if not select_all and not head_variables:
            raise QueryParseError("SELECT needs variables or *")
    elif form == "ASK":
        pass
    else:
        raise QueryParseError("query must start with SELECT or ASK, found %r" % form)

    stream.expect_keyword("WHERE")
    stream.expect("{")
    atoms: List[TriplePattern] = []
    order_of_appearance: List[Variable] = []
    while stream.peek() != "}":
        terms: List[PatternTerm] = []
        for _ in range(3):
            term = _parse_term(stream.next(), prefixes)
            if isinstance(term, Variable) and term not in order_of_appearance:
                order_of_appearance.append(term)
            terms.append(term)
        atoms.append(TriplePattern(terms[0], terms[1], terms[2]))
        if stream.peek() == ".":
            stream.next()
    stream.expect("}")
    if not stream.at_end():
        raise QueryParseError("trailing tokens after WHERE block")
    if not atoms:
        raise QueryParseError("empty WHERE block")

    if form == "ASK":
        head: List[Variable] = []
    elif select_all:
        head = order_of_appearance
    else:
        head = head_variables
    return ConjunctiveQuery(head, atoms)
