"""Query model: BGP/CQ algebra, SPARQL-lite parsing, covers (S4)."""

from .algebra import (
    ConjunctiveQuery,
    JoinOfUnions,
    TriplePattern,
    UnionQuery,
    Variable,
    fresh_variable,
    is_variable,
)
from .cover import (
    Cover,
    CoverError,
    enumerate_partition_covers,
    partition_cover_count,
)
from .evaluation import evaluate, evaluate_cq, evaluate_jucq, evaluate_ucq
from .parser import QueryParseError, parse_query
from .visualize import join_graph, render_cover, render_query, render_strategy

__all__ = [
    "ConjunctiveQuery",
    "Cover",
    "CoverError",
    "JoinOfUnions",
    "QueryParseError",
    "TriplePattern",
    "UnionQuery",
    "Variable",
    "enumerate_partition_covers",
    "evaluate",
    "evaluate_cq",
    "evaluate_jucq",
    "evaluate_ucq",
    "fresh_variable",
    "is_variable",
    "join_graph",
    "parse_query",
    "render_cover",
    "render_query",
    "render_strategy",
    "partition_cover_count",
]
