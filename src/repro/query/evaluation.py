"""Reference evaluator: queries against a logical :class:`Graph`.

This is the *specification* evaluator: straightforward backtracking
over the graph's hash indexes, used by the test-suite (the Ref/Sat
equivalence properties) and by small examples.  Benchmark-scale
evaluation goes through the dictionary-encoded relational engine in
:mod:`repro.storage`, which must produce identical answers — a fact
the integration tests check against this module.

Evaluation (over explicit triples only) is distinguished from query
*answering* (which accounts for entailment); see the paper, Section 3.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from ..rdf.graph import Graph
from ..rdf.terms import Term
from ..rdf.triples import Triple
from .algebra import (
    ConjunctiveQuery,
    HeadTerm,
    JoinOfUnions,
    Substitution,
    TriplePattern,
    UnionQuery,
    Variable,
    is_variable,
)

#: An answer is a set of rows; a row is a tuple of terms.
Row = Tuple[Term, ...]
Answer = FrozenSet[Row]


def _candidate_triples(
    graph: Graph, atom: TriplePattern, binding: Substitution
) -> Iterator[Triple]:
    """Triples possibly matching *atom* under *binding*, via the most
    selective index available."""
    def resolve(term):
        if isinstance(term, Variable):
            return binding.get(term)
        return term

    return graph.match(
        subject=resolve(atom.subject),
        property=resolve(atom.property),
        object=resolve(atom.object),
    )


def _order_atoms(atoms: Sequence[TriplePattern]) -> List[TriplePattern]:
    """Greedy join order: repeatedly pick the atom with the most
    positions bound by constants or already-chosen variables."""
    remaining = list(atoms)
    bound: Set[Variable] = set()
    ordered: List[TriplePattern] = []
    while remaining:
        def boundness(atom: TriplePattern) -> int:
            score = 0
            for term in atom.as_tuple():
                if not isinstance(term, Variable) or term in bound:
                    score += 1
            return score

        best = max(remaining, key=boundness)
        remaining.remove(best)
        ordered.append(best)
        bound.update(best.variables())
    return ordered


def _solutions(
    graph: Graph, atoms: Sequence[TriplePattern]
) -> Iterator[Substitution]:
    """Yield every substitution making all *atoms* hold in *graph*."""
    ordered = _order_atoms(atoms)

    def extend(index: int, binding: Substitution) -> Iterator[Substitution]:
        if index == len(ordered):
            yield dict(binding)
            return
        atom = ordered[index]
        for triple in _candidate_triples(graph, atom, binding):
            local = atom.substitute(binding).matches(triple)
            if local is None:
                continue
            merged = dict(binding)
            merged.update(local)
            yield from extend(index + 1, merged)

    yield from extend(0, {})


def _project(head: Sequence[HeadTerm], binding: Substitution) -> Row:
    row: List[Term] = []
    for item in head:
        if isinstance(item, Variable):
            row.append(binding[item])
        else:
            row.append(item)
    return tuple(row)


def evaluate_cq(graph: Graph, query: ConjunctiveQuery, budget=None) -> Answer:
    """Evaluate a CQ against the explicit triples of *graph*.

    Returns the set of head rows (set semantics, as in the paper).
    A boolean query returns ``{()}`` when satisfied, ``{}`` otherwise.
    Solutions binding a guarded (``nonliteral_variables``) variable to
    a literal are discarded.  ``budget`` (opt-in) probes row/time
    limits every ``CHECK_INTERVAL`` solutions and charges the final
    answer size.
    """
    from ..rdf.terms import Literal

    guard = query.nonliteral_variables
    rows: Set[Row] = set()
    if budget is not None:
        from ..resilience.budget import CHECK_INTERVAL

        produced = 0
    for binding in _solutions(graph, query.atoms):
        if budget is not None:
            produced += 1
            if produced % CHECK_INTERVAL == 0:
                budget.probe_rows(len(rows) + 1, operator="backtracking scan")
                budget.check_time(operator="backtracking scan")
        if guard and any(
            isinstance(binding.get(variable), Literal) for variable in guard
        ):
            continue
        rows.add(_project(query.head, binding))
    if budget is not None:
        budget.charge_rows(len(rows), operator="backtracking scan")
    return frozenset(rows)


def evaluate_ucq(graph: Graph, query: UnionQuery) -> Answer:
    """Evaluate a UCQ: the union of its disjuncts' answers."""
    rows: Set[Row] = set()
    for disjunct in query.disjuncts:
        rows.update(evaluate_cq(graph, disjunct))
    return frozenset(rows)


def _join_relations(
    left_schema: Tuple[HeadTerm, ...],
    left_rows: Set[Row],
    right_schema: Tuple[HeadTerm, ...],
    right_rows: Set[Row],
    budget=None,
) -> Tuple[Tuple[HeadTerm, ...], Set[Row]]:
    """Hash-join two relations on their shared variables.

    A relation's schema is its fragment head: variables name columns
    (repeats allowed), constants are payload columns.  The join output
    schema is the left schema followed by the right columns whose
    variables are not already present on the left.

    ``budget`` (an :class:`~repro.resilience.budget.ExecutionBudget`)
    bounds the output: the join probes the budget mid-loop every
    ``CHECK_INTERVAL`` produced rows — a Cartesian blowup raises
    :class:`~repro.resilience.errors.BudgetExceeded` instead of
    materialising — and charges the final output size on completion.
    """
    left_positions: Dict[Variable, int] = {}
    for index, item in enumerate(left_schema):
        if isinstance(item, Variable) and item not in left_positions:
            left_positions[item] = index

    join_pairs: List[Tuple[int, int]] = []  # (left index, right index)
    keep_right: List[int] = []
    for index, item in enumerate(right_schema):
        if isinstance(item, Variable) and item in left_positions:
            join_pairs.append((left_positions[item], index))
        else:
            keep_right.append(index)

    output_schema = tuple(left_schema) + tuple(right_schema[i] for i in keep_right)

    # Build on the smaller side for form; correctness is symmetric.
    table: Dict[Tuple[Term, ...], List[Row]] = {}
    for row in left_rows:
        key = tuple(row[li] for li, _ in join_pairs)
        table.setdefault(key, []).append(row)

    output: Set[Row] = set()
    if budget is not None:
        from ..resilience.budget import CHECK_INTERVAL

        probe_at = CHECK_INTERVAL
    for row in right_rows:
        key = tuple(row[ri] for _, ri in join_pairs)
        for match in table.get(key, ()):
            output.add(match + tuple(row[i] for i in keep_right))
            if budget is not None and len(output) >= probe_at:
                budget.probe_rows(len(output), operator="hash join")
                budget.check_time(operator="hash join")
                probe_at = len(output) + CHECK_INTERVAL
    if budget is not None:
        budget.charge_rows(len(output), operator="hash join")
    return output_schema, output


def evaluate_jucq(graph: Graph, query: JoinOfUnions, budget=None) -> Answer:
    """Evaluate a JUCQ: fragment UCQs joined on shared variables, then
    projected on the query head.  ``budget`` bounds the evaluation (see
    :func:`_join_relations`); fragment answers are charged as they
    materialise."""
    schema: Optional[Tuple[HeadTerm, ...]] = None
    rows: Set[Row] = set()
    for index, (fragment_head, union) in enumerate(
        zip(query.fragment_heads, query.fragments)
    ):
        fragment_rows = set(evaluate_ucq(graph, union))
        if budget is not None:
            budget.charge_rows(
                len(fragment_rows), operator="fragment %d union" % index
            )
        if schema is None:
            schema, rows = tuple(fragment_head), fragment_rows
        else:
            schema, rows = _join_relations(
                schema, rows, tuple(fragment_head), fragment_rows, budget=budget
            )
        if not rows:
            return frozenset()

    positions: Dict[Variable, int] = {}
    for index, item in enumerate(schema):
        if isinstance(item, Variable) and item not in positions:
            positions[item] = index

    projected: Set[Row] = set()
    for row in rows:
        out: List[Term] = []
        for item in query.head:
            if isinstance(item, Variable):
                out.append(row[positions[item]])
            else:
                out.append(item)
        projected.add(tuple(out))
    return frozenset(projected)


def evaluate(graph: Graph, query) -> Answer:
    """Evaluate any of the three query forms against *graph*."""
    if isinstance(query, ConjunctiveQuery):
        return evaluate_cq(graph, query)
    if isinstance(query, UnionQuery):
        return evaluate_ucq(graph, query)
    if isinstance(query, JoinOfUnions):
        return evaluate_jucq(graph, query)
    raise TypeError("cannot evaluate %r" % (query,))
