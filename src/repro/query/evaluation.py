"""Reference evaluator: queries against a logical :class:`Graph`.

This is the *specification* evaluator: straightforward backtracking
over the graph's hash indexes, used by the test-suite (the Ref/Sat
equivalence properties) and by small examples.  Benchmark-scale
evaluation goes through the dictionary-encoded relational engine in
:mod:`repro.storage`, which must produce identical answers — a fact
the integration tests check against this module.

Evaluation (over explicit triples only) is distinguished from query
*answering* (which accounts for entailment); see the paper, Section 3.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from ..rdf.graph import Graph
from ..rdf.terms import Term
from ..rdf.triples import Triple
from .algebra import (
    ConjunctiveQuery,
    HeadTerm,
    JoinOfUnions,
    Substitution,
    TriplePattern,
    UnionQuery,
    Variable,
)

#: An answer is a set of rows; a row is a tuple of terms.
Row = Tuple[Term, ...]
Answer = FrozenSet[Row]


def _candidate_triples(
    graph: Graph, atom: TriplePattern, binding: Substitution
) -> Iterator[Triple]:
    """Triples possibly matching *atom* under *binding*, via the most
    selective index available."""
    def resolve(term):
        if isinstance(term, Variable):
            return binding.get(term)
        return term

    return graph.match(
        subject=resolve(atom.subject),
        property=resolve(atom.property),
        object=resolve(atom.object),
    )


def _order_atoms(atoms: Sequence[TriplePattern]) -> List[TriplePattern]:
    """Greedy join order: repeatedly pick the atom with the most
    positions bound by constants or already-chosen variables."""
    remaining = list(atoms)
    bound: Set[Variable] = set()
    ordered: List[TriplePattern] = []
    while remaining:
        def boundness(atom: TriplePattern) -> int:
            score = 0
            for term in atom.as_tuple():
                if not isinstance(term, Variable) or term in bound:
                    score += 1
            return score

        best = max(remaining, key=boundness)
        remaining.remove(best)
        ordered.append(best)
        bound.update(best.variables())
    return ordered


def _solutions(
    graph: Graph, atoms: Sequence[TriplePattern]
) -> Iterator[Substitution]:
    """Yield every substitution making all *atoms* hold in *graph*."""
    ordered = _order_atoms(atoms)

    def extend(index: int, binding: Substitution) -> Iterator[Substitution]:
        if index == len(ordered):
            yield dict(binding)
            return
        atom = ordered[index]
        for triple in _candidate_triples(graph, atom, binding):
            local = atom.substitute(binding).matches(triple)
            if local is None:
                continue
            merged = dict(binding)
            merged.update(local)
            yield from extend(index + 1, merged)

    yield from extend(0, {})


def _project(head: Sequence[HeadTerm], binding: Substitution) -> Row:
    row: List[Term] = []
    for item in head:
        if isinstance(item, Variable):
            row.append(binding[item])
        else:
            row.append(item)
    return tuple(row)


def evaluate_cq(graph: Graph, query: ConjunctiveQuery, budget=None) -> Answer:
    """Evaluate a CQ against the explicit triples of *graph*.

    Returns the set of head rows (set semantics, as in the paper).
    A boolean query returns ``{()}`` when satisfied, ``{}`` otherwise.
    Solutions binding a guarded (``nonliteral_variables``) variable to
    a literal are discarded.  ``budget`` (opt-in) probes row/time
    limits every ``CHECK_INTERVAL`` solutions and charges the final
    answer size.
    """
    from ..rdf.terms import Literal

    guard = query.nonliteral_variables
    rows: Set[Row] = set()
    if budget is not None:
        from ..resilience.budget import CHECK_INTERVAL

        produced = 0
    for binding in _solutions(graph, query.atoms):
        if budget is not None:
            produced += 1
            if produced % CHECK_INTERVAL == 0:
                budget.probe_rows(len(rows) + 1, operator="backtracking scan")
                budget.check_time(operator="backtracking scan")
        if guard and any(
            isinstance(binding.get(variable), Literal) for variable in guard
        ):
            continue
        rows.add(_project(query.head, binding))
    if budget is not None:
        budget.charge_rows(len(rows), operator="backtracking scan")
    return frozenset(rows)


def evaluate_ucq(graph: Graph, query: UnionQuery, budget=None) -> Answer:
    """Evaluate a UCQ: the union of its disjuncts' answers.

    ``budget`` is threaded into each disjunct's evaluation (probed
    mid-backtracking, charged per disjunct answer), so a UCQ respects
    row/time budgets exactly as its component CQs do.
    """
    rows: Set[Row] = set()
    for disjunct in query.disjuncts:
        rows.update(evaluate_cq(graph, disjunct, budget=budget))
    return frozenset(rows)


def evaluate_jucq(graph: Graph, query: JoinOfUnions, budget=None) -> Answer:
    """Evaluate a JUCQ: fragment UCQs joined on shared variables, then
    projected on the query head.

    ``budget`` bounds the whole evaluation: it is threaded into each
    fragment's UCQ evaluation (which charges the fragment rows as they
    materialize) and meters the join outputs — the joins run through
    the engine's shared kernel
    (:func:`repro.engine.pipeline.join_relations`), whose pipelined
    hash join charges per batch, so a Cartesian blowup raises
    :class:`~repro.resilience.errors.BudgetExceeded` before
    materializing.
    """
    from ..engine.pipeline import join_relations

    schema: Optional[Tuple[HeadTerm, ...]] = None
    rows: Set[Row] = set()
    for fragment_head, union in zip(query.fragment_heads, query.fragments):
        fragment_rows = set(evaluate_ucq(graph, union, budget=budget))
        if schema is None:
            schema, rows = tuple(fragment_head), fragment_rows
        else:
            schema, rows = join_relations(
                schema, rows, tuple(fragment_head), fragment_rows, budget=budget
            )
        if not rows:
            return frozenset()

    positions: Dict[Variable, int] = {}
    for index, item in enumerate(schema):
        if isinstance(item, Variable) and item not in positions:
            positions[item] = index

    projected: Set[Row] = set()
    for row in rows:
        out: List[Term] = []
        for item in query.head:
            if isinstance(item, Variable):
                out.append(row[positions[item]])
            else:
                out.append(item)
        projected.add(tuple(out))
    return frozenset(projected)


def evaluate(graph: Graph, query, budget=None) -> Answer:
    """Evaluate any of the three query forms against *graph*.

    ``budget`` (an :class:`~repro.resilience.budget.ExecutionBudget`)
    is honored uniformly across all three forms.
    """
    if isinstance(query, ConjunctiveQuery):
        return evaluate_cq(graph, query, budget=budget)
    if isinstance(query, UnionQuery):
        return evaluate_ucq(graph, query, budget=budget)
    if isinstance(query, JoinOfUnions):
        return evaluate_jucq(graph, query, budget=budget)
    raise TypeError("cannot evaluate %r" % (query,))
