"""Experiment harness shared by the ``benchmarks/`` suite.

Each benchmark file regenerates one of the paper's tables/figures (the
experiment index lives in DESIGN.md).  This module provides the shared
machinery: wall-clock measurement of strategy runs, failure capture
(a strategy *failing* — too-large reformulation — is itself a result
the paper reports), and plain-text tables mirroring what the demo GUI
displays.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional, Sequence

from ..core.answerer import AnswerReport, QueryAnswerer, Strategy
from ..query.algebra import ConjunctiveQuery
from ..query.cover import Cover
from ..reformulation.engine import ReformulationTooLarge
from ..storage.backends import QueryTooLargeError


class StrategyOutcome:
    """One (query, strategy) measurement: a report or a failure."""

    def __init__(
        self,
        strategy: Strategy,
        report: Optional[AnswerReport] = None,
        failure: Optional[str] = None,
    ):
        if (report is None) == (failure is None):
            raise ValueError("exactly one of report/failure must be set")
        self.strategy = strategy
        self.report = report
        self.failure = failure

    @property
    def ok(self) -> bool:
        return self.report is not None

    @property
    def milliseconds(self) -> Optional[float]:
        return self.report.elapsed_seconds * 1000.0 if self.report else None

    @property
    def cardinality(self) -> Optional[int]:
        return self.report.cardinality if self.report else None

    def cell(self) -> str:
        """The table cell the demo would show."""
        if self.report is not None:
            return "%.1f ms (%d rows)" % (self.milliseconds, self.cardinality)
        return "FAIL: %s" % self.failure


def run_strategy(
    answerer: QueryAnswerer,
    query: ConjunctiveQuery,
    strategy: Strategy,
    cover: Optional[Cover] = None,
) -> StrategyOutcome:
    """Measure one strategy, capturing the paper's failure modes."""
    try:
        report = answerer.answer(query, strategy, cover=cover)
        return StrategyOutcome(strategy, report=report)
    except ReformulationTooLarge as exc:
        return StrategyOutcome(
            strategy, failure="reformulation too large (%d CQs)" % exc.size
        )
    except QueryTooLargeError as exc:
        return StrategyOutcome(
            strategy,
            failure="unparseable (%d atoms > %d)" % (exc.atom_count, exc.limit),
        )


def compare_strategies(
    answerer: QueryAnswerer,
    query: ConjunctiveQuery,
    strategies: Sequence[Strategy],
    cover: Optional[Cover] = None,
) -> Dict[Strategy, StrategyOutcome]:
    """Run *strategies* on one query; returns per-strategy outcomes."""
    return {
        strategy: run_strategy(answerer, query, strategy, cover)
        for strategy in strategies
    }


def timed(callable_: Callable, repeat: int = 1) -> float:
    """Best-of-*repeat* wall time of ``callable_()`` in seconds."""
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best
