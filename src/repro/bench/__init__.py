"""Benchmark harness utilities (S12)."""

from .harness import StrategyOutcome, compare_strategies, run_strategy, timed
from .registry import EXPERIMENTS, Experiment, experiment_index
from .reporting import format_speedup, format_table, write_json_report

__all__ = [
    "EXPERIMENTS",
    "Experiment",
    "StrategyOutcome",
    "compare_strategies",
    "experiment_index",
    "format_speedup",
    "format_table",
    "run_strategy",
    "timed",
    "write_json_report",
]
