"""The experiment registry: one entry per reproduced table/figure.

Mirrors DESIGN.md §4 programmatically, so the CLI can list experiments
and run the quick, assertion-free subset without pytest.  The full
measured suite stays in ``benchmarks/`` (pytest + pytest-benchmark).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional


class Experiment:
    """One experiment: identity, claim, bench target, optional quick run."""

    def __init__(
        self,
        identifier: str,
        claim: str,
        bench_file: str,
        quick: Optional[Callable[[], str]] = None,
    ):
        self.identifier = identifier
        self.claim = claim
        self.bench_file = bench_file
        self.quick = quick

    def __repr__(self) -> str:
        return "Experiment(%s)" % self.identifier


def _quick_e1() -> str:
    from ..datasets import example1_query, lubm_schema
    from ..reformulation import atom_reformulation_size, ucq_size

    schema = lubm_schema()
    query = example1_query()
    sizes = [atom_reformulation_size(atom, schema) for atom in query.atoms]
    total = ucq_size(query, schema)
    return (
        "per-atom alternatives: %s\nUCQ disjuncts: %d (paper: 318,096)"
        % (sizes, total)
    )


def _quick_e2() -> str:
    from ..core import QueryAnswerer, Strategy
    from ..datasets import example1_best_cover, example1_query, generate_lubm

    answerer = QueryAnswerer(generate_lubm(universities=2, seed=1))
    query = example1_query()
    scq = answerer.answer(query, Strategy.REF_SCQ)
    best = answerer.answer(
        query, Strategy.REF_JUCQ, cover=example1_best_cover(query)
    )
    return (
        "SCQ: %.0f ms, max intermediate %d rows\n"
        "best cover: %.0f ms, max intermediate %d rows"
        % (
            scq.elapsed_seconds * 1e3,
            scq.execution.max_intermediate_rows(),
            best.elapsed_seconds * 1e3,
            best.execution.max_intermediate_rows(),
        )
    )


def _quick_e6() -> str:
    from ..core import QueryAnswerer, Strategy
    from ..datasets import books_dataset

    graph, schema, query = books_dataset()
    answerer = QueryAnswerer(graph, schema)
    counts = {
        strategy.value: answerer.answer(query, strategy).cardinality
        for strategy in (
            Strategy.REF_UCQ,
            Strategy.REF_VIRTUOSO,
            Strategy.REF_ALLEGRO,
        )
    }
    return "books-example answer counts: %s" % counts


def _quick_e7() -> str:
    import time

    from ..datasets import generate_lubm
    from ..saturation import saturate

    graph = generate_lubm(universities=1, seed=1)
    start = time.perf_counter()
    saturated = saturate(graph)
    elapsed = (time.perf_counter() - start) * 1e3
    return (
        "saturation: %.0f ms, %d explicit -> %d total triples"
        % (elapsed, len(graph), len(saturated))
    )


def _quick_e12() -> str:
    from ..datasets import books_dataset
    from ..reformulation import reformulate
    from ..storage import SqliteBackend, TripleStore

    graph, schema, query = books_dataset()
    store = TripleStore.from_graph(graph)
    with SqliteBackend(store) as backend:
        answer = backend.run(reformulate(query, schema))
    return "SQLite answers the reformulated books query: %d row(s)" % len(answer)


def _quick_e13() -> str:
    import time

    from ..cache import QueryCache
    from ..core import QueryAnswerer, Strategy
    from ..datasets import generate_lubm, lubm_queries

    answerer = QueryAnswerer(
        generate_lubm(universities=1, seed=1), cache=QueryCache()
    )
    query = lubm_queries()["Q5"]

    def answer_ms() -> float:
        start = time.perf_counter()
        answerer.answer(query, Strategy.REF_GCOV)
        return (time.perf_counter() - start) * 1e3

    cold = answer_ms()
    warm = min(answer_ms() for _ in range(3))
    stats = answerer.cache.stats()
    return (
        "Q5 via REF_GCOV: cold %.1f ms, warm %.3f ms (%.0fx); "
        "answer tier %d hit(s) / %d miss(es)"
        % (
            cold,
            warm,
            cold / warm if warm > 0 else float("inf"),
            stats["answer"]["hits"],
            stats["answer"]["misses"],
        )
    )


def _quick_e14() -> str:
    from ..datasets import generate_lubm, lubm_queries, lubm_schema
    from ..federation import Endpoint, FederatedAnswerer
    from ..rdf import Graph
    from ..resilience import ChaosEndpoint, FakeClock, FaultPlan, RetryPolicy

    graph = generate_lubm(universities=1, seed=1, include_schema=False)
    shards = [Graph() for _ in range(3)]
    for index, triple in enumerate(sorted(graph.data_triples())):
        shards[index % 3].add(triple)
    clock = FakeClock()
    federation = FederatedAnswerer(
        [
            ChaosEndpoint(
                Endpoint("shard%d" % index, shard),
                FaultPlan(seed=index, transient_rate=0.3),
                clock=clock,
            )
            for index, shard in enumerate(shards)
        ],
        lubm_schema(),
        retry_policy=RetryPolicy(max_attempts=3, seed=0),
        breaker_threshold=3,
        clock=clock,
    )
    answer = federation.answer(lubm_queries()["Q13"])
    return (
        "Q13 under 30%% transient chaos: %d row(s), %s, %d retr%s, "
        "%d simulated sleep(s)"
        % (
            answer.cardinality,
            "complete" if answer.complete else "partial",
            answer.report.total_retries(),
            "y" if answer.report.total_retries() == 1 else "ies",
            len(clock.sleeps),
        )
    )


def _quick_e15() -> str:
    import shutil
    import tempfile
    import time

    from ..datasets import generate_lubm, lubm_schema
    from ..durability import DurableStore, recover
    from ..storage import TripleStore

    graph = generate_lubm(universities=1, seed=1, include_schema=False)
    schema = lubm_schema()
    start = time.perf_counter()
    TripleStore.from_graph(graph, schema)
    memory = time.perf_counter() - start
    directory = tempfile.mkdtemp(prefix="e15-quick-")
    try:
        durable = DurableStore.open(directory, sync="never")
        start = time.perf_counter()
        records = durable.load(graph, schema)
        loaded = time.perf_counter() - start
        durable.checkpoint()
        durable.close()
        start = time.perf_counter()
        result = recover(directory)
        recovered = time.perf_counter() - start
        return (
            "%d WAL record(s): durable load %.0f ms (%.2fx in-memory), "
            "checkpoint recovery %.0f ms, %d triple(s) back"
            % (
                records,
                loaded * 1e3,
                loaded / memory if memory > 0 else float("inf"),
                recovered * 1e3,
                result.store.triple_count,
            )
        )
    finally:
        shutil.rmtree(directory, ignore_errors=True)


def _quick_e16() -> str:
    from ..core import QueryAnswerer, Strategy
    from ..datasets import example1_query, generate_lubm
    from ..query import Cover

    graph = generate_lubm(universities=1, seed=1)
    query = example1_query()
    cover = Cover.per_atom(query)
    materialized = QueryAnswerer(graph, engine="materialized")
    pipelined = QueryAnswerer(graph, engine="pipelined")
    rm = materialized.answer(query, Strategy.REF_JUCQ, cover=cover)
    rp = pipelined.answer(query, Strategy.REF_JUCQ, cover=cover)
    return (
        "SCQ cover, %d answer row(s) on both engines\n"
        "materialized: %.0f ms, peak %d rows held\n"
        "pipelined:    %.0f ms, peak %d rows buffered"
        % (
            rm.cardinality,
            rm.elapsed_seconds * 1e3,
            rm.execution.max_intermediate_rows(),
            rp.elapsed_seconds * 1e3,
            rp.execution.peak_buffered_rows,
        )
    )


def _quick_e17() -> str:
    import time

    from ..datasets import generate_lubm, lubm_queries, lubm_schema
    from ..federation import Endpoint, FederatedAnswerer
    from ..rdf import Graph
    from ..resilience import ChaosEndpoint, FaultPlan

    graph = generate_lubm(universities=1, seed=1, include_schema=False)
    query = lubm_queries()["Q2"]

    def timed(parallelism: int):
        shards = [Graph() for _ in range(4)]
        for index, triple in enumerate(sorted(graph.data_triples())):
            shards[index % 4].add(triple)
        answerer = FederatedAnswerer(
            [
                ChaosEndpoint(
                    Endpoint("shard%d" % index, shard),
                    FaultPlan(
                        seed=index, latency_rate=1.0, latency_seconds=0.02
                    ),
                )
                for index, shard in enumerate(shards)
            ],
            lubm_schema(),
            parallelism=parallelism,
        )
        start = time.perf_counter()
        result = answerer.answer(query)
        return time.perf_counter() - start, result

    serial_seconds, serial = timed(1)
    parallel_seconds, parallel = timed(4)
    assert serial.rows == parallel.rows
    return (
        "Q2 over 4 endpoints at 20 ms injected latency: "
        "serial %.0f ms, 4 workers %.0f ms (%.1fx), %d row(s) either way"
        % (
            serial_seconds * 1e3,
            parallel_seconds * 1e3,
            serial_seconds / parallel_seconds,
            parallel.cardinality,
        )
    )


def _quick_e18() -> str:
    from ..datasets import generate_lubm, lubm_queries
    from ..resilience.clock import FakeClock
    from ..service import (
        AdmissionRejected,
        QueryRequest,
        QueryService,
        TenantConfig,
    )

    graph = generate_lubm(universities=1, seed=1)
    query = lubm_queries()["Q1"]
    service = QueryService(
        graph,
        tenants=[
            TenantConfig("gold", weight=3, queue_depth=2),
            TenantConfig("bronze", weight=1, queue_depth=2),
        ],
        capacity=1,
        clock=FakeClock(auto_advance=0.001),
    )
    for _ in range(5):  # oversubscribe both queues, then drain
        for tenant in ("gold", "bronze"):
            for _burst in range(2):
                try:
                    service.submit(QueryRequest(tenant, query))
                except AdmissionRejected:
                    pass
        service.step()
    service.drain()
    summary = service.describe()
    return (
        "closed loop over 2 tenants (weights 3:1, depth 2): %d submitted, "
        "%d completed, shed rate %.2f, p95 latency %.0f ms (simulated)"
        % (
            summary["submitted"],
            summary["completed"],
            summary["shed_rate"],
            summary["latency"]["p95"] * 1e3,
        )
    )


def _quick_e19() -> str:
    from ..datasets import generate_lubm, lubm_queries
    from ..rdf import Namespace, RDF_TYPE, Triple
    from ..resilience.clock import FakeClock
    from ..resilience.faults import FaultPlan
    from ..service import (
        LEVEL_NAMES,
        QueryRequest,
        QueryService,
        ServiceChaos,
        TenantConfig,
    )

    graph = generate_lubm(universities=1, seed=1)
    query = lubm_queries()["Q1"]
    clock = FakeClock(auto_advance=0.001)
    chaos = ServiceChaos(
        FaultPlan(seed=7, transient_rate=1.0), clock=clock, armed=False
    )
    service = QueryService(
        graph,
        tenants=[TenantConfig("gold", queue_depth=4)],
        clock=clock,
        brownout=True,
        chaos=chaos,
        breaker_threshold=0,
    )

    def round_trip() -> None:
        service.submit(QueryRequest("gold", query))
        service.step()

    round_trip()  # warm the cache partition
    noise = Namespace("http://example.org/e19-noise/")
    service.insert(Triple(noise["visitor"], RDF_TYPE, noise.Visitor))
    chaos.arm()  # every compute (and refresh) now fails...
    for _ in range(4):
        round_trip()  # ...so the ladder climbs to stale-serving
    chaos.disarm()
    for _ in range(10):
        round_trip()  # refreshes succeed; the ladder walks back down
    service.drain()
    summary = service.describe()
    return (
        "1 tenant under a total transient fault: %d/%d completed "
        "(%d stale serve(s), %d failed), ladder peaked at %s, "
        "final level %s"
        % (
            summary["completed"],
            summary["submitted"],
            summary["stale_serves"],
            summary["failed"],
            LEVEL_NAMES[
                max(t["to"] for t in summary["health"]["brownout"]["transitions"])
            ],
            summary["health"]["brownout"]["level_name"],
        )
    )


def _quick_e20() -> str:
    import shutil
    import tempfile

    from ..rdf import Namespace, RDF_TYPE, Triple
    from ..replication import ReplicationCluster

    directory = tempfile.mkdtemp(prefix="repro-quick-e20-")
    ex = Namespace("http://example.org/quick-e20/")
    cluster = ReplicationCluster(
        directory, ("n1", "n2", "n3"), seed=7,
        link_faults={"drop_rate": 0.2, "duplicate_rate": 0.1,
                     "tear_rate": 0.1},
    )
    try:
        for index in range(12):
            cluster.primary_node.insert(
                Triple(ex["s%d" % index], RDF_TYPE, ex.Entity))
            cluster.pump(1)
        cluster.kill_primary()
        cluster.pump(4)  # lease expires; a follower is promoted
        for index in range(12, 18):
            cluster.primary_node.insert(
                Triple(ex["s%d" % index], RDF_TYPE, ex.Entity))
            cluster.pump(1)
        cluster.heal()
        spent = cluster.pump_until_converged()
        problems = cluster.verify_consistency()
        return (
            "3-node cluster over lossy links: kill-primary -> epoch %d, "
            "heal + %d round(s) -> %s (lsn %d everywhere, %d reseed(s))"
            % (
                cluster.coordinator.epoch,
                spent,
                "converged" if not problems else "; ".join(problems),
                cluster.primary_node.lsn,
                len(cluster.reseed_log),
            )
        )
    finally:
        cluster.close()
        shutil.rmtree(directory, ignore_errors=True)


def _quick_e21() -> str:
    from ..core import QueryAnswerer, Strategy
    from ..datasets import example1_query, generate_lubm
    from ..query import Cover

    graph = generate_lubm(universities=1, seed=1)
    query = example1_query()
    cover = Cover.per_atom(query)
    reports = {
        engine: QueryAnswerer(graph, engine=engine).answer(
            query, Strategy.REF_JUCQ, cover=cover)
        for engine in ("materialized", "pipelined", "columnar")
    }
    rm, rp, rc = (reports[e]
                  for e in ("materialized", "pipelined", "columnar"))
    identical = rm.answer == rp.answer == rc.answer
    return (
        "SCQ cover, %d answer row(s), three engines %s\n"
        "materialized: %.0f ms, peak %d rows held\n"
        "pipelined:    %.0f ms, peak %d rows buffered\n"
        "columnar:     %.0f ms, peak %d rows buffered"
        % (
            rm.cardinality,
            "identical" if identical else "DIVERGED",
            rm.elapsed_seconds * 1e3,
            rm.execution.max_intermediate_rows(),
            rp.elapsed_seconds * 1e3,
            rp.execution.peak_buffered_rows,
            rc.elapsed_seconds * 1e3,
            rc.execution.peak_buffered_rows,
        )
    )


def _quick_e22() -> str:
    from ..core import QueryAnswerer, Strategy
    from ..datasets import example1_query, generate_lubm
    from ..query import Cover

    graph = generate_lubm(universities=1, seed=1)
    query = example1_query()
    cover = Cover.per_atom(query)
    classic = QueryAnswerer(graph, engine="columnar").answer(
        query, Strategy.REF_JUCQ, cover=cover
    )
    encoded = QueryAnswerer(
        graph, engine="columnar", interval_encoding=True
    ).answer(query, Strategy.REF_JUCQ, cover=cover)
    identical = classic.answer == encoded.answer
    stats = encoded.details["interval"]
    return (
        "SCQ cover, %d answer row(s), classic vs interval %s\n"
        "classic columnar:  %.0f ms\n"
        "interval columnar: %.0f ms — %d interval atom(s) collapsing "
        "%d union branch(es)"
        % (
            classic.cardinality,
            "identical" if identical else "DIVERGED",
            classic.elapsed_seconds * 1e3,
            encoded.elapsed_seconds * 1e3,
            stats["interval_atoms"],
            stats["branches_collapsed"],
        )
    )


EXPERIMENTS: List[Experiment] = [
    Experiment("E1", "Example 1's UCQ reformulation blow-up and parse failure",
               "benchmarks/bench_e1_reformulation_size.py", _quick_e1),
    Experiment("E2", "SCQ vs the paper's best cover: intermediate results and time",
               "benchmarks/bench_e2_example1_covers.py", _quick_e2),
    Experiment("E3", "Strategy matrix across the LUBM workload",
               "benchmarks/bench_e3_strategies.py"),
    Experiment("E4", "The three backend profiles",
               "benchmarks/bench_e4_backends.py"),
    Experiment("E5", "The Dat (Datalog) alternative",
               "benchmarks/bench_e5_datalog.py"),
    Experiment("E6", "Completeness of fixed commercial strategies",
               "benchmarks/bench_e6_completeness.py", _quick_e6),
    Experiment("E7", "The Sat maintenance penalty",
               "benchmarks/bench_e7_maintenance.py", _quick_e7),
    Experiment("E8", "Cost-model introspection over the cover space",
               "benchmarks/bench_e8_cost_model.py"),
    Experiment("E9", "Impact of constraint/query modifications",
               "benchmarks/bench_e9_schema_impact.py"),
    Experiment("E10", "Dataset statistics panels",
               "benchmarks/bench_e10_statistics.py"),
    Experiment("E11", "Distributed endpoints: Sat infeasible, Ref complete",
               "benchmarks/bench_e11_federation.py"),
    Experiment("E12", "Validation on a genuine RDBMS (SQLite)",
               "benchmarks/bench_e12_real_rdbms.py", _quick_e12),
    Experiment("E13", "Amortized answering: the reformulation & answer cache",
               "benchmarks/bench_e13_cache.py", _quick_e13),
    Experiment("E14", "Resilience: fault-injected federation, graceful degradation",
               "benchmarks/bench_e14_resilience.py", _quick_e14),
    Experiment("E15", "Durability: WAL overhead and checkpointed recovery time",
               "benchmarks/bench_e15_durability.py", _quick_e15),
    Experiment("E16", "Pipelined vs materialized engine: time and peak rows",
               "benchmarks/bench_e16_engine.py", _quick_e16),
    Experiment("E17", "Intra-query parallelism: fragment/federation fan-out",
               "benchmarks/bench_e17_parallel.py", _quick_e17),
    Experiment("E18", "Multi-tenant serving: shed rate and latency under load",
               "benchmarks/bench_e18_service.py", _quick_e18),
    Experiment("E19", "Degraded-mode serving: availability through a fault window",
               "benchmarks/bench_e19_degraded.py", _quick_e19),
    Experiment("E20", "Replicated serving: availability through a primary crash",
               "benchmarks/bench_e20_replication.py", _quick_e20),
    Experiment("E21", "Columnar vs row engines: time and peak rows at scale",
               "benchmarks/bench_e21_columnar.py", _quick_e21),
    Experiment("E22", "Hierarchy-aware interval encoding: unions as range scans",
               "benchmarks/bench_e22_interval.py", _quick_e22),
    Experiment("A1", "Ablation: exact statistics vs textbook uniformity",
               "benchmarks/bench_a1_statistics_ablation.py"),
    Experiment("A2", "Ablation: UCQ subsumption pruning",
               "benchmarks/bench_a2_pruning_ablation.py"),
    Experiment("A3", "Ablation: greedy GCov vs beam search",
               "benchmarks/bench_a3_search_ablation.py"),
    Experiment("A4", "Ablation: characteristic sets vs textbook star estimates",
               "benchmarks/bench_a4_charsets_ablation.py"),
]


def experiment_index() -> Dict[str, Experiment]:
    return {experiment.identifier: experiment for experiment in EXPERIMENTS}
