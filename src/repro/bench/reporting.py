"""Plain-text tables and JSON artifacts for experiment output.

The benchmarks print the rows/series the paper's evaluation reports;
this module renders them readably without any plotting dependency, and
writes the machine-readable ``BENCH_*.json`` artifacts CI archives.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned monospace table.

    >>> print(format_table(["a", "b"], [[1, "x"], [22, "yy"]]))
    a  | b
    ---+---
    1  | x
    22 | yy
    """
    cells = [[str(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in cells:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(
        " | ".join(header.ljust(widths[i]) for i, header in enumerate(headers))
    )
    lines.append("-+-".join("-" * width for width in widths))
    for row in cells:
        lines.append(
            " | ".join(value.ljust(widths[i]) for i, value in enumerate(row))
        )
    return "\n".join(lines)


def format_speedup(slow_seconds: float, fast_seconds: float) -> str:
    """'430.0x' style speedup strings (guarding zero divisions)."""
    if fast_seconds <= 0:
        return "inf"
    return "%.1fx" % (slow_seconds / fast_seconds)


def write_json_report(path: str, payload: Dict[str, Any]) -> str:
    """Write one experiment's machine-readable result artifact.

    Stable formatting (sorted keys, indent 2, trailing newline) so two
    runs producing equal payloads produce byte-identical files; returns
    the absolute path written.
    """
    path = os.path.abspath(path)
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
