"""Plain-text tables for experiment output.

The benchmarks print the rows/series the paper's evaluation reports;
this module renders them readably without any plotting dependency.
"""

from __future__ import annotations

from typing import List, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned monospace table.

    >>> print(format_table(["a", "b"], [[1, "x"], [22, "yy"]]))
    a  | b
    ---+---
    1  | x
    22 | yy
    """
    cells = [[str(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in cells:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(
        " | ".join(header.ljust(widths[i]) for i, header in enumerate(headers))
    )
    lines.append("-+-".join("-" * width for width in widths))
    for row in cells:
        lines.append(
            " | ".join(value.ljust(widths[i]) for i, value in enumerate(row))
        )
    return "\n".join(lines)


def format_speedup(slow_seconds: float, fast_seconds: float) -> str:
    """'430.0x' style speedup strings (guarding zero divisions)."""
    if fast_seconds <= 0:
        return "inf"
    return "%.1fx" % (slow_seconds / fast_seconds)
