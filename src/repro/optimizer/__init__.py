"""Cost-based cover optimization: GCov and the exhaustive oracle (S8)."""

from .beam import beam_search
from .estimator import CoverCostEstimator, INFINITE_COST
from .exhaustive import ExhaustiveResult, exhaustive_cover_search
from .gcov import GCovResult, gcov

__all__ = [
    "CoverCostEstimator",
    "ExhaustiveResult",
    "GCovResult",
    "INFINITE_COST",
    "beam_search",
    "exhaustive_cover_search",
    "gcov",
]
