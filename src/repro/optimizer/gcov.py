"""GCov: greedy cost-based cover selection (paper, Section 4).

"Our greedy cost-based cover search algorithm, named GCov, starts with
a cover where each atom is alone in a fragment, and adds an atom to a
fragment (leading to a new cover) if the cost model suggests the new
cover may lead to a more efficient query answering strategy."

The search starts from the one-atom-per-fragment cover (the SCQ
strategy), and repeatedly applies the best cost-decreasing move among:

* *add-atom*: place one atom additionally into another fragment
  (creating overlap, as in Example 1's best cover; fragments strictly
  contained in the grown fragment are dropped as redundant);
* *merge*: replace two fragments by their union.

It stops at a local optimum.  Every visited cover and its estimated
cost are recorded — the demo's step 3 lets attendees inspect "the
space of explored alternatives, and their estimated costs".
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..query.algebra import ConjunctiveQuery
from ..query.cover import Cover
from ..reformulation.policy import COMPLETE, ReformulationPolicy
from ..schema.schema import Schema
from ..storage.backends import BackendProfile, HASH_BACKEND
from ..storage.store import TripleStore
from .estimator import CoverCostEstimator


class GCovResult:
    """Outcome of a greedy search: the chosen cover plus the trace."""

    def __init__(
        self,
        cover: Cover,
        cost: float,
        explored: List[Tuple[Cover, float]],
        iterations: int,
    ):
        self.cover = cover
        self.cost = cost
        self.explored = explored
        self.iterations = iterations

    @property
    def explored_count(self) -> int:
        return len(self.explored)

    def __repr__(self) -> str:
        return "GCovResult(%r, cost=%.1f, explored=%d)" % (
            self.cover,
            self.cost,
            self.explored_count,
        )


def _neighbours(cover: Cover) -> List[Cover]:
    """The covers one greedy move away (deduplicated)."""
    seen: Set[Tuple] = set()
    result: List[Cover] = []

    def consider(candidate: Cover) -> None:
        candidate = candidate.without_redundant_fragments()
        key = candidate.fragments
        if key not in seen:
            seen.add(key)
            result.append(candidate)

    fragments = cover.fragments
    for first_index in range(len(fragments)):
        for second_index in range(first_index + 1, len(fragments)):
            consider(
                cover.merge_fragments(fragments[first_index], fragments[second_index])
            )
    atom_count = len(cover.query.atoms)
    for atom_index in range(atom_count):
        for fragment in fragments:
            if atom_index not in fragment:
                consider(cover.add_atom_to_fragment(atom_index, fragment))
    return result


def gcov(
    query: ConjunctiveQuery,
    schema: Schema,
    store: TripleStore,
    backend: BackendProfile = HASH_BACKEND,
    policy: ReformulationPolicy = COMPLETE,
    fragment_limit: int = 4096,
    max_iterations: int = 64,
    estimator: Optional[CoverCostEstimator] = None,
    encoding=None,
) -> GCovResult:
    """Run the greedy cover search for *query*; see module doc.

    ``max_iterations`` bounds the number of accepted moves (each move
    strictly decreases the estimated cost, so termination is
    guaranteed anyway; the bound caps worst-case planning time).
    ``encoding`` (opt-in hierarchy encoding) makes the search price
    interval atoms instead of the unions they collapse.
    """
    if estimator is None:
        estimator = CoverCostEstimator(
            query, schema, store, backend, policy, fragment_limit,
            encoding=encoding,
        )
    current = Cover.per_atom(query)
    current_cost = estimator.cost(current)
    explored: List[Tuple[Cover, float]] = [(current, current_cost)]
    visited: Dict[Tuple, float] = {current.fragments: current_cost}

    iterations = 0
    while iterations < max_iterations:
        best_candidate: Optional[Cover] = None
        best_cost = current_cost
        for candidate in _neighbours(current):
            key = candidate.fragments
            if key in visited:
                cost = visited[key]
            else:
                cost = estimator.cost(candidate)
                visited[key] = cost
                explored.append((candidate, cost))
            if cost < best_cost:
                best_candidate = candidate
                best_cost = cost
        if best_candidate is None:
            break
        current, current_cost = best_candidate, best_cost
        iterations += 1

    return GCovResult(current, current_cost, explored, iterations)
