"""Exhaustive cover search: ground truth for small queries.

Enumerates every *partition* cover (Bell(n) of them) and prices each,
giving the optimum of the partition subspace.  Used by experiment E8 to
measure how close GCov's greedy local optimum gets, and by tests as an
oracle.  Overlapping covers are not enumerated (the space is doubly
exponential); GCov can still reach them through add-atom moves, so the
greedy result may legitimately beat the "exhaustive" partition optimum.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..parallel.pool import ExecutorPool
from ..query.algebra import ConjunctiveQuery
from ..query.cover import Cover, enumerate_partition_covers, partition_cover_count
from ..reformulation.policy import COMPLETE, ReformulationPolicy
from ..schema.schema import Schema
from ..storage.backends import BackendProfile, HASH_BACKEND
from ..storage.store import TripleStore
from .estimator import INFINITE_COST, CoverCostEstimator


class ExhaustiveResult:
    """The best partition cover and the full priced space."""

    def __init__(self, cover: Optional[Cover], cost: float, space: List[Tuple[Cover, float]]):
        self.cover = cover
        self.cost = cost
        self.space = space

    def ranked(self) -> List[Tuple[Cover, float]]:
        return sorted(self.space, key=lambda pair: pair[1])

    def __repr__(self) -> str:
        return "ExhaustiveResult(%r, cost=%.1f, space=%d)" % (
            self.cover,
            self.cost,
            len(self.space),
        )


def exhaustive_cover_search(
    query: ConjunctiveQuery,
    schema: Schema,
    store: TripleStore,
    backend: BackendProfile = HASH_BACKEND,
    policy: ReformulationPolicy = COMPLETE,
    fragment_limit: int = 4096,
    max_atoms: int = 8,
    estimator: Optional[CoverCostEstimator] = None,
    pool: Optional[ExecutorPool] = None,
) -> ExhaustiveResult:
    """Price every partition cover of *query* and return the best.

    Refuses queries beyond *max_atoms* atoms (Bell(9) is already
    21,147 covers); use GCov there instead.

    ``pool`` scores covers concurrently (the estimator is shareable;
    see :class:`~repro.optimizer.estimator.CoverCostEstimator`); the
    priced space comes back in enumeration order regardless, so the
    result is identical to the serial search.
    """
    atom_count = len(query.atoms)
    if atom_count > max_atoms:
        raise ValueError(
            "exhaustive search over %d atoms would price %d covers; "
            "raise max_atoms explicitly if you really want this"
            % (atom_count, partition_cover_count(atom_count))
        )
    if estimator is None:
        estimator = CoverCostEstimator(
            query, schema, store, backend, policy, fragment_limit
        )
    covers = list(enumerate_partition_covers(query))
    if pool is not None and pool.usable() and len(covers) > 1:
        costs = pool.map(estimator.cost, covers)
    else:
        costs = [estimator.cost(cover) for cover in covers]
    best_cover: Optional[Cover] = None
    best_cost = INFINITE_COST
    space: List[Tuple[Cover, float]] = []
    for cover, cost in zip(covers, costs):
        space.append((cover, cost))
        if cost < best_cost:
            best_cover, best_cost = cover, cost
    return ExhaustiveResult(best_cover, best_cost, space)
