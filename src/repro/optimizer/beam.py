"""Beam search over the cover space: a stronger-than-greedy baseline.

GCov commits to the single best move per step; when two moves only pay
off together (e.g. Example 1 needs *both* type atoms grouped before
either join shrinks), a greedy step can stall in a local optimum.
Beam search keeps the ``beam_width`` best covers per round and expands
all of them — a classical remedy the paper leaves on the table, built
here as the ablation (A3) comparing search quality vs planning cost.

Same move set and the same :class:`~repro.optimizer.estimator.
CoverCostEstimator` as GCov, so any quality difference is attributable
to the search strategy alone.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..parallel.pool import ExecutorPool
from ..query.algebra import ConjunctiveQuery
from ..query.cover import Cover
from ..reformulation.policy import COMPLETE, ReformulationPolicy
from ..schema.schema import Schema
from ..storage.backends import BackendProfile, HASH_BACKEND
from ..storage.store import TripleStore
from .estimator import CoverCostEstimator, INFINITE_COST
from .gcov import GCovResult, _neighbours


def beam_search(
    query: ConjunctiveQuery,
    schema: Schema,
    store: TripleStore,
    backend: BackendProfile = HASH_BACKEND,
    policy: ReformulationPolicy = COMPLETE,
    beam_width: int = 4,
    fragment_limit: int = 4096,
    max_rounds: int = 16,
    estimator: Optional[CoverCostEstimator] = None,
    pool: Optional[ExecutorPool] = None,
) -> GCovResult:
    """Beam search from the per-atom cover; returns the same result
    type as :func:`~repro.optimizer.gcov.gcov` for drop-in comparison.

    ``pool`` prices each round's fresh neighbours concurrently; the
    candidates are collected and ranked in discovery order either way,
    so the search trajectory is identical to the serial run.
    """
    if estimator is None:
        estimator = CoverCostEstimator(
            query, schema, store, backend, policy, fragment_limit
        )
    start = Cover.per_atom(query)
    start_cost = estimator.cost(start)
    visited: Dict[Tuple, float] = {start.fragments: start_cost}
    explored: List[Tuple[Cover, float]] = [(start, start_cost)]
    beam: List[Tuple[Cover, float]] = [(start, start_cost)]
    best_cover, best_cost = start, start_cost

    rounds = 0
    while rounds < max_rounds:
        rounds += 1
        fresh: List[Cover] = []
        for cover, _ in beam:
            for neighbour in _neighbours(cover):
                key = neighbour.fragments
                if key in visited:
                    continue
                visited[key] = INFINITE_COST  # claimed; cost follows
                fresh.append(neighbour)
        if pool is not None and pool.usable() and len(fresh) > 1:
            costs = pool.map(estimator.cost, fresh)
        else:
            costs = [estimator.cost(neighbour) for neighbour in fresh]
        candidates: List[Tuple[Cover, float]] = []
        for neighbour, cost in zip(fresh, costs):
            visited[neighbour.fragments] = cost
            explored.append((neighbour, cost))
            candidates.append((neighbour, cost))
        if not candidates:
            break
        candidates.sort(key=lambda pair: pair[1])
        beam = candidates[:beam_width]
        if beam[0][1] < best_cost:
            best_cover, best_cost = beam[0]
        elif all(cost >= best_cost for _, cost in beam):
            # No candidate in the beam improves on the incumbent and
            # costs are monotone enough that deeper rounds rarely help;
            # one grace round, then stop.
            break
    return GCovResult(best_cover, best_cost, explored, rounds)
