"""Pricing covers: the cost function ``c`` over JUCQ strategies.

GCov evaluates many covers that share fragments, so the estimator
caches per-fragment work: a fragment (a set of atom indices) is
reformulated once, planned once (exposing *all* its variables — a
superset of any head a cover will require, which leaves row estimates
unchanged and join-key distincts available), and annotated once.  A
cover's price is then the cost of the join tree over its cached
fragment plans plus projection and duplicate elimination.

Fragments whose UCQ reformulation exceeds ``fragment_limit`` disjuncts
are priced at infinity: the corresponding SQL would blow the backend's
parser exactly like Example 1's 318,096-CQ union, so no finite cost is
meaningful (and materializing the union just to price it would defeat
the optimizer).
"""

from __future__ import annotations

import math
import threading
from typing import Dict, FrozenSet, List, Optional

from ..cost.model import annotate_node
from ..query.algebra import ConjunctiveQuery, Variable
from ..query.cover import Cover
from ..reformulation.engine import reformulate, ucq_size
from ..reformulation.policy import COMPLETE, ReformulationPolicy
from ..schema.schema import Schema
from ..storage.backends import BackendProfile, HASH_BACKEND
from ..engine.ir import DistinctNode, JoinNode, PlanNode, ProjectNode
from ..storage.planner import Planner
from ..storage.store import TripleStore

#: Sentinel cost for fragments too large to reformulate/parse.
INFINITE_COST = math.inf


class CoverCostEstimator:
    """Prices covers of one query against one store + backend.

    Safe to share between pool workers scoring different covers
    concurrently: the fragment-plan cache is guarded by a lock (one
    fragment is reformulated and planned exactly once either way), and
    the head constants are dictionary-encoded up front so no worker
    ever mutates the store's dictionary mid-search."""

    def __init__(
        self,
        query: ConjunctiveQuery,
        schema: Schema,
        store: TripleStore,
        backend: BackendProfile = HASH_BACKEND,
        policy: ReformulationPolicy = COMPLETE,
        fragment_limit: int = 4096,
        encoding=None,
    ):
        self.query = query
        self.schema = schema
        self.store = store
        self.backend = backend
        self.policy = policy
        self.fragment_limit = fragment_limit
        #: Opt-in hierarchy encoding: cover search then prices interval
        #: atoms (stored interval statistics, not summed union branches).
        self.encoding = encoding
        self._planner = Planner(store, backend)
        self._fragment_plans: Dict[FrozenSet[int], Optional[PlanNode]] = {}
        self._lock = threading.RLock()
        # Head constants resolve through lookup() — pricing a cover
        # must never mutate the store's dictionary; a constant the
        # data never stored is carried as a ready term.
        self._head_specs = []
        for item in query.head:
            if isinstance(item, Variable):
                self._head_specs.append(("var", item))
            elif (term_id := store.dictionary.lookup(item)) is not None:
                self._head_specs.append(("const", term_id))
            else:
                self._head_specs.append(("term", item))

    # ------------------------------------------------------------------

    def _fragment_query(self, fragment: FrozenSet[int]) -> ConjunctiveQuery:
        atoms = [self.query.atoms[index] for index in sorted(fragment)]
        variables: List[Variable] = []
        for atom in atoms:
            for term in atom.as_tuple():
                if isinstance(term, Variable) and term not in variables:
                    variables.append(term)
        return ConjunctiveQuery(variables, atoms)

    def fragment_plan(self, fragment: FrozenSet[int]) -> Optional[PlanNode]:
        """The annotated full-head plan for a fragment, or None when
        its reformulation exceeds the limit.  Cached."""
        fragment = frozenset(fragment)
        with self._lock:
            if fragment in self._fragment_plans:
                return self._fragment_plans[fragment]
            fragment_query = self._fragment_query(fragment)
            size = ucq_size(
                fragment_query, self.schema, self.policy, self.encoding
            )
            if size > self.fragment_limit:
                self._fragment_plans[fragment] = None
                return None
            union = reformulate(
                fragment_query, self.schema, self.policy,
                encoding=self.encoding,
            )
            plan = self._planner.plan(union)
            self._fragment_plans[fragment] = plan
            return plan

    # ------------------------------------------------------------------

    def cover_plan(self, cover: Cover) -> Optional[PlanNode]:
        """The annotated plan of the cover's JUCQ built from cached
        fragment plans, or None when any fragment is oversized."""
        plans: List[PlanNode] = []
        for fragment in cover.fragments:
            plan = self.fragment_plan(fragment)
            if plan is None:
                return None
            plans.append(plan)

        ordered = sorted(plans, key=lambda p: p.estimated_rows)
        current = ordered[0]
        pending = ordered[1:]
        while pending:
            bound = set(current.variable_positions())
            connected = [
                plan for plan in pending if bound & set(plan.variable_positions())
            ]
            pool = connected if connected else pending
            best = min(pool, key=lambda p: p.estimated_rows)
            pending.remove(best)
            current = self._annotate(JoinNode(current, best, self.backend.join_algorithm))

        project = self._annotate(ProjectNode(current, list(self._head_specs)))
        return self._annotate(DistinctNode(project))

    def _annotate(self, node: PlanNode) -> PlanNode:
        return annotate_node(
            node, self.store.statistics, self.backend, self.store.type_property_id
        )

    def cost(self, cover: Cover) -> float:
        """The estimated evaluation cost of the cover's JUCQ, or
        :data:`INFINITE_COST` when it cannot be built."""
        plan = self.cover_plan(cover)
        if plan is None:
            return INFINITE_COST
        return plan.total_estimated_cost()
