"""RDF triples: the atomic statement ``s p o``.

A triple states that its subject ``s`` has the property ``p`` whose
value is the object ``o`` (paper, Section 3).  Only *well-formed*
triples are allowed: the subject is a URI or blank node, the property
is a URI, and the object is any term.
"""

from __future__ import annotations

from typing import Tuple

from .namespaces import RDF_TYPE, SCHEMA_PROPERTIES, shorten
from .terms import BlankNode, Literal, ObjectTerm, PropertyTerm, SubjectTerm, Term, URI


class Triple:
    """An immutable, well-formed RDF triple.

    >>> from repro.rdf.namespaces import Namespace
    >>> EX = Namespace("http://example.org/")
    >>> t = Triple(EX.doi1, RDF_TYPE, EX.Book)
    >>> t.is_class_assertion()
    True
    """

    __slots__ = ("subject", "property", "object")

    def __init__(self, subject: SubjectTerm, property: PropertyTerm, object: ObjectTerm):
        if not isinstance(subject, (URI, BlankNode)):
            raise ValueError(
                "triple subject must be a URI or blank node, got %r" % (subject,)
            )
        if not isinstance(property, URI):
            raise ValueError("triple property must be a URI, got %r" % (property,))
        if not isinstance(object, (URI, BlankNode, Literal)):
            raise ValueError("triple object must be an RDF term, got %r" % (object,))
        super(Triple, self).__setattr__("subject", subject)
        super(Triple, self).__setattr__("property", property)
        super(Triple, self).__setattr__("object", object)

    def __setattr__(self, name, value):
        raise AttributeError("Triple is immutable")

    def as_tuple(self) -> Tuple[Term, Term, Term]:
        return (self.subject, self.property, self.object)

    def is_class_assertion(self) -> bool:
        """True for ``s rdf:type o`` triples (unary relation ``o(s)``)."""
        return self.property == RDF_TYPE

    def is_schema_triple(self) -> bool:
        """True when the property is one of the four RDFS constraints."""
        return self.property in SCHEMA_PROPERTIES

    def is_data_triple(self) -> bool:
        """True for assertions (class or property), i.e. non-schema triples."""
        return not self.is_schema_triple()

    def n3(self) -> str:
        return "%s %s %s ." % (self.subject.n3(), self.property.n3(), self.object.n3())

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Triple)
            and other.subject == self.subject
            and other.property == self.property
            and other.object == self.object
        )

    def __hash__(self) -> int:
        return hash((self.subject, self.property, self.object))

    def __lt__(self, other: "Triple") -> bool:
        if not isinstance(other, Triple):
            return NotImplemented
        return tuple(t.sort_key() for t in self.as_tuple()) < tuple(
            t.sort_key() for t in other.as_tuple()
        )

    def __iter__(self):
        return iter(self.as_tuple())

    def __repr__(self) -> str:
        return "Triple(%s, %s, %s)" % (
            _short(self.subject),
            _short(self.property),
            _short(self.object),
        )


def _short(term: Term) -> str:
    if isinstance(term, URI):
        return shorten(term)
    return term.n3()
