"""The RDF data model: terms, triples, graphs and serialization (S1)."""

from .graph import Graph
from .io import ParseError, graph_to_string, load_file, parse_line, parse_term, read_ntriples, save_file, write_ntriples
from .namespaces import (
    Namespace,
    RDF_NS,
    RDF_TYPE,
    RDFS_DOMAIN,
    RDFS_NS,
    RDFS_RANGE,
    RDFS_SUBCLASSOF,
    RDFS_SUBPROPERTYOF,
    SCHEMA_PROPERTIES,
    XSD_NS,
    shorten,
)
from .terms import BlankNode, Literal, Term, URI
from .turtle import read_turtle, turtle_to_string, write_turtle
from .triples import Triple

__all__ = [
    "BlankNode",
    "Graph",
    "Literal",
    "Namespace",
    "ParseError",
    "RDF_NS",
    "RDF_TYPE",
    "RDFS_DOMAIN",
    "RDFS_NS",
    "RDFS_RANGE",
    "RDFS_SUBCLASSOF",
    "RDFS_SUBPROPERTYOF",
    "SCHEMA_PROPERTIES",
    "Term",
    "Triple",
    "URI",
    "XSD_NS",
    "graph_to_string",
    "load_file",
    "parse_line",
    "parse_term",
    "read_ntriples",
    "read_turtle",
    "save_file",
    "shorten",
    "turtle_to_string",
    "write_ntriples",
    "write_turtle",
]
