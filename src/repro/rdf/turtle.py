"""A Turtle-lite reader and writer.

Real RDF datasets (the demo's INSEE/IGN/DBLP scenarios) ship as Turtle;
this module reads the practical core of the syntax:

* ``@prefix`` declarations and prefixed names (``ub:Student``);
* the ``a`` keyword for ``rdf:type``;
* predicate lists (``;``) and object lists (``,``);
* URIs, blank nodes, plain/typed literals, comments.

Out of scope (rejected, never silently misread): collections ``( )``,
anonymous blank nodes ``[ ]``, ``@base``-relative URIs, multi-line
literals, and numeric/boolean literal sugar.  The writer produces
deterministic, subject-grouped Turtle that round-trips through the
reader.
"""

from __future__ import annotations

import io
import re
from collections import defaultdict
from typing import Dict, IO, Iterable, List, Optional, Union

from .graph import Graph
from .io import ParseError, parse_term
from .namespaces import RDF_TYPE, WELL_KNOWN_PREFIXES
from .terms import Literal, Term, URI
from .triples import Triple

_TOKEN_RE = re.compile(
    r"""
    \s*(
      @prefix | @base
      | <[^>]*>                               # URI
      | _:[A-Za-z0-9_.-]+                     # blank node
      | "(?:[^"\\]|\\.)*"(?:\^\^<[^>]*>|\^\^[A-Za-z_][\w.-]*:[\w.-]+)?  # literal
      | [A-Za-z_][\w.-]*:[A-Za-z_][\w.-]*     # prefixed name
      | [A-Za-z_][\w.-]*:                     # bare prefix
      | :[A-Za-z_][\w.-]*                     # default-prefix name
      | \ba\b                                 # rdf:type keyword
      | [;,.]                                 # punctuation
    )
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> List[str]:
    tokens: List[str] = []
    for line_number, line in enumerate(text.splitlines(), start=1):
        stripped = _strip_comment(line)
        position = 0
        while position < len(stripped):
            match = _TOKEN_RE.match(stripped, position)
            if match is None:
                raise ParseError(
                    "cannot tokenize %r" % stripped[position:position + 30],
                    line_number,
                )
            tokens.append(match.group(1))
            position = match.end()
    return tokens


def _strip_comment(line: str) -> str:
    """Remove a trailing ``# comment``, respecting quoted strings and
    URI brackets."""
    in_string = False
    in_uri = False
    escaped = False
    for index, char in enumerate(line):
        if escaped:
            escaped = False
            continue
        if char == "\\" and in_string:
            escaped = True
        elif char == '"':
            in_string = not in_string
        elif char == "<" and not in_string:
            in_uri = True
        elif char == ">" and not in_string:
            in_uri = False
        elif char == "#" and not in_string and not in_uri:
            return line[:index].rstrip()
    return line.rstrip()


class _Parser:
    def __init__(self, tokens: List[str]):
        self.tokens = tokens
        self.index = 0
        self.prefixes: Dict[str, str] = {
            short: prefix for prefix, short in WELL_KNOWN_PREFIXES.items()
        }
        # WELL_KNOWN_PREFIXES maps prefix→short; invert it.
        self.prefixes = {
            short: prefix for prefix, short in WELL_KNOWN_PREFIXES.items()
        }

    def peek(self) -> Optional[str]:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def next(self) -> str:
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of Turtle document")
        self.index += 1
        return token

    def expect(self, token: str) -> None:
        found = self.next()
        if found != token:
            raise ParseError("expected %r, found %r" % (token, found))

    # ------------------------------------------------------------------

    def parse(self) -> Graph:
        graph = Graph()
        while self.peek() is not None:
            token = self.peek()
            if token == "@prefix":
                self._prefix_declaration()
            elif token == "@base":
                raise ParseError("@base is not supported by the Turtle-lite reader")
            else:
                self._statement(graph)
        return graph

    def _prefix_declaration(self) -> None:
        self.expect("@prefix")
        prefix_token = self.next()
        if not prefix_token.endswith(":"):
            raise ParseError("malformed @prefix: %r" % prefix_token)
        uri_token = self.next()
        if not (uri_token.startswith("<") and uri_token.endswith(">")):
            raise ParseError("@prefix needs a <URI>, found %r" % uri_token)
        self.prefixes[prefix_token[:-1]] = uri_token[1:-1]
        self.expect(".")

    def _term(self, token: str) -> Term:
        if token == "a":
            return RDF_TYPE
        if token.startswith("<") or token.startswith("_:"):
            return parse_term(token)
        if token.startswith('"'):
            if "^^" in token and not token.rpartition("^^")[2].startswith("<"):
                body, _, dt_name = token.rpartition("^^")
                datatype = self._term(dt_name)
                if not isinstance(datatype, URI):
                    raise ParseError("bad literal datatype %r" % dt_name)
                literal = parse_term(body)
                return Literal(literal.value, datatype)
            return parse_term(token)
        if ":" in token:
            prefix, _, local = token.partition(":")
            base = self.prefixes.get(prefix)
            if base is None:
                raise ParseError("undeclared prefix %r" % prefix)
            return URI(base + local)
        raise ParseError("unrecognized Turtle term %r" % token)

    def _statement(self, graph: Graph) -> None:
        subject = self._term(self.next())
        while True:
            predicate = self._term(self.next())
            while True:
                obj = self._term(self.next())
                graph.add(Triple(subject, predicate, obj))
                if self.peek() == ",":
                    self.next()
                    continue
                break
            token = self.next()
            if token == ";":
                # Tolerate trailing ';' before '.'
                if self.peek() == ".":
                    self.next()
                    return
                continue
            if token == ".":
                return
            raise ParseError("expected ';' or '.', found %r" % token)


def read_turtle(source: Union[str, IO[str]]) -> Graph:
    """Parse a Turtle-lite document into a graph.

    >>> g = read_turtle('@prefix ex: <http://e/> . ex:a a ex:C ; ex:p ex:b , ex:c .')
    >>> len(g)
    3
    """
    if not isinstance(source, str):
        source = source.read()
    return _Parser(_tokenize(source)).parse()


def write_turtle(
    graph: Iterable[Triple],
    sink: IO[str],
    prefixes: Optional[Dict[str, str]] = None,
) -> int:
    """Write subject-grouped, deterministic Turtle; returns the count.

    *prefixes* maps short names to URI prefixes; the well-known
    ``rdf:``/``rdfs:``/``xsd:`` prefixes are always available.
    """
    table: Dict[str, str] = {
        short: prefix for prefix, short in WELL_KNOWN_PREFIXES.items()
    }
    if prefixes:
        table.update(prefixes)

    def render(term: Term) -> str:
        if isinstance(term, URI):
            if term == RDF_TYPE:
                return "a"
            for short, base in sorted(table.items()):
                local = term.value[len(base):]
                if (
                    term.value.startswith(base)
                    and local
                    and re.fullmatch(r"[A-Za-z_][\w.-]*", local)
                ):
                    return "%s:%s" % (short, local)
        return term.n3()

    count = 0
    for short, base in sorted(table.items()):
        sink.write("@prefix %s: <%s> .\n" % (short, base))
    sink.write("\n")

    by_subject: Dict[Term, List[Triple]] = defaultdict(list)
    for triple in graph:
        by_subject[triple.subject].append(triple)
    for subject in sorted(by_subject, key=lambda term: term.sort_key()):
        triples = sorted(by_subject[subject])
        parts: List[str] = []
        for triple in triples:
            parts.append(
                "%s %s" % (render(triple.property), render(triple.object))
            )
            count += 1
        sink.write("%s %s .\n" % (render(subject), " ;\n    ".join(parts)))
    return count


def turtle_to_string(
    graph: Iterable[Triple], prefixes: Optional[Dict[str, str]] = None
) -> str:
    buffer = io.StringIO()
    write_turtle(graph, buffer, prefixes)
    return buffer.getvalue()
