"""Well-known namespaces and the RDF/RDFS vocabulary the DB fragment uses.

The paper (Figure 1) uses exactly four RDFS constraint properties —
``rdfs:subClassOf``, ``rdfs:subPropertyOf``, ``rdfs:domain`` and
``rdfs:range`` — plus ``rdf:type`` for class assertions.  This module
exposes them as constants and provides a small :class:`Namespace`
helper for building URIs.
"""

from __future__ import annotations

from .terms import URI


class Namespace:
    """A URI prefix from which terms can be minted by attribute access.

    >>> EX = Namespace("http://example.org/")
    >>> EX.Book
    URI('http://example.org/Book')
    >>> EX["has title"]
    URI('http://example.org/has title')
    """

    def __init__(self, prefix: str):
        if not prefix:
            raise ValueError("namespace prefix must be non-empty")
        self._prefix = prefix

    @property
    def prefix(self) -> str:
        return self._prefix

    def term(self, local: str) -> URI:
        return URI(self._prefix + local)

    def __getattr__(self, local: str) -> URI:
        if local.startswith("_"):
            raise AttributeError(local)
        return self.term(local)

    def __getitem__(self, local: str) -> URI:
        return self.term(local)

    def __contains__(self, uri: URI) -> bool:
        return isinstance(uri, URI) and uri.value.startswith(self._prefix)

    def __repr__(self) -> str:
        return "Namespace(%r)" % self._prefix


RDF_NS = Namespace("http://www.w3.org/1999/02/22-rdf-syntax-ns#")
RDFS_NS = Namespace("http://www.w3.org/2000/01/rdf-schema#")
XSD_NS = Namespace("http://www.w3.org/2001/XMLSchema#")

#: ``rdf:type`` — class membership assertions (``o(s)`` in Figure 1).
RDF_TYPE = RDF_NS.term("type")
#: ``rdfs:subClassOf`` — subclass constraints (``s ⊆ o``).
RDFS_SUBCLASSOF = RDFS_NS.term("subClassOf")
#: ``rdfs:subPropertyOf`` — subproperty constraints (``s ⊆ o``).
RDFS_SUBPROPERTYOF = RDFS_NS.term("subPropertyOf")
#: ``rdfs:domain`` — domain typing (``Π_domain(s) ⊆ o``).
RDFS_DOMAIN = RDFS_NS.term("domain")
#: ``rdfs:range`` — range typing (``Π_range(s) ⊆ o``).
RDFS_RANGE = RDFS_NS.term("range")

#: The four RDFS constraint properties of the DB fragment (Figure 1, bottom).
SCHEMA_PROPERTIES = frozenset(
    [RDFS_SUBCLASSOF, RDFS_SUBPROPERTYOF, RDFS_DOMAIN, RDFS_RANGE]
)

#: Short, human-readable prefixes used by the pretty-printers.
WELL_KNOWN_PREFIXES = {
    RDF_NS.prefix: "rdf",
    RDFS_NS.prefix: "rdfs",
    XSD_NS.prefix: "xsd",
}


def shorten(uri: URI) -> str:
    """Return a prefixed name for *uri* when a well-known prefix applies.

    >>> shorten(RDF_TYPE)
    'rdf:type'
    """
    for prefix, short in WELL_KNOWN_PREFIXES.items():
        if uri.value.startswith(prefix):
            return "%s:%s" % (short, uri.value[len(prefix):])
    return uri.local_name()
