"""Reading and writing graphs in an N-Triples-style line format.

The demo lets attendees load datasets from files; this module provides
the minimal, dependency-free serialization used for that: one triple
per line, terms in N-Triples syntax, ``#`` comments and blank lines
ignored.  Parsing is strict — malformed lines raise
:class:`ParseError` with the offending line number, because silently
dropping data would corrupt every experiment built on top.
"""

from __future__ import annotations

import io
import re
from typing import IO, Iterable, Iterator, List, Tuple, Union

from .graph import Graph
from .terms import BlankNode, Literal, Term, URI
from .triples import Triple


class ParseError(ValueError):
    """Raised when a serialized triple cannot be parsed."""

    def __init__(self, message: str, line_number: int = 0):
        if line_number:
            message = "line %d: %s" % (line_number, message)
        super().__init__(message)
        self.line_number = line_number


_TOKEN_RE = re.compile(
    r"""
    \s*(
      <[^>]*>                                   # URI
      | _:[A-Za-z0-9_.-]+                       # blank node
      | "(?:[^"\\]|\\.)*"(?:\^\^<[^>]*>)?       # literal, optional datatype
      | \.                                      # end-of-statement dot
    )
    """,
    re.VERBOSE,
)


def parse_term(token: str) -> Term:
    """Parse a single N-Triples term token.

    >>> parse_term('<http://example.org/a>')
    URI('http://example.org/a')
    >>> parse_term('_:b1')
    BlankNode('b1')
    >>> parse_term('"1949"')
    Literal('1949')
    """
    if token.startswith("<") and token.endswith(">"):
        inner = token[1:-1]
        if not inner:
            raise ParseError("empty URI token")
        return URI(inner)
    if token.startswith("_:"):
        label = token[2:]
        if not label:
            raise ParseError("empty blank node label")
        return BlankNode(label)
    if token.startswith('"'):
        datatype = None
        body = token
        if "^^" in token:
            body, _, dt_token = token.rpartition("^^")
            datatype_term = parse_term(dt_token)
            if not isinstance(datatype_term, URI):
                raise ParseError("literal datatype must be a URI: %r" % token)
            datatype = datatype_term
        if not (body.startswith('"') and body.endswith('"') and len(body) >= 2):
            raise ParseError("malformed literal token: %r" % token)
        raw = body[1:-1]
        value = (
            raw.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
        )
        return Literal(value, datatype)
    raise ParseError("unrecognized term token: %r" % token)


def parse_line(line: str, line_number: int = 0) -> Triple:
    """Parse one ``s p o .`` line into a :class:`Triple`."""
    tokens: List[str] = []
    position = 0
    stripped = line.strip()
    while position < len(stripped):
        match = _TOKEN_RE.match(stripped, position)
        if match is None:
            raise ParseError(
                "cannot tokenize %r at offset %d" % (stripped, position), line_number
            )
        tokens.append(match.group(1))
        position = match.end()
    if tokens and tokens[-1] == ".":
        tokens.pop()
    if len(tokens) != 3:
        raise ParseError(
            "expected 3 terms, found %d in %r" % (len(tokens), stripped), line_number
        )
    subject, prop, obj = (parse_term(token) for token in tokens)
    try:
        return Triple(subject, prop, obj)
    except ValueError as exc:
        raise ParseError(str(exc), line_number)


def read_ntriples(source: Union[str, IO[str]]) -> Graph:
    """Parse a graph from a string or text stream.

    >>> g = read_ntriples('<http://e/a> <http://e/p> "v" .')
    >>> len(g)
    1
    """
    if isinstance(source, str):
        source = io.StringIO(source)
    graph = Graph()
    for line_number, line in enumerate(source, start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        graph.add(parse_line(stripped, line_number))
    return graph


def write_ntriples(graph: Iterable[Triple], sink: IO[str]) -> int:
    """Write triples in deterministic (sorted) order; return the count."""
    count = 0
    for triple in sorted(graph):
        sink.write(triple.n3())
        sink.write("\n")
        count += 1
    return count


def graph_to_string(graph: Iterable[Triple]) -> str:
    """Serialize a graph to an N-Triples string (sorted, reproducible)."""
    buffer = io.StringIO()
    write_ntriples(graph, buffer)
    return buffer.getvalue()


def load_file(path: str) -> Graph:
    """Read a graph from the file at *path*."""
    with open(path, "r", encoding="utf-8") as handle:
        return read_ntriples(handle)


def save_file(graph: Iterable[Triple], path: str) -> int:
    """Write a graph to the file at *path*; return the triple count."""
    with open(path, "w", encoding="utf-8") as handle:
        return write_ntriples(graph, handle)
