"""Reading and writing graphs in an N-Triples-style line format.

The demo lets attendees load datasets from files; this module provides
the minimal, dependency-free serialization used for that: one triple
per line, terms in N-Triples syntax, ``#`` comments and blank lines
ignored.  Parsing is strict by default — malformed lines raise
:class:`ParseError` carrying the offending line number *and text*,
because silently dropping data would corrupt every experiment built on
top.  Bulk loads that prefer resilience over abortion pass
``strict=False`` to :func:`read_ntriples`/:func:`load_file`: bad lines
are skipped and collected (into a caller-supplied ``errors`` list)
instead of aborting a multi-gigabyte load on its first typo.
"""

from __future__ import annotations

import io
import re
from typing import IO, Iterable, List, Optional, Union

from .graph import Graph
from .terms import BlankNode, Literal, Term, URI
from .triples import Triple


class ParseError(ValueError):
    """Raised when a serialized triple cannot be parsed.

    ``line_number`` (1-based, 0 when unknown) and ``line_text`` (the
    offending input line, None when unknown) let callers report *what*
    failed, not just where; ``reason`` keeps the bare message.
    """

    def __init__(
        self,
        message: str,
        line_number: int = 0,
        line_text: Optional[str] = None,
    ):
        self.reason = message
        self.line_number = line_number
        self.line_text = line_text
        if line_text is not None:
            message = "%s: %r" % (message, line_text)
        if line_number:
            message = "line %d: %s" % (line_number, message)
        super().__init__(message)


_TOKEN_RE = re.compile(
    r"""
    \s*(
      <[^>]*>                                   # URI
      | _:[A-Za-z0-9_.-]+                       # blank node
      | "(?:[^"\\]|\\.)*"(?:\^\^<[^>]*>)?       # literal, optional datatype
      | \.                                      # end-of-statement dot
    )
    """,
    re.VERBOSE,
)

#: Literal escape sequences (the inverse of :meth:`Literal.n3`).
_LITERAL_ESCAPES = {"n": "\n", "r": "\r", "t": "\t", '"': '"', "\\": "\\"}

#: A complete literal token: quoted body (escape-aware, so a ``\"``
#: inside the value cannot close it), optional ``^^<datatype>``.
#: Splitting on ``^^`` textually is wrong — the *value* may contain it.
_LITERAL_TOKEN_RE = re.compile(r'^"((?:[^"\\]|\\.)*)"(?:\^\^(<[^>]*>))?$')


def _unescape_literal(raw: str) -> str:
    """Decode literal escapes in one left-to-right pass.

    A sequential ``str.replace`` chain is wrong here: ``\\\\n`` (an
    escaped backslash followed by ``n``) must decode to backslash+n,
    not to a newline, so each escape has to be consumed exactly once.
    """
    if "\\" not in raw:
        return raw
    out: List[str] = []
    position = 0
    length = len(raw)
    while position < length:
        char = raw[position]
        if char == "\\" and position + 1 < length:
            escaped = raw[position + 1]
            out.append(_LITERAL_ESCAPES.get(escaped, escaped))
            position += 2
        else:
            out.append(char)
            position += 1
    return "".join(out)


def parse_term(token: str) -> Term:
    """Parse a single N-Triples term token.

    >>> parse_term('<http://example.org/a>')
    URI('http://example.org/a')
    >>> parse_term('_:b1')
    BlankNode('b1')
    >>> parse_term('"1949"')
    Literal('1949')
    """
    if token.startswith("<") and token.endswith(">"):
        inner = token[1:-1]
        if not inner:
            raise ParseError("empty URI token")
        return URI(inner)
    if token.startswith("_:"):
        label = token[2:]
        if not label:
            raise ParseError("empty blank node label")
        return BlankNode(label)
    if token.startswith('"'):
        match = _LITERAL_TOKEN_RE.match(token)
        if match is None:
            raise ParseError("malformed literal token: %r" % token)
        datatype = None
        if match.group(2) is not None:
            datatype_term = parse_term(match.group(2))
            if not isinstance(datatype_term, URI):
                raise ParseError("literal datatype must be a URI: %r" % token)
            datatype = datatype_term
        return Literal(_unescape_literal(match.group(1)), datatype)
    raise ParseError("unrecognized term token: %r" % token)


def parse_line(line: str, line_number: int = 0) -> Triple:
    """Parse one ``s p o .`` line into a :class:`Triple`."""
    tokens: List[str] = []
    position = 0
    stripped = line.strip()
    while position < len(stripped):
        match = _TOKEN_RE.match(stripped, position)
        if match is None:
            raise ParseError(
                "cannot tokenize at offset %d" % position, line_number, stripped
            )
        tokens.append(match.group(1))
        position = match.end()
    if tokens and tokens[-1] == ".":
        tokens.pop()
    if len(tokens) != 3:
        raise ParseError(
            "expected 3 terms, found %d" % len(tokens), line_number, stripped
        )
    try:
        subject, prop, obj = (parse_term(token) for token in tokens)
        return Triple(subject, prop, obj)
    except ParseError as exc:
        raise ParseError(exc.reason, line_number, stripped) from None
    except ValueError as exc:
        raise ParseError(str(exc), line_number, stripped) from None


def read_ntriples(
    source: Union[str, IO[str]],
    strict: bool = True,
    errors: Optional[List[ParseError]] = None,
) -> Graph:
    """Parse a graph from a string or text stream.

    With ``strict=True`` (the default) the first malformed line raises
    :class:`ParseError`.  With ``strict=False`` malformed lines are
    *skipped*; each skipped line's :class:`ParseError` (with line
    number and text) is appended to *errors* when a list is supplied,
    so bulk loaders can report every bad line after the load finishes
    instead of aborting on the first one.

    >>> g = read_ntriples('<http://e/a> <http://e/p> "v" .')
    >>> len(g)
    1
    >>> bad = []
    >>> g = read_ntriples('junk !\\n<http://e/a> <http://e/p> "v" .',
    ...                   strict=False, errors=bad)
    >>> len(g), bad[0].line_number
    (1, 1)
    """
    if isinstance(source, str):
        source = io.StringIO(source)
    graph = Graph()
    for line_number, line in enumerate(source, start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        try:
            graph.add(parse_line(stripped, line_number))
        except ParseError as exc:
            if strict:
                raise
            if errors is not None:
                errors.append(exc)
    return graph


def write_ntriples(graph: Iterable[Triple], sink: IO[str]) -> int:
    """Write triples in deterministic (sorted) order; return the count."""
    count = 0
    for triple in sorted(graph):
        sink.write(triple.n3())
        sink.write("\n")
        count += 1
    return count


def graph_to_string(graph: Iterable[Triple]) -> str:
    """Serialize a graph to an N-Triples string (sorted, reproducible)."""
    buffer = io.StringIO()
    write_ntriples(graph, buffer)
    return buffer.getvalue()


def load_file(
    path: str,
    strict: bool = True,
    errors: Optional[List[ParseError]] = None,
) -> Graph:
    """Read a graph from the file at *path* (see :func:`read_ntriples`
    for the ``strict``/``errors`` skip-and-collect contract)."""
    with open(path, "r", encoding="utf-8") as handle:
        return read_ntriples(handle, strict=strict, errors=errors)


def save_file(graph: Iterable[Triple], path: str) -> int:
    """Write a graph to the file at *path*; return the triple count."""
    with open(path, "w", encoding="utf-8") as handle:
        return write_ntriples(graph, handle)
