"""RDF graphs: sets of triples with pattern-matching access paths.

An RDF graph is a set of triples (paper, Section 3).  :class:`Graph`
keeps the triple set together with three hash indexes (by subject, by
property, by object) so that the saturation engine, the reformulation
tests and the demo statistics can all look triples up without scanning.
The heavier, dictionary-encoded store used for query *evaluation* lives
in :mod:`repro.storage`; this class is the logical-level graph.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Iterator, Optional, Set

from .namespaces import RDF_TYPE, SCHEMA_PROPERTIES
from .terms import ObjectTerm, PropertyTerm, SubjectTerm, Term
from .triples import Triple


class Graph:
    """A mutable set of RDF triples with subject/property/object indexes.

    >>> from repro.rdf.namespaces import Namespace
    >>> EX = Namespace("http://example.org/")
    >>> g = Graph()
    >>> _ = g.add(Triple(EX.doi1, RDF_TYPE, EX.Book))
    >>> len(g)
    1
    >>> list(g.match(property=RDF_TYPE))[0].object
    URI('http://example.org/Book')
    """

    def __init__(self, triples: Optional[Iterable[Triple]] = None):
        self._triples: Set[Triple] = set()
        self._by_subject: Dict[Term, Set[Triple]] = defaultdict(set)
        self._by_property: Dict[Term, Set[Triple]] = defaultdict(set)
        self._by_object: Dict[Term, Set[Triple]] = defaultdict(set)
        self._listeners = []
        if triples is not None:
            self.add_all(triples)

    # ------------------------------------------------------------------
    # Mutation

    def add_listener(self, callback) -> None:
        """Register ``callback(triple, operation)`` to be invoked after
        every successful mutation (operation is ``"add"`` or
        ``"discard"``).  Cache invalidation hooks attach here; copies
        and unions do not inherit listeners."""
        self._listeners.append(callback)

    def _notify(self, triple: Triple, operation: str) -> None:
        for callback in self._listeners:
            callback(triple, operation)

    def add(self, triple: Triple) -> bool:
        """Add *triple*; return True when it was not already present."""
        if not isinstance(triple, Triple):
            raise TypeError("Graph.add expects a Triple, got %r" % (triple,))
        if triple in self._triples:
            return False
        self._triples.add(triple)
        self._by_subject[triple.subject].add(triple)
        self._by_property[triple.property].add(triple)
        self._by_object[triple.object].add(triple)
        if self._listeners:
            self._notify(triple, "add")
        return True

    def add_all(self, triples: Iterable[Triple]) -> int:
        """Add every triple; return how many were new."""
        added = 0
        for triple in triples:
            if self.add(triple):
                added += 1
        return added

    def discard(self, triple: Triple) -> bool:
        """Remove *triple* if present; return True when it was removed."""
        if triple not in self._triples:
            return False
        self._triples.discard(triple)
        for index, key in (
            (self._by_subject, triple.subject),
            (self._by_property, triple.property),
            (self._by_object, triple.object),
        ):
            bucket = index[key]
            bucket.discard(triple)
            if not bucket:
                del index[key]
        if self._listeners:
            self._notify(triple, "discard")
        return True

    # ------------------------------------------------------------------
    # Access

    def __len__(self) -> int:
        return len(self._triples)

    def __iter__(self) -> Iterator[Triple]:
        return iter(self._triples)

    def __contains__(self, triple: Triple) -> bool:
        return triple in self._triples

    def match(
        self,
        subject: Optional[SubjectTerm] = None,
        property: Optional[PropertyTerm] = None,
        object: Optional[ObjectTerm] = None,
    ) -> Iterator[Triple]:
        """Yield triples matching the given constants (None = wildcard).

        The most selective available index is consulted first, then the
        remaining constants are checked per candidate.
        """
        candidates: Optional[Set[Triple]] = None
        for index, key in (
            (self._by_subject, subject),
            (self._by_property, property),
            (self._by_object, object),
        ):
            if key is None:
                continue
            bucket = index.get(key)
            if bucket is None:
                return
            if candidates is None or len(bucket) < len(candidates):
                candidates = bucket
        if candidates is None:
            candidates = self._triples
        for triple in candidates:
            if subject is not None and triple.subject != subject:
                continue
            if property is not None and triple.property != property:
                continue
            if object is not None and triple.object != object:
                continue
            yield triple

    def subjects_of_type(self, cls: Term) -> Set[Term]:
        """Return the explicit instances of class *cls*."""
        return {t.subject for t in self.match(property=RDF_TYPE, object=cls)}

    def properties(self) -> Set[Term]:
        """Return the set of properties used in the graph."""
        return set(self._by_property)

    def values(self) -> Set[Term]:
        """Return ``Val(G)``: every URI, blank node and literal in use."""
        seen: Set[Term] = set()
        for triple in self._triples:
            seen.update(triple.as_tuple())
        return seen

    # ------------------------------------------------------------------
    # Schema / data split

    def schema_triples(self) -> Iterator[Triple]:
        """Yield the RDFS constraint triples (Figure 1, bottom)."""
        for prop in SCHEMA_PROPERTIES:
            for triple in self._by_property.get(prop, ()):
                yield triple

    def data_triples(self) -> Iterator[Triple]:
        """Yield the assertion triples (class and property assertions)."""
        for triple in self._triples:
            if not triple.is_schema_triple():
                yield triple

    # ------------------------------------------------------------------
    # Set-like helpers

    def copy(self) -> "Graph":
        return Graph(self._triples)

    def union(self, other: "Graph") -> "Graph":
        merged = self.copy()
        merged.add_all(other)
        return merged

    def difference(self, other: "Graph") -> Set[Triple]:
        return {t for t in self._triples if t not in other}

    def __eq__(self, other) -> bool:
        return isinstance(other, Graph) and other._triples == self._triples

    def __repr__(self) -> str:
        return "Graph(<%d triples>)" % len(self._triples)
