"""RDF terms: URIs, literals and blank nodes.

The W3C RDF specification distinguishes three kinds of values that may
appear in a triple: *URIs* (named resources), *literals* (typed or
untyped constants) and *blank nodes* (existential, unnamed resources).
The paper denotes the set of values of a graph ``G`` by ``Val(G)``
(Section 3, Preliminaries); :func:`repro.rdf.graph.Graph.values`
computes it from the term classes defined here.

Terms are immutable, hashable and totally ordered, so they can be used
as dictionary keys, stored in sets, and sorted deterministically (the
storage dictionary encoder and the test-suite both rely on this).
"""

from __future__ import annotations

from typing import Optional, Tuple, Union


class Term:
    """Base class for all RDF terms.

    Subclasses define ``_sort_group`` so that heterogeneous collections
    of terms can be ordered deterministically: URIs < blank nodes <
    literals, then lexicographically within a group.
    """

    __slots__ = ()

    _sort_group = 0

    def sort_key(self) -> Tuple[int, str]:
        """Return a tuple ordering this term against any other term."""
        return (self._sort_group, self.lexical())

    def lexical(self) -> str:
        """Return the lexical form used for ordering and display."""
        raise NotImplementedError

    def n3(self) -> str:
        """Return the term in N-Triples syntax."""
        raise NotImplementedError

    def __lt__(self, other: "Term") -> bool:
        if not isinstance(other, Term):
            return NotImplemented
        return self.sort_key() < other.sort_key()


class URI(Term):
    """A named resource, identified by its URI string.

    >>> URI("http://example.org/Book").n3()
    '<http://example.org/Book>'
    """

    __slots__ = ("value",)

    _sort_group = 0

    def __init__(self, value: str):
        if not isinstance(value, str) or not value:
            raise ValueError("URI value must be a non-empty string, got %r" % (value,))
        object.__setattr__(self, "value", value)

    def __setattr__(self, name, value):
        raise AttributeError("URI is immutable")

    def lexical(self) -> str:
        return self.value

    def n3(self) -> str:
        return "<%s>" % self.value

    def __eq__(self, other) -> bool:
        return isinstance(other, URI) and other.value == self.value

    def __hash__(self) -> int:
        return hash(("URI", self.value))

    def __repr__(self) -> str:
        return "URI(%r)" % self.value

    def local_name(self) -> str:
        """Return the fragment or last path segment, for display.

        >>> URI("http://example.org/ns#Book").local_name()
        'Book'
        """
        value = self.value
        for separator in ("#", "/"):
            if separator in value:
                tail = value.rsplit(separator, 1)[1]
                if tail:
                    return tail
        return value


class BlankNode(Term):
    """An unnamed resource: a form of incomplete information.

    Blank nodes are compared by their label within one graph; the paper
    notes saturation is unique *up to blank node renaming*, which the
    saturation tests exercise through :func:`fresh` labels.
    """

    __slots__ = ("label",)

    _sort_group = 1

    _counter = 0

    def __init__(self, label: str):
        if not isinstance(label, str) or not label:
            raise ValueError("blank node label must be a non-empty string")
        object.__setattr__(self, "label", label)

    def __setattr__(self, name, value):
        raise AttributeError("BlankNode is immutable")

    @classmethod
    def fresh(cls, prefix: str = "b") -> "BlankNode":
        """Return a blank node with a label never handed out before."""
        cls._counter += 1
        return cls("%s%d" % (prefix, cls._counter))

    def lexical(self) -> str:
        return self.label

    def n3(self) -> str:
        return "_:%s" % self.label

    def __eq__(self, other) -> bool:
        return isinstance(other, BlankNode) and other.label == self.label

    def __hash__(self) -> int:
        return hash(("BlankNode", self.label))

    def __repr__(self) -> str:
        return "BlankNode(%r)" % self.label


class Literal(Term):
    """A typed or untyped constant.

    ``datatype`` is an optional :class:`URI`; untyped literals carry
    ``None``.  Two literals are equal when both their lexical value and
    datatype match.

    >>> Literal("1949").n3()
    '"1949"'
    """

    __slots__ = ("value", "datatype")

    _sort_group = 2

    def __init__(self, value: str, datatype: Optional[URI] = None):
        if not isinstance(value, str):
            raise ValueError("literal value must be a string, got %r" % (value,))
        if datatype is not None and not isinstance(datatype, URI):
            raise ValueError("literal datatype must be a URI or None")
        object.__setattr__(self, "value", value)
        object.__setattr__(self, "datatype", datatype)

    def __setattr__(self, name, value):
        raise AttributeError("Literal is immutable")

    def lexical(self) -> str:
        return self.value

    def n3(self) -> str:
        # \r and \t must be escaped too: the serialization is
        # line-based, and universal-newline reading would otherwise
        # split a literal carriage return into two lines.
        escaped = (
            self.value.replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n")
            .replace("\r", "\\r")
            .replace("\t", "\\t")
        )
        if self.datatype is None:
            return '"%s"' % escaped
        return '"%s"^^%s' % (escaped, self.datatype.n3())

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Literal)
            and other.value == self.value
            and other.datatype == self.datatype
        )

    def __hash__(self) -> int:
        return hash(("Literal", self.value, self.datatype))

    def __repr__(self) -> str:
        if self.datatype is None:
            return "Literal(%r)" % self.value
        return "Literal(%r, %r)" % (self.value, self.datatype)


#: A subject may be a URI or a blank node (well-formed triples only).
SubjectTerm = Union[URI, BlankNode]
#: A property is always a URI.
PropertyTerm = URI
#: An object may be any term.
ObjectTerm = Union[URI, BlankNode, Literal]
