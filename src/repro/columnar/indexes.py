"""Sorted integer-run indexes: the columnar engine's access paths.

An RDF-over-RDBMS engine keeps a triple table ``t(s, p, o)`` with
clustered/secondary indexes; the columnar engine keeps the same table
as three **sorted runs of dense integer IDs** — one per permutation the
query shapes need:

======  ==============  =========================================
order   key sequence    serves
======  ==============  =========================================
``spo`` (s, p, o)       subject-bound scans, full sorted scans
``pos`` (p, o, s)       property scans, (p, o) probes (type atoms)
``osp`` (o, s, p)       object-bound scans, (s, o) probes
======  ==============  =========================================

Each run stores its three key columns as stdlib ``array('q')`` —
contiguous 64-bit integers, no per-row Python objects — so a range
probe is two :func:`bisect.bisect` calls per bound prefix column and a
scan is an ``array`` slice (a C-level copy).  A run for a fixed prefix
is itself sorted on the remaining columns, which is what the engine's
merge joins and k-way sorted unions consume.

Indexes are built **lazily** (first probe pays the sort) from the
store's triple set, and invalidated through the store's existing
mutation machinery: every successful encoded-level insert/delete bumps
``TripleStore.mutation_epoch``, and the set drops its built runs when
its epoch falls behind — covering Triple-level writes, bulk loads,
WAL replay and checkpoint restore alike.  A Triple-level listener
additionally drops the arrays eagerly so a write burst does not retain
stale runs in memory.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left, bisect_right
from operator import itemgetter
from typing import Dict, Iterator, Optional, Tuple

#: Key sequence of each ordering, as physical positions (0=s, 1=p, 2=o).
ORDER_PERMUTATIONS: Dict[str, Tuple[int, int, int]] = {
    "spo": (0, 1, 2),
    "pos": (1, 2, 0),
    "osp": (2, 0, 1),
}


class SortedRunIndex:
    """One ordering of the triple table as three sorted ID columns."""

    __slots__ = ("name", "permutation", "columns")

    def __init__(self, name: str, triples) -> None:
        if name not in ORDER_PERMUTATIONS:
            raise ValueError("unknown triple order %r" % (name,))
        self.name = name
        self.permutation = ORDER_PERMUTATIONS[name]
        if name == "spo":
            rows = sorted(triples)  # triples already are (s, p, o)
        else:
            rows = sorted(triples, key=itemgetter(*self.permutation))
        self.columns: Tuple[array, array, array] = tuple(
            array("q", map(itemgetter(position), rows))
            for position in self.permutation
        )

    def __len__(self) -> int:
        return len(self.columns[0])

    def column_for_position(self, position: int) -> array:
        """The key column holding physical position *position*
        (0 = subject, 1 = property, 2 = object)."""
        return self.columns[self.permutation.index(position)]

    def range(self, *prefix: int) -> Tuple[int, int]:
        """The half-open row range whose key columns equal *prefix*
        (up to three values, in this ordering's key sequence).

        Two binary searches per bound column; an empty prefix is the
        whole run.  Each returned range is sorted on the remaining key
        columns — the sorted-run property every consumer relies on.
        """
        lo, hi = 0, len(self)
        for depth, value in enumerate(prefix):
            column = self.columns[depth]
            lo = bisect_left(column, value, lo, hi)
            hi = bisect_right(column, value, lo, hi)
            if lo >= hi:
                return lo, lo
        return lo, hi

    def iter_triples(
        self, lo: int = 0, hi: Optional[int] = None
    ) -> Iterator[Tuple[int, int, int]]:
        """Yield ``(s, p, o)`` tuples of rows [lo, hi) in run order."""
        if hi is None:
            hi = len(self)
        return zip(
            self.column_for_position(0)[lo:hi],
            self.column_for_position(1)[lo:hi],
            self.column_for_position(2)[lo:hi],
        )

    def __repr__(self) -> str:
        return "SortedRunIndex(%s, %d rows)" % (self.name, len(self))


class ColumnarIndexSet:
    """The lazily built, epoch-invalidated index family of one store."""

    def __init__(self, store) -> None:
        self._store = store
        self._orders: Dict[str, SortedRunIndex] = {}
        self._built_epoch: Optional[int] = None
        #: Total index builds performed — observable by tests asserting
        #: that mutations invalidate and re-probes rebuild.
        self.build_count = 0
        # Eager invalidation: drop the arrays on the write itself, not
        # on the next probe, so a write burst is not charged the memory
        # of runs it already obsoleted.
        store.add_listener(self._on_mutation)

    # ------------------------------------------------------------------

    def _on_mutation(self, _triple, _operation) -> None:
        self._orders.clear()
        self._built_epoch = None

    def _current(self) -> bool:
        return (
            self._built_epoch is not None
            and self._built_epoch == self._store.mutation_epoch
        )

    def has_current(self, name: str) -> bool:
        """True when order *name* is built and not stale — the cheap
        probe ``scan_all`` uses to reuse the SPO run without forcing a
        build."""
        return self._current() and name in self._orders

    def invalidate(self) -> None:
        """Drop every built run (next probe rebuilds)."""
        self._on_mutation(None, None)

    def order(self, name: str) -> SortedRunIndex:
        """The (built-on-demand) sorted run for ordering *name*.

        Staleness is decided by the store's mutation epoch, which every
        encoded-level write path bumps — so runs survive read-only use
        indefinitely and never survive a write, whatever code path
        performed it.
        """
        if not self._current():
            self._orders.clear()
            self._built_epoch = self._store.mutation_epoch
        run = self._orders.get(name)
        if run is None:
            run = SortedRunIndex(name, self._store._triples)
            self._orders[name] = run
            self.build_count += 1
        return run

    # ------------------------------------------------------------------

    def probe(
        self,
        subject_id: Optional[int] = None,
        property_id: Optional[int] = None,
        object_id: Optional[int] = None,
    ) -> Tuple[SortedRunIndex, int, int, int]:
        """Resolve bound ids to ``(run, lo, hi, bound_count)``: the
        best-matching sorted run, the half-open row range covering the
        matches, and how many leading key columns the bound ids pin.

        Every combination of bound positions maps to an index whose
        key *prefix* is exactly the bound set — so rows [lo, hi) are
        sorted on the remaining (variable) key columns, in the run's
        key order.  That residual sortedness is the engine's scan
        metadata: it is what merge joins and sorted unions consume.
        """
        if subject_id is not None:
            if property_id is not None:
                run = self.order("spo")
                prefix = (
                    (subject_id, property_id)
                    if object_id is None
                    else (subject_id, property_id, object_id)
                )
            elif object_id is not None:
                run = self.order("osp")
                prefix = (object_id, subject_id)
            else:
                run = self.order("spo")
                prefix = (subject_id,)
        elif property_id is not None:
            run = self.order("pos")
            prefix = (
                (property_id,)
                if object_id is None
                else (property_id, object_id)
            )
        elif object_id is not None:
            run = self.order("osp")
            prefix = (object_id,)
        else:
            run = self.order("spo")
            prefix = ()
        lo, hi = run.range(*prefix)
        return run, lo, hi, len(prefix)

    def match(
        self,
        subject_id: Optional[int] = None,
        property_id: Optional[int] = None,
        object_id: Optional[int] = None,
    ) -> Iterator[Tuple[int, int, int]]:
        """Enumerate triples matching the bound ids, in the probing
        run's deterministic order (see :meth:`TripleStore.match`)."""
        run, lo, hi, _ = self.probe(subject_id, property_id, object_id)
        return run.iter_triples(lo, hi)

    def __repr__(self) -> str:
        return "ColumnarIndexSet(built=%s, epoch=%s)" % (
            sorted(self._orders),
            self._built_epoch,
        )
