"""The column-batch exchange format of the columnar engine.

Operators exchange :class:`ColumnChunk` batches — a fixed row count
represented as one ``array('q')`` (or plain list, for decoded-term
relations) per column — wrapped in a :class:`ColumnStream` that also
carries *sortedness metadata*: which lexicographic column order the
stream's rows are guaranteed to follow, and which columns are constant
across the whole stream.  The metadata is what lets the engine commit
to merge joins and k-way sorted unions only when they are actually
safe, and silently fall back to hashing otherwise: an order claim must
always be *true*, never merely hoped.

Rows never exist as Python tuples inside an operator unless the
operator genuinely needs row-at-a-time state (join group emission,
hash tables); scans, projections, filters and distinct move whole
``array`` slices, which is where the engine's speed comes from.
"""

from __future__ import annotations

from array import array
from typing import Iterable, Iterator, List, Sequence, Tuple

__all__ = ["ColumnChunk", "ColumnStream"]


def as_column(values: Iterable) -> Sequence:
    """Pack *values* into an ``array('q')`` when they are term ids,
    falling back to a list for decoded-term relations."""
    try:
        return array("q", values)
    except (TypeError, OverflowError):
        return list(values)


def _gather(column: Sequence, indexes: Sequence[int]) -> Sequence:
    if isinstance(column, array):
        return array("q", (column[i] for i in indexes))
    return [column[i] for i in indexes]


class ColumnChunk:
    """A batch of rows stored column-wise.

    ``length`` is explicit because zero-arity chunks are legal: a scan
    with all three positions bound yields the empty row ``()`` once
    when the triple is present, and that row count cannot be recovered
    from an empty column tuple.
    """

    __slots__ = ("columns", "length")

    def __init__(self, columns: Sequence[Sequence], length: int = None):
        self.columns: Tuple[Sequence, ...] = tuple(columns)
        if length is None:
            length = len(self.columns[0]) if self.columns else 0
        self.length = length

    @classmethod
    def from_rows(cls, rows: Sequence[Tuple], arity: int) -> "ColumnChunk":
        """Transpose row tuples into a chunk (the boundary crossed by
        operators that genuinely work row-at-a-time)."""
        if arity == 0:
            return cls((), len(rows))
        if not rows:
            return cls(tuple(array("q") for _ in range(arity)), 0)
        return cls(tuple(as_column(col) for col in zip(*rows)), len(rows))

    def __len__(self) -> int:
        return self.length

    @property
    def arity(self) -> int:
        return len(self.columns)

    def rows(self) -> Iterator[Tuple]:
        """Decode back to row tuples (the engine/answer boundary)."""
        if not self.columns:
            return iter([()] * self.length)
        return zip(*self.columns)

    def row(self, index: int) -> Tuple:
        return tuple(column[index] for column in self.columns)

    def take(self, indexes: Sequence[int]) -> "ColumnChunk":
        """A new chunk holding the selected row positions, in order —
        the materialization of a boolean-mask selection."""
        return ColumnChunk(
            tuple(_gather(column, indexes) for column in self.columns),
            len(indexes),
        )

    def __repr__(self) -> str:
        return "ColumnChunk(%d cols × %d rows)" % (self.arity, self.length)


class ColumnStream:
    """A lazy sequence of chunks plus its sortedness metadata.

    ``order`` — column indexes the rows are lexicographically sorted
    by, in significance order (a *guarantee*, possibly empty).
    ``constants`` — column indexes whose value never changes across
    the stream (a reformulation-bound constant column, for instance).
    Constant columns are transparent to sortedness: a stream sorted by
    column 0 with column 1 constant is also sorted by (0, 1) and
    (1, 0).
    """

    __slots__ = ("chunks", "order", "constants")

    def __init__(
        self,
        chunks: Iterator[ColumnChunk],
        order: Tuple[int, ...] = (),
        constants: frozenset = frozenset(),
    ):
        self.chunks = chunks
        self.order = tuple(order)
        self.constants = frozenset(constants)

    def sorted_by(self, key: Sequence[int]) -> bool:
        """True when the stream's rows are lexicographically sorted by
        the *key* column sequence (modulo constant columns)."""
        significant: List[int] = [
            column for column in self.order if column not in self.constants
        ]
        depth = 0
        for column in key:
            if column in self.constants:
                continue
            if depth < len(significant) and significant[depth] == column:
                depth += 1
            else:
                return False
        return True

    def fully_sorted(self, arity: int) -> bool:
        """Sorted by every column — the precondition for merge-dedup
        unions and streaming distinct."""
        return self.sorted_by(range(arity))

    def iter_rows(self) -> Iterator[Tuple]:
        for chunk in self.chunks:
            yield from chunk.rows()

    def __repr__(self) -> str:
        return "ColumnStream(order=%s, constants=%s)" % (
            self.order,
            sorted(self.constants),
        )
