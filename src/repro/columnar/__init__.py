"""Columnar storage and execution: sorted ID-run indexes + vectorized
operators.

The paper's reformulated UCQs explode into hundreds of single-triple
scans unioned and joined, so per-row Python object overhead dominates
exactly where the paper measures its bottleneck.  This package keeps
triples as dense integer IDs end to end:

* :mod:`repro.columnar.indexes` — SPO/POS/OSP sorted integer-run
  indexes over ``array('q')`` columns with binary-search range probes,
  built lazily from the triple store and invalidated through its
  mutation listeners and epoch;
* :mod:`repro.columnar.chunks` — the column-batch exchange format and
  its sortedness metadata;
* :mod:`repro.columnar.engine` — the third execution engine: operators
  over the shared plan IR (index-range scans, k-way sorted-run unions,
  merge joins, mask selections) streaming column chunks, with the same
  :class:`~repro.engine.metrics.PipelineMetrics` accounting and
  mid-stream :class:`~repro.resilience.budget.ExecutionBudget`
  charging as the pipelined engine.
"""

from .chunks import ColumnChunk, ColumnStream
from .engine import run_columnar
from .indexes import ColumnarIndexSet, SortedRunIndex

__all__ = [
    "ColumnChunk",
    "ColumnStream",
    "ColumnarIndexSet",
    "SortedRunIndex",
    "run_columnar",
]
