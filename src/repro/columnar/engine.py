"""The columnar executor: vectorized operators over the shared plan IR.

The third engine over the same plan language as the materialized
interpreter (:mod:`repro.storage.executor`) and the pipelined executor
(:mod:`repro.engine.pipeline`).  Where the pipelined engine moves
tuples in row batches, this one moves :class:`~repro.columnar.chunks.
ColumnChunk` column batches whose cells never become Python objects
until the answer boundary:

* **Index-range scans** — a triple pattern resolves through
  :meth:`~repro.columnar.indexes.ColumnarIndexSet.probe` to a row
  range of one SPO/POS/OSP sorted run; emitting a chunk is slicing
  ``array('q')`` columns (a C-level copy), not building per-row
  dicts and tuples.  The residual key order of the range becomes the
  stream's sortedness metadata.
* **K-way sorted union** — when every input of a union is fully
  sorted (scans and their projections are), inputs are merged with
  adjacent-duplicate elimination: the union's set semantics fall out
  of the merge for free, *before* any join multiplies rows — the
  grouping effect the paper measures, applied physically.  Unsorted
  inputs degrade to streamed concatenation exactly like the pipelined
  engine (dedup deferred downstream).
* **Merge joins on sorted runs** — taken only when both inputs are
  provably sorted on the join key; buffers only the current
  equal-key groups.  Otherwise the join hashes, building on the
  smaller estimated side like the pipelined engine, so peak buffered
  rows never exceed the pipelined engine's on the same plan.
* **Mask selections / distinct** — filters compute keep-index lists
  per chunk and gather; distinct over a fully sorted stream is
  adjacent-row comparison with *zero* buffered state, and falls back
  to the pipelined engine's seen-set otherwise.

Accounting and control are identical to the pipelined engine: every
operator's output is metered into a shared
:class:`~repro.engine.metrics.PipelineMetrics` (``rows_out`` counts
rows *represented* by chunks, not Python objects), charged against the
caller's :class:`~repro.resilience.budget.ExecutionBudget` per chunk,
and a budget abort carries the partial metrics and rows.  A pool makes
multi-child unsorted unions parallel, as in the pipelined engine.
"""

from __future__ import annotations

import heapq
import queue as queue_module
import threading
import time
from typing import Iterator, List, Optional, Sequence, Tuple

from ..engine.ir import (
    DistinctNode,
    EmptyNode,
    JoinNode,
    NonLiteralFilterNode,
    PlanNode,
    ProjectNode,
    RelationNode,
    ScanNode,
    UnionNode,
)
from ..engine.metrics import OperatorMetrics, PipelineMetrics, _Stopwatch
from ..parallel.pool import ExecutorPool, primary_error
from bisect import bisect_left
from operator import itemgetter

from .chunks import ColumnChunk, ColumnStream, as_column
from .indexes import ORDER_PERMUTATIONS

Row = Tuple

#: Rows per chunk.  Larger than the pipelined engine's row batches —
#: per-chunk bookkeeping is the columnar engine's only per-row-free
#: overhead, so amortizing it harder is pure win; still small enough
#: that a budget fires within one chunk of the limit.
DEFAULT_COLUMNAR_BATCH_SIZE = 1024


class _ColumnarPipeline:
    """One columnar execution: operators wired to shared accounting."""

    def __init__(
        self,
        store,
        metrics: PipelineMetrics,
        budget,
        batch_size: int,
        pool: Optional[ExecutorPool] = None,
    ):
        self.store = store
        self.indexes = store.columnar()
        self.metrics = metrics
        self.budget = budget
        self.batch_size = batch_size
        self.pool = pool

    # -- plumbing ------------------------------------------------------

    def stream(self, node: PlanNode) -> ColumnStream:
        """The metered output stream of *node*.

        Mirrors the pipelined engine's metering exactly: rows/batches/
        wall-time per operator, ``node.actual_rows`` for EXPLAIN, and
        per-chunk budget charging (RelationNode leaves whose rows were
        already charged only get a time check).  Sortedness metadata
        passes through untouched — metering never reorders.
        """
        entry = self.metrics.operator(node)
        source = self._operator(node, entry)
        charge = self.budget is not None and not (
            isinstance(node, RelationNode) and node.charged
        )
        node.actual_rows = 0
        watch = _Stopwatch(entry)

        def metered() -> Iterator[ColumnChunk]:
            inner = source.chunks
            try:
                iterator = iter(inner)
                while True:
                    with watch:
                        chunk = next(iterator, None)
                    if chunk is None:
                        return
                    entry.rows_out += chunk.length
                    entry.batches += 1
                    node.actual_rows += chunk.length
                    if charge:
                        self.budget.charge_rows(
                            chunk.length, operator=entry.label
                        )
                    elif self.budget is not None:
                        self.budget.check_time(operator=entry.label)
                    yield chunk
            finally:
                close = getattr(inner, "close", None)
                if close is not None:
                    close()
                self.metrics.release(entry)

        return ColumnStream(metered(), source.order, source.constants)

    def _counted(
        self, stream: ColumnStream, entry: OperatorMetrics
    ) -> Iterator[ColumnChunk]:
        """Consume *stream*'s chunks, counting rows into *entry.rows_in*."""
        for chunk in stream.chunks:
            entry.rows_in += chunk.length
            yield chunk

    def _pull(self, child: PlanNode, entry: OperatorMetrics) -> ColumnStream:
        stream = self.stream(child)
        return ColumnStream(
            self._counted(stream, entry), stream.order, stream.constants
        )

    def _chunked_rows(self, rows: Iterator[Row], arity: int) -> Iterator[ColumnChunk]:
        """Re-chunk a row iterator (row-at-a-time operator cores)."""
        batch: List[Row] = []
        for row in rows:
            batch.append(row)
            if len(batch) >= self.batch_size:
                yield ColumnChunk.from_rows(batch, arity)
                batch = []
        if batch:
            yield ColumnChunk.from_rows(batch, arity)

    # -- operators -----------------------------------------------------

    def _operator(self, node: PlanNode, entry: OperatorMetrics) -> ColumnStream:
        if isinstance(node, EmptyNode):
            return ColumnStream(iter(()))
        if isinstance(node, ScanNode):
            return self._scan(node)
        if isinstance(node, RelationNode):
            return self._relation(node)
        if isinstance(node, UnionNode):
            return self._union(node, entry)
        if isinstance(node, ProjectNode):
            return self._project(node, entry)
        if isinstance(node, NonLiteralFilterNode):
            return self._filter(node, entry)
        if isinstance(node, DistinctNode):
            return self._distinct(node, entry)
        if isinstance(node, JoinNode):
            return self._join(node, entry)
        raise TypeError("cannot execute %r" % (node,))

    # -- scans ---------------------------------------------------------

    def _scan(self, node: ScanNode) -> ColumnStream:
        range_info = node.range_spec()
        if range_info is not None:
            return self._range_scan(node, range_info)
        run, lo, hi, bound = self.indexes.probe(*node.bound_positions())
        out_index = {var: i for i, var in enumerate(node.columns)}
        positions_of: dict = {}
        position_var: dict = {}
        for position, (kind, value) in enumerate(node.positions):
            if kind == "var":
                positions_of.setdefault(value, []).append(position)
                position_var[position] = value
        # Residual key order of the probed range, as output columns.
        order: List[int] = []
        for position in run.permutation[bound:]:
            column = out_index[position_var[position]]
            if column not in order:
                order.append(column)
        sources = [
            run.column_for_position(positions_of[var][0])
            for var in node.columns
        ]
        duplicates = [
            [run.column_for_position(p) for p in group]
            for group in positions_of.values()
            if len(group) > 1
        ]
        step = self.batch_size

        def chunks() -> Iterator[ColumnChunk]:
            for start in range(lo, hi, step):
                end = min(start + step, hi)
                if duplicates:
                    # Repeated-variable pattern: keep rows where every
                    # occurrence of the variable carries the same id.
                    keep = [
                        i
                        for i in range(start, end)
                        if all(
                            group[0][i] == other[i]
                            for group in duplicates
                            for other in group[1:]
                        )
                    ]
                    if keep:
                        yield ColumnChunk(
                            tuple(
                                as_column(src[i] for i in keep)
                                for src in sources
                            ),
                            len(keep),
                        )
                else:
                    yield ColumnChunk(
                        tuple(src[start:end] for src in sources),
                        end - start,
                    )

        return ColumnStream(chunks(), tuple(order))

    def _range_scan(
        self, node: ScanNode, range_info: Tuple[int, Tuple[int, int]]
    ) -> ColumnStream:
        """Scan a pattern with a hierarchy-interval range position.

        When the bound constants occupy a run's key prefix and the
        range position is the *next* key column, the interval is
        literally one bisect-narrowed row range of that sorted run;
        with several distinct ids inside the interval, the narrowed
        range is set-deduped and re-sorted on the residual key in one
        C-level pass so the output stream stays sorted.  Any other
        shape degrades to a mask filter over the best conventional
        probe.
        """
        range_position, (range_lo, range_hi) = range_info
        bounds = node.bound_positions()
        bound_set = {i for i, v in enumerate(bounds) if v is not None}
        out_index = {var: i for i, var in enumerate(node.columns)}
        positions_of: dict = {}
        position_var: dict = {}
        for position, (kind, value) in enumerate(node.positions):
            if kind == "var":
                positions_of.setdefault(value, []).append(position)
                position_var[position] = value
        has_duplicates = any(
            len(group) > 1 for group in positions_of.values()
        )

        chosen = None
        depth = len(bound_set)
        for name, permutation in ORDER_PERMUTATIONS.items():
            if (
                set(permutation[:depth]) == bound_set
                and permutation[depth] == range_position
            ):
                chosen = name
                break
        if chosen is None or has_duplicates:
            return self._masked_range_scan(
                node, range_info, position_var, positions_of, out_index
            )

        run = self.indexes.order(chosen)
        prefix = tuple(bounds[p] for p in run.permutation[:depth])
        lo, hi = run.range(*prefix)
        range_column = run.columns[depth]
        lo = bisect_left(range_column, range_lo, lo, hi)
        hi = bisect_left(range_column, range_hi, lo, hi)

        order: List[int] = []
        for position in run.permutation[depth + 1:]:
            column = out_index[position_var[position]]
            if column not in order:
                order.append(column)
        sources = [
            run.column_for_position(positions_of[var][0])
            for var in node.columns
        ]
        step = self.batch_size

        if lo >= hi or range_column[lo] == range_column[hi - 1]:
            # Zero or one distinct id in the interval: the narrowed
            # range behaves exactly like a (prefix + id) probe —
            # plain column slices, residual order intact.
            def sliced() -> Iterator[ColumnChunk]:
                for start in range(lo, hi, step):
                    end = min(start + step, hi)
                    yield ColumnChunk(
                        tuple(src[start:end] for src in sources),
                        end - start,
                    )

            return ColumnStream(sliced(), tuple(order))

        # Several distinct ids inside the interval: the groups must be
        # re-sorted on the residual key and deduped (the same row can
        # match several ids — an instance typed with two subclasses).
        # The whole narrowed range is materialized and set-deduped in
        # one pass: its size is bounded by the subtree's instance
        # count, and a C-level set + sort beats a per-row Python heap
        # merge by a wide margin on exactly the big intervals where
        # the encoding matters.
        if len(sources) == 1:
            merged = as_column(sorted(set(sources[0][lo:hi])))

            def merged_chunks() -> Iterator[ColumnChunk]:
                for start in range(0, len(merged), step):
                    end = min(start + step, len(merged))
                    yield ColumnChunk((merged[start:end],), end - start)

            return ColumnStream(merged_chunks(), tuple(order))

        # Rows are assembled, deduped, and sorted as residual-key-order
        # tuples so every pass — zip, set, sort, and the itemgetter
        # column extraction below — runs at C level; only the final
        # array construction touches each row from Python.
        key_columns = tuple(order)
        rows = sorted(set(zip(*(sources[c][lo:hi] for c in key_columns))))
        take = tuple(
            key_columns.index(column) for column in range(len(node.columns))
        )

        def merged_rows() -> Iterator[ColumnChunk]:
            for start in range(0, len(rows), step):
                chunk = rows[start:start + step]
                yield ColumnChunk(
                    tuple(
                        as_column(map(itemgetter(k), chunk)) for k in take
                    ),
                    len(chunk),
                )

        return ColumnStream(merged_rows(), tuple(order))

    def _masked_range_scan(
        self,
        node: ScanNode,
        range_info: Tuple[int, Tuple[int, int]],
        position_var: dict,
        positions_of: dict,
        out_index: dict,
    ) -> ColumnStream:
        """Fallback: probe on the bound constants alone and filter the
        range position per chunk (keep-index gather)."""
        range_position, (range_lo, range_hi) = range_info
        run, lo, hi, bound = self.indexes.probe(*node.bound_positions())
        filter_column = run.column_for_position(range_position)
        order: List[int] = []
        for position in run.permutation[bound:]:
            variable = position_var.get(position)
            if variable is None:
                break  # the range position: sortedness ends here
            column = out_index[variable]
            if column not in order:
                order.append(column)
        sources = [
            run.column_for_position(positions_of[var][0])
            for var in node.columns
        ]
        duplicates = [
            [run.column_for_position(p) for p in group]
            for group in positions_of.values()
            if len(group) > 1
        ]
        step = self.batch_size

        def chunks() -> Iterator[ColumnChunk]:
            for start in range(lo, hi, step):
                end = min(start + step, hi)
                keep = [
                    i
                    for i in range(start, end)
                    if range_lo <= filter_column[i] < range_hi
                    and all(
                        group[0][i] == other[i]
                        for group in duplicates
                        for other in group[1:]
                    )
                ]
                if keep:
                    yield ColumnChunk(
                        tuple(
                            as_column(src[i] for i in keep)
                            for src in sources
                        ),
                        len(keep),
                    )

        return ColumnStream(chunks(), tuple(order))

    def _relation(self, node: RelationNode) -> ColumnStream:
        rows = node.rows
        arity = node.arity
        step = self.batch_size

        def chunks() -> Iterator[ColumnChunk]:
            for start in range(0, len(rows), step):
                yield ColumnChunk.from_rows(rows[start:start + step], arity)

        return ColumnStream(chunks())

    # -- union ---------------------------------------------------------

    def _union(self, node: UnionNode, entry: OperatorMetrics) -> ColumnStream:
        children = node.children()
        if len(children) == 1:
            return self._pull(children[0], entry)
        arity = node.arity
        streams = [self.stream(child) for child in children]
        key = _total_order(streams, arity)
        if key is not None:
            return self._merge_union(streams, arity, key, entry)
        if (
            self.pool is not None
            and self.pool.usable()
        ):
            return ColumnStream(self._parallel_union(streams, entry))

        def concatenated() -> Iterator[ColumnChunk]:
            for stream in streams:
                yield from self._counted(stream, entry)

        return ColumnStream(concatenated())

    def _merge_union(
        self,
        streams: Sequence[ColumnStream],
        arity: int,
        key: Tuple[int, ...],
        entry: OperatorMetrics,
    ) -> ColumnStream:
        """K-way merge of inputs all sorted by the total order *key*,
        with adjacent duplicate elimination.

        The output is sorted *and distinct* — the union's set semantics
        computed without a dedup buffer, and early enough that a
        downstream join multiplies the grouped extent, not the raw one.
        """
        identity = key == tuple(range(arity))

        def rows() -> Iterator[Row]:
            iters = [
                ColumnStream(
                    self._counted(stream, entry), stream.order
                ).iter_rows()
                for stream in streams
            ]
            if identity:
                merged = heapq.merge(*iters)
            else:
                merged = heapq.merge(
                    *iters, key=lambda row: tuple(row[i] for i in key)
                )
            previous: Optional[Row] = None
            for row in merged:
                if row != previous:
                    previous = row
                    yield row

        return ColumnStream(self._chunked_rows(rows(), arity), key)

    # -- parallel union / parallel scan --------------------------------

    def _parallel_scan(
        self,
        stream: ColumnStream,
        out: "queue_module.Queue",
        stop: threading.Event,
    ) -> None:
        """Producer half: drain one child on a pool worker into the
        bounded queue (same protocol as the pipelined engine — errors
        relayed, ``done`` unconditional)."""
        try:
            for chunk in stream.chunks:
                relayed = False
                while not stop.is_set():
                    try:
                        out.put(("chunk", chunk), timeout=0.05)
                        relayed = True
                        break
                    except queue_module.Full:
                        continue
                if not relayed:
                    return
        except BaseException as exc:  # relayed; the consumer re-raises
            while not stop.is_set():
                try:
                    out.put(("error", exc), timeout=0.05)
                    break
                except queue_module.Full:
                    continue
        finally:
            out.put(("done", None))

    def _parallel_union(
        self, streams: Sequence[ColumnStream], entry: OperatorMetrics
    ) -> Iterator[ColumnChunk]:
        capacity = max(4, 2 * self.pool.workers)
        out: "queue_module.Queue" = queue_module.Queue(maxsize=capacity)
        stop = threading.Event()
        for stream in streams:
            self.pool.submit(self._parallel_scan, stream, out, stop)
        retired = 0
        errors: List[BaseException] = []
        try:
            while retired < len(streams):
                kind, payload = out.get()
                if kind == "done":
                    retired += 1
                elif kind == "error":
                    errors.append(payload)
                    stop.set()
                elif not errors:
                    entry.rows_in += payload.length
                    yield payload
            if errors:
                raise primary_error(errors)
        finally:
            stop.set()
            while retired < len(streams):
                if out.get()[0] == "done":
                    retired += 1

    # -- projection / selection ----------------------------------------

    def _project(self, node: ProjectNode, entry: OperatorMetrics) -> ColumnStream:
        child = self._pull(node.child, entry)
        positions = node.child.variable_positions()
        specs = [
            ("col", positions[value]) if kind == "var" else ("const", value)
            for kind, value in node.specs
        ]
        # Metadata: constants are injected constants plus surviving
        # constant child columns; the order claim follows the child's
        # order until a non-constant order column is dropped.
        constants = set()
        first_output: dict = {}
        for output, (kind, value) in enumerate(specs):
            if kind == "const":
                constants.add(output)
            else:
                first_output.setdefault(value, output)
                if value in child.constants:
                    constants.add(output)
        order: List[int] = []
        for column in child.order:
            if column in first_output:
                mapped = first_output[column]
                if mapped not in order:
                    order.append(mapped)
            elif column not in child.constants:
                break

        def chunks() -> Iterator[ColumnChunk]:
            for chunk in child.chunks:
                length = chunk.length
                yield ColumnChunk(
                    tuple(
                        chunk.columns[value]
                        if kind == "col"
                        else _constant_column(value, length)
                        for kind, value in specs
                    ),
                    length,
                )

        return ColumnStream(chunks(), tuple(order), frozenset(constants))

    def _filter(
        self, node: NonLiteralFilterNode, entry: OperatorMetrics
    ) -> ColumnStream:
        child = self._pull(node.child, entry)
        positions = node.child.variable_positions()
        guarded = [positions[variable] for variable in node.variables]
        is_literal = self.store.dictionary.is_literal_id

        def chunks() -> Iterator[ColumnChunk]:
            for chunk in child.chunks:
                if len(guarded) == 1:
                    column = chunk.columns[guarded[0]]
                    keep = [
                        i for i, value in enumerate(column)
                        if not is_literal(value)
                    ]
                else:
                    columns = [chunk.columns[g] for g in guarded]
                    keep = [
                        i
                        for i in range(chunk.length)
                        if not any(is_literal(col[i]) for col in columns)
                    ]
                if len(keep) == chunk.length:
                    yield chunk
                elif keep:
                    yield chunk.take(keep)

        return ColumnStream(chunks(), child.order, child.constants)

    def _distinct(self, node: DistinctNode, entry: OperatorMetrics) -> ColumnStream:
        child = self._pull(node.child, entry)
        arity = node.arity
        if _total_order([child], arity) is not None:
            # Sorted distinct: adjacent comparison, zero buffered state.
            def sorted_chunks() -> Iterator[ColumnChunk]:
                previous: Optional[Row] = None
                for chunk in child.chunks:
                    columns = chunk.columns
                    keep: List[int] = []
                    for i in range(chunk.length):
                        row = tuple(col[i] for col in columns)
                        if row != previous:
                            previous = row
                            keep.append(i)
                    if len(keep) == chunk.length:
                        yield chunk
                    elif keep:
                        yield chunk.take(keep)

            return ColumnStream(
                sorted_chunks(), child.order, child.constants
            )

        def hashed_chunks() -> Iterator[ColumnChunk]:
            seen: set = set()
            for chunk in child.chunks:
                keep = []
                for i, row in enumerate(chunk.rows()):
                    if row not in seen:
                        seen.add(row)
                        keep.append(i)
                if keep:
                    self.metrics.buffer(entry, len(keep))
                    if len(keep) == chunk.length:
                        yield chunk
                    else:
                        yield chunk.take(keep)

        return ColumnStream(hashed_chunks(), child.order, child.constants)

    # -- joins ---------------------------------------------------------

    def _join(self, node: JoinNode, entry: OperatorMetrics) -> ColumnStream:
        left = self._pull(node.left, entry)
        right = self._pull(node.right, entry)
        variables = node.join_variables
        left_key = [
            node.left.variable_positions()[v] for v in variables
        ]
        right_key = [
            node.right.variable_positions()[v] for v in variables
        ]
        keep = node.keep_right_indexes
        left_arity = node.left.arity
        constants = frozenset(left.constants) | frozenset(
            left_arity + i
            for i, index in enumerate(keep)
            if index in right.constants
        )
        if variables and left.sorted_by(left_key) and right.sorted_by(right_key):
            return ColumnStream(
                self._merge_join(node, left, right, left_key, right_key, entry),
                tuple(left_key),
                constants,
            )
        # Hash fallback: identical build/probe policy to the pipelined
        # engine (build on the smaller *estimated* side), so buffered
        # state never exceeds the pipelined engine's on the same plan.
        return ColumnStream(
            self._hash_join(node, left, right, left_key, right_key, entry),
            (),
            constants,
        )

    def _merge_join(
        self,
        node: JoinNode,
        left: ColumnStream,
        right: ColumnStream,
        left_key: Sequence[int],
        right_key: Sequence[int],
        entry: OperatorMetrics,
    ) -> Iterator[ColumnChunk]:
        """Streaming merge join of two key-sorted streams.

        Only the current equal-key group of each side is held (and
        charged to the metrics while held) — the sorted-run payoff: a
        join over grouped type-atom unions touches each group once.
        """
        keep = node.keep_right_indexes
        arity = node.arity
        if len(left_key) == 1:
            li, ri = left_key[0], right_key[0]
            lkey_of = lambda row: row[li]  # noqa: E731
            rkey_of = lambda row: row[ri]  # noqa: E731
        else:
            lkey_of = lambda row: tuple(row[i] for i in left_key)  # noqa: E731
            rkey_of = lambda row: tuple(row[i] for i in right_key)  # noqa: E731

        def rows() -> Iterator[Row]:
            left_rows = left.iter_rows()
            right_rows = right.iter_rows()
            lrow = next(left_rows, None)
            rrow = next(right_rows, None)
            while lrow is not None and rrow is not None:
                lkey = lkey_of(lrow)
                rkey = rkey_of(rrow)
                if lkey < rkey:
                    lrow = next(left_rows, None)
                elif lkey > rkey:
                    rrow = next(right_rows, None)
                else:
                    lgroup = [lrow]
                    lrow = next(left_rows, None)
                    while lrow is not None and lkey_of(lrow) == lkey:
                        lgroup.append(lrow)
                        lrow = next(left_rows, None)
                    rgroup = [tuple(rrow[i] for i in keep)]
                    rrow = next(right_rows, None)
                    while rrow is not None and rkey_of(rrow) == rkey:
                        rgroup.append(tuple(rrow[i] for i in keep))
                        rrow = next(right_rows, None)
                    held = len(lgroup) + len(rgroup)
                    self.metrics.buffer(entry, held)
                    for lmatch in lgroup:
                        for rmatch in rgroup:
                            yield lmatch + rmatch
                    self.metrics.buffer(entry, -held)

        return self._chunked_rows(rows(), arity)

    def _hash_join(
        self,
        node: JoinNode,
        left: ColumnStream,
        right: ColumnStream,
        left_key: Sequence[int],
        right_key: Sequence[int],
        entry: OperatorMetrics,
    ) -> Iterator[ColumnChunk]:
        keep = node.keep_right_indexes
        arity = node.arity
        build_left = node.left.estimated_rows <= node.right.estimated_rows

        # Single-variable keys (the common case) read the key column
        # directly and materialize probe-side rows only on a match —
        # the probe never builds tuples for rows that join to nothing.
        single_left = left_key[0] if len(left_key) == 1 else None
        single_right = right_key[0] if len(right_key) == 1 else None

        def build(stream: ColumnStream, key: Sequence[int], single) -> dict:
            table: dict = {}
            setdefault = table.setdefault
            for chunk in stream.chunks:
                if single is not None:
                    keycol = chunk.columns[single]
                    for i, row in enumerate(chunk.rows()):
                        setdefault(keycol[i], []).append(row)
                else:
                    for row in chunk.rows():
                        setdefault(
                            tuple(row[i] for i in key), []
                        ).append(row)
                self.metrics.buffer(entry, chunk.length)
            return table

        def probe(
            stream: ColumnStream, key: Sequence[int], single, table: dict
        ) -> Iterator[Tuple[Row, list]]:
            get = table.get
            for chunk in stream.chunks:
                if single is not None:
                    keycol = chunk.columns[single]
                    columns = chunk.columns
                    for i in range(chunk.length):
                        matches = get(keycol[i])
                        if matches:
                            yield tuple(col[i] for col in columns), matches
                else:
                    for row in chunk.rows():
                        matches = get(tuple(row[i] for i in key))
                        if matches:
                            yield row, matches

        def rows() -> Iterator[Row]:
            if build_left:
                table = build(left, left_key, single_left)
                for rrow, matches in probe(
                    right, right_key, single_right, table
                ):
                    kept = tuple(rrow[i] for i in keep)
                    for lrow in matches:
                        yield lrow + kept
            else:
                table = build(right, right_key, single_right)
                # Project build rows to the kept columns once, up
                # front, instead of per emitted output row.
                for group in table.values():
                    group[:] = [tuple(r[i] for i in keep) for r in group]
                for lrow, matches in probe(
                    left, left_key, single_left, table
                ):
                    for rkept in matches:
                        yield lrow + rkept

        return self._chunked_rows(rows(), arity)


def _total_order(
    streams: Sequence[ColumnStream], arity: int
) -> Optional[Tuple[int, ...]]:
    """A column sequence covering *every* column that all inputs are
    sorted by, or None when no common total order exists.

    Built from the first input's order claim, extended with the
    remaining columns; a total order is required because the merge
    dedups by comparing *adjacent full rows* — a key that ignored a
    column could interleave distinct rows between duplicates.  Each
    input only has to be sorted by the sequence *modulo its own
    constant columns* — disjuncts binding a position to different
    constants still merge.
    """
    if arity == 0:
        return None
    lead = streams[0]
    key = [c for c in lead.order if c < arity]
    key.extend(c for c in range(arity) if c not in key)
    key_tuple = tuple(key)
    if all(stream.sorted_by(key_tuple) for stream in streams):
        return key_tuple
    return None


def _constant_column(value, length: int):
    if isinstance(value, int):
        return as_column([value]) * length
    return [value] * length


# ---------------------------------------------------------------------------
# Entry point


def run_columnar(
    plan: PlanNode,
    store,
    budget=None,
    batch_size: int = DEFAULT_COLUMNAR_BATCH_SIZE,
    metrics: Optional[PipelineMetrics] = None,
    pool: Optional[ExecutorPool] = None,
) -> Tuple[List[Row], PipelineMetrics]:
    """Execute *plan* against *store* columnar-ly; returns (rows, metrics).

    The contract is the pipelined engine's, verbatim: the collected
    answer is distinct, metrics report rows *represented* (a chunk of
    1,024 rows counts 1,024, whatever its Python object count), and a
    :class:`~repro.resilience.errors.BudgetExceeded` mid-stream carries
    the metrics snapshot and partial rows (``partial`` /
    ``partial_rows``).  Differential harnesses may therefore compare
    all three engines' answers byte for byte.
    """
    if metrics is None:
        metrics = PipelineMetrics()
    pipeline = _ColumnarPipeline(
        store, metrics, budget, batch_size, pool=pool
    )
    collect = OperatorMetrics("Collect")
    started = time.perf_counter()
    if budget is not None:
        budget.start()
    seen: set = set()
    rows: List[Row] = []
    try:
        for chunk in pipeline.stream(plan).chunks:
            fresh = 0
            for row in chunk.rows():
                if row not in seen:
                    seen.add(row)
                    rows.append(row)
                    fresh += 1
            if fresh:
                metrics.buffer(collect, fresh)
    except Exception as exc:
        metrics.elapsed_seconds = time.perf_counter() - started
        if hasattr(exc, "diagnostics"):
            exc.partial = metrics.as_dict()
            exc.partial_rows = list(rows)
        raise
    metrics.elapsed_seconds = time.perf_counter() - started
    return rows, metrics
